//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! reimplements exactly the API subset the workspace uses: `StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] /
//! [`Rng::gen_bool`] / [`Rng::gen`], and [`seq::SliceRandom::shuffle`].
//! The generator is a deterministic xorshift-style PRNG
//! (splitmix64-seeded xoshiro256++); it is *not* cryptographically
//! secure, which matches how the workspace uses it (seeded, reproducible
//! test-data generation).

#![forbid(unsafe_code)]

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A type that can be sampled uniformly from an RNG — the subset of
/// `rand`'s `Standard` distribution the workspace draws from.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $ty
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        // 53 bits of mantissa is plenty for the coin flips we take.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Draws one uniformly distributed value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNG construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via splitmix64 —
    /// the stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let state = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait adding random-order operations to slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_reseeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u8 = rng.gen_range(0..6);
            assert!(x < 6);
            let y = rng.gen_range(1u64..=3);
            assert!((1..=3).contains(&y));
            let z = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
