//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating values of one type — the stub's analogue of
/// `proptest::strategy::Strategy` (no shrinking; `generate` replaces the
/// value-tree machinery).
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives a strategy for the
    /// levels below and returns the strategy for one level up. `depth`
    /// bounds the nesting; the extra size parameters are accepted for
    /// API parity and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        Recursive {
            base: self.boxed(),
            recurse: Arc::new(move |inner| recurse(inner).boxed()),
            depth,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe view of [`Strategy`] used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    recurse: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            base: self.base.clone(),
            recurse: Arc::clone(&self.recurse),
            depth: self.depth,
        }
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        // Pick a nesting level in [0, depth], biased toward shallow, then
        // build the strategy tower for that level.
        let mut level = 0;
        while level < self.depth && rng.rng.gen_bool(0.5) {
            level += 1;
        }
        let mut strat = self.base.clone();
        for _ in 0..level {
            strat = (self.recurse)(strat);
        }
        strat.generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives — what
/// [`prop_oneof!`](crate::prop_oneof) builds.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Union<T> {
    /// Builds a union from at least one alternative.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy (a pared-down
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng.gen::<u64>() as $ty
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for any value of `T`; see [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// `&str` as a regex-like string strategy. Supports the pattern shapes
/// the workspace uses: literal characters, character classes
/// (`[a-z0-9_]`, ranges and singletons), and the repetition suffixes
/// `{m}`, `{m,n}`, `?`, `*`, `+` (with `*`/`+` capped at 8 repetitions).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed character class in pattern {pattern:?}"));
            let mut alphabet = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    assert!(lo <= hi, "bad range {lo}-{hi} in pattern {pattern:?}");
                    alphabet.extend((lo as u32..=hi as u32).filter_map(char::from_u32));
                    j += 3;
                } else {
                    alphabet.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            alphabet
        } else {
            let c = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };
        assert!(
            !alphabet.is_empty(),
            "empty alphabet in pattern {pattern:?}"
        );

        // Optional repetition suffix.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed repetition in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad repetition bound"),
                    n.trim().parse::<usize>().expect("bad repetition bound"),
                ),
                None => {
                    let m = body.trim().parse::<usize>().expect("bad repetition bound");
                    (m, m)
                }
            }
        } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?') {
            let suffix = chars[i];
            i += 1;
            match suffix {
                '*' => (0, 8),
                '+' => (1, 8),
                _ => (0, 1),
            }
        } else {
            (1, 1)
        };

        let count = rng.rng.gen_range(lo..=hi);
        for _ in 0..count {
            let k = rng.rng.gen_range(0..alphabet.len());
            out.push(alphabet[k]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_just() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let x = (0u8..6).generate(&mut rng);
            assert!(x < 6);
            let (a, b) = (0u8..4, 1u64..=3).generate(&mut rng);
            assert!(a < 4 && (1..=3).contains(&b));
            assert_eq!(Just(7i32).generate(&mut rng), 7);
        }
    }

    #[test]
    fn map_flat_map_and_union() {
        let mut rng = TestRng::from_seed(2);
        let doubled = (0u8..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            assert_eq!(doubled.generate(&mut rng) % 2, 0);
        }
        let dependent = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u8..3, n..n + 1));
        for _ in 0..50 {
            let v = dependent.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
        let union = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        for _ in 0..50 {
            assert!(matches!(union.generate(&mut rng), 1 | 2));
        }
    }

    #[test]
    fn regex_patterns_match_shape() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            let s = "[a-z]{0,6}".generate(&mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "x[0-9]{2}".generate(&mut rng);
            assert_eq!(t.len(), 3);
            assert!(t.starts_with('x'));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(n) => {
                    assert!(*n < 10, "leaf out of strategy range");
                    0
                }
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 12, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::from_seed(4);
        for _ in 0..100 {
            assert!(depth(&strat.generate(&mut rng)) <= 3);
        }
    }
}
