//! Test-running machinery: [`TestRng`], [`ProptestConfig`] and the
//! [`proptest!`](crate::proptest) / assertion macros.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG threaded through strategy generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    pub(crate) rng: StdRng,
}

impl TestRng {
    /// Builds a generator whose stream is fully determined by `seed`.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The base seed for a test run: `PROPTEST_SEED` if set, otherwise a
    /// fixed default (runs are deterministic unless reseeded).
    pub fn base_seed() -> u64 {
        std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5EED_BA65_0000_0000)
    }
}

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// The number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` generated cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` env override.
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// item becomes a `#[test]` running `body` on generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let base = $crate::test_runner::TestRng::base_seed();
            for case in 0..config.resolved_cases() {
                let seed = base.wrapping_add(case as u64);
                let mut __rng = $crate::test_runner::TestRng::from_seed(seed);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || $body
                ));
                if let ::std::result::Result::Err(payload) = outcome {
                    eprintln!(
                        "proptest case {case} failed; replay with PROPTEST_SEED={base} \
                         (case seed {seed})"
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// Chooses uniformly between strategy alternatives that share a value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// `assert!` inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn config_cases_round_trip() {
        assert_eq!(ProptestConfig::with_cases(128).cases, 128);
        assert_eq!(ProptestConfig::default().cases, 64);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_values_respect_strategies(
            x in 0u8..6,
            v in crate::collection::vec(0u32..10, 0..5),
            o in crate::option::of(1i64..3),
        ) {
            prop_assert!(x < 6);
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 10));
            if let Some(i) = o {
                prop_assert!(i == 1 || i == 2);
            }
        }

        #[test]
        fn oneof_and_any(flag in any::<bool>(), pick in prop_oneof![Just(3u8), Just(5u8)]) {
            prop_assert!(u8::from(flag) <= 1);
            prop_assert_ne!(pick, 4);
            prop_assert!(pick == 3 || pick == 5);
        }
    }
}
