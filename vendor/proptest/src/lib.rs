//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! reimplements the API subset the workspace's property tests use:
//!
//! * the [`Strategy`](crate::strategy::Strategy) trait with `prop_map`,
//!   `prop_flat_map`, `prop_recursive` and `boxed`;
//! * strategies for integer ranges, tuples, [`strategy::Just`],
//!   `any::<T>()`, simple regex string patterns (`"[a-z]{0,6}"`-style),
//!   [`collection::vec`] / [`collection::btree_set`] /
//!   [`collection::btree_map`] and [`option::of`];
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//!   [`prop_oneof!`], [`prop_assert!`] and [`prop_assert_eq!`].
//!
//! Design deltas vs. real proptest: generation is purely random (no
//! shrinking — a failing case prints its seed instead), and the default
//! case count is 64. Set `PROPTEST_CASES` to override the case count and
//! `PROPTEST_SEED` to replay a particular run.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`vec`, `btree_set`, `btree_map`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of values from `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = sample_len(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>`: up to `size.end - 1` distinct values.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates sets of values from `element`; duplicates collapse, so
    /// the final length may undershoot the drawn target.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = sample_len(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>`.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// Generates maps with keys from `key`, values from `value`;
    /// duplicate keys collapse (last write wins).
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = sample_len(&self.size, rng);
            (0..len)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }

    fn sample_len(size: &Range<usize>, rng: &mut TestRng) -> usize {
        assert!(size.start < size.end, "empty collection size range");
        rng.rng.gen_range(size.start..size.end)
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing `Option<T>` from an inner strategy.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// Generates `Some` from `inner` three times out of four, `None`
    /// otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.rng.gen_bool(0.75) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

/// The glob import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}
