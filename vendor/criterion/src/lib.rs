//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this vendored crate
//! reimplements the API subset the workspace's `benches/` use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros (both the simple and
//! the `name =`/`config =`/`targets =` forms).
//!
//! Timing model: a fixed warm-up pass, then `sample_size` timed samples
//! of adaptively chosen iteration counts; the per-iteration mean, min and
//! max are printed. `--test` on the command line (what
//! `cargo bench -- --test` passes) switches to a single-iteration smoke
//! run per benchmark, exactly like real criterion's test mode.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How `iter_batched` batches its setup output (accepted for API
/// compatibility; the stub times each batch element individually).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Accumulated (total duration, iterations) samples.
    samples: Vec<(Duration, u64)>,
}

impl Bencher<'_> {
    /// Times `routine`, running it repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.config.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // Warm-up / calibration: find an iteration count that takes
        // roughly `target` per sample.
        let mut iters: u64 = 1;
        let target = self.config.sample_target;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push((start.elapsed(), iters));
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.config.test_mode {
            std::hint::black_box(routine(setup()));
            return;
        }
        for _ in 0..self.config.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push((start.elapsed(), 1));
        }
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    sample_target: Duration,
    test_mode: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            sample_target: Duration::from_millis(20),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

/// The benchmark manager: registers and runs benchmark functions.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.config.sample_size = n;
        self
    }

    /// Sets the measurement time budget per sample batch.
    pub fn measurement_time(mut self, target: Duration) -> Self {
        self.config.sample_target = target;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&self.config, id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }
}

/// A named collection of benchmarks sharing a group prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.config.sample_size = n;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&self.criterion.config, &full, f);
        self
    }

    /// Finishes the group (no-op in the stub; kept for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(config: &Config, id: &str, mut f: F) {
    let mut bencher = Bencher {
        config,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if config.test_mode {
        println!("test {id} ... ok");
        return;
    }
    let per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|(d, iters)| d.as_nanos() as f64 / *iters as f64)
        .collect();
    if per_iter.is_empty() {
        println!("{id:<56} (no samples)");
        return;
    }
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{id:<56} time: [{} {} {}]",
        format_ns(min),
        format_ns(mean),
        format_ns(max)
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark targets, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default().sample_size(2);
        c.config.sample_target = Duration::from_micros(1);
        let mut hits = 0u64;
        c.bench_function("smoke", |b| b.iter(|| hits += 1));
        assert!(hits > 0);
    }

    #[test]
    fn groups_prefix_names_and_finish() {
        let mut c = Criterion::default().sample_size(1);
        c.config.sample_target = Duration::from_micros(1);
        let mut group = c.benchmark_group("g");
        group.bench_function("inner", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn iter_batched_consumes_setup_output() {
        let mut c = Criterion::default().sample_size(3);
        c.config.sample_target = Duration::from_micros(1);
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
