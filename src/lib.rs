//! # balg — Towards Tractable Algebras for Bags, in Rust
//!
//! Umbrella crate re-exporting the full reproduction of Grumbach & Milo,
//! *"Towards Tractable Algebras for Bags"* (PODS 1993; JCSS 52(3), 1996):
//!
//! | crate | contents |
//! |-------|----------|
//! | [`core`] (`balg-core`) | the nested bag data model and the BALG algebra |
//! | [`relational`] (`balg-relational`) | the RALG baseline + Prop 4.2 translations |
//! | [`calc`] (`balg-calc`) | the CALC1 calculus with active-domain semantics |
//! | [`games`] (`balg-games`) | pebble games and the Figure 1 construction |
//! | [`arith`] (`balg-arith`) | bounded arithmetic + the Lemma 5.7 encoding |
//! | [`machine`] (`balg-machine`) | Turing machines + the Thm 6.6 IFP compiler |
//! | [`sql`] (`balg-sql`) | a SQL frontend with honest bag semantics + maintained views |
//! | [`complexity`] (`balg-complexity`) | the E1–E18 experiment harness |
//! | [`incremental`] (`balg-incremental`) | ℤ-bag incremental view maintenance |
//! | [`server`] (`balg-server`) | a concurrent snapshot-isolated SQL service |
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ```
//! use balg::core::prelude::*;
//!
//! let db = Database::new().with(
//!     "R",
//!     Bag::from_values([Value::tuple([Value::sym("a")]), Value::tuple([Value::sym("a")])]),
//! );
//! // SELECT DISTINCT: ε eliminates the duplicate.
//! let out = eval_bag(&Expr::var("R").dedup(), &db).unwrap();
//! assert_eq!(out.cardinality(), Natural::one());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use balg_arith as arith;
pub use balg_calc as calc;
pub use balg_complexity as complexity;
pub use balg_core as core;
pub use balg_games as games;
pub use balg_incremental as incremental;
pub use balg_machine as machine;
pub use balg_relational as relational;
pub use balg_server as server;
pub use balg_sql as sql;
