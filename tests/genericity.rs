//! Genericity (Section 2): queries must be insensitive to isomorphisms of
//! the bag database. For every zoo query `Q` and atom bijection `h`,
//! `Q(h(DB)) = h(Q(DB))`.

use balg::complexity::generator::{random_database, zoo};
use balg::core::prelude::*;

/// A fixed "rotation" bijection on integer atoms.
fn rotate(atom: &Atom) -> Atom {
    match atom {
        Atom::Int(v) => Atom::Int(v + 100),
        Atom::Str(s) => Atom::sym(&format!("{s}′")),
    }
}

#[test]
fn zoo_queries_commute_with_isomorphisms() {
    for seed in 0..5u64 {
        let db = random_database(seed, 5, 3);
        let renamed_db = db.rename_atoms(&rotate);
        for (name, expr) in zoo() {
            // Constant-using queries are generic only up to their
            // constants; skip those mentioning literals.
            let mut has_literal = false;
            expr.visit(&mut |e| {
                if matches!(e, Expr::Lit(v) if !v.atoms().is_empty()) {
                    has_literal = true;
                }
            });
            if has_literal {
                continue;
            }
            let out = eval_bag(&expr, &db).unwrap_or_else(|e| panic!("{name}: {e}"));
            let out_renamed =
                eval_bag(&expr, &renamed_db).unwrap_or_else(|e| panic!("{name}: {e}"));
            let renamed_out = Value::Bag(out)
                .rename_atoms(&rotate)
                .into_bag()
                .expect("bag stays a bag");
            assert_eq!(
                renamed_out, out_renamed,
                "query {name} is not generic on seed {seed}"
            );
        }
    }
}

#[test]
fn isomorphic_databases_get_isomorphic_answers() {
    let db = random_database(9, 4, 3);
    let renamed = db.rename_atoms(&rotate);
    assert!(db.isomorphic(&renamed));
    // And a genuinely different database is not isomorphic.
    let other = random_database(10, 4, 3);
    if db != other {
        // (isomorphism may still hold by chance; only assert the
        // self-renaming case which is guaranteed.)
        let _ = db.isomorphic(&other);
    }
}

#[test]
fn renaming_preserves_multiplicities_deeply() {
    let mut inner = Bag::new();
    inner.insert_with_multiplicity(Value::sym("x"), Natural::from(5u64));
    let mut outer = Bag::new();
    outer.insert_with_multiplicity(Value::Bag(inner), Natural::from(3u64));
    let db = Database::new().with("N", outer);
    let renamed = db.rename_atoms(&rotate);
    let bag = renamed.get("N").unwrap();
    assert_eq!(bag.cardinality(), Natural::from(3u64));
    let (value, _) = bag.iter().next().unwrap();
    assert_eq!(
        value.as_bag().unwrap().multiplicity(&Value::sym("x′")),
        Natural::from(5u64)
    );
}
