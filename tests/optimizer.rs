//! Optimizer equivalence: every rewrite must be multiplicity-exact on
//! random databases — the constraint bag semantics adds to classical
//! rewriting (Section 3's optimization remark, [CV93]).

use balg::complexity::generator::{random_database, zoo, ExprZoo};
use balg::core::prelude::*;
use balg::sql::prelude::*;

fn zoo_schema() -> Schema {
    Schema::new()
        .with("G", Type::relation(2))
        .with("R", Type::relation(1))
        .with("S", Type::relation(1))
        .with("B", Type::relation(1))
}

#[test]
fn optimizer_preserves_zoo_query_semantics() {
    let schema = zoo_schema();
    for (name, expr) in zoo() {
        let optimized = optimize(&expr, &schema);
        for seed in 0..4u64 {
            let db = random_database(seed, 5, 3);
            let before = eval_bag(&expr, &db).unwrap();
            let after = eval_bag(&optimized, &db).unwrap();
            assert_eq!(before, after, "optimizer broke {name} on seed {seed}");
        }
    }
}

#[test]
fn optimizer_preserves_random_expressions() {
    let schema = zoo_schema();
    let mut generator = ExprZoo::new(21);
    for i in 0..25 {
        let expr = generator.unary_expr(3);
        let optimized = optimize(&expr, &schema);
        for n in [0u64, 1, 3, 6] {
            let db = Database::new().with("B", Bag::repeated(Value::tuple([Value::sym("a")]), n));
            let before = eval_bag(&expr, &db).unwrap();
            let after = eval_bag(&optimized, &db).unwrap();
            assert_eq!(
                before, after,
                "expr #{i} differs at n={n}:\n{expr}\n→\n{optimized}"
            );
        }
    }
}

#[test]
fn optimizer_is_idempotent() {
    let schema = zoo_schema();
    for (_, expr) in zoo() {
        let once = optimize(&expr, &schema);
        let twice = optimize(&once, &schema);
        assert_eq!(once, twice);
    }
}

#[test]
fn optimized_sql_agrees_with_unoptimized() {
    let catalog = Catalog::new()
        .with_table(
            "orders",
            &[("customer", false), ("item", false), ("qty", true)],
        )
        .with_table("vip", &[("customer", false)]);
    let s = |x: &str| SqlValue::Str(x.into());
    let db = database_from_rows(
        &catalog,
        &[
            (
                "orders",
                vec![
                    vec![s("ann"), s("apple"), SqlValue::Int(3)],
                    vec![s("ann"), s("apple"), SqlValue::Int(3)],
                    vec![s("bob"), s("pear"), SqlValue::Int(5)],
                ],
            ),
            ("vip", vec![vec![s("ann")]]),
        ],
    )
    .unwrap();
    let queries = [
        "SELECT customer FROM orders WHERE item = 'apple'",
        "SELECT DISTINCT customer FROM orders",
        "SELECT o.item FROM orders o, vip v WHERE o.customer = v.customer",
        "SELECT COUNT(*) FROM orders",
        "SELECT SUM(qty) FROM orders",
        "SELECT customer FROM orders UNION ALL SELECT customer FROM vip",
    ];
    for sql in queries {
        let plain = run(sql, &catalog, &db).unwrap();
        let optimized = run_optimized(sql, &catalog, &db).unwrap();
        assert_eq!(plain.rows, optimized.rows, "optimizer broke: {sql}");
    }
}

#[test]
fn pushdown_shrinks_intermediates_on_selective_join() {
    // SELECT ... FROM big, small WHERE big-side filter: the pushed plan
    // must build a smaller product.
    let schema = Schema::new()
        .with("Big", Type::relation(2))
        .with("Small", Type::relation(1));
    let big =
        Bag::from_values((0..40i64).map(|i| Value::tuple([Value::int(i), Value::int(i % 4)])));
    let small = Bag::from_values((0..4i64).map(|i| Value::tuple([Value::int(i)])));
    let db = Database::new().with("Big", big).with("Small", small);
    let q = Expr::var("Big").product(Expr::var("Small")).select(
        "x",
        Pred::eq(Expr::var("x").attr(1), Expr::lit(Value::int(7))),
    );
    let optimized = optimize(&q, &schema);
    let (r1, m1) = eval_with_metrics(&q, &db, Limits::default());
    let (r2, m2) = eval_with_metrics(&optimized, &db, Limits::default());
    assert_eq!(r1.unwrap(), r2.unwrap());
    assert!(
        m2.max_distinct_elements < m1.max_distinct_elements,
        "pushdown did not shrink intermediates: {} vs {}",
        m2.max_distinct_elements,
        m1.max_distinct_elements
    );
}
