//! Cross-crate fragment boundaries: Proposition 4.2 equivalence under
//! property testing, the hierarchy flags of the type checker, and the
//! Theorem 5.2 separation witnessed jointly by `balg-core`, `balg-games`
//! and `balg-calc`.

use balg::core::prelude::*;
use balg::relational::prelude::*;
use proptest::prelude::*;

/// Strategy: a random binary bag (graph with duplicate edges).
fn graph_bag() -> impl Strategy<Value = Bag> {
    proptest::collection::btree_map((0u8..4, 0u8..4), 1u64..4, 0..8).prop_map(|edges| {
        Bag::from_counted(edges.into_iter().map(|((a, b), m)| {
            (
                Value::tuple([Value::int(a as i64), Value::int(b as i64)]),
                Natural::from(m),
            )
        }))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Prop 4.2 on random graphs: membership equivalence for a
    /// subtraction-free query.
    #[test]
    fn prop_4_2_membership_equivalence(g in graph_bag()) {
        let db = Database::new().with("G", g);
        let q = Expr::var("G")
            .product(Expr::var("G"))
            .select(
                "x",
                Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
            )
            .project(&[1, 4])
            .additive_union(Expr::var("G"));
        prop_assert!(check_prop_4_2(&q, &db).unwrap());
    }

    /// Embedding RALG into BALG with ε after every operator agrees with
    /// the direct set evaluator — including difference and powerset.
    #[test]
    fn ralg_embedding_agrees(g in graph_bag()) {
        let db = Database::new().with("G", g);
        let ralg_q = RalgExpr::var("G")
            .project(&[1])
            .difference(RalgExpr::var("G").project(&[2]));
        let direct = ralg_eval_relation(&ralg_q, &db).unwrap();
        let embedded = ralg_to_balg(&ralg_q);
        let via_balg = balg::core::eval::eval_bag(&embedded, &db).unwrap();
        prop_assert_eq!(Relation::from_bag(&via_balg), direct);
    }
}

#[test]
fn hierarchy_levels_match_the_paper() {
    let schema = Schema::new().with("G", Type::relation(2));
    // BALG¹: no P, no δ, flat types.
    let q1 = Expr::var("G").project(&[2, 1]).subtract(Expr::var("G"));
    let a1 = check(&q1, &schema).unwrap();
    assert_eq!(a1.balg_level(), 1);
    assert_eq!(a1.power_nesting, 0);
    // BALG²: one powerset.
    let q2 = Expr::var("G").powerset().destroy();
    let a2 = check(&q2, &schema).unwrap();
    assert_eq!(a2.balg_level(), 2);
    assert_eq!(a2.power_nesting, 1);
    // BALG³: two nested powersets — "due to the type limitation it was
    // not possible in BALG² to apply the powerset twice consecutively".
    let q3 = Expr::var("G").powerset().powerset().destroy().destroy();
    let a3 = check(&q3, &schema).unwrap();
    assert_eq!(a3.balg_level(), 3);
    assert_eq!(a3.power_nesting, 2);
}

#[test]
fn theorem_5_2_separation_is_jointly_witnessed() {
    use balg::calc::prelude::*;
    use balg::games::prelude::*;

    let n = 6;
    let (g, g_prime) = star_graphs(n);

    // (1) The BALG side separates: α's degrees differ.
    let alpha = alpha_node(n);
    let (din, dout) = degrees(&g, &alpha);
    let (pin, pout) = degrees(&g_prime, &alpha);
    assert_eq!(din, dout);
    assert!(pin > pout);

    // (2) The game side cannot: the duplicator survives k = 2 < n/2.
    let mut spoiler = RandomSpoiler::new(5, 3);
    let mut duplicator = ConstraintDuplicator::new(6);
    assert_eq!(
        play(&g, &g_prime, 2, &mut spoiler, &mut duplicator),
        Outcome::DuplicatorWins
    );

    // (3) Theorem 5.3's consequence: sampled depth-2 CALC1 sentences
    // agree on the pair.
    let mut generator = SentenceGenerator::new(11);
    for _ in 0..10 {
        let phi = generator.sentence(2);
        assert!(
            structures_agree(&phi, &g, &g_prime).unwrap(),
            "depth-2 sentence separated the pair: {phi}"
        );
    }
}

#[test]
fn extension_flags_partition_the_language() {
    let schema = Schema::new().with("R", Type::relation(1));
    let core_query = Expr::var("R").dedup();
    assert!(check(&core_query, &schema).unwrap().is_core_balg());
    let with_powerbag = Expr::var("R").powerbag();
    assert!(!check(&with_powerbag, &schema).unwrap().is_core_balg());
    let with_ifp = Expr::var("R").ifp("T", Expr::var("T"));
    assert!(!check(&with_ifp, &schema).unwrap().is_core_balg());
}
