//! The full experiment suite as one integration gate: every E1–E18 report
//! must match the paper's predictions (see EXPERIMENTS.md).

#[test]
fn all_experiments_match_the_paper() {
    let reports = balg::complexity::run_all();
    assert_eq!(reports.len(), 18);
    let mut failures = Vec::new();
    for report in &reports {
        if !report.all_match {
            failures.push(format!("{report}"));
        }
    }
    assert!(
        failures.is_empty(),
        "experiments deviated from the paper:\n{}",
        failures.join("\n")
    );
}

#[test]
fn experiment_ids_are_complete_and_ordered() {
    let reports = balg::complexity::run_all();
    let ids: Vec<&str> = reports.iter().map(|r| r.id).collect();
    let expected: Vec<String> = (1..=18).map(|i| format!("E{i}")).collect();
    assert_eq!(ids, expected.iter().map(String::as_str).collect::<Vec<_>>());
}
