//! Differential test: SQL compiled by `balg-sql` must evaluate to exactly
//! the same bag as the hand-written BALG expression for the same query,
//! on the same database — exercising `sql::parse` → `sql::compile` →
//! `core::eval` end-to-end against independently constructed `Expr`s.

use balg::core::eval::eval_bag;
use balg::core::expr::{Expr, Pred};
use balg::core::schema::Database;
use balg::core::value::Value;
use balg::sql::prelude::*;

/// Two plain (non-numeric) tables with duplicate rows, so bag semantics
/// is observable: `t(name, tag)` and `u(name)`.
fn fixture() -> (Catalog, Database) {
    let catalog = Catalog::new()
        .with_table("t", &[("name", false), ("tag", false)])
        .with_table("u", &[("name", false)]);
    let s = |x: &str| SqlValue::Str(x.into());
    let t_rows = vec![
        vec![s("a"), s("x")],
        vec![s("a"), s("x")],
        vec![s("a"), s("y")],
        vec![s("b"), s("x")],
        vec![s("b"), s("y")],
        vec![s("c"), s("z")],
    ];
    let u_rows = vec![vec![s("a")], vec![s("a")], vec![s("b")], vec![s("d")]];
    let db = database_from_rows(&catalog, &[("t", t_rows), ("u", u_rows)]).unwrap();
    (catalog, db)
}

/// Compile `sql` and assert its evaluation equals the hand-written
/// expression's evaluation on the same database.
fn assert_differential(sql: &str, hand_written: &Expr, catalog: &Catalog, db: &Database) {
    let parsed = parse(sql).unwrap_or_else(|e| panic!("parse failed for {sql:?}: {e}"));
    let compiled = compile_query(&parsed, catalog)
        .unwrap_or_else(|e| panic!("compile failed for {sql:?}: {e}"));
    let via_sql = eval_bag(&compiled.expr, db)
        .unwrap_or_else(|e| panic!("compiled eval failed for {sql:?}: {e}"));
    let direct = eval_bag(hand_written, db)
        .unwrap_or_else(|e| panic!("direct eval failed for {sql:?}: {e}"));
    assert_eq!(
        via_sql, direct,
        "SQL and hand-written BALG disagree for {sql:?}"
    );
}

#[test]
fn projection_preserves_duplicates() {
    let (catalog, db) = fixture();
    // π₁(t): three 'a' rows survive as multiplicity 3.
    assert_differential(
        "SELECT name FROM t",
        &Expr::var("t").project(&[1]),
        &catalog,
        &db,
    );
}

#[test]
fn distinct_is_epsilon() {
    let (catalog, db) = fixture();
    assert_differential(
        "SELECT DISTINCT name FROM t",
        &Expr::var("t").project(&[1]).dedup(),
        &catalog,
        &db,
    );
}

#[test]
fn where_is_selection() {
    let (catalog, db) = fixture();
    assert_differential(
        "SELECT name, tag FROM t WHERE tag = 'x'",
        &Expr::var("t")
            .select(
                "r",
                Pred::eq(Expr::var("r").attr(2), Expr::lit(Value::sym("x"))),
            )
            .project(&[1, 2]),
        &catalog,
        &db,
    );
}

#[test]
fn union_all_is_additive_union() {
    let (catalog, db) = fixture();
    assert_differential(
        "SELECT name FROM t UNION ALL SELECT name FROM u",
        &Expr::var("t")
            .project(&[1])
            .additive_union(Expr::var("u").project(&[1])),
        &catalog,
        &db,
    );
}

#[test]
fn except_all_is_monus() {
    let (catalog, db) = fixture();
    // t has a×3, b×2, c×1; u has a×2, b×1, d×1 ⇒ monus leaves a×1, b×1, c×1.
    assert_differential(
        "SELECT name FROM t EXCEPT ALL SELECT name FROM u",
        &Expr::var("t")
            .project(&[1])
            .subtract(Expr::var("u").project(&[1])),
        &catalog,
        &db,
    );
}

#[test]
fn intersect_dedups_both_sides() {
    let (catalog, db) = fixture();
    assert_differential(
        "SELECT name FROM t INTERSECT SELECT name FROM u",
        &Expr::var("t")
            .project(&[1])
            .dedup()
            .intersect(Expr::var("u").project(&[1]).dedup()),
        &catalog,
        &db,
    );
}

#[test]
fn join_is_product_select_project() {
    let (catalog, db) = fixture();
    // Scope columns: t.name = 1, t.tag = 2, u.name = 3.
    assert_differential(
        "SELECT t.name FROM t, u WHERE t.name = u.name",
        &Expr::var("t")
            .product(Expr::var("u"))
            .select(
                "r",
                Pred::eq(Expr::var("r").attr(1), Expr::var("r").attr(3)),
            )
            .project(&[1]),
        &catalog,
        &db,
    );
}

#[test]
fn multiplicities_multiply_through_joins() {
    let (catalog, db) = fixture();
    // Independent sanity check of the shared pipeline: 'a' appears 3× in
    // t and 2× in u, so the join row ('a') has multiplicity 6.
    let result = run(
        "SELECT t.name FROM t, u WHERE t.name = u.name",
        &catalog,
        &db,
    )
    .unwrap();
    let a_row = result
        .rows
        .iter()
        .find(|(row, _)| row[0] == SqlValue::Str("a".into()))
        .expect("join must produce an 'a' row");
    assert_eq!(a_row.1, 6);
}
