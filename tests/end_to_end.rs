//! End-to-end pipelines across crates: SQL → BALG → results,
//! TM → IFP → decoded tape, arithmetic → BALG²+P_b → truth values.

use balg::core::eval::Limits;
use balg::sql::prelude::*;

#[test]
fn sql_pipeline_with_duplicates_and_aggregates() {
    let catalog = Catalog::new().with_table(
        "events",
        &[("user", false), ("kind", false), ("weight", true)],
    );
    let s = |x: &str| SqlValue::Str(x.into());
    let i = SqlValue::Int;
    // A clickstream with repeated identical events — the bags of real
    // systems ("often to save the cost of duplicate elimination").
    let rows = vec![
        vec![s("u1"), s("click"), i(1)],
        vec![s("u1"), s("click"), i(1)],
        vec![s("u1"), s("click"), i(1)],
        vec![s("u2"), s("view"), i(4)],
        vec![s("u2"), s("click"), i(2)],
    ];
    let db = database_from_rows(&catalog, &[("events", rows)]).unwrap();

    let count = run("SELECT COUNT(*) FROM events", &catalog, &db).unwrap();
    assert_eq!(count.scalar(), Some(5));
    let users = run("SELECT COUNT(DISTINCT user) FROM events", &catalog, &db).unwrap();
    assert_eq!(users.scalar(), Some(2));
    let weight = run("SELECT SUM(weight) FROM events", &catalog, &db).unwrap();
    assert_eq!(weight.scalar(), Some(9));
    // Duplicates are preserved through projections.
    let kinds = run("SELECT kind FROM events WHERE user = 'u1'", &catalog, &db).unwrap();
    assert_eq!(kinds.total_rows(), 3);
    assert_eq!(kinds.rows.len(), 1); // one distinct row, multiplicity 3
    assert_eq!(kinds.rows[0].1, 3);
}

#[test]
fn tm_pipeline_agrees_with_simulator_on_all_machines() {
    use balg::machine::prelude::*;
    let machines: Vec<(Tm, Vec<Sym>, usize)> = vec![
        (flip_machine(), vec!['0', '1'], 2),
        (parity_machine(), vec!['1', '1', '1', '1'], 2),
        (unary_successor_machine(), vec!['1'], 2),
        (zigzag_machine(), vec![], 3),
    ];
    for (tm, input, padding) in machines {
        let direct = tm.run(&input, padding, 500).unwrap();
        let compiled = compile(&tm, &input, padding);
        let bag_run = compiled.run(Limits::default()).unwrap();
        assert!(compiled.agrees_with(&direct, &bag_run));
        assert_eq!(bag_run.accepted, direct.accepted);
    }
}

#[test]
fn arithmetic_pipeline_matches_direct_semantics() {
    use balg::arith::prelude::*;
    for n in 0..=10u64 {
        let (algebra, direct) = check_on_input(
            &even_formula(),
            "x",
            DomainKind::Linear,
            n,
            Limits::default(),
        )
        .unwrap();
        assert_eq!(algebra, direct);
        assert_eq!(algebra, n % 2 == 0);
    }
}

#[test]
fn game_pipeline_certifies_an_indistinguishable_pair() {
    use balg::games::prelude::*;
    // Exact certification via the solver at the smallest size.
    let (g, gp) = star_graphs(4);
    let mut solver = GameSolver::new(&g, &gp, &[2, 4], 1 << 22);
    assert_eq!(solver.solve(1), Verdict::DuplicatorWins);
    // The BALG query still tells them apart.
    let alpha = alpha_node(4);
    let (din, dout) = degrees(&g, &alpha);
    let (pin, pout) = degrees(&gp, &alpha);
    assert!(din == dout && pin > pout);
}

#[test]
fn limits_protect_every_pipeline() {
    use balg::core::prelude::*;
    // An expression that would materialize 2^1000 subbags fails cleanly
    // at the *prediction* stage in well under a second.
    let huge = Bag::from_values((0..1000).map(Value::int));
    let db = Database::new().with("B", huge);
    let q = Expr::var("B")
        .map("x", Expr::var("x").singleton())
        .powerset();
    let limits = Limits {
        max_bag_elements: 1 << 16,
        ..Limits::default()
    };
    let mut evaluator = Evaluator::new(&db, limits);
    let started = std::time::Instant::now();
    assert!(evaluator.eval(&q).is_err());
    assert!(started.elapsed() < std::time::Duration::from_secs(1));
}
