//! Property-based tests of the bag algebra's laws (Section 3).
//!
//! The paper lists associativity/commutativity of `∪⁺`, `∪`, `∩` and the
//! defining multiplicity arithmetic of every operator; these properties
//! are checked here on arbitrary generated bags, together with the
//! lattice/monus structure that the interdefinability results rely on.

use balg::core::prelude::*;
use proptest::prelude::*;

/// Strategy: a flat unary bag over at most 6 atoms with multiplicities
/// up to 9.
fn flat_bag() -> impl Strategy<Value = Bag> {
    proptest::collection::btree_map(0u8..6, 1u64..10, 0..6).prop_map(|entries| {
        Bag::from_counted(
            entries
                .into_iter()
                .map(|(atom, mult)| (Value::tuple([Value::int(atom as i64)]), Natural::from(mult))),
        )
    })
}

/// Strategy: a nested bag (bag of flat bags).
fn nested_bag() -> impl Strategy<Value = Bag> {
    proptest::collection::vec((flat_bag(), 1u64..4), 0..4).prop_map(|inners| {
        Bag::from_counted(
            inners
                .into_iter()
                .map(|(inner, mult)| (Value::Bag(inner), Natural::from(mult))),
        )
    })
}

proptest! {
    #[test]
    fn additive_union_commutative_associative(a in flat_bag(), b in flat_bag(), c in flat_bag()) {
        prop_assert_eq!(a.additive_union(&b), b.additive_union(&a));
        prop_assert_eq!(
            a.additive_union(&b).additive_union(&c),
            a.additive_union(&b.additive_union(&c))
        );
    }

    #[test]
    fn max_union_and_intersect_form_a_lattice(a in flat_bag(), b in flat_bag(), c in flat_bag()) {
        // Commutativity + associativity.
        prop_assert_eq!(a.max_union(&b), b.max_union(&a));
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(a.max_union(&b).max_union(&c), a.max_union(&b.max_union(&c)));
        prop_assert_eq!(a.intersect(&b).intersect(&c), a.intersect(&b.intersect(&c)));
        // Absorption: a ∪ (a ∩ b) = a and a ∩ (a ∪ b) = a.
        prop_assert_eq!(a.max_union(&a.intersect(&b)), a.clone());
        prop_assert_eq!(a.intersect(&a.max_union(&b)), a.clone());
        // Idempotence.
        prop_assert_eq!(a.max_union(&a), a.clone());
        prop_assert_eq!(a.intersect(&a), a.clone());
    }

    #[test]
    fn monus_laws(a in flat_bag(), b in flat_bag()) {
        // a − a = ∅; ∅ − a = ∅; (a − b) ⊑ a.
        prop_assert!(a.subtract(&a).is_empty());
        prop_assert!(Bag::new().subtract(&a).is_empty());
        prop_assert!(a.subtract(&b).is_subbag_of(&a));
        // The [Alb91] identities used in E5:
        prop_assert_eq!(a.subtract(&a.subtract(&b)), a.intersect(&b));
        prop_assert_eq!(a.subtract(&b).additive_union(&b), a.max_union(&b));
    }

    #[test]
    fn dedup_is_idempotent_and_support_preserving(a in flat_bag()) {
        let d = a.dedup();
        prop_assert_eq!(d.dedup(), d);
        prop_assert_eq!(d.distinct_count(), a.distinct_count());
        prop_assert!(d.is_subbag_of(&a) || a.is_empty());
        prop_assert!(d.iter().all(|(_, m)| m.is_one()));
    }

    #[test]
    fn subbag_is_a_partial_order(a in flat_bag(), b in flat_bag()) {
        prop_assert!(a.is_subbag_of(&a));
        if a.is_subbag_of(&b) && b.is_subbag_of(&a) {
            prop_assert_eq!(a.clone(), b.clone());
        }
        // meet/join agree with the order.
        prop_assert!(a.intersect(&b).is_subbag_of(&a));
        prop_assert!(a.is_subbag_of(&a.max_union(&b)));
    }

    #[test]
    fn powerset_cardinality_formula(a in flat_bag()) {
        // |P(B)| = Π (mᵢ + 1), every subbag exactly once, all subbags of B.
        let predicted = a.powerset_cardinality();
        if predicted <= Natural::from(4096u64) {
            let ps = a.powerset(4096).unwrap();
            prop_assert_eq!(ps.cardinality(), predicted);
            let all_subbags_once = ps
                .iter()
                .all(|(v, m)| m.is_one() && v.as_bag().is_some_and(|s| s.is_subbag_of(&a)));
            prop_assert!(all_subbags_once);
        }
    }

    #[test]
    fn powerbag_total_cardinality_is_2_to_n(a in flat_bag()) {
        let n = a.cardinality();
        if n <= Natural::from(12u64) {
            let pb = a.powerbag(1 << 14).unwrap();
            prop_assert_eq!(pb.cardinality(), Natural::pow2(n.to_u64().unwrap()));
            // P(B) = ε(P_b(B)) — the powerset is the deduplicated powerbag.
            prop_assert_eq!(pb.dedup(), a.powerset(1 << 14).unwrap());
        }
    }

    #[test]
    fn destroy_preserves_total_content(nested in nested_bag()) {
        // |δ(B)| = Σ over inner bags of mult · |inner|.
        let flat = nested.destroy().unwrap();
        let expected: Natural = nested
            .iter()
            .map(|(inner, mult)| &inner.as_bag().unwrap().cardinality() * mult)
            .sum();
        prop_assert_eq!(flat.cardinality(), expected);
    }

    #[test]
    fn product_cardinality_multiplies(a in flat_bag(), b in flat_bag()) {
        let prod = a.product(&b, u64::MAX).unwrap();
        prop_assert_eq!(prod.cardinality(), &a.cardinality() * &b.cardinality());
    }

    #[test]
    fn encoded_size_counts_duplicates(a in flat_bag()) {
        // standard encoding ≥ counted representation: size grows linearly
        // with multiplicities. Each element [i] costs 2 (tuple + atom).
        let size = Value::Bag(a.clone()).encoded_size();
        let mut expected = Natural::one();
        expected += &(&a.cardinality() * &Natural::from(2u64));
        prop_assert_eq!(size, expected);
    }

    #[test]
    fn map_total_cardinality_is_preserved(a in flat_bag()) {
        // MAP never loses occurrences — images accumulate multiplicities.
        let collapsed: Bag = a
            .map(|_| Ok::<_, std::convert::Infallible>(Value::sym("k")))
            .unwrap();
        prop_assert_eq!(collapsed.cardinality(), a.cardinality());
    }

    #[test]
    fn distributivity_of_product_over_additive_union(a in flat_bag(), b in flat_bag(), c in flat_bag()) {
        // a × (b ∪⁺ c) = (a × b) ∪⁺ (a × c): multiplicity arithmetic
        // distributes because ·(p+q) = ·p + ·q.
        let left = a.product(&b.additive_union(&c), u64::MAX).unwrap();
        let right = a.product(&b, u64::MAX).unwrap().additive_union(&a.product(&c, u64::MAX).unwrap());
        prop_assert_eq!(left, right);
    }
}
