//! CALC1: the typed calculus for complex objects (Section 5, \[HS91\]).
//!
//! CALC1 extends the relational calculus with the constructible types
//! tuple `[…]` and set `{…}`, typed variables, the component function
//! `x.i`, and the typed logical predicates membership `∈`, containment
//! `⊆`, and equality `=`. Quantifiers range over the **active domain**
//! `dom(T, A)` — every object of type `T` constructible from the atomic
//! constants of the input `A` (the completion `Comp(A, 𝒯)`).
//!
//! \[AB87\] showed CALC1 ≡ RALG² (quantification over sets of tuples of
//! atoms); Theorem 5.3 connects it to the pebble game of `balg-games`.

use std::fmt;
use std::sync::Arc;

use balg_core::types::Type;

/// A CALC1 variable name.
pub type CalcVar = Arc<str>;

/// A CALC1 term.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CalcTerm {
    /// A typed variable.
    Var(CalcVar),
    /// The component function `t.i` (1-based).
    Component(Box<CalcTerm>, usize),
    /// A named database relation (a set constant).
    Rel(Arc<str>),
}

impl CalcTerm {
    /// A variable term.
    pub fn var(name: &str) -> CalcTerm {
        CalcTerm::Var(Arc::from(name))
    }

    /// A relation constant.
    pub fn rel(name: &str) -> CalcTerm {
        CalcTerm::Rel(Arc::from(name))
    }

    /// Component selection `self.i`.
    pub fn component(self, i: usize) -> CalcTerm {
        CalcTerm::Component(Box::new(self), i)
    }
}

/// A CALC1 formula.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CalcFormula {
    /// `t = t′`.
    Eq(CalcTerm, CalcTerm),
    /// The relational atom `R(t₁, …, tₖ)` — i.e. `[t₁, …, tₖ] ∈ R`.
    RelAtom(Arc<str>, Vec<CalcTerm>),
    /// `t ∈ t′`.
    Member(CalcTerm, CalcTerm),
    /// `t ⊆ t′`.
    Subset(CalcTerm, CalcTerm),
    /// Negation.
    Not(Box<CalcFormula>),
    /// Conjunction.
    And(Box<CalcFormula>, Box<CalcFormula>),
    /// Disjunction.
    Or(Box<CalcFormula>, Box<CalcFormula>),
    /// Typed existential: `∃x : T. φ`, with `x` ranging over `dom(T, A)`.
    Exists {
        /// The bound variable.
        var: CalcVar,
        /// Its type (the game's type set 𝒯 is the set of these).
        ty: Type,
        /// The body.
        body: Box<CalcFormula>,
    },
    /// Typed universal `∀x : T. φ`.
    Forall {
        /// The bound variable.
        var: CalcVar,
        /// Its type.
        ty: Type,
        /// The body.
        body: Box<CalcFormula>,
    },
}

impl CalcFormula {
    /// `t = t′`.
    pub fn eq(a: CalcTerm, b: CalcTerm) -> CalcFormula {
        CalcFormula::Eq(a, b)
    }

    /// `t ∈ t′`.
    pub fn member(a: CalcTerm, b: CalcTerm) -> CalcFormula {
        CalcFormula::Member(a, b)
    }

    /// `t ⊆ t′`.
    pub fn subset(a: CalcTerm, b: CalcTerm) -> CalcFormula {
        CalcFormula::Subset(a, b)
    }

    /// The relational atom `R(t₁, …, tₖ)`.
    pub fn rel_atom(rel: &str, args: impl IntoIterator<Item = CalcTerm>) -> CalcFormula {
        CalcFormula::RelAtom(Arc::from(rel), args.into_iter().collect())
    }

    /// Conjunction.
    pub fn and(self, other: CalcFormula) -> CalcFormula {
        CalcFormula::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: CalcFormula) -> CalcFormula {
        CalcFormula::Or(Box::new(self), Box::new(other))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> CalcFormula {
        CalcFormula::Not(Box::new(self))
    }

    /// `∃var : ty. self` (note: builder order — body is `self`).
    pub fn exists(var: &str, ty: Type, body: CalcFormula) -> CalcFormula {
        CalcFormula::Exists {
            var: Arc::from(var),
            ty,
            body: Box::new(body),
        }
    }

    /// `∀var : ty. self`.
    pub fn forall(var: &str, ty: Type, body: CalcFormula) -> CalcFormula {
        CalcFormula::Forall {
            var: Arc::from(var),
            ty,
            body: Box::new(body),
        }
    }

    /// Quantifier depth (the `k` of Theorem 5.3).
    pub fn quantifier_depth(&self) -> usize {
        match self {
            CalcFormula::Eq(_, _)
            | CalcFormula::RelAtom(_, _)
            | CalcFormula::Member(_, _)
            | CalcFormula::Subset(_, _) => 0,
            CalcFormula::Not(p) => p.quantifier_depth(),
            CalcFormula::And(a, b) | CalcFormula::Or(a, b) => {
                a.quantifier_depth().max(b.quantifier_depth())
            }
            CalcFormula::Exists { body, .. } | CalcFormula::Forall { body, .. } => {
                1 + body.quantifier_depth()
            }
        }
    }

    /// The set of quantified types (part of the game's 𝒯).
    pub fn types(&self) -> Vec<Type> {
        let mut out = Vec::new();
        self.collect_types(&mut out);
        out
    }

    fn collect_types(&self, out: &mut Vec<Type>) {
        match self {
            CalcFormula::Eq(_, _)
            | CalcFormula::RelAtom(_, _)
            | CalcFormula::Member(_, _)
            | CalcFormula::Subset(_, _) => {}
            CalcFormula::Not(p) => p.collect_types(out),
            CalcFormula::And(a, b) | CalcFormula::Or(a, b) => {
                a.collect_types(out);
                b.collect_types(out);
            }
            CalcFormula::Exists { ty, body, .. } | CalcFormula::Forall { ty, body, .. } => {
                if !out.contains(ty) {
                    out.push(ty.clone());
                }
                body.collect_types(out);
            }
        }
    }
}

impl fmt::Display for CalcTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalcTerm::Var(name) => f.write_str(name),
            CalcTerm::Component(t, i) => write!(f, "{t}.{i}"),
            CalcTerm::Rel(name) => f.write_str(name),
        }
    }
}

impl fmt::Display for CalcFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalcFormula::Eq(a, b) => write!(f, "{a} = {b}"),
            CalcFormula::RelAtom(rel, args) => {
                write!(f, "{rel}(")?;
                for (i, arg) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{arg}")?;
                }
                f.write_str(")")
            }
            CalcFormula::Member(a, b) => write!(f, "{a} ∈ {b}"),
            CalcFormula::Subset(a, b) => write!(f, "{a} ⊆ {b}"),
            CalcFormula::Not(p) => write!(f, "¬({p})"),
            CalcFormula::And(a, b) => write!(f, "({a} ∧ {b})"),
            CalcFormula::Or(a, b) => write!(f, "({a} ∨ {b})"),
            CalcFormula::Exists { var, ty, body } => write!(f, "∃{var}:{ty}.({body})"),
            CalcFormula::Forall { var, ty, body } => write!(f, "∀{var}:{ty}.({body})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantifier_depth_counts_nesting() {
        let phi = CalcFormula::exists(
            "x",
            Type::Atom,
            CalcFormula::forall(
                "y",
                Type::Atom,
                CalcFormula::eq(CalcTerm::var("x"), CalcTerm::var("y")),
            ),
        );
        assert_eq!(phi.quantifier_depth(), 2);
        // Depth is max over branches, not sum.
        let psi = phi.and(CalcFormula::exists(
            "z",
            Type::Atom,
            CalcFormula::eq(CalcTerm::var("z"), CalcTerm::var("z")),
        ));
        assert_eq!(psi.quantifier_depth(), 2);
    }

    #[test]
    fn types_collected() {
        let phi = CalcFormula::exists(
            "s",
            Type::bag(Type::Atom),
            CalcFormula::exists(
                "x",
                Type::Atom,
                CalcFormula::member(CalcTerm::var("x"), CalcTerm::var("s")),
            ),
        );
        let types = phi.types();
        assert_eq!(types, vec![Type::bag(Type::Atom), Type::Atom]);
    }

    #[test]
    fn display_is_readable() {
        let phi = CalcFormula::exists(
            "x",
            Type::Atom,
            CalcFormula::member(CalcTerm::var("x"), CalcTerm::rel("R")),
        );
        assert_eq!(phi.to_string(), "∃x:U.(x ∈ R)");
    }
}
