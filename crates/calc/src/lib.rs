//! # balg-calc — CALC1, the calculus for complex objects
//!
//! Section 5's typed calculus with quantification over sets of tuples of
//! atoms (equivalent to RALG², \[AB87\]): AST, active-domain evaluation
//! over the completion `Comp(A, 𝒯)`, and sentence families used to
//! witness Theorem 5.3 — on game-indistinguishable structures every
//! depth-`k` sentence agrees.
//!
//! ```
//! use balg_calc::prelude::*;
//! use balg_core::prelude::*;
//!
//! let db = Database::new().with(
//!     "E",
//!     Bag::from_values([Value::tuple([Value::int(1), Value::int(2)])]),
//! );
//! // ∃x ∃y. E(x, y)
//! let phi = CalcFormula::exists(
//!     "x",
//!     Type::Atom,
//!     CalcFormula::exists(
//!         "y",
//!         Type::Atom,
//!         CalcFormula::rel_atom("E", [CalcTerm::var("x"), CalcTerm::var("y")]),
//!     ),
//! );
//! assert!(eval_sentence(&phi, &db).unwrap());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod eval;
pub mod sentences;

/// Commonly used items, re-exported.
pub mod prelude {
    pub use crate::ast::{CalcFormula, CalcTerm, CalcVar};
    pub use crate::eval::{
        enumerate_domain, eval_sentence, structures_agree, CalcError, CalcEvaluator,
    };
    pub use crate::sentences::{named_probes, SentenceGenerator};
}

pub use prelude::*;
