//! Sentence families for the Theorem 5.3 agreement experiments.
//!
//! Theorem 5.3: if the duplicator wins the `k`-move game on `(A, A′)`
//! with respect to 𝒯, then **every** CALC1 sentence of quantifier depth
//! `k` with types in 𝒯 agrees on `A` and `A′`. We cannot enumerate all
//! sentences, but we can sample widely: this module generates random
//! depth-bounded sentences over 𝒯 = {U, ⟦U⟧} plus a library of
//! hand-written probes, and experiment E13 checks they all agree on the
//! Figure 1 pair — while the BALG² degree query separates it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use balg_core::types::Type;

use crate::ast::{CalcFormula, CalcTerm};

/// A deterministic random sentence generator over 𝒯 = {U, ⟦U⟧} and a
/// single binary edge relation `E` over set-typed nodes.
pub struct SentenceGenerator {
    rng: StdRng,
    /// Edge relation name.
    pub edge_rel: String,
}

impl SentenceGenerator {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> Self {
        SentenceGenerator {
            rng: StdRng::seed_from_u64(seed),
            edge_rel: "E".to_owned(),
        }
    }

    /// Generate a closed sentence of quantifier depth exactly `depth`.
    pub fn sentence(&mut self, depth: usize) -> CalcFormula {
        self.formula(depth, &mut Vec::new(), &mut Vec::new())
    }

    fn formula(
        &mut self,
        depth: usize,
        atom_vars: &mut Vec<String>,
        set_vars: &mut Vec<String>,
    ) -> CalcFormula {
        if depth == 0 {
            return self.atomic(atom_vars, set_vars);
        }
        let use_set = self.rng.gen_bool(0.6) || atom_vars.len() >= 2;
        let name = format!("v{}", atom_vars.len() + set_vars.len());
        let ty = if use_set {
            set_vars.push(name.clone());
            Type::bag(Type::Atom)
        } else {
            atom_vars.push(name.clone());
            Type::Atom
        };
        let body = self.formula(depth - 1, atom_vars, set_vars);
        if use_set {
            set_vars.pop();
        } else {
            atom_vars.pop();
        }
        if self.rng.gen_bool(0.5) {
            CalcFormula::exists(&name, ty, body)
        } else {
            CalcFormula::forall(&name, ty, body)
        }
    }

    fn atomic(&mut self, atom_vars: &[String], set_vars: &[String]) -> CalcFormula {
        let mut options: Vec<CalcFormula> = Vec::new();
        if set_vars.len() >= 2 {
            let a = &set_vars[self.rng.gen_range(0..set_vars.len())];
            let b = &set_vars[self.rng.gen_range(0..set_vars.len())];
            options.push(CalcFormula::rel_atom(
                &self.edge_rel,
                [CalcTerm::var(a), CalcTerm::var(b)],
            ));
            options.push(CalcFormula::subset(CalcTerm::var(a), CalcTerm::var(b)));
            options.push(CalcFormula::eq(CalcTerm::var(a), CalcTerm::var(b)));
        }
        if !set_vars.is_empty() {
            let s = &set_vars[self.rng.gen_range(0..set_vars.len())];
            options.push(CalcFormula::rel_atom(
                &self.edge_rel,
                [CalcTerm::var(s), CalcTerm::var(s)],
            ));
            if !atom_vars.is_empty() {
                let x = &atom_vars[self.rng.gen_range(0..atom_vars.len())];
                options.push(CalcFormula::member(CalcTerm::var(x), CalcTerm::var(s)));
            }
        }
        if atom_vars.len() >= 2 {
            let x = &atom_vars[self.rng.gen_range(0..atom_vars.len())];
            let y = &atom_vars[self.rng.gen_range(0..atom_vars.len())];
            options.push(CalcFormula::eq(CalcTerm::var(x), CalcTerm::var(y)));
        }
        if !atom_vars.is_empty() {
            let x = &atom_vars[self.rng.gen_range(0..atom_vars.len())];
            options.push(CalcFormula::eq(CalcTerm::var(x), CalcTerm::var(x)));
        }
        if options.is_empty() {
            // No variables in scope (depth-0 sentence): a trivial truth
            // about the relation constant.
            return CalcFormula::subset(
                CalcTerm::rel(&self.edge_rel),
                CalcTerm::rel(&self.edge_rel),
            );
        }
        let pick = self.rng.gen_range(0..options.len());
        let mut formula = options.swap_remove(pick);
        if self.rng.gen_bool(0.3) {
            formula = formula.not();
        }
        formula
    }
}

/// Hand-written probes about star graphs (nodes are sets of atoms).
pub fn named_probes() -> Vec<(&'static str, CalcFormula)> {
    let node = || Type::bag(Type::Atom);
    vec![
        (
            "some edge exists",
            CalcFormula::exists(
                "u",
                node(),
                CalcFormula::exists(
                    "v",
                    node(),
                    CalcFormula::rel_atom("E", [CalcTerm::var("u"), CalcTerm::var("v")]),
                ),
            ),
        ),
        (
            "no self loops",
            CalcFormula::forall(
                "u",
                node(),
                CalcFormula::rel_atom("E", [CalcTerm::var("u"), CalcTerm::var("u")]).not(),
            ),
        ),
        (
            "a node with an incoming edge from a subset",
            CalcFormula::exists(
                "u",
                node(),
                CalcFormula::exists(
                    "v",
                    node(),
                    CalcFormula::rel_atom("E", [CalcTerm::var("v"), CalcTerm::var("u")])
                        .and(CalcFormula::subset(CalcTerm::var("v"), CalcTerm::var("u"))),
                ),
            ),
        ),
        (
            "every edge touches the full node",
            CalcFormula::forall(
                "u",
                node(),
                CalcFormula::forall(
                    "v",
                    node(),
                    CalcFormula::rel_atom("E", [CalcTerm::var("u"), CalcTerm::var("v")])
                        .not()
                        .or(CalcFormula::forall(
                            "x",
                            Type::Atom,
                            CalcFormula::member(CalcTerm::var("x"), CalcTerm::var("u"))
                                .or(CalcFormula::member(CalcTerm::var("x"), CalcTerm::var("v"))),
                        )),
                ),
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_sentence, structures_agree, CalcEvaluator};
    use balg_games::construction::star_graphs;

    #[test]
    fn generator_respects_depth() {
        let mut generator = SentenceGenerator::new(1);
        for depth in 0..4 {
            let phi = generator.sentence(depth);
            assert_eq!(phi.quantifier_depth(), depth, "{phi}");
        }
    }

    #[test]
    fn named_probes_evaluate_on_star_graphs() {
        let (g, _) = star_graphs(4);
        for (name, phi) in named_probes() {
            // Budget: domains of type ⟦U⟧ over 4 atoms have 16 elements.
            let result = CalcEvaluator::new(&g, 1 << 16).eval(&phi);
            assert!(result.is_ok(), "probe '{name}' failed: {result:?}");
        }
        // Sanity: the first probe is plainly true.
        assert!(eval_sentence(&named_probes()[0].1, &g).unwrap());
    }

    #[test]
    fn probes_agree_on_the_fig1_pair() {
        // n = 6 and probes of depth ≤ 4... Lemma 5.4 guarantees agreement
        // for n > 2k; our depth-2 probes are safely inside. Deeper probes
        // may or may not agree; we check the depth-≤2 ones must.
        let (g, gp) = star_graphs(6);
        for (name, phi) in named_probes() {
            if phi.quantifier_depth() <= 2 {
                assert!(
                    structures_agree(&phi, &g, &gp).unwrap(),
                    "depth-≤2 probe '{name}' separated G from G′ (contradicts Lemma 5.4)"
                );
            }
        }
    }

    #[test]
    fn random_depth2_sentences_agree_on_fig1() {
        let (g, gp) = star_graphs(6);
        let mut generator = SentenceGenerator::new(42);
        for i in 0..25 {
            let phi = generator.sentence(2);
            assert!(
                structures_agree(&phi, &g, &gp).unwrap(),
                "random depth-2 sentence #{i} separated the pair: {phi}"
            );
        }
    }
}
