//! Active-domain evaluation of CALC1 (the completion semantics of
//! Section 5).
//!
//! Quantified variables of type `T` range over `dom(T, A)` — every object
//! of type `T` built from the atoms of the input. Set-typed domains are
//! exponential (`2^|dom(T)|` subsets), so enumeration is budgeted; this is
//! the evaluation-cost asymmetry Theorem 5.2 turns into an expressiveness
//! gap.

use std::collections::BTreeSet;
use std::fmt;

use balg_core::bag::Bag;
use balg_core::schema::Database;
use balg_core::types::Type;
use balg_core::value::{Atom, Value};

use crate::ast::{CalcFormula, CalcTerm, CalcVar};

/// Errors from CALC1 evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalcError {
    /// A variable was used before being quantified.
    UnboundVariable(CalcVar),
    /// A relation name is not in the database.
    UnknownRelation(String),
    /// Component selection on a non-tuple or out of range.
    BadComponent(String),
    /// `∈`/`⊆` applied to a non-set right-hand side.
    NotASet(String),
    /// A quantifier domain would exceed the enumeration budget.
    DomainTooLarge {
        /// The type whose domain exploded.
        ty: Type,
        /// The budget.
        limit: u64,
    },
    /// `Unknown` type in a quantifier.
    UnknownType,
}

impl fmt::Display for CalcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalcError::UnboundVariable(v) => write!(f, "unbound variable {v}"),
            CalcError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            CalcError::BadComponent(t) => write!(f, "bad component selection on {t}"),
            CalcError::NotASet(t) => write!(f, "expected a set, got {t}"),
            CalcError::DomainTooLarge { ty, limit } => {
                write!(f, "domain of type {ty} exceeds budget {limit}")
            }
            CalcError::UnknownType => f.write_str("cannot quantify over an unknown type"),
        }
    }
}

impl std::error::Error for CalcError {}

/// Enumerate `dom(T, atoms)` — all objects of type `T` over the given
/// atoms — failing if more than `limit` objects would be produced.
pub fn enumerate_domain(ty: &Type, atoms: &[Atom], limit: u64) -> Result<Vec<Value>, CalcError> {
    let out = match ty {
        Type::Unknown => return Err(CalcError::UnknownType),
        Type::Atom => atoms.iter().cloned().map(Value::Atom).collect(),
        Type::Tuple(fields) => {
            let mut out: Vec<Vec<Value>> = vec![Vec::new()];
            for field in fields {
                let dom = enumerate_domain(field, atoms, limit)?;
                let mut next = Vec::with_capacity(out.len() * dom.len());
                for prefix in &out {
                    for value in &dom {
                        if next.len() as u64 > limit {
                            return Err(CalcError::DomainTooLarge {
                                ty: ty.clone(),
                                limit,
                            });
                        }
                        let mut tuple = prefix.clone();
                        tuple.push(value.clone());
                        next.push(tuple);
                    }
                }
                out = next;
            }
            out.into_iter()
                .map(|fields| Value::Tuple(fields.into()))
                .collect()
        }
        Type::Bag(elem) => {
            let dom = enumerate_domain(elem, atoms, limit)?;
            if dom.len() >= 63 || (1u64 << dom.len()) > limit {
                return Err(CalcError::DomainTooLarge {
                    ty: ty.clone(),
                    limit,
                });
            }
            let mut out = Vec::with_capacity(1 << dom.len());
            for mask in 0u64..(1 << dom.len()) {
                let subset = dom
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, v)| v.clone());
                out.push(Value::Bag(Bag::from_values(subset)));
            }
            out
        }
    };
    if out.len() as u64 > limit {
        return Err(CalcError::DomainTooLarge {
            ty: ty.clone(),
            limit,
        });
    }
    Ok(out)
}

/// A CALC1 evaluator over one database (viewed with set semantics).
pub struct CalcEvaluator<'a> {
    db: &'a Database,
    atoms: Vec<Atom>,
    domain_limit: u64,
    env: Vec<(CalcVar, Value)>,
}

impl<'a> CalcEvaluator<'a> {
    /// Create an evaluator; `domain_limit` bounds each quantifier domain.
    pub fn new(db: &'a Database, domain_limit: u64) -> Self {
        CalcEvaluator {
            db,
            atoms: db.active_domain().into_iter().collect(),
            domain_limit,
            env: Vec::new(),
        }
    }

    /// Evaluate a sentence (no free variables).
    pub fn eval(&mut self, formula: &CalcFormula) -> Result<bool, CalcError> {
        debug_assert!(self.env.is_empty());
        self.eval_inner(formula)
    }

    fn term(&self, term: &CalcTerm) -> Result<Value, CalcError> {
        match term {
            CalcTerm::Var(name) => self
                .env
                .iter()
                .rev()
                .find(|(bound, _)| bound == name)
                .map(|(_, value)| value.clone())
                .ok_or_else(|| CalcError::UnboundVariable(name.clone())),
            CalcTerm::Component(t, i) => {
                let value = self.term(t)?;
                match &value {
                    Value::Tuple(fields) => fields
                        .get(i.wrapping_sub(1))
                        .cloned()
                        .ok_or_else(|| CalcError::BadComponent(value.to_string())),
                    other => Err(CalcError::BadComponent(other.to_string())),
                }
            }
            CalcTerm::Rel(name) => self
                .db
                .get(name)
                .map(|bag| Value::Bag(bag.dedup()))
                .ok_or_else(|| CalcError::UnknownRelation(name.to_string())),
        }
    }

    fn eval_inner(&mut self, formula: &CalcFormula) -> Result<bool, CalcError> {
        match formula {
            CalcFormula::Eq(a, b) => Ok(self.term(a)? == self.term(b)?),
            CalcFormula::RelAtom(rel, args) => {
                let tuple = Value::Tuple(
                    args.iter()
                        .map(|t| self.term(t))
                        .collect::<Result<Vec<_>, _>>()?
                        .into(),
                );
                let bag = self
                    .db
                    .get(rel)
                    .ok_or_else(|| CalcError::UnknownRelation(rel.to_string()))?;
                Ok(bag.contains(&tuple))
            }
            CalcFormula::Member(a, b) => {
                let elem = self.term(a)?;
                match self.term(b)? {
                    Value::Bag(bag) => Ok(bag.contains(&elem)),
                    other => Err(CalcError::NotASet(other.to_string())),
                }
            }
            CalcFormula::Subset(a, b) => {
                let left = match self.term(a)? {
                    Value::Bag(bag) => bag,
                    other => return Err(CalcError::NotASet(other.to_string())),
                };
                match self.term(b)? {
                    Value::Bag(bag) => Ok(left.is_subbag_of(&bag)),
                    other => Err(CalcError::NotASet(other.to_string())),
                }
            }
            CalcFormula::Not(p) => Ok(!self.eval_inner(p)?),
            CalcFormula::And(a, b) => Ok(self.eval_inner(a)? && self.eval_inner(b)?),
            CalcFormula::Or(a, b) => Ok(self.eval_inner(a)? || self.eval_inner(b)?),
            CalcFormula::Exists { var, ty, body } => {
                let domain = enumerate_domain(ty, &self.atoms, self.domain_limit)?;
                for value in domain {
                    self.env.push((var.clone(), value));
                    let holds = self.eval_inner(body);
                    self.env.pop();
                    if holds? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            CalcFormula::Forall { var, ty, body } => {
                let domain = enumerate_domain(ty, &self.atoms, self.domain_limit)?;
                for value in domain {
                    self.env.push((var.clone(), value));
                    let holds = self.eval_inner(body);
                    self.env.pop();
                    if !holds? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
        }
    }
}

/// Evaluate a sentence with a default quantifier-domain budget.
pub fn eval_sentence(formula: &CalcFormula, db: &Database) -> Result<bool, CalcError> {
    CalcEvaluator::new(db, 1 << 20).eval(formula)
}

/// Check whether two databases **agree** on a sentence (the Theorem 5.3
/// consequence of a duplicator win: every sentence of quantifier depth
/// ≤ k with types in 𝒯 gets the same answer).
pub fn structures_agree(
    formula: &CalcFormula,
    left: &Database,
    right: &Database,
) -> Result<bool, CalcError> {
    Ok(eval_sentence(formula, left)? == eval_sentence(formula, right)?)
}

/// All atoms of the database plus, for convenience, the explicit set.
pub fn active_atoms(db: &Database) -> BTreeSet<Atom> {
    db.active_domain()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CalcFormula as F;
    use crate::ast::CalcTerm as T;

    fn graph(edges: &[(i64, i64)]) -> Database {
        Database::new().with(
            "E",
            Bag::from_values(
                edges
                    .iter()
                    .map(|(a, b)| Value::tuple([Value::int(*a), Value::int(*b)])),
            ),
        )
    }

    #[test]
    fn domain_enumeration_counts() {
        let atoms: Vec<Atom> = (1..=3).map(Atom::Int).collect();
        assert_eq!(enumerate_domain(&Type::Atom, &atoms, 100).unwrap().len(), 3);
        assert_eq!(
            enumerate_domain(&Type::atom_tuple(2), &atoms, 100)
                .unwrap()
                .len(),
            9
        );
        assert_eq!(
            enumerate_domain(&Type::bag(Type::Atom), &atoms, 100)
                .unwrap()
                .len(),
            8
        );
        assert!(matches!(
            enumerate_domain(&Type::bag(Type::atom_tuple(2)), &atoms, 100),
            Err(CalcError::DomainTooLarge { .. })
        )); // 2^9 = 512 > 100
    }

    #[test]
    fn simple_graph_sentences() {
        let db = graph(&[(1, 2), (2, 3)]);
        // ∃x∃y. E(x,y)
        let exists_edge = F::exists(
            "x",
            Type::Atom,
            F::exists(
                "y",
                Type::Atom,
                F::rel_atom("E", [T::var("x"), T::var("y")]),
            ),
        );
        assert!(eval_sentence(&exists_edge, &db).unwrap());
        // ∀x∀y. E(x,y) — false.
        let complete = F::forall(
            "x",
            Type::Atom,
            F::forall(
                "y",
                Type::Atom,
                F::rel_atom("E", [T::var("x"), T::var("y")]),
            ),
        );
        assert!(!eval_sentence(&complete, &db).unwrap());
    }

    #[test]
    fn set_quantification() {
        // ∃s:{U}. ∀x:U. x ∈ s — the full set exists.
        let db = graph(&[(1, 2)]);
        let phi = F::exists(
            "s",
            Type::bag(Type::Atom),
            F::forall("x", Type::Atom, F::member(T::var("x"), T::var("s"))),
        );
        assert!(eval_sentence(&phi, &db).unwrap());
    }

    #[test]
    fn subset_predicate() {
        // ∃s:{U}. s ⊆ s — trivially true (even the empty set).
        let db = graph(&[(1, 2)]);
        let phi = F::exists(
            "s",
            Type::bag(Type::Atom),
            F::subset(T::var("s"), T::var("s")),
        );
        assert!(eval_sentence(&phi, &db).unwrap());
    }

    #[test]
    fn component_selection() {
        // ∃p:[U,U]. E(p.1, p.2) — a pair whose components form an edge.
        let db = graph(&[(1, 2)]);
        let phi = F::exists(
            "p",
            Type::atom_tuple(2),
            F::rel_atom("E", [T::var("p").component(1), T::var("p").component(2)]),
        );
        assert!(eval_sentence(&phi, &db).unwrap());
    }

    #[test]
    fn agreement_on_isomorphic_graphs() {
        let a = graph(&[(1, 2)]);
        let b = graph(&[(7, 8)]);
        let phi = F::exists(
            "x",
            Type::Atom,
            F::exists(
                "y",
                Type::Atom,
                F::rel_atom("E", [T::var("x"), T::var("y")]),
            ),
        );
        assert!(structures_agree(&phi, &a, &b).unwrap());
    }

    #[test]
    fn relation_constant_as_set() {
        // The relation itself is a term: ∃p:[U,U]. p ∈ E.
        let db = graph(&[(1, 2)]);
        let phi = F::exists(
            "p",
            Type::atom_tuple(2),
            F::member(T::var("p"), T::rel("E")),
        );
        assert!(eval_sentence(&phi, &db).unwrap());
    }

    #[test]
    fn errors_are_reported() {
        let db = graph(&[(1, 2)]);
        let unbound = F::eq(T::var("z"), T::var("z"));
        assert!(matches!(
            eval_sentence(&unbound, &db),
            Err(CalcError::UnboundVariable(_))
        ));
        let unknown = F::rel_atom("Q", [T::var("z")]);
        let phi = F::exists("z", Type::Atom, unknown);
        assert!(matches!(
            eval_sentence(&phi, &db),
            Err(CalcError::UnknownRelation(_))
        ));
    }
}
