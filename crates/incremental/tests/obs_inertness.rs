//! Inertness gate for the incremental engine's instrumentation: a
//! deterministic update stream maintained with the metrics registry
//! installed must produce exactly the same view results, per-view
//! counters, and `:stats` text as the same stream maintained without it.
//!
//! Single test binary, single test: [`balg_obs::install_global`] is
//! first-wins process-wide, so the off-phase must run before anything
//! installs a registry.

use balg_core::bag::Bag;
use balg_core::parse::parse_expr;
use balg_core::value::Value;
use balg_incremental::{render_stats, UpdateBatch, ViewRuntime};

fn pair(a: i64, b: i64) -> Value {
    Value::tuple([Value::int(a), Value::int(b)])
}

/// A runtime with one linear view, one fused equi-join view, and one
/// non-linear view — every maintenance path the counters distinguish.
fn runtime() -> ViewRuntime {
    let mut rt = ViewRuntime::new();
    rt.load_base("G", Bag::from_values([pair(0, 1), pair(1, 2), pair(2, 3)]))
        .unwrap();
    rt.create_view("rev", parse_expr("project(G, 2, 1)").unwrap())
        .unwrap();
    rt.create_view(
        "hops",
        parse_expr("project(select(x, eq(attr(x,2), attr(x,3)), product(G, G)), 1, 4)").unwrap(),
    )
    .unwrap();
    rt.create_view("nodes", parse_expr("dedup(project(G, 1))").unwrap())
        .unwrap();
    rt
}

/// The deterministic stream: inserts with a sliding window of deletes,
/// so deltas exercise both signs without ever going negative.
fn stream() -> Vec<UpdateBatch> {
    let mut batches = Vec::new();
    for i in 0..24i64 {
        let mut batch = UpdateBatch::new();
        batch.insert("G", pair(i % 5, (i * 3 + 1) % 5));
        if i >= 2 {
            let j = i - 2;
            batch.delete("G", pair(j % 5, (j * 3 + 1) % 5));
        }
        batches.push(batch);
    }
    batches
}

/// Everything observable after one batch, as one comparable string.
fn observe(rt: &ViewRuntime) -> String {
    let mut out = String::new();
    for name in ["rev", "hops", "nodes"] {
        let bag = rt.view(name).expect("view alive");
        out.push_str(&format!("{name} = {bag}\n"));
    }
    out.push_str(&render_stats(rt, None));
    out
}

#[test]
fn instrumentation_is_inert_over_update_streams() {
    assert!(
        balg_obs::global().is_none(),
        "another test installed the global registry before the off-phase ran"
    );

    // Off-phase: no registry exists, nothing records.
    let mut off = runtime();
    let mut expected = Vec::new();
    for batch in stream() {
        off.apply(&batch).unwrap();
        expected.push(observe(&off));
    }

    // On-phase: registry installed, identical runtime, identical stream.
    assert!(balg_obs::install_global(balg_obs::MetricsRegistry::new()));
    let mut on = runtime();
    for (i, batch) in stream().iter().enumerate() {
        on.apply(batch).unwrap();
        assert_eq!(expected[i], observe(&on), "batch {i} drifted under metrics");
    }

    // The on-phase really recorded: every batch and at least one
    // maintenance path reached the registry.
    let rendered = balg_obs::global()
        .expect("installed above")
        .render_prometheus();
    assert!(
        rendered.contains("balg_update_batches_total 24"),
        "{rendered}"
    );
    assert!(
        rendered.contains("balg_maintain_duration_ns_count"),
        "{rendered}"
    );
}
