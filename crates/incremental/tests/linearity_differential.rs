//! Differential check of the static analyzer's linearity certificate
//! against the incremental engine's instrumentation: for random
//! (query, update-stream) pairs, whenever every base touched by a batch
//! is classified ≤ [`Linearity::Bilinear`] by
//! [`balg_core::analyze::base_linearity`], the maintenance pass must run
//! entirely in delta form — zero operator re-derivations and zero scalar
//! recomputes.
//!
//! The property is **one-directional**. A batch over a non-linear base
//! is *allowed* to avoid fallbacks (its delta can cancel inside a
//! subtree before reaching the non-linear operator), so the converse is
//! never asserted.

use std::collections::BTreeSet;

use balg_core::analyze::{base_linearity, Linearity};
use balg_core::bag::Bag;
use balg_core::eval::Limits;
use balg_core::expr::{Expr, Pred, Var};
use balg_core::value::Value;
use balg_core::zbag::ZInt;
use balg_incremental::{UpdateBatch, ViewRuntime, ViewStats};
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn limits() -> Limits {
    Limits {
        max_bag_elements: 1 << 12,
        max_multiplicity_bits: 1 << 10,
        max_steps: 2_000_000,
        max_ifp_iterations: 64,
    }
}

fn unary(v: i64) -> Value {
    Value::tuple([Value::int(v)])
}

fn pair(a: i64, b: i64) -> Value {
    Value::tuple([Value::int(a), Value::int(b)])
}

fn base_db() -> Vec<(&'static str, Bag)> {
    vec![
        (
            "R",
            Bag::from_counted([(unary(0), 2u64.into()), (unary(1), 1u64.into())]),
        ),
        ("S", Bag::from_values([unary(1), unary(2), unary(2)])),
        (
            "G",
            Bag::from_values([pair(0, 1), pair(1, 2), pair(0, 1), pair(2, 0)]),
        ),
    ]
}

/// A seeded query generator biased toward *mixed* linearity: subtrees
/// where one base flows through delta rules while another is trapped
/// under a non-linear operator, so batches restricted to the former must
/// certify fallback-freedom while batches touching the latter need not.
struct QueryGen {
    rng: StdRng,
}

impl QueryGen {
    fn new(seed: u64) -> QueryGen {
        QueryGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn leaf(&mut self, arity: usize) -> Expr {
        match arity {
            1 => {
                if self.rng.gen_bool(0.5) {
                    Expr::var("R")
                } else {
                    Expr::var("S")
                }
            }
            _ => Expr::var("G"),
        }
    }

    fn expr(&mut self, depth: usize, arity: usize) -> Expr {
        if depth == 0 {
            return self.leaf(arity);
        }
        match self.rng.gen_range(0..10u8) {
            0 => self
                .expr(depth - 1, arity)
                .additive_union(self.expr(depth - 1, arity)),
            // Non-linear set operators: trap both operands.
            1 => self
                .expr(depth - 1, arity)
                .subtract(self.expr(depth - 1, arity)),
            2 => self
                .expr(depth - 1, arity)
                .max_union(self.expr(depth - 1, arity)),
            3 => self.expr(depth - 1, arity).dedup(),
            // Linear σ (the predicate reads only the bound tuple).
            4 => self.expr(depth - 1, arity).select(
                "x",
                Pred::lt(
                    Expr::var("x").attr(1),
                    Expr::lit(Value::int(self.rng.gen_range(0..4))),
                ),
            ),
            // Non-linear σ: the λ body reads base R.
            5 if arity == 1 => self.expr(depth - 1, arity).select(
                "x",
                Pred::SubBag(Expr::var("x").singleton(), Expr::var("R")),
            ),
            // Linear restructuring MAP.
            6 => {
                let body = if arity == 1 {
                    Expr::tuple([Expr::var("x").attr(1)])
                } else {
                    Expr::tuple([Expr::var("x").attr(2), Expr::var("x").attr(1)])
                };
                self.expr(depth - 1, arity).map("x", body)
            }
            // Bilinear product / linear projection.
            7 => {
                if arity == 2 {
                    self.expr(depth - 1, 1).product(self.expr(depth - 1, 1))
                } else {
                    let ix = self.rng.gen_range(1..=2);
                    self.expr(depth - 1, 2).project(&[ix])
                }
            }
            // Fused equi-join over uniform binary tuples — bilinear.
            8 if arity == 2 => {
                let q = self
                    .expr(depth - 1, 2)
                    .product(self.expr(depth - 1, 2))
                    .select(
                        "x",
                        Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
                    );
                let (i, j) = (self.rng.gen_range(1..=4), self.rng.gen_range(1..=4));
                q.project(&[i, j])
            }
            _ => self.expr(depth - 1, arity),
        }
    }
}

/// One legal random update to `name` against the runtime's state.
fn random_update(rng: &mut StdRng, runtime: &ViewRuntime, batch: &mut UpdateBatch, name: &str) {
    let arity = if name == "G" { 2 } else { 1 };
    let current = runtime.database().get(name).expect("loaded base");
    let deletable: Vec<Value> = current
        .iter()
        .filter(|(value, mult)| {
            let pending = batch
                .delta(name)
                .map_or_else(ZInt::zero, |d| d.multiplicity(value));
            let headroom = ZInt::from_natural((*mult).clone()).add(&pending);
            !headroom.is_negative() && !headroom.is_zero()
        })
        .map(|(value, _)| value.clone())
        .collect();
    if rng.gen_bool(0.5) && !deletable.is_empty() {
        let victim = deletable[rng.gen_range(0..deletable.len())].clone();
        batch.delete(name, victim);
    } else {
        let value = if arity == 1 {
            unary(rng.gen_range(0..4))
        } else {
            pair(rng.gen_range(0..4), rng.gen_range(0..4))
        };
        batch.insert(name, value);
    }
}

/// Stream batches at a view; whenever a batch touches only ≤-bilinear
/// bases, the fallback and scalar counters must not move.
fn run_case(seed: u64, depth: usize, arity: usize, batches: usize) {
    let mut generator = QueryGen::new(seed);
    let expr = generator.expr(depth, arity);
    let facts = base_linearity(&expr);
    let mut runtime = ViewRuntime::with_limits(limits());
    for (name, bag) in base_db() {
        runtime.load_base(name, bag).unwrap();
    }
    if runtime.create_view("v", expr.clone()).is_err() {
        return; // over budget — not this suite's concern
    }
    // The registered view's stored facts are exactly the analyzer's.
    let (_, view) = runtime.views().next().expect("registered above");
    assert_eq!(view.linearity(), &facts);

    let mut rng = StdRng::seed_from_u64(seed ^ 0x11bea7);
    let mut before = ViewStats::default();
    for _ in 0..batches {
        // Pick the batch's base set first so entire batches land on
        // delta-friendly bases often enough to exercise the property.
        let names: &[&str] = match rng.gen_range(0..4u8) {
            0 => &["R"],
            1 => &["S"],
            2 => &["G"],
            _ => &["R", "S", "G"],
        };
        let mut batch = UpdateBatch::new();
        for _ in 0..rng.gen_range(1..=3) {
            let name = names[rng.gen_range(0..names.len())];
            random_update(&mut rng, &runtime, &mut batch, name);
        }
        let touched: BTreeSet<Var> = batch
            .iter()
            .filter(|(_, delta)| !delta.is_empty())
            .map(|(name, _)| name.clone())
            .collect();
        if runtime.apply(&batch).is_err() {
            return; // budget blow-up mid-stream; view was dropped
        }
        let after = runtime.stats().views;
        let all_linearish = touched.iter().all(|base| {
            facts.get(base).copied().unwrap_or(Linearity::Unread) <= Linearity::Bilinear
        });
        if all_linearish {
            assert_eq!(
                (after.fallback_recomputes, after.scalar_recomputes),
                (before.fallback_recomputes, before.scalar_recomputes),
                "a ≤-bilinear batch over {touched:?} re-derived an operator \
                 for seed {seed}: {expr} with facts {facts:?}"
            );
        }
        before = after;
        assert!(runtime.verify("v").unwrap(), "view drifted: {expr}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// ≥256 random (query, update-stream) pairs: the linearity
    /// certificate is never contradicted by the maintenance counters.
    #[test]
    fn bilinear_certificates_mean_zero_fallbacks(
        seed in 0u64..1_000_000,
        depth in 1usize..4,
        arity in 1usize..3,
        batches in 2usize..6,
    ) {
        run_case(seed, depth, arity, batches);
    }
}

/// Deterministic spot checks of the certificate against hand-picked
/// views: a linear chain, a bilinear join, and a mixed view where only
/// one base's updates are certified fallback-free.
#[test]
fn certificates_match_hand_classified_views() {
    let mut runtime = ViewRuntime::with_limits(limits());
    for (name, bag) in base_db() {
        runtime.load_base(name, bag).unwrap();
    }
    // π(σ(G)) — linear in G.
    runtime
        .create_view(
            "chain",
            Expr::var("G")
                .select(
                    "x",
                    Pred::lt(Expr::var("x").attr(1), Expr::lit(Value::int(3))),
                )
                .project(&[2, 1]),
        )
        .unwrap();
    // R − S is non-linear in both; R ∪⁺ (R − S) keeps R non-linear.
    runtime
        .create_view(
            "mixed",
            Expr::var("R").additive_union(Expr::var("R").subtract(Expr::var("S"))),
        )
        .unwrap();
    let chain_facts: Vec<(String, Linearity)> = runtime
        .views()
        .find(|(name, _)| *name == "chain")
        .map(|(_, v)| {
            v.linearity()
                .iter()
                .map(|(k, l)| (k.to_string(), *l))
                .collect()
        })
        .unwrap();
    assert_eq!(chain_facts, vec![("G".to_owned(), Linearity::Linear)]);
    let mixed = runtime
        .views()
        .find(|(name, _)| *name == "mixed")
        .map(|(_, v)| v.linearity().clone())
        .unwrap();
    assert_eq!(mixed.get(&Var::from("R")), Some(&Linearity::NonLinear));
    assert_eq!(mixed.get(&Var::from("S")), Some(&Linearity::NonLinear));

    // A G-only batch is certified: only the linear chain reads G.
    let mut batch = UpdateBatch::new();
    batch.insert("G", pair(1, 1));
    runtime.apply(&batch).unwrap();
    let stats = runtime.stats().views;
    assert_eq!(stats.fallback_recomputes, 0, "{stats:?}");
    assert_eq!(stats.scalar_recomputes, 0, "{stats:?}");
    assert!(stats.linear_delta_ops > 0, "{stats:?}");

    // An R batch hits the non-linear view and must re-derive the monus.
    let mut batch = UpdateBatch::new();
    batch.insert("R", unary(3));
    runtime.apply(&batch).unwrap();
    assert!(runtime.stats().views.fallback_recomputes > 0);
    assert!(runtime.verify_all().unwrap());
}
