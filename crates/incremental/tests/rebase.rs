//! Regression suite for [`ViewRuntime::load_base`]: replacing a base
//! wholesale must fully re-derive every dependent view (firing the
//! degraded-path instrumentation counter), leave independent views
//! untouched, keep `verify` green — and must not let a per-key index
//! cached over the *replaced* base leak stale rows into later
//! incremental maintenance.

use balg_core::bag::Bag;
use balg_core::expr::{Expr, Pred};
use balg_core::value::Value;
use balg_incremental::{UpdateBatch, ViewRuntime};

fn pair(a: i64, b: i64) -> Value {
    Value::tuple([Value::int(a), Value::int(b)])
}

fn pairs(rows: &[(i64, i64)]) -> Bag {
    Bag::from_values(rows.iter().map(|&(a, b)| pair(a, b)))
}

/// The σ(×) join view whose maintenance builds an index over `R`.
fn join_view() -> Expr {
    Expr::var("R")
        .product(Expr::var("S"))
        .select(
            "x",
            Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
        )
        .project(&[1, 4])
}

#[test]
fn rebase_rederives_dependents_and_fires_the_counter() {
    let mut runtime = ViewRuntime::new();
    runtime
        .load_base("R", pairs(&[(0, 1), (1, 2), (2, 0)]))
        .unwrap();
    runtime.load_base("S", pairs(&[(0, 7), (1, 8)])).unwrap();
    runtime.create_view("join", join_view()).unwrap();
    runtime
        .create_view("s_only", Expr::var("S").dedup())
        .unwrap();

    // Drive an update first so the runtime has cached (and patched) a
    // per-key index over R before the rebase replaces R entirely.
    let mut batch = UpdateBatch::new();
    batch.insert("R", pair(3, 0));
    runtime.apply(&batch).unwrap();
    assert!(runtime.stats().views.indexed_join_ops > 0);
    assert!(runtime.verify_all().unwrap());

    // Rebase R wholesale. Dependent views must be re-derived from
    // scratch; the S-only view must not be touched.
    runtime
        .load_base("R", pairs(&[(9, 0), (9, 1), (0, 9)]))
        .unwrap();
    let reinits = |name: &str| {
        runtime
            .views()
            .find(|(n, _)| *n == name)
            .expect("registered view")
            .1
            .stats()
            .full_reinits
    };
    assert_eq!(
        reinits("join"),
        1,
        "the dependent view must fully re-derive"
    );
    assert_eq!(
        reinits("s_only"),
        0,
        "an independent view must be left alone"
    );
    assert!(
        runtime.verify_all().unwrap(),
        "rebase left a stale snapshot"
    );
    // (9,0) joins S's key 0 → (9,7); (9,1) joins key 1 → (9,8); (0,9)
    // carries key 9, absent from S.
    let expected = pairs(&[(9, 7), (9, 8)]);
    assert_eq!(runtime.view("join").unwrap(), &expected);

    // Incremental maintenance *after* the rebase must run against the
    // new base — a stale cached index over the old R would resurrect
    // replaced rows here.
    let mut batch = UpdateBatch::new();
    batch.insert("S", pair(2, 5));
    batch.delete("R", pair(9, 0));
    runtime.apply(&batch).unwrap();
    assert!(
        runtime.verify_all().unwrap(),
        "post-rebase maintenance drifted"
    );
    assert!(!runtime.view("join").unwrap().contains(&pair(9, 7)));
}

#[test]
fn rebase_to_a_shared_representation_is_still_consistent() {
    // load_base with a clone of the current bag (same representation):
    // the cached indexes stay valid by construction and maintenance
    // continues exactly.
    let mut runtime = ViewRuntime::new();
    runtime.load_base("R", pairs(&[(0, 1), (1, 0)])).unwrap();
    runtime.load_base("S", pairs(&[(0, 4), (1, 5)])).unwrap();
    runtime.create_view("join", join_view()).unwrap();
    let mut batch = UpdateBatch::new();
    batch.insert("R", pair(4, 1));
    runtime.apply(&batch).unwrap();

    let same = runtime.database().get("R").unwrap().clone();
    runtime.load_base("R", same).unwrap();
    assert!(runtime.verify_all().unwrap());

    let mut batch = UpdateBatch::new();
    batch.delete("R", pair(4, 1));
    runtime.apply(&batch).unwrap();
    assert!(runtime.verify_all().unwrap());
}

#[test]
fn failing_rebase_drops_only_the_failing_view() {
    use balg_core::eval::Limits;
    let limits = Limits {
        max_bag_elements: 16,
        ..Limits::default()
    };
    let mut runtime = ViewRuntime::with_limits(limits);
    runtime
        .load_base("R", Bag::from_values((0..3).map(Value::int)))
        .unwrap();
    runtime
        .create_view("explodes", Expr::var("R").powerset())
        .unwrap();
    runtime
        .create_view("survives", Expr::var("R").dedup())
        .unwrap();
    // The replacement base makes the powerset view blow its budget
    // (2^5 = 32 > 16): that view is dropped, the other is re-derived.
    let err = runtime
        .load_base("R", Bag::from_values((0..5).map(Value::int)))
        .unwrap_err();
    assert!(err.to_string().contains("explodes"), "{err}");
    assert!(runtime.view("explodes").is_none());
    assert!(runtime.verify("survives").unwrap());
    assert!(
        runtime
            .views()
            .find(|(n, _)| *n == "survives")
            .unwrap()
            .1
            .stats()
            .full_reinits
            >= 1
    );
}
