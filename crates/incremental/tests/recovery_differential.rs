//! Property-based crash-recovery differential: for random
//! (base contents, view set, update stream, crash offset) tuples, a
//! runtime killed at an arbitrary WAL byte offset and reopened must be
//! state-identical to a never-crashed twin that applied exactly the
//! acked operations. The nightly deep job raises `PROPTEST_CASES` to
//! push the same property through 1024+ random crash points.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use balg_core::bag::Bag;
use balg_core::eval::Limits;
use balg_core::expr::{Expr, Pred};
use balg_core::value::Value;
use balg_incremental::prelude::*;
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn scratch() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("balg-recdiff-{}-{n}", std::process::id()))
}

fn pair(a: i64, b: i64) -> Value {
    Value::tuple([Value::int(a), Value::int(b)])
}

#[derive(Clone, Debug)]
enum Op {
    Load(&'static str, Vec<(i64, i64)>),
    View(String, Expr),
    Batch(UpdateBatch),
    Drop(String),
    Checkpoint,
}

/// A seeded random scenario over bases R and S: a few views drawn from
/// both linear and non-linear operator shapes, then a stream of batches
/// of random inserts and valid deletes, with occasional view drops,
/// base reloads, and checkpoints mixed in.
fn scenario(seed: u64, batches: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows = |rng: &mut StdRng| -> Vec<(i64, i64)> {
        (0..rng.gen_range(0..6))
            .map(|_| (rng.gen_range(0..4), rng.gen_range(0..4)))
            .collect()
    };
    let r0 = rows(&mut rng);
    let s0 = rows(&mut rng);
    let mut present = r0.clone();
    let mut ops = vec![Op::Load("R", r0), Op::Load("S", s0)];
    for v in 0..rng.gen_range(1..4usize) {
        let expr = match rng.gen_range(0..5u8) {
            0 => Expr::var("R").project(&[2, 1]),
            1 => Expr::var("R").product(Expr::var("S")),
            2 => Expr::var("R").subtract(Expr::var("S")),
            3 => Expr::var("R").select(
                "x",
                Pred::lt(
                    Expr::var("x").attr(1),
                    Expr::lit(Value::int(rng.gen_range(1..4))),
                ),
            ),
            _ => Expr::var("R").max_union(Expr::var("S")),
        };
        ops.push(Op::View(format!("v{v}"), expr));
    }
    for _ in 0..batches {
        match rng.gen_range(0..10u8) {
            0 => ops.push(Op::Drop(format!("v{}", rng.gen_range(0..4)))),
            1 => {
                let next = rows(&mut rng);
                present = next.clone();
                ops.push(Op::Load("R", next));
            }
            2 => ops.push(Op::Checkpoint),
            _ => {
                let mut batch = UpdateBatch::new();
                for _ in 0..rng.gen_range(1..4) {
                    if rng.gen_bool(0.3) && !present.is_empty() {
                        let victim = present.swap_remove(rng.gen_range(0..present.len()));
                        batch.delete("R", pair(victim.0, victim.1));
                    } else {
                        let row = (rng.gen_range(0..4), rng.gen_range(0..4));
                        present.push(row);
                        batch.insert("R", pair(row.0, row.1));
                    }
                }
                ops.push(Op::Batch(batch));
            }
        }
    }
    ops
}

fn apply_durable(rt: &mut DurableRuntime, op: &Op) -> Result<(), DurableError> {
    match op {
        Op::Load(name, rows) => rt.load_base(
            name,
            Bag::from_values(rows.iter().map(|&(a, b)| pair(a, b))),
        ),
        Op::View(name, expr) => rt.create_view(name, expr.clone()).map(|_| ()),
        Op::Batch(batch) => rt.commit(batch),
        Op::Drop(name) => rt.drop_view(name).map(|_| ()),
        Op::Checkpoint => rt.checkpoint(),
    }
}

fn apply_twin(twin: &mut ViewRuntime, op: &Op) {
    match op {
        Op::Load(name, rows) => {
            let _ = twin.load_base(
                name,
                Bag::from_values(rows.iter().map(|&(a, b)| pair(a, b))),
            );
        }
        Op::View(name, expr) => {
            let _ = twin.create_view(name, expr.clone());
        }
        Op::Batch(batch) => {
            let _ = twin.apply(batch);
        }
        Op::Drop(name) => {
            twin.drop_view(name);
        }
        Op::Checkpoint => {}
    }
}

/// The property: kill at `cut` bytes into the (current) WAL, reopen,
/// compare against the acked-ops twin.
fn run_case(seed: u64, batches: usize, cut_permille: u64) {
    let ops = scenario(seed, batches);
    let dir = scratch();

    // Clean run to learn the final WAL extent for this scenario.
    let total = {
        let mut rt = DurableRuntime::open(&dir, Limits::default()).unwrap();
        rt.set_checkpoint_policy(CheckpointPolicy::manual());
        let mut high = 0u64;
        for op in &ops {
            let _ = apply_durable(&mut rt, op);
            high = high.max(rt.durability().wal_bytes);
        }
        high.max(1)
    };
    let _ = std::fs::remove_dir_all(&dir);

    let cut = total * cut_permille / 1000;
    let mut rt = DurableRuntime::open(&dir, Limits::default()).unwrap();
    rt.set_checkpoint_policy(CheckpointPolicy::manual());
    rt.set_fault_plan(WalFaultPlan::cut_wal_at(cut));
    let mut twin = ViewRuntime::with_limits(Limits::default());
    for op in &ops {
        match apply_durable(&mut rt, op) {
            Err(DurableError::Fault(_))
            | Err(DurableError::Poisoned)
            | Err(DurableError::Io(_)) => {}
            _ => apply_twin(&mut twin, op),
        }
    }
    drop(rt);

    let reopened = DurableRuntime::open(&dir, Limits::default())
        .unwrap_or_else(|e| panic!("seed {seed}: reopen after cut at {cut} failed: {e}"));
    let recovered = reopened.runtime();
    assert_eq!(
        recovered.database(),
        twin.database(),
        "seed {seed}, cut {cut}: bases diverged"
    );
    let rec_views: Vec<(&str, &Bag)> = recovered.views().map(|(n, v)| (n, v.result())).collect();
    let twin_views: Vec<(&str, &Bag)> = twin.views().map(|(n, v)| (n, v.result())).collect();
    assert_eq!(
        rec_views, twin_views,
        "seed {seed}, cut {cut}: views diverged"
    );
    assert_eq!(
        recovered.batches(),
        twin.batches(),
        "seed {seed}, cut {cut}: acked batch counts diverged"
    );
    for (name, _) in recovered.views() {
        assert!(
            recovered.verify(name).unwrap_or(false),
            "seed {seed}, cut {cut}: view {name} failed verify"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random scenario × random crash offset: recovery must always
    /// converge to the acked prefix. `PROPTEST_CASES` scales this.
    #[test]
    fn crashed_runtime_recovers_to_acked_prefix(
        seed in 0u64..1_000_000,
        batches in 2usize..10,
        cut_permille in 0u64..1000,
    ) {
        run_case(seed, batches, cut_permille);
    }
}
