//! Crash-recovery kill matrix and corrupt-WAL regressions.
//!
//! The durability contract under test: after a crash at **any** byte of
//! the WAL and at every checkpoint crash point, reopening the data
//! directory yields a runtime differentially equal to a never-crashed
//! in-process twin that applied exactly the acked operations — every
//! acked batch present, every unacked batch absent, every view verified
//! green. The same seeded operation stream is driven through every
//! injected crash point; cut offsets cover record boundaries, boundary±1
//! (torn header / one spare byte), mid-header, and mid-payload.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use balg_core::bag::Bag;
use balg_core::eval::Limits;
use balg_core::expr::Expr;
use balg_core::value::Value;
use balg_incremental::prelude::*;

/// A unique scratch directory (no tempfile crate in the container); the
/// test removes it on success and leaves it for inspection on failure.
fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("balg-recovery-{tag}-{}-{n}", std::process::id()))
}

fn cleanup(dir: &PathBuf) {
    let _ = std::fs::remove_dir_all(dir);
}

fn pair(a: i64, b: i64) -> Value {
    Value::tuple([Value::int(a), Value::int(b)])
}

/// One step of the scenario every crash point replays.
#[derive(Clone, Debug)]
enum Op {
    Load(&'static str, Vec<(i64, i64)>),
    View(&'static str, Expr),
    Batch(Vec<(&'static str, i64, i64, bool)>), // (base, a, b, delete?)
    Drop(&'static str),
}

/// The seeded operation stream: two bases, three views (linear
/// projection, bilinear product, non-linear subtract — so replay
/// exercises delta rules *and* fallback recomputes), then a mixed run of
/// update batches including a view drop and a base rebase.
fn scenario() -> Vec<Op> {
    let mut ops = vec![
        Op::Load("R", vec![(1, 2), (2, 3), (2, 3)]),
        Op::Load("S", vec![(2, 3), (9, 9)]),
        Op::View("rev", Expr::var("R").project(&[2, 1])),
        Op::View("prod", Expr::var("R").product(Expr::var("S"))),
        Op::View("diff", Expr::var("R").subtract(Expr::var("S"))),
    ];
    // A deterministic pseudo-random mix (xorshift — no rand dependency
    // needed here) of inserts and guaranteed-valid deletes.
    let mut state = 0x9E37_79B9u64;
    let mut step = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut present: Vec<(i64, i64)> = vec![(1, 2), (2, 3), (2, 3)];
    for i in 0..12 {
        let mut batch = Vec::new();
        for _ in 0..=(step() % 3) {
            let a = (step() % 5) as i64;
            let b = (step() % 5) as i64;
            batch.push(("R", a, b, false));
            present.push((a, b));
        }
        if step().is_multiple_of(2) && present.len() > 2 {
            let victim = present.swap_remove((step() % present.len() as u64) as usize);
            batch.push(("R", victim.0, victim.1, true));
        }
        if i == 5 {
            ops.push(Op::Drop("prod"));
        }
        if i == 7 {
            ops.push(Op::Load("S", vec![(0, 0), (2, 3)]));
        }
        ops.push(Op::Batch(batch));
    }
    ops
}

fn to_batch(rows: &[(&'static str, i64, i64, bool)]) -> UpdateBatch {
    let mut batch = UpdateBatch::new();
    for (base, a, b, delete) in rows {
        if *delete {
            batch.delete(base, pair(*a, *b));
        } else {
            batch.insert(base, pair(*a, *b));
        }
    }
    batch
}

fn apply_twin(twin: &mut ViewRuntime, op: &Op) {
    match op {
        Op::Load(name, rows) => {
            let _ = twin.load_base(
                name,
                Bag::from_values(rows.iter().map(|&(a, b)| pair(a, b))),
            );
        }
        Op::View(name, expr) => {
            let _ = twin.create_view(name, expr.clone());
        }
        Op::Batch(rows) => {
            let _ = twin.apply(&to_batch(rows));
        }
        Op::Drop(name) => {
            twin.drop_view(name);
        }
    }
}

fn apply_durable(rt: &mut DurableRuntime, op: &Op) -> Result<(), DurableError> {
    match op {
        Op::Load(name, rows) => rt.load_base(
            name,
            Bag::from_values(rows.iter().map(|&(a, b)| pair(a, b))),
        ),
        Op::View(name, expr) => rt.create_view(name, expr.clone()).map(|_| ()),
        Op::Batch(rows) => rt.commit(&to_batch(rows)),
        Op::Drop(name) => rt.drop_view(name).map(|_| ()),
    }
}

/// Differential equality with the never-crashed twin: identical bases,
/// identical view names and contents, identical tombstones and batch
/// counter, and every surviving view green under `verify`.
fn assert_same(ctx: &str, recovered: &ViewRuntime, twin: &ViewRuntime) {
    assert_eq!(
        recovered.database(),
        twin.database(),
        "{ctx}: bases diverged"
    );
    let rec_views: Vec<(&str, &Bag)> = recovered.views().map(|(n, v)| (n, v.result())).collect();
    let twin_views: Vec<(&str, &Bag)> = twin.views().map(|(n, v)| (n, v.result())).collect();
    assert_eq!(rec_views, twin_views, "{ctx}: views diverged");
    let rec_dropped: Vec<(&str, &str, u64)> = recovered
        .dropped()
        .map(|(n, d)| (n, d.cause.as_str(), d.at_batch))
        .collect();
    let twin_dropped: Vec<(&str, &str, u64)> = twin
        .dropped()
        .map(|(n, d)| (n, d.cause.as_str(), d.at_batch))
        .collect();
    assert_eq!(rec_dropped, twin_dropped, "{ctx}: tombstones diverged");
    assert_eq!(
        recovered.batches(),
        twin.batches(),
        "{ctx}: batch counters diverged (acked/unacked mismatch)"
    );
    for (name, _) in recovered.views() {
        assert!(
            recovered.verify(name).unwrap_or(false),
            "{ctx}: view {name} failed verify after recovery"
        );
    }
}

/// Drive the scenario with `fault`; returns the parallel twin holding
/// exactly the acked operations. Ops rejected by an injected fault (or
/// by the post-fault poison) are *not* applied to the twin; logical
/// errors (e.g. a deterministic view drop) are applied to both sides.
fn drive(rt: &mut DurableRuntime, fault: WalFaultPlan) -> ViewRuntime {
    rt.set_checkpoint_policy(CheckpointPolicy::manual());
    rt.set_fault_plan(fault);
    let mut twin = ViewRuntime::with_limits(Limits::default());
    for op in scenario() {
        match apply_durable(rt, &op) {
            Err(DurableError::Fault(_))
            | Err(DurableError::Poisoned)
            | Err(DurableError::Io(_)) => {}
            _ => apply_twin(&mut twin, &op),
        }
    }
    twin
}

/// The clean run's WAL record boundaries, for building the cut grid.
fn record_boundaries() -> Vec<u64> {
    let dir = scratch("boundaries");
    let mut rt = DurableRuntime::open(&dir, Limits::default()).unwrap();
    rt.set_checkpoint_policy(CheckpointPolicy::manual());
    let mut bounds = vec![0u64];
    for op in scenario() {
        let _ = apply_durable(&mut rt, &op);
        let bytes = rt.durability().wal_bytes;
        if Some(&bytes) != bounds.last() {
            bounds.push(bytes);
        }
    }
    cleanup(&dir);
    bounds
}

#[test]
fn clean_reopen_equals_twin() {
    let dir = scratch("clean");
    let twin = {
        let mut rt = DurableRuntime::open(&dir, Limits::default()).unwrap();
        drive(&mut rt, WalFaultPlan::none())
    };
    let reopened = DurableRuntime::open(&dir, Limits::default()).unwrap();
    assert_same("clean reopen", reopened.runtime(), &twin);
    assert!(reopened.durability().replayed_batches > 0);
    cleanup(&dir);
}

#[test]
fn kill_matrix_every_cut_offset_recovers() {
    let bounds = record_boundaries();
    let total = *bounds.last().unwrap();
    // Cut grid: every record boundary, boundary ± 1, mid-header (+4),
    // and mid-record; deduplicated and bounded by the log length.
    let mut cuts = std::collections::BTreeSet::new();
    for window in bounds.windows(2) {
        let (start, end) = (window[0], window[1]);
        for cut in [start, start + 1, start + 4, (start + end) / 2, end - 1] {
            if cut < total {
                cuts.insert(cut);
            }
        }
    }
    assert!(cuts.len() > 40, "kill matrix too small: {}", cuts.len());
    for cut in cuts {
        let dir = scratch(&format!("cut{cut}"));
        let twin = {
            let mut rt = DurableRuntime::open(&dir, Limits::default()).unwrap();
            drive(&mut rt, WalFaultPlan::cut_wal_at(cut))
        };
        let reopened = DurableRuntime::open(&dir, Limits::default())
            .unwrap_or_else(|e| panic!("reopen after cut at byte {cut} failed: {e}"));
        assert_same(&format!("cut at byte {cut}"), reopened.runtime(), &twin);
        // The torn tail was truncated: the next open must be clean.
        drop(reopened);
        let again = DurableRuntime::open(&dir, Limits::default()).unwrap();
        assert_same(&format!("second reopen, cut {cut}"), again.runtime(), &twin);
        cleanup(&dir);
    }
}

#[test]
fn checkpoint_roundtrip_and_wal_truncation() {
    let dir = scratch("checkpoint");
    let twin = {
        let mut rt = DurableRuntime::open(&dir, Limits::default()).unwrap();
        rt.set_checkpoint_policy(CheckpointPolicy::manual());
        let mut twin = ViewRuntime::with_limits(Limits::default());
        for (i, op) in scenario().iter().enumerate() {
            apply_durable(&mut rt, op).ok();
            apply_twin(&mut twin, op);
            if i == 8 {
                rt.checkpoint().unwrap();
                assert_eq!(rt.durability().wal_bytes, 0);
                assert_eq!(rt.durability().batches_since_checkpoint, 0);
                assert!(rt.durability().snapshot_lsn > 0);
            }
        }
        assert_eq!(rt.durability().checkpoints, 1);
        twin
    };
    let reopened = DurableRuntime::open(&dir, Limits::default()).unwrap();
    assert_same("post-checkpoint reopen", reopened.runtime(), &twin);
    // Only the post-checkpoint tail was replayed.
    let stats = reopened.durability();
    assert!(stats.snapshot_lsn > 0);
    assert!(stats.lsn > stats.snapshot_lsn);
    cleanup(&dir);
}

#[test]
fn checkpoint_policy_triggers_automatically() {
    let dir = scratch("policy");
    let mut rt = DurableRuntime::open(&dir, Limits::default()).unwrap();
    rt.set_checkpoint_policy(CheckpointPolicy {
        max_wal_bytes: 0,
        max_batches: 3,
    });
    rt.load_base("R", Bag::from_values([pair(0, 0)])).unwrap();
    for i in 0..10 {
        let mut batch = UpdateBatch::new();
        batch.insert("R", pair(i, i));
        rt.commit(&batch).unwrap();
    }
    let stats = rt.durability();
    assert!(stats.checkpoints >= 3, "{stats:?}");
    assert!(stats.batches_since_checkpoint < 3, "{stats:?}");
    drop(rt);
    let reopened = DurableRuntime::open(&dir, Limits::default()).unwrap();
    assert_eq!(
        reopened
            .runtime()
            .database()
            .get("R")
            .unwrap()
            .distinct_count(),
        10 // (0,0)..(9,9); the re-inserted (0,0) only bumps multiplicity
    );
    cleanup(&dir);
}

#[test]
fn checkpoint_crash_points_recover() {
    for (tag, fault) in [
        (
            "write",
            WalFaultPlan {
                crash_checkpoint_write: true,
                ..WalFaultPlan::default()
            },
        ),
        (
            "rename",
            WalFaultPlan {
                crash_checkpoint_rename: true,
                ..WalFaultPlan::default()
            },
        ),
        (
            "truncate",
            WalFaultPlan {
                crash_checkpoint_truncate: true,
                ..WalFaultPlan::default()
            },
        ),
    ] {
        let dir = scratch(&format!("ckpt-{tag}"));
        let twin = {
            let mut rt = DurableRuntime::open(&dir, Limits::default()).unwrap();
            rt.set_checkpoint_policy(CheckpointPolicy::manual());
            let mut twin = ViewRuntime::with_limits(Limits::default());
            for op in scenario() {
                apply_durable(&mut rt, &op).ok();
                apply_twin(&mut twin, &op);
            }
            // The checkpoint crashes, but every op above was already
            // acked — recovery must lose none of them.
            rt.set_fault_plan(fault);
            assert!(matches!(rt.checkpoint(), Err(DurableError::Fault(_))));
            assert!(matches!(
                rt.commit(&UpdateBatch::new()),
                Err(DurableError::Poisoned)
            ));
            twin
        };
        let reopened = DurableRuntime::open(&dir, Limits::default()).unwrap();
        assert_same(
            &format!("checkpoint crash at {tag}"),
            reopened.runtime(),
            &twin,
        );
        // A leftover snapshot.tmp must be gone after open.
        assert!(!dir.join("snapshot.tmp").exists());
        // And the directory must still checkpoint cleanly afterwards.
        let mut reopened = reopened;
        reopened.checkpoint().unwrap();
        drop(reopened);
        let again = DurableRuntime::open(&dir, Limits::default()).unwrap();
        assert_same(
            &format!("post-recovery checkpoint, {tag}"),
            again.runtime(),
            &twin,
        );
        cleanup(&dir);
    }
}

/// Build a small two-record WAL directory and return (dir, twin of the
/// full state, twin of the state with the last batch missing).
fn two_batch_dir(tag: &str) -> (PathBuf, ViewRuntime, ViewRuntime) {
    let dir = scratch(tag);
    let mut rt = DurableRuntime::open(&dir, Limits::default()).unwrap();
    rt.set_checkpoint_policy(CheckpointPolicy::manual());
    rt.load_base("R", Bag::from_values([pair(1, 1)])).unwrap();
    rt.create_view("rev", Expr::var("R").project(&[2, 1]))
        .unwrap();
    let mut full = ViewRuntime::new();
    full.load_base("R", Bag::from_values([pair(1, 1)])).unwrap();
    full.create_view("rev", Expr::var("R").project(&[2, 1]))
        .unwrap();
    let mut prefix = full.clone();
    let mut b1 = UpdateBatch::new();
    b1.insert("R", pair(2, 2));
    rt.commit(&b1).unwrap();
    full.apply(&b1).unwrap();
    prefix.apply(&b1).unwrap();
    let mut b2 = UpdateBatch::new();
    b2.insert("R", pair(3, 3));
    rt.commit(&b2).unwrap();
    full.apply(&b2).unwrap();
    (dir, full, prefix)
}

#[test]
fn corrupt_tail_bad_crc_is_truncated() {
    let (dir, _full, prefix) = two_batch_dir("badcrc");
    let wal = dir.join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    // Flip a bit in the last record's payload: CRC mismatch.
    let last = bytes.len() - 3;
    bytes[last] ^= 0x01;
    std::fs::write(&wal, &bytes).unwrap();
    let reopened = DurableRuntime::open(&dir, Limits::default()).unwrap();
    assert_same("bad CRC tail", reopened.runtime(), &prefix);
    // The log shrank to the good prefix on disk, not just in memory.
    assert!(std::fs::metadata(&wal).unwrap().len() < bytes.len() as u64);
    cleanup(&dir);
}

#[test]
fn corrupt_tail_short_read_is_truncated() {
    let (dir, _full, prefix) = two_batch_dir("short");
    let wal = dir.join("wal.log");
    let bytes = std::fs::read(&wal).unwrap();
    // Drop the last few bytes: the final record ends mid-payload.
    std::fs::write(&wal, &bytes[..bytes.len() - 5]).unwrap();
    let reopened = DurableRuntime::open(&dir, Limits::default()).unwrap();
    assert_same("short read tail", reopened.runtime(), &prefix);
    cleanup(&dir);
}

#[test]
fn corrupt_tail_zero_filled_is_truncated() {
    let (dir, full, _prefix) = two_batch_dir("zeros");
    let wal = dir.join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    // A pre-allocated-but-never-written region after the last record.
    bytes.extend_from_slice(&[0u8; 256]);
    std::fs::write(&wal, &bytes).unwrap();
    let reopened = DurableRuntime::open(&dir, Limits::default()).unwrap();
    assert_same("zero-filled tail", reopened.runtime(), &full);
    assert_eq!(
        std::fs::metadata(&wal).unwrap().len(),
        bytes.len() as u64 - 256,
        "zero fill must be truncated away"
    );
    cleanup(&dir);
}

#[test]
fn recovery_continues_cleanly_after_truncation() {
    let (dir, _full, prefix) = two_batch_dir("continue");
    let wal = dir.join("wal.log");
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 5]).unwrap();
    // Reopen (truncates), append new commits, reopen again: the log must
    // extend cleanly from the truncation point.
    let mut twin = prefix;
    {
        let mut rt = DurableRuntime::open(&dir, Limits::default()).unwrap();
        let mut batch = UpdateBatch::new();
        batch.insert("R", pair(7, 7));
        rt.commit(&batch).unwrap();
        twin.apply(&batch).unwrap();
    }
    let reopened = DurableRuntime::open(&dir, Limits::default()).unwrap();
    assert_same("append after truncation", reopened.runtime(), &twin);
    cleanup(&dir);
}

#[test]
fn metas_survive_crash_and_checkpoint() {
    let dir = scratch("metas");
    {
        let mut rt = DurableRuntime::open(&dir, Limits::default()).unwrap();
        rt.set_meta("table:orders", Some("customer:0,qty:1"))
            .unwrap();
        rt.set_meta("doomed", Some("x")).unwrap();
        rt.set_meta("doomed", None).unwrap();
    }
    {
        let mut rt = DurableRuntime::open(&dir, Limits::default()).unwrap();
        assert_eq!(rt.meta("table:orders"), Some("customer:0,qty:1"));
        assert_eq!(rt.meta("doomed"), None);
        rt.checkpoint().unwrap();
        rt.set_meta("post", Some("ckpt")).unwrap();
    }
    let rt = DurableRuntime::open(&dir, Limits::default()).unwrap();
    assert_eq!(rt.meta("table:orders"), Some("customer:0,qty:1"));
    assert_eq!(rt.meta("post"), Some("ckpt"));
    assert_eq!(rt.metas().count(), 2);
    cleanup(&dir);
}

#[test]
fn view_runtime_open_spelling_works() {
    let dir = scratch("open-spelling");
    {
        let mut rt = ViewRuntime::open(&dir).unwrap();
        rt.load_base("R", Bag::from_values([pair(1, 2)])).unwrap();
    }
    let rt = ViewRuntime::open(&dir).unwrap();
    assert!(rt
        .runtime()
        .database()
        .get("R")
        .unwrap()
        .contains(&pair(1, 2)));
    cleanup(&dir);
}
