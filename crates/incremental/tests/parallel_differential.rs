//! The incremental engine's parallel↔serial differential: a runtime with
//! the partitioned join-delta kernels forced on (4 chunks, threshold 0)
//! replays the same (query, update-stream) pairs as a runtime pinned to
//! the serial paths, in lockstep. After every batch the base bags, view
//! snapshots, maintenance outcomes, **and the full instrumentation
//! counters** must be strictly equal — the partitioned probe commits only
//! when it can prove the serial loops would have succeeded with the same
//! output, and aborts (falling back to serial) otherwise, so `used_index`
//! accounting and budget errors cannot diverge.

use balg_core::bag::Bag;
use balg_core::eval::Limits;
use balg_core::expr::{Expr, Pred};
use balg_core::value::Value;
use balg_incremental::{UpdateBatch, ViewRuntime};
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn limits() -> Limits {
    Limits {
        max_bag_elements: 1 << 12,
        max_multiplicity_bits: 1 << 10,
        max_steps: 2_000_000,
        max_ifp_iterations: 64,
    }
}

fn pair(a: i64, b: i64) -> Value {
    Value::tuple([Value::int(a), Value::int(b)])
}

/// Equi-join shapes are where the partitioned delta kernels live, so the
/// generator leans on them: σ_{αi=αj}(A × B) over binary bases, wrapped
/// in the merges and structural operators the deltas flow through.
fn join_heavy_expr(rng: &mut StdRng, depth: usize) -> Expr {
    if depth == 0 {
        return if rng.gen_bool(0.5) {
            Expr::var("G")
        } else {
            Expr::var("H")
        };
    }
    match rng.gen_range(0..8u8) {
        0 => {
            // The spanning equi-join the engine indexes: key columns
            // straddle the product seam.
            let i = rng.gen_range(1..=2);
            let j = rng.gen_range(3..=4);
            join_heavy_expr(rng, depth - 1)
                .product(join_heavy_expr(rng, depth - 1))
                .select(
                    "x",
                    Pred::eq(Expr::var("x").attr(i), Expr::var("x").attr(j)),
                )
                .project(&[1, 4])
        }
        1 => {
            // Non-spanning predicate: forces the scan-term kernels.
            join_heavy_expr(rng, depth - 1)
                .product(join_heavy_expr(rng, depth - 1))
                .select(
                    "x",
                    Pred::eq(Expr::var("x").attr(1), Expr::var("x").attr(2)),
                )
                .project(&[3, 4])
        }
        2 => join_heavy_expr(rng, depth - 1).additive_union(join_heavy_expr(rng, depth - 1)),
        3 => join_heavy_expr(rng, depth - 1).subtract(join_heavy_expr(rng, depth - 1)),
        4 => join_heavy_expr(rng, depth - 1).max_union(join_heavy_expr(rng, depth - 1)),
        5 => join_heavy_expr(rng, depth - 1).intersect(join_heavy_expr(rng, depth - 1)),
        6 => join_heavy_expr(rng, depth - 1).dedup(),
        _ => {
            let body = Expr::tuple([Expr::var("x").attr(2), Expr::var("x").attr(1)]);
            join_heavy_expr(rng, depth - 1).map("x", body)
        }
    }
}

fn base_db() -> Vec<(&'static str, Bag)> {
    vec![
        (
            "G",
            Bag::from_values([pair(0, 1), pair(1, 2), pair(0, 1), pair(2, 0), pair(3, 3)]),
        ),
        (
            "H",
            Bag::from_values([pair(1, 0), pair(2, 2), pair(3, 1), pair(0, 3)]),
        ),
    ]
}

fn random_update(rng: &mut StdRng, runtime: &ViewRuntime, batch: &mut UpdateBatch) {
    use balg_core::zbag::ZInt;
    let name = if rng.gen_bool(0.5) { "G" } else { "H" };
    let current = runtime.database().get(name).expect("loaded base");
    let deletable: Vec<Value> = current
        .iter()
        .filter(|(value, mult)| {
            let pending = batch
                .delta(name)
                .map_or_else(ZInt::zero, |d| d.multiplicity(value));
            let headroom = ZInt::from_natural((*mult).clone()).add(&pending);
            !headroom.is_negative() && !headroom.is_zero()
        })
        .map(|(value, _)| value.clone())
        .collect();
    if rng.gen_bool(0.4) && !deletable.is_empty() {
        let victim = deletable[rng.gen_range(0..deletable.len())].clone();
        batch.delete(name, victim);
    } else {
        batch.insert(name, pair(rng.gen_range(0..5), rng.gen_range(0..5)));
    }
}

/// Replay one (query, update-stream) pair through a partitioned runtime
/// and its serial twin; every observable — registration outcome, per-batch
/// outcome, view snapshot, base bags, full stats — must match exactly.
fn run_twin_case(seed: u64, depth: usize, batches: usize, tight: bool) {
    let mut rng = StdRng::seed_from_u64(seed);
    let expr = join_heavy_expr(&mut rng, depth);
    let limits = if tight {
        Limits {
            max_bag_elements: 24,
            ..limits()
        }
    } else {
        limits()
    };
    let mut parallel = ViewRuntime::with_limits(limits.clone());
    parallel.set_parallel_threads(4);
    parallel.set_parallel_threshold(0); // partition even 1-row deltas
    let mut serial = ViewRuntime::with_limits(limits);
    serial.set_parallel(false);
    for (name, bag) in base_db() {
        parallel.load_base(name, bag.clone()).unwrap();
        serial.load_base(name, bag).unwrap();
    }
    let registered = parallel.create_view("v", expr.clone()).is_ok();
    assert_eq!(
        registered,
        serial.create_view("v", expr.clone()).is_ok(),
        "registration outcome must not depend on partitioning: {expr}"
    );
    if !registered {
        return;
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9a7a);
    for _ in 0..batches {
        let mut batch = UpdateBatch::new();
        for _ in 0..rng.gen_range(1..=3) {
            random_update(&mut rng, &parallel, &mut batch);
        }
        let a = parallel.apply(&batch);
        let b = serial.apply(&batch);
        assert_eq!(
            a.is_ok(),
            b.is_ok(),
            "maintenance outcome diverged for seed {seed}: {expr}"
        );
        if a.is_err() {
            return; // both dropped the view with the same budget verdict
        }
        assert_eq!(
            parallel.view("v").expect("view survived"),
            serial.view("v").expect("view survived"),
            "partitioned and serial propagation diverged for seed {seed}: {expr}"
        );
        assert_eq!(parallel.database(), serial.database());
        // The partitioned probe must account index usage exactly like the
        // serial loops do — the whole counter set is comparable.
        assert_eq!(
            parallel.stats(),
            serial.stats(),
            "instrumentation diverged for seed {seed}: {expr}"
        );
    }
    // Under a tight budget a from-scratch re-evaluation can exceed the
    // element limit even though every per-batch delta fit it, so verify
    // may error — but it must error (or pass) identically for the twins.
    let from_parallel = parallel.verify_all();
    let from_serial = serial.verify_all();
    assert_eq!(
        from_parallel.is_ok(),
        from_serial.is_ok(),
        "verification outcome diverged for seed {seed}: {expr}"
    );
    if let (Ok(p), Ok(s)) = (from_parallel, from_serial) {
        assert!(p && s, "verification failed for seed {seed}: {expr}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// ≥256 join-heavy (query, update-stream) pairs replayed through a
    /// 4-chunk runtime and its serial twin in lockstep.
    #[test]
    fn partitioned_and_serial_runtimes_agree(
        seed in 0u64..1_000_000,
        depth in 1usize..4,
        batches in 2usize..6,
    ) {
        run_twin_case(seed, depth, batches, false);
    }

    /// The same pairs under a hostile element budget: overflow verdicts
    /// (view dropped vs kept) and every surviving snapshot must match —
    /// the optimistic partitioned probe may never commit work the serial
    /// loops would have rejected, nor reject work they would have kept.
    #[test]
    fn partitioned_and_serial_budget_verdicts_agree(
        seed in 0u64..1_000_000,
        depth in 1usize..3,
        batches in 2usize..5,
    ) {
        run_twin_case(seed, depth, batches, true);
    }
}

/// Deterministic smoke: a spanning equi-join view maintained through a
/// burst of inserts large enough to clear the *default* threshold, at
/// several partition counts, always equals the serial result — and the
/// indexed-probe counter advances identically.
#[test]
fn partition_counts_agree_on_bulk_join_maintenance() {
    let expr = Expr::var("G")
        .product(Expr::var("H"))
        .select(
            "x",
            Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
        )
        .project(&[1, 4]);
    let mut snapshots = Vec::new();
    for chunks in [1usize, 2, 4, 7] {
        let mut rt = ViewRuntime::with_limits(Limits::default());
        if chunks == 1 {
            rt.set_parallel(false);
        } else {
            rt.set_parallel_threads(chunks);
            rt.set_parallel_threshold(0);
        }
        for (name, bag) in base_db() {
            rt.load_base(name, bag).unwrap();
        }
        rt.create_view("v", expr.clone()).unwrap();
        let mut batch = UpdateBatch::new();
        for i in 0..300i64 {
            batch.insert("G", pair(i % 9, (i * 7) % 9));
            batch.insert("H", pair((i * 5) % 9, i % 9));
        }
        rt.apply(&batch).unwrap();
        assert!(rt.verify_all().unwrap());
        snapshots.push((chunks, rt.view("v").unwrap().clone(), rt.stats()));
    }
    let (_, baseline, baseline_stats) = &snapshots[0];
    for (chunks, view, stats) in &snapshots[1..] {
        assert_eq!(view, baseline, "chunks = {chunks}");
        assert_eq!(stats, baseline_stats, "stats at chunks = {chunks}");
    }
}
