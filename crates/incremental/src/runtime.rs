//! The view runtime: named base bags plus registered views, maintained
//! under batched insert/delete updates.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use balg_core::bag::Bag;
use balg_core::eval::{EvalError, Evaluator, Limits};
use balg_core::expr::{Expr, Var};
use balg_core::index::IndexCache;
use balg_core::schema::Database;
use balg_core::value::Value;
use balg_core::zbag::{ZBag, ZBagError, ZInt};

use crate::view::{View, ViewStats};

/// A batch of signed updates against named base bags: inserts and deletes
/// accumulate into one ℤ-bag delta per base, so a batch that inserts and
/// then deletes the same tuple cancels before it ever reaches a view.
#[derive(Clone, Debug, Default)]
pub struct UpdateBatch {
    deltas: BTreeMap<Var, ZBag>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> UpdateBatch {
        UpdateBatch::default()
    }

    /// Record one insertion of `value` into `base`.
    pub fn insert(&mut self, base: &str, value: Value) {
        self.change(base, value, ZInt::one());
    }

    /// Record one deletion of `value` from `base`.
    pub fn delete(&mut self, base: &str, value: Value) {
        self.change(base, value, ZInt::neg_one());
    }

    /// Record a signed multiplicity change for `value` in `base`.
    pub fn change(&mut self, base: &str, value: Value, by: ZInt) {
        self.deltas
            .entry(Var::from(base))
            .or_default()
            .insert(value, by);
    }

    /// Merge a whole delta bag into `base`'s pending change.
    pub fn merge_delta(&mut self, base: &str, delta: &ZBag) {
        let slot = self.deltas.entry(Var::from(base)).or_default();
        *slot = slot.add(delta);
    }

    /// `true` iff every accumulated delta is zero.
    pub fn is_empty(&self) -> bool {
        self.deltas.values().all(ZBag::is_empty)
    }

    /// The accumulated delta for `base` (zero if untouched).
    pub fn delta(&self, base: &str) -> Option<&ZBag> {
        self.deltas.get(base)
    }

    /// Iterate over `(base, delta)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &ZBag)> {
        self.deltas.iter()
    }
}

/// An error from the runtime's public operations.
#[derive(Debug, Clone)]
pub enum UpdateError {
    /// An update names a base bag that was never loaded.
    UnknownBase(String),
    /// A delete would drive a base multiplicity negative — rejected
    /// before anything is committed.
    NegativeBase {
        /// The base bag name.
        base: String,
        /// The element whose multiplicity would go below zero.
        value: Value,
    },
    /// A view operation named a view that was never registered.
    UnknownView(String),
    /// A view operation named a view the runtime **dropped** after both
    /// its maintenance and the degraded full re-derivation failed. The
    /// distinction from [`UpdateError::UnknownView`] matters: a typo and
    /// a lost view must not read the same.
    ViewDropped {
        /// The dropped view's name.
        view: String,
        /// The rendered failure that killed the re-derivation.
        cause: String,
    },
    /// View registration or maintenance failed (and, for maintenance, the
    /// degraded full re-derivation failed too — the view was dropped).
    View {
        /// The view name.
        view: String,
        /// The underlying evaluation error.
        error: EvalError,
    },
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::UnknownBase(name) => write!(f, "unknown base bag {name}"),
            UpdateError::NegativeBase { base, value } => {
                write!(f, "delete from {base} would make {value} negative")
            }
            UpdateError::UnknownView(name) => write!(f, "unknown view {name}"),
            UpdateError::ViewDropped { view, cause } => {
                write!(
                    f,
                    "view {view} was dropped after failed re-derivation: {cause}"
                )
            }
            UpdateError::View { view, error } => write!(f, "view {view}: {error}"),
        }
    }
}

impl std::error::Error for UpdateError {}

/// Aggregate instrumentation across all views of a runtime.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Update batches applied.
    pub batches: u64,
    /// Views dropped after a failed degraded re-derivation and not since
    /// re-registered ([`ViewRuntime::dropped`] lists them with causes).
    pub dropped_views: u64,
    /// Summed per-view counters.
    pub views: ViewStats,
}

/// The tombstone of a dropped view: why the degraded full re-derivation
/// failed, and when. Kept by the runtime so later `verify`/read attempts
/// surface [`UpdateError::ViewDropped`] instead of a bare
/// [`UpdateError::UnknownView`] indistinguishable from a typo.
#[derive(Clone, Debug)]
pub struct DroppedView {
    /// The rendered evaluation error that killed the re-derivation.
    /// Stored as a string so tombstones survive a snapshot/replay cycle
    /// byte-identically (EvalError holds live values, not all of which
    /// need to round-trip through the WAL codec).
    pub cause: String,
    /// Value of [`RuntimeStats::batches`] when the view was dropped.
    pub at_batch: u64,
}

/// Named base bags plus incrementally maintained views.
///
/// The lifecycle is: [`ViewRuntime::load_base`] the database,
/// [`ViewRuntime::create_view`] standing queries, then stream
/// [`ViewRuntime::apply`] batches; [`ViewRuntime::view`] reads are always
/// consistent with the current database, which
/// [`ViewRuntime::verify`] re-checks against a full re-evaluation.
#[derive(Clone, Debug)]
pub struct ViewRuntime {
    db: Database,
    limits: Limits,
    views: BTreeMap<String, View>,
    /// Tombstones for views dropped after a failed re-derivation, cleared
    /// when a view of the same name is registered again.
    dropped: BTreeMap<String, DroppedView>,
    batches: u64,
    /// Per-key join indexes over base bags (and join-node snapshots),
    /// persistent across batches: base indexes are patched alongside the
    /// base on every commit instead of being rebuilt.
    indexes: IndexCache,
    /// Whether the fused equi-join propagates through index probes
    /// (default) or scans — the differential suites run both.
    use_indexes: bool,
    /// Partitioned-execution override applied to every maintenance
    /// evaluator; `None` inherits the process-wide default
    /// ([`balg_core::par::Parallel::from_global`]). Every setting
    /// maintains identical views — only scheduling differs.
    parallel: Option<balg_core::par::Parallel>,
}

impl Default for ViewRuntime {
    fn default() -> ViewRuntime {
        ViewRuntime::new()
    }
}

impl ViewRuntime {
    /// An empty runtime with default evaluation budgets.
    pub fn new() -> ViewRuntime {
        ViewRuntime::with_limits(Limits::default())
    }

    /// An empty runtime with explicit budgets (shared by initial
    /// evaluation, fallback re-derivation, and consistency checks).
    pub fn with_limits(limits: Limits) -> ViewRuntime {
        ViewRuntime::from_database(Database::new(), limits)
    }

    /// A runtime over an existing database.
    pub fn from_database(db: Database, limits: Limits) -> ViewRuntime {
        ViewRuntime {
            db,
            limits,
            views: BTreeMap::new(),
            dropped: BTreeMap::new(),
            batches: 0,
            indexes: IndexCache::new(),
            use_indexes: true,
            parallel: None,
        }
    }

    /// Bound the per-key index cache to `capacity` entries (minimum 1),
    /// evicting least-recently-used entries if over. A server hosting
    /// many concurrent sessions raises this so the working set of join
    /// indexes survives ([`balg_core::index::IndexCache::set_capacity`]).
    pub fn set_index_capacity(&mut self, capacity: usize) {
        self.indexes.set_capacity(capacity);
    }

    /// The index cache's current capacity bound.
    pub fn index_capacity(&self) -> usize {
        self.indexes.capacity()
    }

    /// Enable or disable the per-key index fast paths. Both settings
    /// maintain identical views — the differential suites run every
    /// (query, update-stream) pair both ways and require strict equality
    /// — but with indexing off the fused equi-join falls back to
    /// scanning the unchanged operand ([`ViewStats::scanned_join_ops`]).
    /// Disabling drops any cached indexes.
    pub fn set_indexing(&mut self, enabled: bool) {
        self.use_indexes = enabled;
        if !enabled {
            self.indexes.clear();
        }
    }

    /// Whether the index fast paths are enabled.
    pub fn indexing(&self) -> bool {
        self.use_indexes
    }

    /// Enable or disable partitioned parallel execution for maintenance
    /// passes. Enabling adopts the process-wide default chunk count
    /// ([`balg_core::pool::default_parallelism`]); disabling pins every
    /// maintenance evaluator — and the fused equi-join's optimistic
    /// partitioned delta — to the serial paths. Both settings maintain
    /// identical views, errors, and stats; only scheduling differs.
    pub fn set_parallel(&mut self, enabled: bool) {
        let mut p = balg_core::par::Parallel::from_global();
        if !enabled {
            p.chunks = 1;
        }
        self.parallel = Some(p);
    }

    /// Pin the maintenance partition count directly (values `<= 1`
    /// disable parallel execution). Partitioning is a pure function of
    /// this count, so differential suites can compare any two settings.
    pub fn set_parallel_threads(&mut self, n: usize) {
        let mut p = self
            .parallel
            .unwrap_or_else(balg_core::par::Parallel::from_global);
        p.chunks = n.max(1);
        self.parallel = Some(p);
    }

    /// Override the minimum delta size before maintenance partitions
    /// (tests drop this to `0` to force the partitioned join delta onto
    /// small updates).
    pub fn set_parallel_threshold(&mut self, n: usize) {
        let mut p = self
            .parallel
            .unwrap_or_else(balg_core::par::Parallel::from_global);
        p.threshold = n;
        self.parallel = Some(p);
    }

    /// The effective maintenance partition count (`1` means serial).
    pub fn parallel_chunks(&self) -> usize {
        self.parallel
            .unwrap_or_else(balg_core::par::Parallel::from_global)
            .chunks
    }

    /// Join-index cache statistics `(hits, builds)`.
    pub fn index_stats(&self) -> (u64, u64) {
        (self.indexes.hits(), self.indexes.builds())
    }

    /// Full join-index cache statistics
    /// `(hits, misses, builds, evictions)` — the `:stats` surface.
    pub fn index_cache_stats(&self) -> (u64, u64, u64, u64) {
        (
            self.indexes.hits(),
            self.indexes.misses(),
            self.indexes.builds(),
            self.indexes.evictions(),
        )
    }

    /// The current database (bases only; views live beside it).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The evaluation budgets in force.
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// Load (or wholesale replace) a base bag. Views reading it are
    /// re-derived from scratch — this is a rebase, not an update; stream
    /// changes through [`ViewRuntime::apply`] instead when a delta is
    /// known. Every dependent view is rebased even if an earlier one
    /// fails; a view whose re-derivation fails is **dropped** (it could
    /// only serve results for the replaced base) and the first failure is
    /// reported.
    pub fn load_base(&mut self, name: &str, bag: Bag) -> Result<(), UpdateError> {
        // A wholesale replacement invalidates any indexes over the old
        // representation (unless the new bag shares it, in which case the
        // entries stay valid by construction).
        if let Some(old) = self.db.get(name) {
            if !old.shares_representation(&bag) {
                self.indexes.invalidate(old);
            }
        }
        self.db.insert(name, bag);
        let var = Var::from(name);
        let mut failed: Vec<(String, EvalError)> = Vec::new();
        for (view_name, view) in &mut self.views {
            if view.reads().contains(&var) {
                if let Err(error) =
                    view.reinit(&self.db, &self.limits, self.use_indexes, self.parallel)
                {
                    failed.push((view_name.clone(), error));
                }
            }
        }
        self.drop_failed(failed)
    }

    /// Remove views whose re-derivation failed (their snapshots would be
    /// silently stale), leave a [`DroppedView`] tombstone for each, and
    /// surface the first failure.
    fn drop_failed(&mut self, failed: Vec<(String, EvalError)>) -> Result<(), UpdateError> {
        let mut first: Option<UpdateError> = None;
        for (view, error) in failed {
            self.views.remove(&view);
            self.dropped.insert(
                view.clone(),
                DroppedView {
                    cause: error.to_string(),
                    at_batch: self.batches,
                },
            );
            first.get_or_insert(UpdateError::View { view, error });
        }
        match first {
            Some(error) => Err(error),
            None => Ok(()),
        }
    }

    /// Tombstones of dropped views, in name order.
    pub fn dropped(&self) -> impl Iterator<Item = (&str, &DroppedView)> {
        self.dropped.iter().map(|(n, d)| (n.as_str(), d))
    }

    /// The error a missing view name should surface:
    /// [`UpdateError::ViewDropped`] when the runtime dropped it,
    /// [`UpdateError::UnknownView`] when it never existed.
    pub fn missing_view_error(&self, name: &str) -> UpdateError {
        match self.dropped.get(name) {
            Some(record) => UpdateError::ViewDropped {
                view: name.to_owned(),
                cause: record.cause.clone(),
            },
            None => UpdateError::UnknownView(name.to_owned()),
        }
    }

    /// Register (or replace) a maintained view for a compiled BALG
    /// expression. The initial result is computed immediately.
    pub fn create_view(&mut self, name: &str, expr: Expr) -> Result<&Bag, UpdateError> {
        let view = View::new(
            expr,
            &self.db,
            &self.limits,
            self.use_indexes,
            self.parallel,
        )
        .map_err(|error| UpdateError::View {
            view: name.to_owned(),
            error,
        })?;
        self.views.insert(name.to_owned(), view);
        // A fresh registration supersedes any tombstone under this name.
        self.dropped.remove(name);
        Ok(self.views[name].result())
    }

    /// Remove a view (and any dropped-view tombstone under its name).
    /// Returns `true` if a live view existed.
    pub fn drop_view(&mut self, name: &str) -> bool {
        self.dropped.remove(name);
        self.views.remove(name).is_some()
    }

    /// The maintained result of a view.
    pub fn view(&self, name: &str) -> Option<&Bag> {
        self.views.get(name).map(View::result)
    }

    /// Iterate over `(name, view)` pairs.
    pub fn views(&self) -> impl Iterator<Item = (&str, &View)> {
        self.views.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Phase-1 validation of a batch without mutating anything: every
    /// base must exist and every deletion must be covered, so a commit of
    /// the batch cannot fail halfway (all-or-nothing semantics without
    /// staging copies). Returns the set of affected base names. The
    /// durability layer calls this *before* logging a batch, so the WAL
    /// only ever contains batches that will commit on replay.
    pub fn validate(&self, batch: &UpdateBatch) -> Result<BTreeSet<Var>, UpdateError> {
        let mut affected: BTreeSet<Var> = BTreeSet::new();
        for (name, delta) in batch.iter() {
            if delta.is_empty() {
                continue;
            }
            let base = self
                .db
                .get(name)
                .ok_or_else(|| UpdateError::UnknownBase(name.to_string()))?;
            for (value, mult) in delta.iter() {
                if mult.is_negative() && &base.multiplicity(value) < mult.magnitude() {
                    return Err(UpdateError::NegativeBase {
                        base: name.to_string(),
                        value: value.clone(),
                    });
                }
            }
            affected.insert(name.clone());
        }
        Ok(affected)
    }

    /// Apply one update batch: commit every base delta (all-or-nothing
    /// validation first), then maintain every affected view. Views whose
    /// read set is disjoint from the batch are not touched at all.
    pub fn apply(&mut self, batch: &UpdateBatch) -> Result<(), UpdateError> {
        if batch.is_empty() {
            return Ok(());
        }
        let affected = self.validate(batch)?;
        // Phase 2 — commit. Taking each bag out of the database gives the
        // patch unique ownership, so a small delta edits the sorted slice
        // in place instead of rebuilding (or copy-on-write cloning) it.
        // Cached indexes over the base are taken out first — dropping the
        // cache's owner clone is what restores unique ownership — patched
        // with the same delta, and restored under the new representation.
        for name in &affected {
            let base = self.db.take(name).expect("validated above");
            let delta = batch.delta(name).expect("affected implies a delta");
            let taken = self.indexes.take_for_patch(&base);
            let new =
                delta
                    .apply_into(base)
                    .map_err(|ZBagError::NegativeMultiplicity { value }| {
                        UpdateError::NegativeBase {
                            base: name.to_string(),
                            value,
                        }
                    })?;
            for mut index in taken {
                // A mismatch (delta rows the index cannot reconcile)
                // drops the index; it is rebuilt lazily on the next probe.
                if index.patch(delta).is_ok() {
                    self.indexes.restore(&new, index);
                }
            }
            self.db.insert(name, new);
        }
        // Maintain affected views; on a maintenance failure degrade to a
        // full re-derivation, and only if that fails too drop the view
        // (its snapshot would otherwise be silently stale). One view's
        // failure must not leave the *other* affected views unmaintained,
        // so the loop always runs to completion.
        let mut failed: Vec<(String, EvalError)> = Vec::new();
        let obs = crate::obs::incr_obs();
        for (view_name, view) in &mut self.views {
            if view.reads().is_disjoint(&affected) {
                continue;
            }
            let before = obs.map(|_| view.stats().clone());
            let start = obs.map(|_| std::time::Instant::now());
            if view
                .maintain(
                    &batch.deltas,
                    &affected,
                    &self.db,
                    &self.limits,
                    &mut self.indexes,
                    self.use_indexes,
                    self.parallel,
                )
                .is_err()
            {
                if let Err(error) =
                    view.reinit(&self.db, &self.limits, self.use_indexes, self.parallel)
                {
                    failed.push((view_name.clone(), error));
                }
            }
            if let (Some(obs), Some(before), Some(start)) = (obs, before, start) {
                obs.maintain_duration
                    .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
                let after = view.stats();
                obs.linear_delta_ops
                    .add(after.linear_delta_ops - before.linear_delta_ops);
                obs.fallback_recomputes
                    .add(after.fallback_recomputes - before.fallback_recomputes);
                obs.scalar_recomputes
                    .add(after.scalar_recomputes - before.scalar_recomputes);
                obs.full_reinits
                    .add(after.full_reinits - before.full_reinits);
                obs.indexed_join_ops
                    .add(after.indexed_join_ops - before.indexed_join_ops);
                obs.scanned_join_ops
                    .add(after.scanned_join_ops - before.scanned_join_ops);
            }
        }
        self.batches += 1;
        if let Some(obs) = obs {
            obs.batches.inc();
        }
        self.drop_failed(failed)
    }

    /// Consistency check: re-evaluate the view's expression from scratch
    /// against the current database and compare with the maintained
    /// result. `Ok(true)` means they agree exactly.
    pub fn verify(&self, name: &str) -> Result<bool, UpdateError> {
        let view = self
            .views
            .get(name)
            .ok_or_else(|| self.missing_view_error(name))?;
        let mut ev = Evaluator::new(&self.db, self.limits.clone());
        let fresh = ev
            .eval_bag(view.expr())
            .map_err(|error| UpdateError::View {
                view: name.to_owned(),
                error,
            })?;
        Ok(&fresh == view.result())
    }

    /// [`ViewRuntime::verify`] over every registered view. A dropped view
    /// is *not* silently consistent: if any tombstone exists the check
    /// fails with its [`UpdateError::ViewDropped`] — otherwise a fleet of
    /// green verifies could hide a view that quietly vanished.
    pub fn verify_all(&self) -> Result<bool, UpdateError> {
        if let Some((name, _)) = self.dropped.iter().next() {
            return Err(self.missing_view_error(name));
        }
        for name in self.views.keys() {
            if !self.verify(name)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Batches applied so far — the recovery layer's replay position.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Restore the batch counter after a snapshot load (durability layer
    /// only): replayed WAL batches must resume numbering where the
    /// snapshotted runtime left off, not at zero.
    pub(crate) fn restore_batches(&mut self, batches: u64) {
        self.batches = batches;
    }

    /// Restore a dropped-view tombstone from a snapshot (durability layer
    /// only). Bypasses `drop_failed` — the view is already gone; only the
    /// record survives.
    pub(crate) fn restore_tombstone(&mut self, name: &str, record: DroppedView) {
        self.dropped.insert(name.to_owned(), record);
    }

    /// Aggregate instrumentation.
    pub fn stats(&self) -> RuntimeStats {
        let views = self
            .views
            .values()
            .fold(ViewStats::default(), |acc, v| acc.merged(v.stats()));
        RuntimeStats {
            batches: self.batches,
            dropped_views: self.dropped.len() as u64,
            views,
        }
    }
}

/// The `:stats` report shared by every surface (balg-cli's incremental
/// session, balg-server's writer, and the serial twin): the delta-engine
/// counters, the join-index cache line, one line per dropped view with
/// its cause, and — when the runtime is durable — the WAL position and
/// replay counters. One renderer, so the text is byte-equal across
/// surfaces by construction.
pub fn render_stats(rt: &ViewRuntime, durability: Option<&crate::durable::Durability>) -> String {
    let stats = rt.stats();
    let mut out = format!(
        "{} batches — {} linear delta ops ({} indexed joins, {} scanned joins), {} non-linear fallbacks, {} scalar recomputes, {} full re-inits",
        stats.batches,
        stats.views.linear_delta_ops,
        stats.views.indexed_join_ops,
        stats.views.scanned_join_ops,
        stats.views.fallback_recomputes,
        stats.views.scalar_recomputes,
        stats.views.full_reinits
    );
    let (hits, misses, builds, evictions) = rt.index_cache_stats();
    out.push_str(&format!(
        "\nindex cache: {hits} hits, {misses} misses, {builds} builds, {evictions} evictions"
    ));
    // A dropped view is an incident, not a statistic — name it and say
    // why it was lost.
    for (name, record) in rt.dropped() {
        out.push_str(&format!(
            "\ndropped view {name} (batch {}): {}",
            record.at_batch, record.cause
        ));
    }
    // In-memory runtimes have no durability line at all, so a serial
    // twin and a memory-mode server still render byte-identically.
    if let Some(d) = durability {
        out.push_str(&format!(
            "\ndurable: lsn {}, snapshot lsn {}, {} WAL bytes since checkpoint, {} batches replayed at open, {} checkpoints",
            d.lsn, d.snapshot_lsn, d.wal_bytes, d.replayed_batches, d.checkpoints
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use balg_core::expr::Pred;
    use balg_core::natural::Natural;

    fn sym(s: &str) -> Value {
        Value::sym(s)
    }

    fn edge(a: &str, b: &str) -> Value {
        Value::tuple([sym(a), sym(b)])
    }

    fn graph(edges: &[(&str, &str)]) -> Bag {
        Bag::from_values(edges.iter().map(|(a, b)| edge(a, b)))
    }

    fn checked(runtime: &ViewRuntime) {
        assert!(runtime.verify_all().unwrap(), "a view drifted");
    }

    #[test]
    fn linear_chain_is_maintained_without_fallback() {
        let mut runtime = ViewRuntime::new();
        runtime
            .load_base("G", graph(&[("a", "b"), ("b", "c")]))
            .unwrap();
        let q = Expr::var("G")
            .select(
                "x",
                Pred::eq(Expr::var("x").attr(1), Expr::lit(sym("a"))).not(),
            )
            .project(&[2, 1]);
        runtime.create_view("rev", q).unwrap();
        assert_eq!(runtime.view("rev").unwrap().distinct_count(), 1);

        let mut batch = UpdateBatch::new();
        batch.insert("G", edge("c", "d"));
        batch.insert("G", edge("c", "d"));
        batch.delete("G", edge("b", "c"));
        runtime.apply(&batch).unwrap();

        let rev = runtime.view("rev").unwrap();
        assert_eq!(
            rev.multiplicity(&edge("d", "c")),
            Natural::from(2u64),
            "{rev}"
        );
        assert!(!rev.contains(&edge("c", "b")));
        checked(&runtime);
        let stats = runtime.stats();
        assert!(stats.views.linear_delta_ops > 0);
        assert_eq!(stats.views.fallback_recomputes, 0);
    }

    #[test]
    fn product_uses_the_bilinear_rule() {
        let mut runtime = ViewRuntime::new();
        runtime.load_base("R", graph(&[("a", "b")])).unwrap();
        runtime.load_base("S", graph(&[("x", "y")])).unwrap();
        runtime
            .create_view("prod", Expr::var("R").product(Expr::var("S")))
            .unwrap();

        let mut batch = UpdateBatch::new();
        batch.insert("R", edge("c", "d"));
        batch.insert("S", edge("u", "v"));
        runtime.apply(&batch).unwrap();
        assert_eq!(runtime.view("prod").unwrap().distinct_count(), 4);
        checked(&runtime);
        assert_eq!(runtime.stats().views.fallback_recomputes, 0);

        let mut batch = UpdateBatch::new();
        batch.delete("R", edge("a", "b"));
        runtime.apply(&batch).unwrap();
        assert_eq!(runtime.view("prod").unwrap().distinct_count(), 2);
        checked(&runtime);
    }

    #[test]
    fn nonlinear_operators_fall_back_and_count_it() {
        let mut runtime = ViewRuntime::new();
        runtime
            .load_base("R", graph(&[("a", "b"), ("a", "b")]))
            .unwrap();
        runtime.load_base("S", graph(&[("a", "b")])).unwrap();
        runtime
            .create_view("diff", Expr::var("R").subtract(Expr::var("S")))
            .unwrap();
        assert_eq!(
            runtime.view("diff").unwrap().cardinality(),
            Natural::from(1u64)
        );

        let mut batch = UpdateBatch::new();
        batch.insert("S", edge("a", "b"));
        runtime.apply(&batch).unwrap();
        assert!(runtime.view("diff").unwrap().is_empty());
        checked(&runtime);
        assert!(runtime.stats().views.fallback_recomputes > 0);
    }

    #[test]
    fn affected_lambda_body_forces_fallback() {
        // σ with a SubBag predicate against a *changing* base: the
        // per-element linear rule is unsound, so the engine must re-derive.
        let mut runtime = ViewRuntime::new();
        runtime
            .load_base("B", Bag::from_values([sym("p"), sym("q")]))
            .unwrap();
        runtime
            .load_base("C", Bag::from_values([sym("p")]))
            .unwrap();
        let q = Expr::var("B").select(
            "x",
            Pred::SubBag(Expr::var("x").singleton(), Expr::var("C")),
        );
        runtime.create_view("subs", q).unwrap();
        assert_eq!(runtime.view("subs").unwrap().distinct_count(), 1);

        let mut batch = UpdateBatch::new();
        batch.insert("C", sym("q"));
        runtime.apply(&batch).unwrap();
        assert_eq!(runtime.view("subs").unwrap().distinct_count(), 2);
        checked(&runtime);
        assert!(runtime.stats().views.fallback_recomputes > 0);
    }

    #[test]
    fn untouched_views_are_skipped() {
        let mut runtime = ViewRuntime::new();
        runtime.load_base("R", graph(&[("a", "b")])).unwrap();
        runtime.load_base("S", graph(&[("x", "y")])).unwrap();
        runtime
            .create_view("r_only", Expr::var("R").dedup())
            .unwrap();
        let mut batch = UpdateBatch::new();
        batch.insert("S", edge("u", "v"));
        runtime.apply(&batch).unwrap();
        // The only view reads R; an S-only batch must do zero view work.
        let stats = runtime.stats();
        assert_eq!(stats.views.linear_delta_ops, 0);
        assert_eq!(stats.views.fallback_recomputes, 0);
        checked(&runtime);
    }

    #[test]
    fn negative_base_is_rejected_atomically() {
        let mut runtime = ViewRuntime::new();
        runtime.load_base("R", graph(&[("a", "b")])).unwrap();
        runtime.load_base("S", graph(&[("x", "y")])).unwrap();
        runtime
            .create_view("all", Expr::var("R").additive_union(Expr::var("S")))
            .unwrap();
        let before = runtime.view("all").unwrap().clone();

        let mut batch = UpdateBatch::new();
        batch.insert("R", edge("c", "d")); // valid part...
        batch.delete("S", edge("not", "there")); // ...invalid part
        assert!(matches!(
            runtime.apply(&batch),
            Err(UpdateError::NegativeBase { .. })
        ));
        // Nothing committed: neither base nor view moved.
        assert_eq!(runtime.view("all").unwrap(), &before);
        assert!(!runtime
            .database()
            .get("R")
            .unwrap()
            .contains(&edge("c", "d")));
        checked(&runtime);
    }

    #[test]
    fn inserts_and_deletes_cancel_within_a_batch() {
        let mut runtime = ViewRuntime::new();
        runtime.load_base("R", graph(&[("a", "b")])).unwrap();
        runtime.create_view("v", Expr::var("R").dedup()).unwrap();
        let mut batch = UpdateBatch::new();
        batch.insert("R", edge("z", "z"));
        batch.delete("R", edge("z", "z"));
        assert!(batch.is_empty());
        runtime.apply(&batch).unwrap();
        assert_eq!(runtime.stats().batches, 0); // empty batches are free
        checked(&runtime);
    }

    #[test]
    fn unknown_base_and_view_errors() {
        let mut runtime = ViewRuntime::new();
        let mut batch = UpdateBatch::new();
        batch.insert("missing", sym("a"));
        assert!(matches!(
            runtime.apply(&batch),
            Err(UpdateError::UnknownBase(_))
        ));
        assert!(matches!(
            runtime.verify("missing"),
            Err(UpdateError::UnknownView(_))
        ));
        assert!(matches!(
            runtime.create_view("v", Expr::var("missing")),
            Err(UpdateError::View { .. })
        ));
    }

    #[test]
    fn one_failing_view_does_not_stall_the_others() {
        // "a_explodes" (powerset) blows its budget after the update and
        // is dropped; "z_survives" (later in name order) must still be
        // maintained — never left silently serving stale rows.
        let limits = Limits {
            max_bag_elements: 16,
            ..Limits::default()
        };
        let mut runtime = ViewRuntime::with_limits(limits);
        runtime
            .load_base("R", Bag::from_values((0..4).map(Value::int)))
            .unwrap();
        runtime
            .create_view("a_explodes", Expr::var("R").powerset())
            .unwrap();
        runtime
            .create_view("z_survives", Expr::var("R").dedup())
            .unwrap();
        let mut batch = UpdateBatch::new();
        batch.insert("R", Value::int(100)); // powerset 32 > 16
        assert!(matches!(
            runtime.apply(&batch),
            Err(UpdateError::View { view, .. }) if view == "a_explodes"
        ));
        // The base committed, the failing view is gone, the survivor is
        // maintained and consistent.
        assert!(runtime
            .database()
            .get("R")
            .unwrap()
            .contains(&Value::int(100)));
        assert!(runtime.view("a_explodes").is_none());
        assert_eq!(runtime.view("z_survives").unwrap().distinct_count(), 5);
        assert!(runtime.verify("z_survives").unwrap());

        // load_base has the same policy: a failing rebase drops the view
        // but still rebases the rest.
        runtime
            .create_view("a_explodes", Expr::var("R").dedup())
            .unwrap();
        runtime
            .create_view("m_powerset", Expr::var("R").powerset().dedup())
            .unwrap_err(); // 32 subbags > 16 — rejected at registration
        runtime
            .load_base("R", Bag::from_values((0..3).map(Value::int)))
            .unwrap();
        assert!(runtime.verify_all().unwrap());
    }

    #[test]
    fn dropped_views_are_reported_not_unknown() {
        // Regression: a view dropped after a failed degraded
        // re-derivation used to surface a bare UnknownView on later
        // reads — indistinguishable from a typo. It must now carry its
        // tombstone: a dedicated ViewDropped { cause } from verify, a
        // failing verify_all, a dropped_views stats count, and an
        // enumerable cause via dropped().
        let limits = Limits {
            max_bag_elements: 16,
            ..Limits::default()
        };
        let mut runtime = ViewRuntime::with_limits(limits);
        runtime
            .load_base("R", Bag::from_values((0..4).map(Value::int)))
            .unwrap();
        runtime
            .create_view("explodes", Expr::var("R").powerset())
            .unwrap();
        let mut batch = UpdateBatch::new();
        batch.insert("R", Value::int(100)); // powerset 32 > 16
        assert!(runtime.apply(&batch).is_err());

        // verify: tombstoned, with the cause, not UnknownView.
        let err = runtime.verify("explodes").unwrap_err();
        assert!(
            matches!(&err, UpdateError::ViewDropped { view, cause }
                if view == "explodes" && !cause.is_empty()),
            "{err:?}"
        );
        assert!(err.to_string().contains("dropped"), "{err}");
        // A never-registered name still reads as a typo.
        assert!(matches!(
            runtime.verify("tpyo"),
            Err(UpdateError::UnknownView(_))
        ));
        // verify_all refuses to call a runtime with a lost view green.
        assert!(matches!(
            runtime.verify_all(),
            Err(UpdateError::ViewDropped { .. })
        ));
        // Reported in stats and enumerable with cause + drop batch.
        assert_eq!(runtime.stats().dropped_views, 1);
        let (name, record) = runtime.dropped().next().unwrap();
        assert_eq!(name, "explodes");
        assert_eq!(record.at_batch, runtime.stats().batches);

        // Re-registering under the same name clears the tombstone...
        runtime
            .create_view("explodes", Expr::var("R").dedup())
            .unwrap();
        assert_eq!(runtime.stats().dropped_views, 0);
        assert!(runtime.verify_all().unwrap());
        // ...and so does an explicit drop.
        runtime.drop_view("explodes");
        runtime
            .create_view("explodes", Expr::var("R").powerset())
            .unwrap_err();
        // A failed *registration* is not a drop: no tombstone.
        assert!(matches!(
            runtime.verify("explodes"),
            Err(UpdateError::UnknownView(_))
        ));
    }

    #[test]
    fn load_base_rebases_dependent_views() {
        let mut runtime = ViewRuntime::new();
        runtime.load_base("R", graph(&[("a", "b")])).unwrap();
        runtime
            .create_view("rev", Expr::var("R").project(&[2, 1]))
            .unwrap();
        runtime
            .load_base("R", graph(&[("p", "q"), ("q", "r")]))
            .unwrap();
        let rev = runtime.view("rev").unwrap();
        assert!(rev.contains(&edge("q", "p")));
        assert_eq!(rev.distinct_count(), 2);
        checked(&runtime);
        assert!(runtime.stats().views.full_reinits > 0);
    }
}
