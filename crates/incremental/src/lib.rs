//! # balg-incremental — incremental view maintenance over BALG
//!
//! Answers a standing BALG query after a small database update in time
//! proportional to the **delta**, not the database — the classic
//! IVM/Z-set construction (cf. differential-dataflow-style engines),
//! grounded directly in the paper's Section 3 operator set. The paper's
//! own observation makes this algebraic: bags carry multiplicities, and
//! extending the multiplicity monoid ℕ to the group ℤ
//! ([`balg_core::zbag::ZBag`]) turns every insert/delete batch into a
//! first-class *delta bag* that flows through the operators.
//!
//! ## The linear / non-linear operator split
//!
//! For the **linear** operators the maintained identity
//! `F(B ⊕ δ) = F(B) ⊕ F(δ)` (bilinear for `×`) updates a view purely from
//! deltas:
//!
//! | operator | derivative rule |
//! |----------|-----------------|
//! | `∪⁺` | `δ(A ∪⁺ B) = δA ⊕ δB` |
//! | `MAP_φ` / `σ_φ` / `π` | push each delta element through `φ` (valid while `φ` reads no updated bag) |
//! | `×` | `δ(A×B) = δA×B ⊕ A×δB ⊕ δA×δB` |
//! | `δ` (destroy) | `δ` of the delta, inner bags scaled by signed outer multiplicity |
//! | scalar constructs (`τ`, `β`, `αᵢ`) | cheap re-derivation of the single value |
//!
//! The **non-linear** operators — monus `−`, `ε`, `∪` (max), `∩` (min),
//! `nest`, powerset/powerbag, `IFP`, and `MAP`/`σ` whose λ body reads an
//! updated bag (e.g. a `SubBag` predicate against a changing base) — fall
//! back to re-derivation of **only the affected subtree**: every node
//! memoizes its value, so the fallback recomputes one operator over its
//! children's (already incrementally-maintained) snapshots and
//! re-expresses the result as a delta ([`balg_core::zbag::ZBag::diff`])
//! for its parents. Untouched subtrees are skipped entirely via free-name
//! analysis. Fallbacks are counted by an instrumentation counter
//! ([`ViewStats::fallback_recomputes`]) so tests can assert which path
//! ran.
//!
//! ## Quick tour
//!
//! ```
//! use balg_core::prelude::*;
//! use balg_incremental::prelude::*;
//!
//! let mut runtime = ViewRuntime::new();
//! runtime.load_base("G", Bag::from_values([
//!     Value::tuple([Value::sym("a"), Value::sym("b")]),
//! ])).unwrap();
//! runtime.create_view("rev", Expr::var("G").project(&[2, 1])).unwrap();
//!
//! let mut batch = UpdateBatch::new();
//! batch.insert("G", Value::tuple([Value::sym("b"), Value::sym("c")]));
//! runtime.apply(&batch).unwrap();
//!
//! let rev = runtime.view("rev").unwrap();
//! assert!(rev.contains(&Value::tuple([Value::sym("c"), Value::sym("b")])));
//! assert!(runtime.verify("rev").unwrap());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod durable;
pub(crate) mod obs;
pub mod runtime;
pub mod view;

/// Commonly used items, re-exported.
pub mod prelude {
    pub use crate::durable::{
        AnyRuntime, CheckpointPolicy, Durability, DurableError, DurableRuntime, WalFaultPlan,
        WalRecord,
    };
    pub use crate::runtime::{
        render_stats, DroppedView, RuntimeStats, UpdateBatch, UpdateError, ViewRuntime,
    };
    pub use crate::view::{View, ViewStats};
}

pub use prelude::*;
