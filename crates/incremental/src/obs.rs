//! Lazily-resolved handles into the process-global metrics registry.
//!
//! Every counter here mirrors a [`crate::view::ViewStats`] field (plus
//! the per-batch aggregates), so the Prometheus surface and `:stats`
//! agree by construction. The absent-registry answer is deliberately
//! **not** cached: a process that calls [`balg_obs::install_global`]
//! mid-life starts receiving samples at the next batch.

use std::sync::OnceLock;

use balg_obs::{Counter, Histogram};

/// Registered handles for the incremental engine's metrics.
pub(crate) struct IncrObs {
    /// `balg_update_batches_total`.
    pub(crate) batches: Counter,
    /// `balg_maintain_duration_ns` — one sample per (batch, affected view).
    pub(crate) maintain_duration: Histogram,
    /// `balg_linear_delta_ops_total`.
    pub(crate) linear_delta_ops: Counter,
    /// `balg_fallback_recomputes_total`.
    pub(crate) fallback_recomputes: Counter,
    /// `balg_scalar_recomputes_total`.
    pub(crate) scalar_recomputes: Counter,
    /// `balg_full_reinits_total`.
    pub(crate) full_reinits: Counter,
    /// `balg_indexed_join_ops_total`.
    pub(crate) indexed_join_ops: Counter,
    /// `balg_scanned_join_ops_total`.
    pub(crate) scanned_join_ops: Counter,
    /// `balg_irregular_join_fallbacks_total`.
    pub(crate) irregular_join_fallbacks: Counter,
}

/// Registered handles for the durability layer's metrics.
pub(crate) struct DurObs {
    /// `balg_wal_fsync_duration_ns`.
    pub(crate) fsync_duration: Histogram,
    /// `balg_wal_bytes_total`.
    pub(crate) wal_bytes: Counter,
    /// `balg_checkpoint_duration_ns`.
    pub(crate) checkpoint_duration: Histogram,
    /// `balg_checkpoints_total`.
    pub(crate) checkpoints: Counter,
    /// `balg_replayed_batches_total`.
    pub(crate) replayed_batches: Counter,
}

static INCR_OBS: OnceLock<IncrObs> = OnceLock::new();
static DUR_OBS: OnceLock<DurObs> = OnceLock::new();

/// The durability layer's metric handles, or `None` while no
/// process-global registry is installed.
pub(crate) fn dur_obs() -> Option<&'static DurObs> {
    if let Some(obs) = DUR_OBS.get() {
        return Some(obs);
    }
    let registry = balg_obs::global()?;
    let _ = DUR_OBS.set(DurObs {
        fsync_duration: registry.histogram(
            "balg_wal_fsync_duration_ns",
            "WAL fsync latency, nanoseconds",
        ),
        wal_bytes: registry.counter(
            "balg_wal_bytes_total",
            "Bytes appended to the write-ahead log",
        ),
        checkpoint_duration: registry.histogram(
            "balg_checkpoint_duration_ns",
            "Checkpoint (snapshot + WAL truncate) duration, nanoseconds",
        ),
        checkpoints: registry.counter("balg_checkpoints_total", "Checkpoints completed"),
        replayed_batches: registry.counter(
            "balg_replayed_batches_total",
            "Update batches replayed from the WAL at open",
        ),
    });
    DUR_OBS.get()
}

/// The engine's metric handles, or `None` while no process-global
/// registry is installed.
pub(crate) fn incr_obs() -> Option<&'static IncrObs> {
    if let Some(obs) = INCR_OBS.get() {
        return Some(obs);
    }
    let registry = balg_obs::global()?;
    let _ = INCR_OBS.set(IncrObs {
        batches: registry.counter(
            "balg_update_batches_total",
            "Update batches applied by the view runtime",
        ),
        maintain_duration: registry.histogram(
            "balg_maintain_duration_ns",
            "Per-view maintenance latency per update batch, nanoseconds",
        ),
        linear_delta_ops: registry.counter(
            "balg_linear_delta_ops_total",
            "Linear derivative-rule applications",
        ),
        fallback_recomputes: registry.counter(
            "balg_fallback_recomputes_total",
            "Non-linear operator re-derivations over memoized snapshots",
        ),
        scalar_recomputes: registry.counter(
            "balg_scalar_recomputes_total",
            "Scalar construct re-derivations",
        ),
        full_reinits: registry.counter(
            "balg_full_reinits_total",
            "Full view re-derivations (degraded path or rebase)",
        ),
        indexed_join_ops: registry.counter(
            "balg_indexed_join_ops_total",
            "Fused equi-join deltas propagated via per-key index probes",
        ),
        scanned_join_ops: registry.counter(
            "balg_scanned_join_ops_total",
            "Fused equi-join deltas propagated by scanning the unchanged operand",
        ),
        irregular_join_fallbacks: registry.counter(
            "balg_irregular_join_fallbacks_total",
            "Fused equi-joins that re-derived because a delta row was not a flat pair",
        ),
    });
    INCR_OBS.get()
}
