//! Durability for the view runtime: write-ahead log, snapshots, recovery.
//!
//! [`DurableRuntime`] wraps a [`ViewRuntime`] and persists every committed
//! mutation to a data directory, so a process crash (or plain restart)
//! replays to exactly the acked state:
//!
//! * **`wal.log`** — a sequence of CRC-framed records
//!   ([`balg_core::wal`]), one per mutation: update batches (the hot
//!   path), base loads, view registrations and drops. Records carry
//!   monotonic LSNs. A record is written (and, by default, fsynced)
//!   *before* the in-memory commit, and only pre-validated batches are
//!   logged — so every logged record replays cleanly, every acked commit
//!   survives, and a torn tail can only be an un-acked suffix.
//! * **`snapshot.balg`** — a full image of the runtime (bases, view
//!   definitions, dropped-view tombstones, counters) written by
//!   [`DurableRuntime::checkpoint`]: to `snapshot.tmp` first, fsynced,
//!   atomically renamed, directory fsynced, and only then is the WAL
//!   truncated. A crash at any point leaves either the old or the new
//!   snapshot intact, never a half state; WAL records already covered by
//!   the surviving snapshot are skipped on replay by LSN.
//!
//! [`DurableRuntime::open`] loads the snapshot (if any), replays the WAL
//! tail, **truncates** — rather than fails on — a torn or corrupt final
//! record, re-derives all views, and resumes with the next LSN.
//!
//! Crash behaviour is tested the way the concurrency layer is: a fault
//! plan ([`WalFaultPlan`]) injects kills at chosen WAL byte offsets and
//! checkpoint crash points, and the recovery suites compare the reopened
//! runtime against a never-crashed in-process twin.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use balg_core::bag::Bag;
use balg_core::eval::Limits;
use balg_core::expr::{Expr, Var};
use balg_core::wal::{
    frame, frames, get_bag, get_expr, get_zbag, put_bag, put_expr, put_str, put_u64, put_zbag,
    ByteReader, DecodeError,
};
use balg_core::zbag::ZBag;

use crate::runtime::{DroppedView, RuntimeStats, UpdateBatch, UpdateError, ViewRuntime};

/// WAL record payload tags. Tag `0` is deliberately unused: an all-zero
/// frame header ("zero-filled tail") decodes as an empty payload, and the
/// replay loop rejects empty payloads — so zeroed disk regions can never
/// masquerade as records.
const REC_BATCH: u8 = 1;
const REC_LOAD_BASE: u8 = 2;
const REC_CREATE_VIEW: u8 = 3;
const REC_DROP_VIEW: u8 = 4;
const REC_META: u8 = 5;

/// Snapshot frame tags (distinct from WAL record tags so a file mix-up is
/// caught immediately).
const SNAP_HEADER: u8 = 0x10;
const SNAP_BASE: u8 = 0x11;
const SNAP_VIEW: u8 = 0x12;
const SNAP_TOMBSTONE: u8 = 0x13;
const SNAP_META: u8 = 0x14;
const SNAP_FOOTER: u8 = 0x1F;

/// Snapshot format version written in the header frame.
const SNAP_VERSION: u64 = 1;

/// One durable mutation, as logged to and replayed from the WAL.
#[derive(Clone, Debug)]
pub enum WalRecord {
    /// A validated update batch: `(base, ℤ-delta)` pairs.
    Batch {
        /// This record's log sequence number.
        lsn: u64,
        /// Per-base deltas, in base-name order.
        deltas: Vec<(Var, ZBag)>,
    },
    /// A wholesale base load/replace.
    LoadBase {
        /// This record's log sequence number.
        lsn: u64,
        /// The base bag name.
        name: String,
        /// The full new contents.
        bag: Bag,
    },
    /// A view registration.
    CreateView {
        /// This record's log sequence number.
        lsn: u64,
        /// The view name.
        name: String,
        /// The view's defining expression.
        expr: Expr,
    },
    /// A view removal.
    DropView {
        /// This record's log sequence number.
        lsn: u64,
        /// The view name.
        name: String,
    },
    /// An opaque key/value annotation persisted alongside the runtime —
    /// the SQL layer stores its catalog (declared tables, view output
    /// shapes) here so a reopened service speaks the same schema.
    Meta {
        /// This record's log sequence number.
        lsn: u64,
        /// The annotation key.
        key: String,
        /// The new value (`None` deletes the key).
        value: Option<String>,
    },
}

impl WalRecord {
    /// The record's LSN.
    pub fn lsn(&self) -> u64 {
        match self {
            WalRecord::Batch { lsn, .. }
            | WalRecord::LoadBase { lsn, .. }
            | WalRecord::CreateView { lsn, .. }
            | WalRecord::DropView { lsn, .. }
            | WalRecord::Meta { lsn, .. } => *lsn,
        }
    }

    /// Encode to a WAL payload (to be framed by the caller).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Batch { lsn, deltas } => {
                out.push(REC_BATCH);
                put_u64(&mut out, *lsn);
                put_u64(&mut out, deltas.len() as u64);
                for (name, delta) in deltas {
                    put_str(&mut out, name);
                    put_zbag(&mut out, delta);
                }
            }
            WalRecord::LoadBase { lsn, name, bag } => {
                out.push(REC_LOAD_BASE);
                put_u64(&mut out, *lsn);
                put_str(&mut out, name);
                put_bag(&mut out, bag);
            }
            WalRecord::CreateView { lsn, name, expr } => {
                out.push(REC_CREATE_VIEW);
                put_u64(&mut out, *lsn);
                put_str(&mut out, name);
                put_expr(&mut out, expr);
            }
            WalRecord::DropView { lsn, name } => {
                out.push(REC_DROP_VIEW);
                put_u64(&mut out, *lsn);
                put_str(&mut out, name);
            }
            WalRecord::Meta { lsn, key, value } => {
                out.push(REC_META);
                put_u64(&mut out, *lsn);
                put_str(&mut out, key);
                match value {
                    Some(value) => {
                        out.push(1);
                        put_str(&mut out, value);
                    }
                    None => out.push(0),
                }
            }
        }
        out
    }

    /// Decode a WAL payload. Empty payloads are rejected (see tag `0`
    /// note above).
    pub fn decode(payload: &[u8]) -> Result<WalRecord, DecodeError> {
        let mut r = ByteReader::new(payload);
        let record = match r.u8()? {
            REC_BATCH => {
                let lsn = r.u64()?;
                let count = r.u64()? as usize;
                let mut deltas = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    let name = Var::from(r.str()?);
                    deltas.push((name, get_zbag(&mut r)?));
                }
                WalRecord::Batch { lsn, deltas }
            }
            REC_LOAD_BASE => WalRecord::LoadBase {
                lsn: r.u64()?,
                name: r.str()?.to_owned(),
                bag: get_bag(&mut r)?,
            },
            REC_CREATE_VIEW => WalRecord::CreateView {
                lsn: r.u64()?,
                name: r.str()?.to_owned(),
                expr: get_expr(&mut r)?,
            },
            REC_DROP_VIEW => WalRecord::DropView {
                lsn: r.u64()?,
                name: r.str()?.to_owned(),
            },
            REC_META => {
                let lsn = r.u64()?;
                let key = r.str()?.to_owned();
                let value = match r.u8()? {
                    0 => None,
                    1 => Some(r.str()?.to_owned()),
                    tag => return Err(DecodeError::Tag { what: "meta", tag }),
                };
                WalRecord::Meta { lsn, key, value }
            }
            tag => {
                return Err(DecodeError::Tag {
                    what: "record",
                    tag,
                })
            }
        };
        if !r.is_empty() {
            return Err(DecodeError::Invalid("trailing bytes after record"));
        }
        Ok(record)
    }
}

/// When to write a snapshot and truncate the WAL automatically. Explicit
/// [`DurableRuntime::checkpoint`] calls are always honoured regardless.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointPolicy {
    /// Checkpoint once the WAL exceeds this many bytes (`0` disables the
    /// size trigger).
    pub max_wal_bytes: u64,
    /// Checkpoint once this many batches have committed since the last
    /// checkpoint (`0` disables the count trigger).
    pub max_batches: u64,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            max_wal_bytes: 4 << 20,
            max_batches: 1024,
        }
    }
}

impl CheckpointPolicy {
    /// A policy that never checkpoints automatically (tests, benchmarks).
    pub fn manual() -> Self {
        CheckpointPolicy {
            max_wal_bytes: 0,
            max_batches: 0,
        }
    }

    fn due(&self, wal_bytes: u64, batches: u64) -> bool {
        (self.max_wal_bytes > 0 && wal_bytes >= self.max_wal_bytes)
            || (self.max_batches > 0 && batches >= self.max_batches)
    }
}

/// Fault-injection plan for crash testing. A triggered fault leaves the
/// on-disk state exactly as a kill at that instant would (including any
/// torn partial write, which is flushed so the recovery test reads what a
/// real crash would leave) and **poisons** the runtime: every later
/// operation fails with [`DurableError::Poisoned`], modelling the process
/// being gone. Reopening the directory is the only way forward.
#[derive(Clone, Copy, Debug, Default)]
pub struct WalFaultPlan {
    /// Kill the process once the WAL would grow past this byte offset:
    /// the write up to the offset happens (a torn record), everything
    /// after is lost.
    pub cut_wal_at: Option<u64>,
    /// Kill mid-checkpoint: after roughly half of `snapshot.tmp` has been
    /// written, before it is fsynced or renamed.
    pub crash_checkpoint_write: bool,
    /// Kill after `snapshot.tmp` is fully written and fsynced but before
    /// the atomic rename — the post-WAL-pre-snapshot-rename point.
    pub crash_checkpoint_rename: bool,
    /// Kill after the snapshot rename lands but before the WAL is
    /// truncated — replay must skip records already covered by the
    /// snapshot (by LSN) instead of double-applying them.
    pub crash_checkpoint_truncate: bool,
}

impl WalFaultPlan {
    /// No faults.
    pub fn none() -> Self {
        WalFaultPlan::default()
    }

    /// Cut WAL writes at `offset` bytes.
    pub fn cut_wal_at(offset: u64) -> Self {
        WalFaultPlan {
            cut_wal_at: Some(offset),
            ..WalFaultPlan::default()
        }
    }
}

/// An error from the durability layer.
#[derive(Debug)]
pub enum DurableError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// A persisted structure failed to decode — snapshot corruption
    /// (torn WAL *tails* are truncated, not surfaced as errors).
    Corrupt(String),
    /// The logical operation was rejected by the runtime; the log and
    /// the in-memory state are unchanged (validation precedes logging)
    /// or consistently committed (deterministic view drops).
    Update(UpdateError),
    /// An injected fault fired; the simulated process is dead.
    Fault(&'static str),
    /// The runtime was poisoned by an earlier injected fault.
    Poisoned,
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durability I/O error: {e}"),
            DurableError::Corrupt(what) => write!(f, "corrupt durable state: {what}"),
            DurableError::Update(e) => write!(f, "{e}"),
            DurableError::Fault(point) => write!(f, "injected fault: {point}"),
            DurableError::Poisoned => f.write_str("runtime poisoned by injected fault"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Io(e) => Some(e),
            DurableError::Update(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<UpdateError> for DurableError {
    fn from(e: UpdateError) -> Self {
        DurableError::Update(e)
    }
}

/// Durability counters surfaced by `:stats` in the CLI and server.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Durability {
    /// LSN of the most recently logged record.
    pub lsn: u64,
    /// LSN covered by the on-disk snapshot (`0` if none).
    pub snapshot_lsn: u64,
    /// WAL bytes accumulated since the last checkpoint.
    pub wal_bytes: u64,
    /// Batches committed since the last checkpoint.
    pub batches_since_checkpoint: u64,
    /// Batches replayed from the WAL by the most recent open.
    pub replayed_batches: u64,
    /// Checkpoints taken by this process (not counting the snapshot
    /// loaded at open).
    pub checkpoints: u64,
}

/// A [`ViewRuntime`] whose every mutation is persisted to a data
/// directory. See the module docs for the file layout and guarantees.
#[derive(Debug)]
pub struct DurableRuntime {
    inner: ViewRuntime,
    /// Opaque persisted annotations (see [`WalRecord::Meta`]).
    metas: std::collections::BTreeMap<String, String>,
    dir: PathBuf,
    wal: File,
    /// Current WAL length in bytes (file offset of the next record).
    wal_bytes: u64,
    /// LSN of the last logged record.
    lsn: u64,
    /// LSN covered by `snapshot.balg` (0 = no snapshot).
    snapshot_lsn: u64,
    batches_since_checkpoint: u64,
    replayed_batches: u64,
    checkpoints: u64,
    policy: CheckpointPolicy,
    sync_on_commit: bool,
    fault: WalFaultPlan,
    poisoned: bool,
}

impl ViewRuntime {
    /// Open (or create) a durable runtime over `data_dir` with default
    /// evaluation budgets — the issue-facing spelling of
    /// [`DurableRuntime::open`].
    pub fn open(data_dir: impl AsRef<Path>) -> Result<DurableRuntime, DurableError> {
        DurableRuntime::open(data_dir, Limits::default())
    }
}

impl DurableRuntime {
    /// Open (or create) the data directory: load the latest snapshot,
    /// replay the WAL tail (truncating a torn/corrupt final record),
    /// re-derive all views, and resume with monotonic LSNs.
    ///
    /// `limits` must match the budgets the directory was written under —
    /// deterministic replay of view drops depends on it.
    pub fn open(
        data_dir: impl AsRef<Path>,
        limits: Limits,
    ) -> Result<DurableRuntime, DurableError> {
        let dir = data_dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        // A leftover snapshot.tmp is a checkpoint that never committed
        // (crash before rename); the old snapshot is still authoritative.
        let tmp = dir.join("snapshot.tmp");
        if tmp.exists() {
            std::fs::remove_file(&tmp)?;
        }

        let mut inner = ViewRuntime::with_limits(limits);
        let mut metas = std::collections::BTreeMap::new();
        let mut snapshot_lsn = 0u64;
        let snap_path = dir.join("snapshot.balg");
        if snap_path.exists() {
            snapshot_lsn = load_snapshot(&snap_path, &mut inner, &mut metas)?;
        }

        let wal_path = dir.join("wal.log");
        let mut wal = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&wal_path)?;
        let mut bytes = Vec::new();
        wal.read_to_end(&mut bytes)?;

        let mut lsn = snapshot_lsn;
        let mut replayed_batches = 0u64;
        let mut iter = frames(&bytes);
        let mut good_end = 0usize;
        while let Some((_, payload)) = iter.next() {
            if payload.is_empty() {
                // Zero-filled region decoding as an "empty record" — see
                // the tag-0 note. Truncate here.
                break;
            }
            let record = match WalRecord::decode(payload) {
                Ok(record) => record,
                // Mid-file decode failure behind a valid CRC would be a
                // writer bug; at the tail it is a torn write. Either way
                // the only safe resumption point is before the record.
                Err(_) => break,
            };
            if record.lsn() <= snapshot_lsn {
                // Already covered by the snapshot (crash after rename,
                // before WAL truncation).
                good_end = iter.offset();
                continue;
            }
            lsn = record.lsn();
            replay(&mut inner, &mut metas, record, &mut replayed_batches)?;
            good_end = iter.offset();
        }
        if good_end < bytes.len() {
            // Torn or corrupt tail: truncate to the last good record so
            // future appends extend a clean log.
            wal.set_len(good_end as u64)?;
            wal.sync_all()?;
        }

        Ok(DurableRuntime {
            inner,
            metas,
            dir,
            wal,
            wal_bytes: good_end as u64,
            lsn,
            snapshot_lsn,
            batches_since_checkpoint: 0,
            replayed_batches,
            checkpoints: 0,
            policy: CheckpointPolicy::default(),
            sync_on_commit: true,
            fault: WalFaultPlan::none(),
            poisoned: false,
        })
    }

    /// The data directory this runtime persists to.
    pub fn data_dir(&self) -> &Path {
        &self.dir
    }

    /// The wrapped in-memory runtime (reads only — mutations must go
    /// through the logging methods).
    pub fn runtime(&self) -> &ViewRuntime {
        &self.inner
    }

    /// Replace the automatic checkpoint policy.
    pub fn set_checkpoint_policy(&mut self, policy: CheckpointPolicy) {
        self.policy = policy;
    }

    /// Whether every commit fsyncs before returning (default `true`).
    /// The server turns this off and calls [`DurableRuntime::sync_wal`]
    /// once per drained writer-queue group, before acking any of them.
    pub fn set_sync_on_commit(&mut self, sync: bool) {
        self.sync_on_commit = sync;
    }

    /// Install a fault-injection plan (crash tests only).
    pub fn set_fault_plan(&mut self, fault: WalFaultPlan) {
        self.fault = fault;
    }

    /// Durability counters for `:stats`.
    pub fn durability(&self) -> Durability {
        Durability {
            lsn: self.lsn,
            snapshot_lsn: self.snapshot_lsn,
            wal_bytes: self.wal_bytes,
            batches_since_checkpoint: self.batches_since_checkpoint,
            replayed_batches: self.replayed_batches,
            checkpoints: self.checkpoints,
        }
    }

    /// Flush WAL writes to stable storage. A no-op when every commit
    /// already syncs.
    pub fn sync_wal(&mut self) -> Result<(), DurableError> {
        self.check_poison()?;
        sync_data_timed(&self.wal)?;
        Ok(())
    }

    fn check_poison(&self) -> Result<(), DurableError> {
        if self.poisoned {
            return Err(DurableError::Poisoned);
        }
        Ok(())
    }

    /// Append one framed record to the WAL, honouring the fault plan.
    fn append_wal(&mut self, record: &WalRecord) -> Result<(), DurableError> {
        let framed = frame(&record.encode());
        if let Some(cut) = self.fault.cut_wal_at {
            let end = self.wal_bytes + framed.len() as u64;
            if end > cut {
                // Simulated kill mid-write: the prefix up to the cut
                // reaches the disk (flushed so the recovery test sees
                // exactly what a crash would leave), the rest never does.
                let keep = cut.saturating_sub(self.wal_bytes) as usize;
                self.wal.write_all(&framed[..keep])?;
                self.wal.sync_data()?;
                self.poisoned = true;
                return Err(DurableError::Fault("wal write cut"));
            }
        }
        self.wal.write_all(&framed)?;
        self.wal_bytes += framed.len() as u64;
        if let Some(obs) = crate::obs::dur_obs() {
            obs.wal_bytes.add(framed.len() as u64);
        }
        if self.sync_on_commit {
            sync_data_timed(&self.wal)?;
        }
        Ok(())
    }

    fn next_lsn(&mut self) -> u64 {
        self.lsn += 1;
        self.lsn
    }

    /// Log and apply one update batch. The record is validated first
    /// (nothing is logged for a rejected batch), then logged and — by
    /// default — fsynced, then committed in memory, so an `Ok` means the
    /// batch survives any later crash. A deterministic view drop
    /// ([`UpdateError::View`]) still commits and is still durable; the
    /// error is surfaced as it is by [`ViewRuntime::apply`].
    pub fn commit(&mut self, batch: &UpdateBatch) -> Result<(), DurableError> {
        self.check_poison()?;
        if batch.is_empty() {
            return Ok(());
        }
        self.inner.validate(batch)?;
        let lsn = self.next_lsn();
        let deltas: Vec<(Var, ZBag)> = batch
            .iter()
            .filter(|(_, delta)| !delta.is_empty())
            .map(|(name, delta)| (name.clone(), delta.clone()))
            .collect();
        self.append_wal(&WalRecord::Batch { lsn, deltas })?;
        let applied = self.inner.apply(batch);
        self.batches_since_checkpoint += 1;
        self.maybe_checkpoint()?;
        applied.map_err(DurableError::from)
    }

    /// Log and apply a base load/replace (see [`ViewRuntime::load_base`]).
    pub fn load_base(&mut self, name: &str, bag: Bag) -> Result<(), DurableError> {
        self.check_poison()?;
        let lsn = self.next_lsn();
        self.append_wal(&WalRecord::LoadBase {
            lsn,
            name: name.to_owned(),
            bag: bag.clone(),
        })?;
        self.inner.load_base(name, bag).map_err(DurableError::from)
    }

    /// Log and apply a view registration (see
    /// [`ViewRuntime::create_view`]). A registration the runtime rejects
    /// is logged but rejected identically on replay, so the log and the
    /// state never diverge.
    pub fn create_view(&mut self, name: &str, expr: Expr) -> Result<&Bag, DurableError> {
        self.check_poison()?;
        let lsn = self.next_lsn();
        self.append_wal(&WalRecord::CreateView {
            lsn,
            name: name.to_owned(),
            expr: expr.clone(),
        })?;
        self.inner
            .create_view(name, expr)
            .map_err(DurableError::from)
    }

    /// Log and apply a view drop (see [`ViewRuntime::drop_view`]).
    pub fn drop_view(&mut self, name: &str) -> Result<bool, DurableError> {
        self.check_poison()?;
        let lsn = self.next_lsn();
        self.append_wal(&WalRecord::DropView {
            lsn,
            name: name.to_owned(),
        })?;
        Ok(self.inner.drop_view(name))
    }

    /// A persisted annotation's current value.
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.metas.get(key).map(String::as_str)
    }

    /// Iterate persisted annotations in key order.
    pub fn metas(&self) -> impl Iterator<Item = (&str, &str)> {
        self.metas.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Log and apply an annotation write (`None` deletes the key).
    pub fn set_meta(&mut self, key: &str, value: Option<&str>) -> Result<(), DurableError> {
        self.check_poison()?;
        let lsn = self.next_lsn();
        self.append_wal(&WalRecord::Meta {
            lsn,
            key: key.to_owned(),
            value: value.map(str::to_owned),
        })?;
        match value {
            Some(value) => {
                self.metas.insert(key.to_owned(), value.to_owned());
            }
            None => {
                self.metas.remove(key);
            }
        }
        Ok(())
    }

    /// Forwarded tuning knob (not a logged mutation).
    pub fn set_index_capacity(&mut self, capacity: usize) {
        self.inner.set_index_capacity(capacity);
    }

    /// Forwarded tuning knob (not a logged mutation).
    pub fn set_indexing(&mut self, enabled: bool) {
        self.inner.set_indexing(enabled);
    }

    /// Forwarded tuning knob (not a logged mutation): see
    /// [`ViewRuntime::set_parallel`].
    pub fn set_parallel(&mut self, enabled: bool) {
        self.inner.set_parallel(enabled);
    }

    /// Forwarded tuning knob (not a logged mutation): see
    /// [`ViewRuntime::set_parallel_threads`].
    pub fn set_parallel_threads(&mut self, n: usize) {
        self.inner.set_parallel_threads(n);
    }

    fn maybe_checkpoint(&mut self) -> Result<(), DurableError> {
        if self
            .policy
            .due(self.wal_bytes, self.batches_since_checkpoint)
        {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Write a full snapshot and truncate the WAL. The sequence is
    /// crash-consistent at every step: tmp write → tmp fsync → atomic
    /// rename → directory fsync → WAL truncate; a kill between any two
    /// steps leaves a directory [`DurableRuntime::open`] recovers exactly.
    pub fn checkpoint(&mut self) -> Result<(), DurableError> {
        self.check_poison()?;
        let started = crate::obs::dur_obs().map(|_| std::time::Instant::now());
        let bytes = encode_snapshot(&self.inner, &self.metas, self.lsn);
        let tmp = self.dir.join("snapshot.tmp");
        {
            let mut file = File::create(&tmp)?;
            if self.fault.crash_checkpoint_write {
                file.write_all(&bytes[..bytes.len() / 2])?;
                file.sync_all()?;
                self.poisoned = true;
                return Err(DurableError::Fault("checkpoint write"));
            }
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        if self.fault.crash_checkpoint_rename {
            self.poisoned = true;
            return Err(DurableError::Fault("checkpoint rename"));
        }
        std::fs::rename(&tmp, self.dir.join("snapshot.balg"))?;
        // Persist the rename itself before truncating the log it
        // supersedes.
        File::open(&self.dir)?.sync_all()?;
        if self.fault.crash_checkpoint_truncate {
            self.poisoned = true;
            return Err(DurableError::Fault("checkpoint truncate"));
        }
        self.wal.set_len(0)?;
        self.wal.sync_all()?;
        self.wal_bytes = 0;
        self.snapshot_lsn = self.lsn;
        self.batches_since_checkpoint = 0;
        self.checkpoints += 1;
        if let (Some(obs), Some(started)) = (crate::obs::dur_obs(), started) {
            obs.checkpoint_duration
                .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
            obs.checkpoints.inc();
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Read-side forwarding
    // ------------------------------------------------------------------

    /// See [`ViewRuntime::view`].
    pub fn view(&self, name: &str) -> Option<&Bag> {
        self.inner.view(name)
    }

    /// See [`ViewRuntime::verify`].
    pub fn verify(&self, name: &str) -> Result<bool, UpdateError> {
        self.inner.verify(name)
    }

    /// See [`ViewRuntime::verify_all`].
    pub fn verify_all(&self) -> Result<bool, UpdateError> {
        self.inner.verify_all()
    }

    /// See [`ViewRuntime::stats`].
    pub fn stats(&self) -> RuntimeStats {
        self.inner.stats()
    }
}

/// A runtime that is either purely in-memory or durable — the shape the
/// SQL layer and the CLI program against, so `--data-dir` is a
/// construction-time choice rather than a parallel code path.
#[derive(Debug)]
pub enum AnyRuntime {
    /// Plain in-memory [`ViewRuntime`]; durability calls are no-ops.
    Memory(ViewRuntime),
    /// WAL-backed [`DurableRuntime`].
    Durable(DurableRuntime),
}

impl From<ViewRuntime> for AnyRuntime {
    fn from(rt: ViewRuntime) -> Self {
        AnyRuntime::Memory(rt)
    }
}

impl From<DurableRuntime> for AnyRuntime {
    fn from(rt: DurableRuntime) -> Self {
        AnyRuntime::Durable(rt)
    }
}

impl AnyRuntime {
    /// The wrapped in-memory runtime (always present; the durable wrapper
    /// maintains one).
    pub fn runtime(&self) -> &ViewRuntime {
        match self {
            AnyRuntime::Memory(rt) => rt,
            AnyRuntime::Durable(d) => d.runtime(),
        }
    }

    /// Whether mutations are persisted.
    pub fn is_durable(&self) -> bool {
        matches!(self, AnyRuntime::Durable(_))
    }

    /// Durability counters (`None` in memory mode).
    pub fn durability(&self) -> Option<Durability> {
        match self {
            AnyRuntime::Memory(_) => None,
            AnyRuntime::Durable(d) => Some(d.durability()),
        }
    }

    /// See [`ViewRuntime::load_base`] / [`DurableRuntime::load_base`].
    pub fn load_base(&mut self, name: &str, bag: Bag) -> Result<(), DurableError> {
        match self {
            AnyRuntime::Memory(rt) => rt.load_base(name, bag).map_err(DurableError::from),
            AnyRuntime::Durable(d) => d.load_base(name, bag),
        }
    }

    /// See [`ViewRuntime::create_view`] / [`DurableRuntime::create_view`].
    /// Returns `()` rather than the initial bag; read it back with
    /// [`ViewRuntime::view`] via [`AnyRuntime::runtime`].
    pub fn create_view(&mut self, name: &str, expr: Expr) -> Result<(), DurableError> {
        match self {
            AnyRuntime::Memory(rt) => rt
                .create_view(name, expr)
                .map(|_| ())
                .map_err(DurableError::from),
            AnyRuntime::Durable(d) => d.create_view(name, expr).map(|_| ()),
        }
    }

    /// See [`ViewRuntime::drop_view`] / [`DurableRuntime::drop_view`].
    pub fn drop_view(&mut self, name: &str) -> Result<bool, DurableError> {
        match self {
            AnyRuntime::Memory(rt) => Ok(rt.drop_view(name)),
            AnyRuntime::Durable(d) => d.drop_view(name),
        }
    }

    /// See [`ViewRuntime::apply`] / [`DurableRuntime::commit`].
    pub fn apply(&mut self, batch: &UpdateBatch) -> Result<(), DurableError> {
        match self {
            AnyRuntime::Memory(rt) => rt.apply(batch).map_err(DurableError::from),
            AnyRuntime::Durable(d) => d.commit(batch),
        }
    }

    /// Checkpoint a durable runtime, returning the post-checkpoint
    /// counters; `Ok(None)` in memory mode (nothing to persist).
    pub fn checkpoint(&mut self) -> Result<Option<Durability>, DurableError> {
        match self {
            AnyRuntime::Memory(_) => Ok(None),
            AnyRuntime::Durable(d) => {
                d.checkpoint()?;
                Ok(Some(d.durability()))
            }
        }
    }

    /// Persist an annotation (no-op in memory mode — the caller's own
    /// in-memory structures are already authoritative there).
    pub fn set_meta(&mut self, key: &str, value: Option<&str>) -> Result<(), DurableError> {
        match self {
            AnyRuntime::Memory(_) => Ok(()),
            AnyRuntime::Durable(d) => d.set_meta(key, value),
        }
    }

    /// All persisted annotations in key order (empty in memory mode).
    pub fn metas(&self) -> impl Iterator<Item = (&str, &str)> {
        let durable = match self {
            AnyRuntime::Memory(_) => None,
            AnyRuntime::Durable(d) => Some(d),
        };
        durable.into_iter().flat_map(DurableRuntime::metas)
    }

    /// A persisted annotation (`None` in memory mode).
    pub fn meta(&self, key: &str) -> Option<&str> {
        match self {
            AnyRuntime::Memory(_) => None,
            AnyRuntime::Durable(d) => d.meta(key),
        }
    }

    /// See [`DurableRuntime::sync_wal`]; no-op in memory mode.
    pub fn sync_wal(&mut self) -> Result<(), DurableError> {
        match self {
            AnyRuntime::Memory(_) => Ok(()),
            AnyRuntime::Durable(d) => d.sync_wal(),
        }
    }

    /// See [`DurableRuntime::set_sync_on_commit`]; no-op in memory mode.
    pub fn set_sync_on_commit(&mut self, sync: bool) {
        if let AnyRuntime::Durable(d) = self {
            d.set_sync_on_commit(sync);
        }
    }

    /// Forwarded tuning knob.
    pub fn set_index_capacity(&mut self, capacity: usize) {
        match self {
            AnyRuntime::Memory(rt) => rt.set_index_capacity(capacity),
            AnyRuntime::Durable(d) => d.set_index_capacity(capacity),
        }
    }

    /// Forwarded tuning knob.
    pub fn set_indexing(&mut self, enabled: bool) {
        match self {
            AnyRuntime::Memory(rt) => rt.set_indexing(enabled),
            AnyRuntime::Durable(d) => d.set_indexing(enabled),
        }
    }

    /// Forwarded tuning knob: see [`ViewRuntime::set_parallel`].
    pub fn set_parallel(&mut self, enabled: bool) {
        match self {
            AnyRuntime::Memory(rt) => rt.set_parallel(enabled),
            AnyRuntime::Durable(d) => d.set_parallel(enabled),
        }
    }

    /// Forwarded tuning knob: see [`ViewRuntime::set_parallel_threads`].
    pub fn set_parallel_threads(&mut self, n: usize) {
        match self {
            AnyRuntime::Memory(rt) => rt.set_parallel_threads(n),
            AnyRuntime::Durable(d) => d.set_parallel_threads(n),
        }
    }
}

/// `File::sync_data` with the fsync latency recorded into the metrics
/// registry when one is installed.
fn sync_data_timed(wal: &File) -> std::io::Result<()> {
    let Some(obs) = crate::obs::dur_obs() else {
        return wal.sync_data();
    };
    let start = std::time::Instant::now();
    wal.sync_data()?;
    obs.fsync_duration
        .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    Ok(())
}

/// Apply one replayed record. Deterministic view failures (a view drop
/// that happened before the crash happens again now) are swallowed —
/// they are part of the state being reconstructed, not replay errors.
/// Base-level failures can only mean a corrupt or foreign log: batches
/// are validated before they are logged.
fn replay(
    inner: &mut ViewRuntime,
    metas: &mut std::collections::BTreeMap<String, String>,
    record: WalRecord,
    replayed_batches: &mut u64,
) -> Result<(), DurableError> {
    match record {
        WalRecord::Batch { deltas, .. } => {
            let mut batch = UpdateBatch::new();
            for (name, delta) in &deltas {
                batch.merge_delta(name, delta);
            }
            match inner.apply(&batch) {
                Ok(()) | Err(UpdateError::View { .. }) | Err(UpdateError::ViewDropped { .. }) => {}
                Err(e @ (UpdateError::UnknownBase(_) | UpdateError::NegativeBase { .. })) => {
                    return Err(DurableError::Corrupt(format!(
                        "logged batch failed validation on replay: {e}"
                    )));
                }
                Err(e) => return Err(DurableError::Update(e)),
            }
            *replayed_batches += 1;
            if let Some(obs) = crate::obs::dur_obs() {
                obs.replayed_batches.inc();
            }
        }
        WalRecord::LoadBase { name, bag, .. } => {
            // A dependent view's re-derivation failure is deterministic.
            let _ = inner.load_base(&name, bag);
        }
        WalRecord::CreateView { name, expr, .. } => {
            // A rejected registration was rejected before the crash too.
            let _ = inner.create_view(&name, expr);
        }
        WalRecord::DropView { name, .. } => {
            inner.drop_view(&name);
        }
        WalRecord::Meta { key, value, .. } => match value {
            Some(value) => {
                metas.insert(key, value);
            }
            None => {
                metas.remove(&key);
            }
        },
    }
    Ok(())
}

/// Serialize the full runtime state as a framed snapshot byte stream.
fn encode_snapshot(
    rt: &ViewRuntime,
    metas: &std::collections::BTreeMap<String, String>,
    lsn: u64,
) -> Vec<u8> {
    let mut out = Vec::new();
    let mut count = 0u64;
    let push = |out: &mut Vec<u8>, payload: &[u8]| {
        out.extend_from_slice(&frame(payload));
    };

    let mut header = vec![SNAP_HEADER];
    put_u64(&mut header, SNAP_VERSION);
    put_u64(&mut header, lsn);
    put_u64(&mut header, rt.batches());
    push(&mut out, &header);
    count += 1;

    for (name, bag) in rt.database().iter() {
        let mut payload = vec![SNAP_BASE];
        put_str(&mut payload, name);
        put_bag(&mut payload, bag);
        push(&mut out, &payload);
        count += 1;
    }
    for (name, view) in rt.views() {
        let mut payload = vec![SNAP_VIEW];
        put_str(&mut payload, name);
        put_expr(&mut payload, view.expr());
        push(&mut out, &payload);
        count += 1;
    }
    for (name, record) in rt.dropped() {
        let mut payload = vec![SNAP_TOMBSTONE];
        put_str(&mut payload, name);
        put_str(&mut payload, &record.cause);
        put_u64(&mut payload, record.at_batch);
        push(&mut out, &payload);
        count += 1;
    }
    for (key, value) in metas {
        let mut payload = vec![SNAP_META];
        put_str(&mut payload, key);
        put_str(&mut payload, value);
        push(&mut out, &payload);
        count += 1;
    }

    let mut footer = vec![SNAP_FOOTER];
    put_u64(&mut footer, count);
    push(&mut out, &footer);
    out
}

/// Load a snapshot file into a fresh runtime; returns the snapshot LSN.
/// Views are **re-derived** from their expressions against the restored
/// bases — the snapshot stores definitions, not materialized results, so
/// a snapshot can never resurrect a stale materialization.
fn load_snapshot(
    path: &Path,
    inner: &mut ViewRuntime,
    metas: &mut std::collections::BTreeMap<String, String>,
) -> Result<u64, DurableError> {
    let bytes = std::fs::read(path)?;
    let corrupt = |what: &str| DurableError::Corrupt(format!("snapshot: {what}"));
    let mut iter = frames(&bytes);

    let (_, header) = iter.next().ok_or_else(|| corrupt("missing header"))?;
    let mut r = ByteReader::new(header);
    if r.u8().map_err(|e| corrupt(&e.to_string()))? != SNAP_HEADER {
        return Err(corrupt("first frame is not a header"));
    }
    let version = r.u64().map_err(|e| corrupt(&e.to_string()))?;
    if version != SNAP_VERSION {
        return Err(corrupt(&format!("unsupported version {version}")));
    }
    let lsn = r.u64().map_err(|e| corrupt(&e.to_string()))?;
    let batches = r.u64().map_err(|e| corrupt(&e.to_string()))?;

    let mut frames_seen = 1u64;
    let mut footer_count: Option<u64> = None;
    let mut views: Vec<(String, Expr)> = Vec::new();
    let mut tombstones: Vec<(String, DroppedView)> = Vec::new();
    for (_, payload) in iter.by_ref() {
        if footer_count.is_some() {
            return Err(corrupt("frames after footer"));
        }
        let mut r = ByteReader::new(payload);
        match r.u8().map_err(|e| corrupt(&e.to_string()))? {
            SNAP_BASE => {
                let name = r.str().map_err(|e| corrupt(&e.to_string()))?.to_owned();
                let bag = get_bag(&mut r).map_err(|e| corrupt(&e.to_string()))?;
                inner
                    .load_base(&name, bag)
                    .expect("no views registered yet");
            }
            SNAP_VIEW => {
                let name = r.str().map_err(|e| corrupt(&e.to_string()))?.to_owned();
                let expr = get_expr(&mut r).map_err(|e| corrupt(&e.to_string()))?;
                views.push((name, expr));
            }
            SNAP_TOMBSTONE => {
                let name = r.str().map_err(|e| corrupt(&e.to_string()))?.to_owned();
                let cause = r.str().map_err(|e| corrupt(&e.to_string()))?.to_owned();
                let at_batch = r.u64().map_err(|e| corrupt(&e.to_string()))?;
                tombstones.push((name, DroppedView { cause, at_batch }));
            }
            SNAP_META => {
                let key = r.str().map_err(|e| corrupt(&e.to_string()))?.to_owned();
                let value = r.str().map_err(|e| corrupt(&e.to_string()))?.to_owned();
                metas.insert(key, value);
            }
            SNAP_FOOTER => {
                footer_count = Some(r.u64().map_err(|e| corrupt(&e.to_string()))?);
                continue;
            }
            tag => return Err(corrupt(&format!("unknown frame tag {tag:#04x}"))),
        }
        frames_seen += 1;
    }
    if iter.damaged_tail() {
        return Err(corrupt("damaged tail"));
    }
    match footer_count {
        Some(count) if count == frames_seen => {}
        Some(_) => return Err(corrupt("frame count mismatch")),
        None => return Err(corrupt("missing footer")),
    }

    // Bases are all in place; register views (re-deriving results) and
    // restore tombstones. A view that fails to re-derive here failed the
    // same way before the snapshot was written — but snapshots only store
    // *live* views, so surface the inconsistency loudly.
    for (name, expr) in views {
        inner
            .create_view(&name, expr)
            .map_err(|e| corrupt(&format!("view {name} failed to re-derive: {e}")))?;
    }
    for (name, record) in tombstones {
        inner.restore_tombstone(&name, record);
    }
    inner.restore_batches(batches);
    Ok(lsn)
}
