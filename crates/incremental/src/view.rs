//! One maintained view: a BALG expression compiled to a tree of
//! snapshot-carrying nodes with per-operator derivative rules.
//!
//! Each node memoizes its current value under the runtime's database.
//! An update pass walks the tree once: subtrees whose free database names
//! are untouched by the batch return immediately; linear operators combine
//! their children's deltas algebraically; non-linear operators re-derive
//! **one operator application** over their children's refreshed snapshots
//! and hand the pointwise difference to their parent as a delta. The
//! result is that work concentrates where the update actually lands.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use balg_core::analyze::{base_linearity, Linearity};
use balg_core::bag::{attr_field, Bag};
use balg_core::eval::{EvalError, Evaluator, Limits};
use balg_core::expr::{Expr, Pred, Var};
use balg_core::index::{BagIndex, IndexCache};
use balg_core::par::{self, Parallel};
use balg_core::pool;
use balg_core::schema::Database;
use balg_core::value::Value;
use balg_core::zbag::{ZBag, ZBagBuilder, ZInt};

/// The fresh variable the fallback probes bind the memoized child
/// snapshot to (not expressible in the surface syntax, so it can never
/// collide with a user name).
const DELTA_INPUT: &str = "·Δinput";

/// The two fresh variables the fused equi-join's re-derivation probe
/// binds its operand snapshots to.
const DELTA_INPUT_LEFT: &str = "·ΔinputL";
const DELTA_INPUT_RIGHT: &str = "·ΔinputR";

/// Instrumentation counters for one view — which maintenance path ran.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ViewStats {
    /// Linear derivative-rule applications (`∪⁺`, `MAP`/`σ` with an
    /// unaffected body, the bilinear `×` rule, destroy).
    pub linear_delta_ops: u64,
    /// Non-linear fallbacks: one operator re-derived over memoized child
    /// snapshots (monus, `ε`, `∪`, `∩`, `nest`, `P`/`P_b`, `IFP`, and
    /// `MAP`/`σ` whose λ body reads an updated bag).
    pub fallback_recomputes: u64,
    /// Scalar construct re-derivations (`τ`, `β`, `αᵢ` over a changed
    /// child value) — constant-size work, counted separately.
    pub scalar_recomputes: u64,
    /// Full view re-derivations (degraded path after a maintenance
    /// error, or an explicit rebase).
    pub full_reinits: u64,
    /// Fused `σ_{αᵢ=αⱼ}(×)` deltas propagated by probing a per-key
    /// [`IndexCache`] index — only rows keyed by the delta's join values
    /// were touched (`O(matches)`).
    pub indexed_join_ops: u64,
    /// Fused equi-join deltas propagated by scanning the unchanged
    /// operand (`O(|other side|)`): indexing disabled, or the pair of
    /// attributes does not key a single side.
    pub scanned_join_ops: u64,
}

impl ViewStats {
    /// Pointwise sum of two counters (used by the runtime aggregate).
    pub fn merged(&self, other: &ViewStats) -> ViewStats {
        ViewStats {
            linear_delta_ops: self.linear_delta_ops + other.linear_delta_ops,
            fallback_recomputes: self.fallback_recomputes + other.fallback_recomputes,
            scalar_recomputes: self.scalar_recomputes + other.scalar_recomputes,
            full_reinits: self.full_reinits + other.full_reinits,
            indexed_join_ops: self.indexed_join_ops + other.indexed_join_ops,
            scanned_join_ops: self.scanned_join_ops + other.scanned_join_ops,
        }
    }
}

/// A maintenance failure inside one view's update pass.
#[derive(Debug, Clone)]
pub(crate) enum MaintainError {
    /// Evaluation failed (budget, shape, unbound name).
    Eval(EvalError),
    /// An internal invariant broke — a delta drove a snapshot
    /// multiplicity negative. The runtime degrades to a full re-init.
    Internal(String),
}

impl fmt::Display for MaintainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaintainError::Eval(e) => write!(f, "{e}"),
            MaintainError::Internal(what) => write!(f, "internal maintenance error: {what}"),
        }
    }
}

impl From<EvalError> for MaintainError {
    fn from(e: EvalError) -> Self {
        MaintainError::Eval(e)
    }
}

/// What an updated node reports to its parent.
enum Delta {
    /// Nothing changed.
    None,
    /// The node is bag-valued and changed by exactly this delta.
    Bag(ZBag),
    /// The node's value was replaced wholesale (scalar constructs).
    Opaque,
}

/// The operator of one compiled node. `Map`/`Select`/`Ifp` keep their λ
/// bodies as raw expressions (applied per delta element through
/// [`Evaluator::eval_open`]) plus a pre-built probe expression that
/// re-derives the whole operator over a bound child snapshot.
#[derive(Clone, Debug)]
enum Kind {
    Var(Var),
    Lit(Value),
    AdditiveUnion,
    Subtract,
    MaxUnion,
    Intersect,
    Tuple,
    Singleton,
    Product,
    Powerset,
    Powerbag,
    Attr(usize),
    Destroy,
    Dedup,
    Map {
        var: Var,
        body: Expr,
        probe: Expr,
    },
    Select {
        var: Var,
        pred: Pred,
        probe: Expr,
    },
    /// `σ_{αᵢ=αⱼ}(A × B)` fused at compile time (children are the two
    /// product operands). When the equality spans the product boundary
    /// the delta touches only the rows keyed by the delta's join values
    /// — probed from a per-key index, or scanned when indexing is off;
    /// otherwise the bilinear terms run with the general pair filter.
    /// `probe` re-derives the whole `σ(×)` over bound operand snapshots
    /// for the shapes the fused rule cannot take (mixed arities).
    EquiJoin {
        i: usize,
        j: usize,
        probe: Expr,
    },
    Ifp {
        probe: Expr,
    },
    Nest(Vec<usize>),
}

/// One compiled node: operator, children, free-name analysis, and the
/// memoized snapshot.
#[derive(Clone, Debug)]
struct Node {
    kind: Kind,
    children: Vec<Node>,
    /// Database names this subtree reads, λ bodies included — the key for
    /// skipping untouched subtrees.
    reads: BTreeSet<Var>,
    /// Names read by the λ body/pred alone (empty for non-λ nodes): when
    /// an update touches these, the linear per-element rule is unsound and
    /// the node falls back.
    body_reads: BTreeSet<Var>,
    /// Whether this node materializes its value. Demanded top-down by
    /// [`mark_snapshots`]: the root, every node a parent may re-derive
    /// from, and every node that can itself fall back. Purely-linear
    /// interior nodes (e.g. the product under a clean equi-join σ) skip
    /// materialization entirely — their deltas stream through, so a
    /// single-tuple update never touches an `O(|A|·|B|)` intermediate.
    keep_snapshot: bool,
    /// The node's own sub-expression — what [`Node::init`] evaluates
    /// (through the fused evaluator, so a skipped-product chain never
    /// materializes the product even at registration).
    expr: Expr,
    /// The node's current value under the runtime's database
    /// (a placeholder when `keep_snapshot` is false; `Var` nodes read
    /// through to the database instead of holding a second reference).
    snapshot: Value,
}

/// Everything an update pass threads through the tree.
struct UpdateCtx<'a, 'e> {
    deltas: &'a BTreeMap<Var, ZBag>,
    affected: &'a BTreeSet<Var>,
    db: &'a Database,
    max_elements: u64,
    ev: &'e mut Evaluator<'a>,
    stats: &'e mut ViewStats,
    /// The runtime's persistent per-key index cache: base-bag indexes
    /// survive across batches (patched alongside the base on commit),
    /// snapshot indexes re-key naturally when a snapshot's
    /// representation changes.
    indexes: &'e mut IndexCache,
    /// Whether the fused equi-join may probe indexes (`false` forces the
    /// scan path the differential suite compares against).
    use_indexes: bool,
    /// Fallbacks forced by *data* irregularity in a fused equi-join
    /// (mixed arities, attributes past both sides) — a runtime property
    /// the syntactic linearity lattice cannot see, so these are exempt
    /// from the ≤-bilinear no-fallback assertion in [`View::maintain`].
    irregular_join_fallbacks: u64,
}

/// Free database names of a λ body, excluding the bound variable.
fn body_free_vars(body: &Expr, var: &Var) -> BTreeSet<Var> {
    body.free_vars().into_iter().filter(|v| v != var).collect()
}

/// Free database names mentioned by a predicate, excluding the bound
/// variable.
fn pred_free_vars(pred: &Pred, var: &Var) -> BTreeSet<Var> {
    let mut out = BTreeSet::new();
    pred.visit_exprs(&mut |e| out.extend(e.free_vars()));
    out.remove(var);
    out
}

fn probe_var() -> Box<Expr> {
    Box::new(Expr::var(DELTA_INPUT))
}

/// Recognize `αᵢ(x) = αⱼ(x)` over the σ-bound variable `x` with `i ≠ j`,
/// normalized to `i < j` — the same join shape the fused evaluator
/// recognizes, here driving the compile-time `σ(×)` fusion. `α₀` is not
/// a valid attribute (1-based indexing); such a σ stays unfused so the
/// per-element rule surfaces the `AttrIndexZero` error instead of the
/// fused rule underflowing a field position.
fn equi_join_attrs(pred: &Pred, var: &Var) -> Option<(usize, usize)> {
    let attr_of = |e: &Expr| match e {
        Expr::Attr(inner, ix) => match inner.as_ref() {
            Expr::Var(name) if name == var => Some(*ix),
            _ => None,
        },
        _ => None,
    };
    match pred {
        Pred::Eq(a, b) => {
            let (i, j) = (attr_of(a)?, attr_of(b)?);
            if i == j || i == 0 {
                None // trivially true, or an always-erroring α₀ — not a join
            } else {
                Some((i.min(j), i.max(j)))
            }
        }
        _ => None,
    }
}

fn compile(expr: &Expr) -> Node {
    let mut children = Vec::new();
    let mut body_reads = BTreeSet::new();
    let kind = match expr {
        Expr::Var(name) => Kind::Var(name.clone()),
        Expr::Lit(value) => Kind::Lit(value.clone()),
        Expr::AdditiveUnion(a, b) => {
            children = vec![compile(a), compile(b)];
            Kind::AdditiveUnion
        }
        Expr::Subtract(a, b) => {
            children = vec![compile(a), compile(b)];
            Kind::Subtract
        }
        Expr::MaxUnion(a, b) => {
            children = vec![compile(a), compile(b)];
            Kind::MaxUnion
        }
        Expr::Intersect(a, b) => {
            children = vec![compile(a), compile(b)];
            Kind::Intersect
        }
        Expr::Product(a, b) => {
            children = vec![compile(a), compile(b)];
            Kind::Product
        }
        Expr::Tuple(fields) => {
            children = fields.iter().map(compile).collect();
            Kind::Tuple
        }
        Expr::Singleton(e) => {
            children = vec![compile(e)];
            Kind::Singleton
        }
        Expr::Powerset(e) => {
            children = vec![compile(e)];
            Kind::Powerset
        }
        Expr::Powerbag(e) => {
            children = vec![compile(e)];
            Kind::Powerbag
        }
        Expr::Attr(e, index) => {
            children = vec![compile(e)];
            Kind::Attr(*index)
        }
        Expr::Destroy(e) => {
            children = vec![compile(e)];
            Kind::Destroy
        }
        Expr::Dedup(e) => {
            children = vec![compile(e)];
            Kind::Dedup
        }
        Expr::Map { var, body, input } => {
            children = vec![compile(input)];
            body_reads = body_free_vars(body, var);
            Kind::Map {
                var: var.clone(),
                body: (**body).clone(),
                probe: Expr::Map {
                    var: var.clone(),
                    body: body.clone(),
                    input: probe_var(),
                },
            }
        }
        Expr::Select { var, pred, input } => {
            // `σ_{αᵢ=αⱼ}(A × B)` fuses into one join node: the σ must
            // intercept *before* the product's bilinear rule, or every
            // delta would pay the full `δA × B` intermediate only to
            // filter it down to the matches.
            if let (Expr::Product(a, b), Some((i, j))) =
                (input.as_ref(), equi_join_attrs(pred, var))
            {
                children = vec![compile(a), compile(b)];
                let probe = Expr::Select {
                    var: var.clone(),
                    pred: pred.clone(),
                    input: Box::new(Expr::Product(
                        Box::new(Expr::var(DELTA_INPUT_LEFT)),
                        Box::new(Expr::var(DELTA_INPUT_RIGHT)),
                    )),
                };
                // The pred reads only attributes of the bound tuple, so
                // `body_reads` stays empty (`pred_free_vars` agrees).
                debug_assert!(pred_free_vars(pred, var).is_empty());
                Kind::EquiJoin { i, j, probe }
            } else {
                children = vec![compile(input)];
                body_reads = pred_free_vars(pred, var);
                Kind::Select {
                    var: var.clone(),
                    pred: (**pred).clone(),
                    probe: Expr::Select {
                        var: var.clone(),
                        pred: pred.clone(),
                        input: probe_var(),
                    },
                }
            }
        }
        Expr::Ifp { var, body, input } => {
            children = vec![compile(input)];
            body_reads = body_free_vars(body, var);
            Kind::Ifp {
                probe: Expr::Ifp {
                    var: var.clone(),
                    body: body.clone(),
                    input: probe_var(),
                },
            }
        }
        Expr::Nest { group, input } => {
            children = vec![compile(input)];
            Kind::Nest(group.clone())
        }
    };
    let mut reads: BTreeSet<Var> = body_reads.clone();
    if let Kind::Var(name) = &kind {
        reads.insert(name.clone());
    }
    for child in &children {
        reads.extend(child.reads.iter().cloned());
    }
    Node {
        kind,
        children,
        reads,
        body_reads,
        keep_snapshot: true,
        expr: expr.clone(),
        snapshot: Value::empty_bag(),
    }
}

/// Can this node's update pass take the re-derivation path? (If so it
/// reads its own old snapshot — for the delta diff — and its children's
/// fresh values.) `Opaque` child deltas, the other fallback trigger, can
/// only originate from direct `Tuple`/`Attr` children: every other kind
/// reports `None` or a bag delta, and a node that absorbs an `Opaque` by
/// re-deriving emits a bag delta itself.
fn can_fall_back(node: &Node) -> bool {
    let opaque_child = || {
        node.children
            .iter()
            .any(|c| matches!(c.kind, Kind::Tuple | Kind::Attr(_)))
    };
    match &node.kind {
        Kind::Subtract
        | Kind::MaxUnion
        | Kind::Intersect
        | Kind::Dedup
        | Kind::Powerset
        | Kind::Powerbag
        | Kind::Nest(_)
        | Kind::Ifp { .. } => true,
        Kind::Tuple | Kind::Singleton | Kind::Attr(_) => true, // scalar re-derivation
        Kind::Map { .. } | Kind::Select { .. } => !node.body_reads.is_empty() || opaque_child(),
        // The fused join's linear rule needs uniform-arity operands — a
        // runtime property — so the node must be able to re-derive.
        Kind::EquiJoin { .. } => true,
        Kind::AdditiveUnion | Kind::Product | Kind::Destroy => opaque_child(),
        Kind::Var(_) | Kind::Lit(_) => false,
    }
}

/// Decide which nodes materialize snapshots. `demanded` means the parent
/// may read this node's value (re-derivation input, scalar recompute, or
/// the root result). `Var` nodes never materialize — readers go through
/// [`Node::current_bag`] to the database — except when they *are* the
/// demanded value and a parent probe needs an owned copy, which
/// [`Node::child_value`] handles by cloning out of the database anyway.
fn mark_snapshots(node: &mut Node, demanded: bool) {
    node.keep_snapshot = match node.kind {
        Kind::Var(_) | Kind::Lit(_) => false,
        _ => demanded || can_fall_back(node),
    };
    let demands_children = match &node.kind {
        // Re-derivation reads every child; the bilinear product rule reads
        // both operands' fresh values.
        Kind::Subtract
        | Kind::MaxUnion
        | Kind::Intersect
        | Kind::Dedup
        | Kind::Powerset
        | Kind::Powerbag
        | Kind::Nest(_)
        | Kind::Ifp { .. }
        | Kind::Tuple
        | Kind::Singleton
        | Kind::Attr(_)
        | Kind::Product
        | Kind::EquiJoin { .. } => true,
        Kind::Map { .. } | Kind::Select { .. } | Kind::AdditiveUnion | Kind::Destroy => {
            can_fall_back(node)
        }
        Kind::Var(_) | Kind::Lit(_) => false,
    };
    for child in &mut node.children {
        mark_snapshots(child, demands_children);
    }
}

fn expect_bag(value: &Value) -> Result<&Bag, EvalError> {
    value.as_bag().ok_or_else(|| EvalError::Shape {
        expected: "a bag",
        found: value.to_string(),
    })
}

/// One operand of a fused equi-join, as seen by the delta rule.
enum JoinSide {
    /// Empty and untouched by this batch: the join delta is zero.
    Vacuous,
    /// Uniform `arity`-tuples; `index` is the per-key index on the
    /// preferred attribute when indexing is enabled and the attribute
    /// falls on this side.
    Uniform {
        arity: usize,
        index: Option<Arc<BagIndex>>,
    },
    /// Mixed arities or non-tuple rows — the fused linear rule is
    /// unsound, so the node re-derives instead.
    Irregular,
}

/// `Some(arity)` iff every element of the bag is a tuple of one arity.
fn uniform_tuple_arity(bag: &Bag) -> Option<usize> {
    let mut observed = None;
    for row in bag.elements() {
        let fields = row.as_tuple()?;
        match observed {
            None => observed = Some(fields.len()),
            Some(a) if a == fields.len() => {}
            Some(_) => return None,
        }
    }
    observed
}

/// Classify one join operand. `preferred` is the attribute (in the
/// side's own 1-based numbering) the probe terms would key by, and
/// `want_index` says whether any term will actually probe this side (the
/// opposite delta is non-empty). `persistent` marks a base bag (`Var`
/// child): only those go through the runtime's [`IndexCache`] — it
/// patches base indexes across commits, so the `O(|bag|)` build
/// amortizes to `O(1)` per batch. A derived operand (a child node's
/// snapshot) gets a *transient* index instead: caching its owner clone
/// would force a copy-on-write of the snapshot on its next in-place
/// patch and churn the cache with dead entries every batch. Scan mode
/// establishes uniformity by scanning (its terms are `O(|bag|)` anyway).
fn join_side(
    ctx: &mut UpdateCtx<'_, '_>,
    bag: &Bag,
    preferred: usize,
    delta: &ZBag,
    persistent: bool,
    want_index: bool,
) -> JoinSide {
    // Delta rows must share the operand's arity or the fixed split point
    // of the concatenated tuple is ill-defined.
    let mut delta_arity = None;
    for (row, _) in delta.iter() {
        let Some(fields) = row.as_tuple() else {
            return JoinSide::Irregular;
        };
        match delta_arity {
            None => delta_arity = Some(fields.len()),
            Some(a) if a == fields.len() => {}
            Some(_) => return JoinSide::Irregular,
        }
    }
    if bag.is_empty() {
        return match delta_arity {
            None => JoinSide::Vacuous,
            Some(arity) => JoinSide::Uniform { arity, index: None },
        };
    }
    let arity;
    let mut index = None;
    if ctx.use_indexes && persistent {
        // Build (or hit) the cached base index even when this batch's
        // terms won't probe it: it is built at most once per (base,
        // attribute), patched thereafter, and doubles as an O(1) arity
        // witness for every later batch.
        match ctx.indexes.get_or_build(bag, preferred) {
            Some(built) => {
                arity = built.arity();
                index = Some(built);
            }
            // The preferred attribute may simply be out of this side's
            // range (the equality reads one side twice); attribute 1 is
            // in range for every tuple, so it settles uniformity.
            None => match ctx.indexes.get_or_build(bag, 1) {
                Some(witness) => arity = witness.arity(),
                None => return JoinSide::Irregular,
            },
        }
    } else if ctx.use_indexes && want_index {
        match BagIndex::build(bag, preferred) {
            Some(built) => {
                arity = built.arity();
                index = Some(Arc::new(built));
            }
            None => match uniform_tuple_arity(bag) {
                Some(a) => arity = a,
                None => return JoinSide::Irregular,
            },
        }
    } else {
        match uniform_tuple_arity(bag) {
            Some(a) => arity = a,
            None => return JoinSide::Irregular,
        }
    }
    if delta_arity.is_some_and(|d| d != arity) {
        return JoinSide::Irregular;
    }
    JoinSide::Uniform { arity, index }
}

/// The `k`-th (1-based) field of the virtual concatenation `lf ++ rf`.
/// The caller has checked `1 ≤ k ≤ |lf| + |rf|`.
fn pair_field<'x>(lf: &'x [Value], rf: &'x [Value], k: usize) -> &'x Value {
    if k <= lf.len() {
        &lf[k - 1]
    } else {
        &rf[k - lf.len() - 1]
    }
}

/// Enforce the distinct-element budget on a join-delta builder.
fn check_join_budget(out: &mut ZBagBuilder, limit: u64) -> Result<(), MaintainError> {
    out.ensure_distinct_within(limit)
        .map_err(|observed| MaintainError::Eval(EvalError::ElementLimit { observed, limit }))
}

/// Rank-proportional chunk boundaries over `n` delta rows: cut `k` ends at
/// `n·k/chunks`, a pure function of the requested chunk count (never of
/// worker count or load), so every parallelism setting partitions — and
/// therefore computes — identically. Empty ranges collapse away.
fn row_cuts(n: usize, chunks: usize) -> Vec<(usize, usize)> {
    let chunks = chunks.clamp(1, n.max(1));
    let mut cuts = Vec::with_capacity(chunks);
    let mut lo = 0usize;
    for k in 1..=chunks {
        let hi = n * k / chunks;
        if hi > lo {
            cuts.push((lo, hi));
            lo = hi;
        }
    }
    cuts
}

/// One chunk of an indexed join-delta term: probe the opposite side's
/// per-key index with each delta row in `rows`, accumulating surviving
/// pairs into a chunk-local builder. `key` is the 1-based join attribute
/// within the delta row; `delta_is_left` fixes the concatenation order.
/// The shared `counter` tracks total pushes across all chunks and terms;
/// crossing `budget` aborts the whole optimistic attempt (checked
/// *before* materializing a row's group, so committed work never exceeds
/// the budget).
fn probe_delta_chunk(
    rows: &[(Value, ZInt)],
    index: &BagIndex,
    key: usize,
    delta_is_left: bool,
    counter: &AtomicU64,
    budget: u64,
) -> Option<ZBag> {
    let mut out = ZBagBuilder::new();
    for (row, change) in rows {
        let pf = row.as_tuple().expect("join_side checked");
        let group = index.group(&pf[key - 1]);
        let g = group.len() as u64;
        if counter.fetch_add(g, Ordering::Relaxed).saturating_add(g) > budget {
            return None;
        }
        for (other, mult) in group {
            let of = other.as_tuple().expect("indexed rows are tuples");
            let value = if delta_is_left {
                Value::concat_tuples(pf, of)
            } else {
                Value::concat_tuples(of, pf)
            };
            out.push(value, change.scale(mult));
        }
    }
    Some(out.build())
}

/// One chunk of a scanned join-delta term: pair every delta row in `rows`
/// with every element of the unchanged operand under the `αᵢ = αⱼ` filter.
/// Budget semantics mirror [`probe_delta_chunk`] (the counter is bumped
/// per surviving pair, before the push).
fn scan_delta_chunk(
    rows: &[(Value, ZInt)],
    other: &Bag,
    i: usize,
    j: usize,
    delta_is_left: bool,
    counter: &AtomicU64,
    budget: u64,
) -> Option<ZBag> {
    let mut out = ZBagBuilder::new();
    for (row, change) in rows {
        let pf = row.as_tuple().expect("join_side checked");
        for (other_row, mult) in other.iter() {
            let of = other_row.as_tuple().expect("join_side checked");
            let (lf, rf) = if delta_is_left { (pf, of) } else { (of, pf) };
            if pair_field(lf, rf, i) == pair_field(lf, rf, j) {
                if counter.fetch_add(1, Ordering::Relaxed) >= budget {
                    return None;
                }
                out.push(Value::concat_tuples(lf, rf), change.scale(mult));
            }
        }
    }
    Some(out.build())
}

/// Fan one indexed term out across the worker pool (or run it inline when
/// the delta is below the partition threshold). Chunk deltas merge with
/// the keyed group sum [`ZBag::add`], which equals building from the full
/// push stream in any order.
fn par_probe_term(
    delta: &Arc<Vec<(Value, ZInt)>>,
    index: &Arc<BagIndex>,
    key: usize,
    delta_is_left: bool,
    par: Parallel,
    counter: &Arc<AtomicU64>,
    budget: u64,
) -> Option<ZBag> {
    let want = if delta.len() >= par.threshold {
        par.chunks
    } else {
        1
    };
    let cuts = row_cuts(delta.len(), want);
    if cuts.len() <= 1 {
        return probe_delta_chunk(delta, index, key, delta_is_left, counter, budget);
    }
    par::note_partitioned(cuts.len());
    let jobs: Vec<_> = cuts
        .into_iter()
        .map(|(lo, hi)| {
            let delta = Arc::clone(delta);
            let index = Arc::clone(index);
            let counter = Arc::clone(counter);
            move || probe_delta_chunk(&delta[lo..hi], &index, key, delta_is_left, &counter, budget)
        })
        .collect();
    let mut out = ZBag::new();
    for part in pool::global().run(jobs) {
        out = out.add(&part?);
    }
    Some(out)
}

/// Fan one scanned term out across the worker pool — same contract as
/// [`par_probe_term`], with the unchanged operand scanned per delta row.
#[allow(clippy::too_many_arguments)]
fn par_scan_term(
    delta: &Arc<Vec<(Value, ZInt)>>,
    other: &Bag,
    i: usize,
    j: usize,
    delta_is_left: bool,
    par: Parallel,
    counter: &Arc<AtomicU64>,
    budget: u64,
) -> Option<ZBag> {
    let want = if delta.len() >= par.threshold {
        par.chunks
    } else {
        1
    };
    let cuts = row_cuts(delta.len(), want);
    if cuts.len() <= 1 {
        return scan_delta_chunk(delta, other, i, j, delta_is_left, counter, budget);
    }
    par::note_partitioned(cuts.len());
    let jobs: Vec<_> = cuts
        .into_iter()
        .map(|(lo, hi)| {
            let delta = Arc::clone(delta);
            let other = other.clone();
            let counter = Arc::clone(counter);
            move || {
                scan_delta_chunk(
                    &delta[lo..hi],
                    &other,
                    i,
                    j,
                    delta_is_left,
                    &counter,
                    budget,
                )
            }
        })
        .collect();
    let mut out = ZBag::new();
    for part in pool::global().run(jobs) {
        out = out.add(&part?);
    }
    Some(out)
}

/// Optimistic partitioned evaluation of the fused equi-join's three delta
/// terms. Commits only when the total surviving pair count stays within
/// `budget` (= `max_elements`): in that regime the serial builder cannot
/// hit its distinct-element budget either (distinct ≤ pushes), and the
/// keyed merge of chunk deltas equals the serial push stream, so the
/// committed delta is bit-identical to the serial one. On overflow
/// nothing is kept and the caller's serial loops re-derive the exact
/// outcome — success or the precise `ElementLimit` payload. The boolean
/// mirrors the serial `used_index` flag.
#[allow(clippy::too_many_arguments)]
fn join_delta_par(
    da: &ZBag,
    db_: &ZBag,
    left_new: &Bag,
    right_new: &Bag,
    left_index: &Option<Arc<BagIndex>>,
    right_index: &Option<Arc<BagIndex>>,
    i: usize,
    j: usize,
    la: usize,
    spanning: bool,
    par: Parallel,
    budget: u64,
) -> Option<(ZBag, bool)> {
    let counter = Arc::new(AtomicU64::new(0));
    let mut out = ZBag::new();
    let mut used_index = false;
    // F(δA × B_new)
    if !da.is_empty() && !right_new.is_empty() {
        let rows = Arc::new(da.pairs().to_vec());
        let term = if let (true, Some(index)) = (spanning, right_index) {
            used_index = true;
            par_probe_term(&rows, index, i, true, par, &counter, budget)
        } else {
            par_scan_term(&rows, right_new, i, j, true, par, &counter, budget)
        };
        let Some(term) = term else {
            par::note_serial_fallback();
            return None;
        };
        out = out.add(&term);
    }
    // F(A_new × δB)
    if !db_.is_empty() && !left_new.is_empty() {
        let rows = Arc::new(db_.pairs().to_vec());
        let term = if let (true, Some(index)) = (spanning, left_index) {
            used_index = true;
            par_probe_term(&rows, index, j - la, false, par, &counter, budget)
        } else {
            par_scan_term(&rows, left_new, i, j, false, par, &counter, budget)
        };
        let Some(term) = term else {
            par::note_serial_fallback();
            return None;
        };
        out = out.add(&term);
    }
    // ⊖ F(δA × δB) — both sides small, a direct pair loop on this thread.
    if !da.is_empty() && !db_.is_empty() {
        let mut builder = ZBagBuilder::new();
        for (lrow, lchange) in da.iter() {
            let lf = lrow.as_tuple().expect("join_side checked");
            for (rrow, rchange) in db_.iter() {
                let rf = rrow.as_tuple().expect("join_side checked");
                if pair_field(lf, rf, i) == pair_field(lf, rf, j) {
                    if counter.fetch_add(1, Ordering::Relaxed) >= budget {
                        par::note_serial_fallback();
                        return None;
                    }
                    builder.push(Value::concat_tuples(lf, rf), lchange.mul(rchange).neg());
                }
            }
        }
        out = out.add(&builder.build());
    }
    Some((out, used_index))
}

/// Classify a replaced value for the parent: unchanged, a bag delta, or an
/// opaque scalar change.
fn replaced(old: &Value, new: &Value) -> Delta {
    if old == new {
        return Delta::None;
    }
    if let (Value::Bag(o), Value::Bag(n)) = (old, new) {
        return Delta::Bag(ZBag::diff(n, o));
    }
    Delta::Opaque
}

impl Node {
    /// The node's current bag value: materialized nodes answer from their
    /// snapshot, `Var` nodes read through to the (post-update) database so
    /// base bags never carry a second reference (which would force
    /// copy-on-write on every in-place base patch).
    fn current_bag<'x>(&'x self, db: &'x Database) -> Result<&'x Bag, EvalError> {
        match &self.kind {
            Kind::Var(name) if !self.keep_snapshot => db
                .get(name)
                .ok_or_else(|| EvalError::UnboundVariable(name.clone())),
            // Literals never materialize; their value lives in the kind.
            Kind::Lit(value) => expect_bag(value),
            _ => expect_bag(&self.snapshot),
        }
    }

    /// The node's current value, cloned (for probe bindings and scalar
    /// recomputes).
    fn current_value(&self, db: &Database) -> Result<Value, EvalError> {
        if let Kind::Var(name) = &self.kind {
            if !self.keep_snapshot {
                return db
                    .get(name)
                    .map(|bag| Value::Bag(bag.clone()))
                    .ok_or_else(|| EvalError::UnboundVariable(name.clone()));
            }
        }
        if let Kind::Lit(value) = &self.kind {
            return Ok(value.clone());
        }
        Ok(self.snapshot.clone())
    }

    /// Re-derive this node's value from its children's current values
    /// (one operator application — children are *not* re-evaluated).
    fn recompute(
        &self,
        db: &Database,
        ev: &mut Evaluator<'_>,
        max_elements: u64,
    ) -> Result<Value, EvalError> {
        let child_bag = |i: usize| -> Result<&Bag, EvalError> { self.children[i].current_bag(db) };
        Ok(match &self.kind {
            Kind::Var(name) => db
                .get(name)
                .map(|bag| Value::Bag(bag.clone()))
                .ok_or_else(|| EvalError::UnboundVariable(name.clone()))?,
            Kind::Lit(value) => value.clone(),
            Kind::AdditiveUnion => Value::Bag(child_bag(0)?.additive_union(child_bag(1)?)),
            Kind::Subtract => Value::Bag(child_bag(0)?.subtract(child_bag(1)?)),
            Kind::MaxUnion => Value::Bag(child_bag(0)?.max_union(child_bag(1)?)),
            Kind::Intersect => Value::Bag(child_bag(0)?.intersect(child_bag(1)?)),
            Kind::Product => Value::Bag(child_bag(0)?.product(child_bag(1)?, max_elements)?),
            Kind::Tuple => Value::Tuple(
                self.children
                    .iter()
                    .map(|c| c.current_value(db))
                    .collect::<Result<Vec<_>, _>>()?
                    .into(),
            ),
            Kind::Singleton => Value::Bag(Bag::singleton(self.children[0].current_value(db)?)),
            Kind::Powerset => Value::Bag(child_bag(0)?.powerset(max_elements)?),
            Kind::Powerbag => Value::Bag(child_bag(0)?.powerbag(max_elements)?),
            Kind::Attr(index) => {
                let value = self.children[0].current_value(db)?;
                let fields = value.as_tuple().ok_or_else(|| EvalError::Shape {
                    expected: "a tuple",
                    found: value.to_string(),
                })?;
                attr_field(fields, *index)
                    .cloned()
                    .map_err(EvalError::Bag)?
            }
            Kind::Destroy => Value::Bag(child_bag(0)?.destroy()?),
            Kind::Dedup => Value::Bag(child_bag(0)?.dedup()),
            Kind::Nest(group) => Value::Bag(child_bag(0)?.nest(group)?),
            Kind::Map { probe, .. } | Kind::Select { probe, .. } | Kind::Ifp { probe } => {
                let input = self.children[0].current_value(db)?;
                ev.eval_open(probe, &[(Var::from(DELTA_INPUT), input)])?
            }
            Kind::EquiJoin { probe, .. } => {
                let left = self.children[0].current_value(db)?;
                let right = self.children[1].current_value(db)?;
                ev.eval_open(
                    probe,
                    &[
                        (Var::from(DELTA_INPUT_LEFT), left),
                        (Var::from(DELTA_INPUT_RIGHT), right),
                    ],
                )?
            }
        })
    }

    /// Fill in the materialized snapshots. A kept node whose children all
    /// have usable current values (materialized, `Var`, or `Lit`) derives
    /// its value with **one** operator application over them; only kept
    /// nodes above a non-materialized (purely linear) child re-evaluate
    /// their sub-expression through the fused evaluator — so stacked
    /// non-linear operators don't re-evaluate shared subtrees, and a
    /// skipped product under a clean σ is never materialized even at
    /// registration.
    fn init(
        &mut self,
        db: &Database,
        ev: &mut Evaluator<'_>,
        max_elements: u64,
    ) -> Result<(), EvalError> {
        for child in &mut self.children {
            child.init(db, ev, max_elements)?;
        }
        if self.keep_snapshot {
            let children_ready = self
                .children
                .iter()
                .all(|c| c.keep_snapshot || matches!(c.kind, Kind::Var(_) | Kind::Lit(_)));
            self.snapshot = if children_ready {
                self.recompute(db, ev, max_elements)?
            } else {
                ev.eval_open(&self.expr, &[])?
            };
        }
        Ok(())
    }

    /// Non-linear fallback: one operator re-derived over the children's
    /// refreshed values, re-expressed as a delta for the parent.
    /// Fallback-capable nodes always materialize (see [`mark_snapshots`]),
    /// so `self.snapshot` is the valid pre-update value here.
    fn fallback(&mut self, ctx: &mut UpdateCtx<'_, '_>) -> Result<Delta, MaintainError> {
        let new = self.recompute(ctx.db, ctx.ev, ctx.max_elements)?;
        ctx.stats.fallback_recomputes += 1;
        let delta = replaced(&self.snapshot, &new);
        self.snapshot = new;
        Ok(delta)
    }

    /// The fused equi-join's linear delta in post-update form:
    /// `δJ = F(δA × B_new) ⊕ F(A_new × δB) ⊖ F(δA × δB)` with
    /// `F = σ_{αᵢ=αⱼ}`. When the equality spans the product boundary,
    /// each `F(δX × Y)` term probes `Y`'s per-key index — only the rows
    /// keyed by the delta's join values are touched, `O(|δ| · matches)`;
    /// otherwise the terms scan `Y` under the pair filter (still linear
    /// in `|Y|`, the shape of the unfused bilinear rule). Returns `None`
    /// when the operands do not admit the fused rule (mixed arities, an
    /// attribute past both sides) — the caller re-derives, which also
    /// reproduces any per-element `σ` error faithfully. The boolean
    /// reports whether an index was probed.
    fn join_delta(
        &self,
        ctx: &mut UpdateCtx<'_, '_>,
        i: usize,
        j: usize,
        da: &ZBag,
        db_: &ZBag,
    ) -> Result<Option<(ZBag, bool)>, MaintainError> {
        let db = ctx.db;
        let left_new = self.children[0]
            .current_bag(db)
            .map_err(MaintainError::Eval)?;
        let right_new = self.children[1]
            .current_bag(db)
            .map_err(MaintainError::Eval)?;
        let left_persistent = matches!(self.children[0].kind, Kind::Var(_));
        let right_persistent = matches!(self.children[1].kind, Kind::Var(_));
        // Only a non-empty opposite delta makes a side worth indexing:
        // F(A_new × δB) probes the left index, F(δA × B_new) the right.
        let (want_left, want_right) = (!db_.is_empty(), !da.is_empty());
        // The left side's arity fixes the split point of the
        // concatenated tuple, so it resolves first.
        let (la, left_index) = match join_side(ctx, left_new, i, da, left_persistent, want_left) {
            JoinSide::Vacuous => return Ok(Some((ZBag::new(), false))),
            JoinSide::Irregular => return Ok(None),
            JoinSide::Uniform { arity, index } => (arity, index),
        };
        let right_preferred = if j > la { j - la } else { 1 };
        let (ra, right_index) = match join_side(
            ctx,
            right_new,
            right_preferred,
            db_,
            right_persistent,
            want_right,
        ) {
            JoinSide::Vacuous => return Ok(Some((ZBag::new(), false))),
            JoinSide::Irregular => return Ok(None),
            JoinSide::Uniform { arity, index } => (arity, index),
        };
        if i > la + ra || j > la + ra {
            return Ok(None); // σ errors on every pair — re-derive honestly
        }
        let spanning = i <= la && j > la;
        // Optimistic partitioned attempt: chunk the delta rows across the
        // worker pool under a shared push budget (see [`join_delta_par`]).
        // `None` means the budget overflowed — fall through to the serial
        // loops, which re-derive the exact outcome.
        let parallel = ctx.ev.parallel();
        if parallel.wants(da.distinct_count()) || parallel.wants(db_.distinct_count()) {
            if let Some(result) = join_delta_par(
                da,
                db_,
                left_new,
                right_new,
                &left_index,
                &right_index,
                i,
                j,
                la,
                spanning,
                parallel,
                ctx.max_elements,
            ) {
                return Ok(Some(result));
            }
        }
        let mut out = ZBagBuilder::new();
        let mut used_index = false;
        // F(δA × B_new)
        if !da.is_empty() && !right_new.is_empty() {
            if let (true, Some(index)) = (spanning, &right_index) {
                used_index = true;
                for (row, change) in da.iter() {
                    let lf = row.as_tuple().expect("join_side checked");
                    for (other, mult) in index.group(&lf[i - 1]) {
                        let rf = other.as_tuple().expect("indexed rows are tuples");
                        out.push(Value::concat_tuples(lf, rf), change.scale(mult));
                        check_join_budget(&mut out, ctx.max_elements)?;
                    }
                }
            } else {
                for (row, change) in da.iter() {
                    let lf = row.as_tuple().expect("join_side checked");
                    for (other, mult) in right_new.iter() {
                        let rf = other.as_tuple().expect("join_side checked");
                        if pair_field(lf, rf, i) == pair_field(lf, rf, j) {
                            out.push(Value::concat_tuples(lf, rf), change.scale(mult));
                            check_join_budget(&mut out, ctx.max_elements)?;
                        }
                    }
                }
            }
        }
        // F(A_new × δB)
        if !db_.is_empty() && !left_new.is_empty() {
            if let (true, Some(index)) = (spanning, &left_index) {
                used_index = true;
                for (row, change) in db_.iter() {
                    let rf = row.as_tuple().expect("join_side checked");
                    for (other, mult) in index.group(&rf[j - la - 1]) {
                        let lf = other.as_tuple().expect("indexed rows are tuples");
                        out.push(Value::concat_tuples(lf, rf), change.scale(mult));
                        check_join_budget(&mut out, ctx.max_elements)?;
                    }
                }
            } else {
                for (row, change) in db_.iter() {
                    let rf = row.as_tuple().expect("join_side checked");
                    for (other, mult) in left_new.iter() {
                        let lf = other.as_tuple().expect("join_side checked");
                        if pair_field(lf, rf, i) == pair_field(lf, rf, j) {
                            out.push(Value::concat_tuples(lf, rf), change.scale(mult));
                            check_join_budget(&mut out, ctx.max_elements)?;
                        }
                    }
                }
            }
        }
        // ⊖ F(δA × δB) — both sides small, a direct pair loop.
        if !da.is_empty() && !db_.is_empty() {
            for (lrow, lchange) in da.iter() {
                let lf = lrow.as_tuple().expect("join_side checked");
                for (rrow, rchange) in db_.iter() {
                    let rf = rrow.as_tuple().expect("join_side checked");
                    if pair_field(lf, rf, i) == pair_field(lf, rf, j) {
                        out.push(Value::concat_tuples(lf, rf), lchange.mul(rchange).neg());
                        check_join_budget(&mut out, ctx.max_elements)?;
                    }
                }
            }
        }
        Ok(Some((out.build(), used_index)))
    }

    /// Apply a bag delta to this node's snapshot (in place when uniquely
    /// owned; skipped entirely for non-materialized nodes) and normalize
    /// the report.
    fn apply_bag_delta(&mut self, delta: ZBag) -> Result<Delta, MaintainError> {
        if delta.is_empty() {
            return Ok(Delta::None);
        }
        if !self.keep_snapshot {
            return Ok(Delta::Bag(delta));
        }
        let owned = std::mem::replace(&mut self.snapshot, Value::empty_bag());
        let Value::Bag(old) = owned else {
            return Err(MaintainError::Internal(
                "bag delta for a non-bag snapshot".to_owned(),
            ));
        };
        let new = delta
            .apply_into(old)
            .map_err(|e| MaintainError::Internal(e.to_string()))?;
        self.snapshot = Value::Bag(new);
        Ok(Delta::Bag(delta))
    }

    /// The update pass. Returns what changed, with `self.snapshot`
    /// refreshed to the post-update value.
    fn update(&mut self, ctx: &mut UpdateCtx<'_, '_>) -> Result<Delta, MaintainError> {
        if self.reads.is_disjoint(ctx.affected) {
            return Ok(Delta::None);
        }
        match &self.kind {
            Kind::Var(name) => {
                let name = name.clone();
                // The runtime has already committed the new base bag;
                // readers go through `current_bag` to the database, so
                // only a demanded-as-root Var refreshes a snapshot.
                if self.keep_snapshot {
                    let bag = ctx
                        .db
                        .get(&name)
                        .ok_or_else(|| {
                            MaintainError::Eval(EvalError::UnboundVariable(name.clone()))
                        })?
                        .clone();
                    self.snapshot = Value::Bag(bag);
                }
                match ctx.deltas.get(&name) {
                    Some(delta) if !delta.is_empty() => Ok(Delta::Bag(delta.clone())),
                    _ => Ok(Delta::None),
                }
            }
            Kind::Lit(_) => Ok(Delta::None),
            Kind::AdditiveUnion => {
                let da = self.children[0].update(ctx)?;
                let db = self.children[1].update(ctx)?;
                match (da, db) {
                    (Delta::Opaque, _) | (_, Delta::Opaque) => self.fallback(ctx),
                    (Delta::None, Delta::None) => Ok(Delta::None),
                    (a, b) => {
                        let mut delta = ZBag::new();
                        if let Delta::Bag(d) = a {
                            delta = delta.add(&d);
                        }
                        if let Delta::Bag(d) = b {
                            delta = delta.add(&d);
                        }
                        ctx.stats.linear_delta_ops += 1;
                        self.apply_bag_delta(delta)
                    }
                }
            }
            Kind::Product => {
                let da = self.children[0].update(ctx)?;
                let db = self.children[1].update(ctx)?;
                match (da, db) {
                    (Delta::Opaque, _) | (_, Delta::Opaque) => self.fallback(ctx),
                    (Delta::None, Delta::None) => Ok(Delta::None),
                    (a, b) => {
                        // Bilinear rule in post-update form — only fresh
                        // operand values are needed, so no old snapshots
                        // are captured:
                        // δ(A×B) = δA×B_new ⊕ A_new×δB ⊖ δA×δB.
                        let mut delta = ZBag::new();
                        if let Delta::Bag(d) = &a {
                            let right_new = self.children[1]
                                .current_bag(ctx.db)
                                .map_err(MaintainError::Eval)?;
                            delta = delta.add(
                                &d.product(&ZBag::from_bag(right_new), ctx.max_elements)
                                    .map_err(EvalError::Bag)?,
                            );
                        }
                        if let Delta::Bag(d) = &b {
                            let left_new = self.children[0]
                                .current_bag(ctx.db)
                                .map_err(MaintainError::Eval)?;
                            delta = delta.add(
                                &ZBag::from_bag(left_new)
                                    .product(d, ctx.max_elements)
                                    .map_err(EvalError::Bag)?,
                            );
                        }
                        if let (Delta::Bag(x), Delta::Bag(y)) = (&a, &b) {
                            delta = delta.add(
                                &x.product(y, ctx.max_elements)
                                    .map_err(EvalError::Bag)?
                                    .negate(),
                            );
                        }
                        ctx.stats.linear_delta_ops += 1;
                        self.apply_bag_delta(delta)
                    }
                }
            }
            Kind::EquiJoin { i, j, .. } => {
                let (i, j) = (*i, *j);
                let da = self.children[0].update(ctx)?;
                let db_ = self.children[1].update(ctx)?;
                match (da, db_) {
                    (Delta::Opaque, _) | (_, Delta::Opaque) => self.fallback(ctx),
                    (Delta::None, Delta::None) => Ok(Delta::None),
                    (a, b) => {
                        let zero = ZBag::new();
                        let da = match &a {
                            Delta::Bag(d) => d,
                            _ => &zero,
                        };
                        let db_ = match &b {
                            Delta::Bag(d) => d,
                            _ => &zero,
                        };
                        match self.join_delta(ctx, i, j, da, db_)? {
                            Some((delta, used_index)) => {
                                ctx.stats.linear_delta_ops += 1;
                                if used_index {
                                    ctx.stats.indexed_join_ops += 1;
                                } else {
                                    ctx.stats.scanned_join_ops += 1;
                                }
                                self.apply_bag_delta(delta)
                            }
                            None => {
                                ctx.irregular_join_fallbacks += 1;
                                self.fallback(ctx)
                            }
                        }
                    }
                }
            }
            Kind::Destroy => match self.children[0].update(ctx)? {
                Delta::None => Ok(Delta::None),
                Delta::Opaque => self.fallback(ctx),
                Delta::Bag(d) => {
                    let delta = d.destroy().map_err(EvalError::Bag)?;
                    ctx.stats.linear_delta_ops += 1;
                    self.apply_bag_delta(delta)
                }
            },
            Kind::Map { .. } => {
                let body_affected = !self.body_reads.is_disjoint(ctx.affected);
                let child = self.children[0].update(ctx)?;
                if body_affected || matches!(child, Delta::Opaque) {
                    return self.fallback(ctx);
                }
                match child {
                    Delta::None => Ok(Delta::None),
                    Delta::Bag(d) => {
                        // Linear per-element rule: MAP distributes over ∪⁺,
                        // so each delta element maps through the body with
                        // its signed multiplicity. The body is one stable
                        // tree across the loop, so after the first element
                        // clears the evaluator's pointer-keyed caches the
                        // rest reuse them.
                        let Kind::Map { var, body, .. } = &self.kind else {
                            unreachable!("matched above");
                        };
                        let mut out = ZBagBuilder::new();
                        for (i, (value, mult)) in d.iter().enumerate() {
                            let binding = [(var.clone(), value.clone())];
                            let image = if i == 0 {
                                ctx.ev.eval_open(body, &binding)?
                            } else {
                                ctx.ev.eval_open_cached(body, &binding)?
                            };
                            out.push(image, mult.clone());
                        }
                        ctx.stats.linear_delta_ops += 1;
                        self.apply_bag_delta(out.build())
                    }
                    Delta::Opaque => unreachable!("handled above"),
                }
            }
            Kind::Select { .. } => {
                let body_affected = !self.body_reads.is_disjoint(ctx.affected);
                let child = self.children[0].update(ctx)?;
                if body_affected || matches!(child, Delta::Opaque) {
                    return self.fallback(ctx);
                }
                match child {
                    Delta::None => Ok(Delta::None),
                    Delta::Bag(d) => {
                        let Kind::Select { var, pred, .. } = &self.kind else {
                            unreachable!("matched above");
                        };
                        let mut out = ZBagBuilder::new();
                        for (i, (value, mult)) in d.iter().enumerate() {
                            let binding = [(var.clone(), value.clone())];
                            let keep = if i == 0 {
                                ctx.ev.eval_pred_open(pred, &binding)?
                            } else {
                                ctx.ev.eval_pred_open_cached(pred, &binding)?
                            };
                            if keep {
                                out.push(value.clone(), mult.clone());
                            }
                        }
                        ctx.stats.linear_delta_ops += 1;
                        self.apply_bag_delta(out.build())
                    }
                    Delta::Opaque => unreachable!("handled above"),
                }
            }
            // Non-linear bag operators: refresh children, then re-derive
            // this single operator over their snapshots.
            Kind::Subtract | Kind::MaxUnion | Kind::Intersect => {
                let da = self.children[0].update(ctx)?;
                let db = self.children[1].update(ctx)?;
                if matches!((&da, &db), (Delta::None, Delta::None)) {
                    return Ok(Delta::None);
                }
                self.fallback(ctx)
            }
            Kind::Dedup | Kind::Powerset | Kind::Powerbag | Kind::Nest(_) => {
                match self.children[0].update(ctx)? {
                    Delta::None => Ok(Delta::None),
                    _ => self.fallback(ctx),
                }
            }
            Kind::Ifp { .. } => {
                let body_affected = !self.body_reads.is_disjoint(ctx.affected);
                let child = self.children[0].update(ctx)?;
                if !body_affected && matches!(child, Delta::None) {
                    return Ok(Delta::None);
                }
                self.fallback(ctx)
            }
            // Scalar constructs: constant-size re-derivation.
            Kind::Tuple | Kind::Singleton | Kind::Attr(_) => {
                let mut any = false;
                for child in &mut self.children {
                    any |= !matches!(child.update(ctx)?, Delta::None);
                }
                if !any {
                    return Ok(Delta::None);
                }
                let new = self.recompute(ctx.db, ctx.ev, ctx.max_elements)?;
                ctx.stats.scalar_recomputes += 1;
                let delta = replaced(&self.snapshot, &new);
                self.snapshot = new;
                Ok(delta)
            }
        }
    }
}

/// A registered, incrementally maintained view.
#[derive(Clone, Debug)]
pub struct View {
    expr: Expr,
    root: Node,
    stats: ViewStats,
    /// Per-base linearity facts from the static analyzer
    /// ([`balg_core::analyze::base_linearity`]), computed once at
    /// registration. Debug builds assert the certificate against the
    /// instrumentation counters on every maintenance pass: a batch that
    /// touches only ≤-bilinear bases must run entirely in delta form.
    linearity: BTreeMap<Var, Linearity>,
}

impl View {
    /// Compile and fully evaluate a view over the current database. The
    /// expression must be bag-valued and closed over database names.
    pub(crate) fn new(
        expr: Expr,
        db: &Database,
        limits: &Limits,
        use_indexes: bool,
        parallel: Option<Parallel>,
    ) -> Result<View, EvalError> {
        let mut root = compile(&expr);
        mark_snapshots(&mut root, true);
        // Even a bare `Var`/`Lit` root materializes: `result()` reads it.
        root.keep_snapshot = true;
        let mut ev = Evaluator::new(db, limits.clone());
        ev.set_indexing(use_indexes);
        if let Some(p) = parallel {
            ev.set_parallel_config(p);
        }
        root.init(db, &mut ev, limits.max_bag_elements)?;
        if root.snapshot.as_bag().is_none() {
            return Err(EvalError::Shape {
                expected: "a bag-valued view",
                found: root.snapshot.to_string(),
            });
        }
        let linearity = base_linearity(&expr);
        Ok(View {
            expr,
            root,
            stats: ViewStats::default(),
            linearity,
        })
    }

    /// The maintained result.
    pub fn result(&self) -> &Bag {
        self.root
            .snapshot
            .as_bag()
            .expect("view results are bags — enforced at registration")
    }

    /// The view's defining expression.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// The database names the view reads.
    pub fn reads(&self) -> &BTreeSet<Var> {
        &self.root.reads
    }

    /// Instrumentation counters.
    pub fn stats(&self) -> &ViewStats {
        &self.stats
    }

    /// The static analyzer's per-base linearity classification of the
    /// view's expression (bases absent from the map are unread). A base
    /// at [`Linearity::Linear`]/[`Linearity::Bilinear`] propagates
    /// through delta rules; anything higher can force an operator
    /// re-derivation when it changes.
    pub fn linearity(&self) -> &BTreeMap<Var, Linearity> {
        &self.linearity
    }

    /// One maintenance pass for a committed update batch. `db` is the
    /// **post-update** database; `affected` names the bases whose deltas
    /// are nonzero. `indexes` is the runtime's persistent per-key index
    /// cache (base indexes in it have already been patched for this
    /// batch); `use_indexes` routes the fused equi-join between index
    /// probes and scans.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn maintain(
        &mut self,
        deltas: &BTreeMap<Var, ZBag>,
        affected: &BTreeSet<Var>,
        db: &Database,
        limits: &Limits,
        indexes: &mut IndexCache,
        use_indexes: bool,
        parallel: Option<Parallel>,
    ) -> Result<(), MaintainError> {
        let counters_before = (self.stats.fallback_recomputes, self.stats.scalar_recomputes);
        let mut ev = Evaluator::new(db, limits.clone());
        ev.set_indexing(use_indexes);
        if let Some(p) = parallel {
            ev.set_parallel_config(p);
        }
        let mut ctx = UpdateCtx {
            deltas,
            affected,
            db,
            max_elements: limits.max_bag_elements,
            ev: &mut ev,
            stats: &mut self.stats,
            indexes,
            use_indexes,
            irregular_join_fallbacks: 0,
        };
        self.root.update(&mut ctx)?;
        let irregular = ctx.irregular_join_fallbacks;
        if irregular > 0 {
            if let Some(obs) = crate::obs::incr_obs() {
                obs.irregular_join_fallbacks.add(irregular);
            }
        }
        // The analyzer's certificate, checked against reality: when every
        // updated base is ≤ bilinear (and no fused join hit irregular
        // data), the whole pass must have stayed in delta form. The
        // converse is *not* asserted — a non-linear base can still get
        // lucky (e.g. its subtree delta cancels to zero).
        debug_assert!(
            {
                let all_linearish = affected.iter().all(|base| {
                    self.linearity
                        .get(base)
                        .copied()
                        .unwrap_or(Linearity::Unread)
                        <= Linearity::Bilinear
                });
                !(all_linearish && irregular == 0)
                    || (self.stats.fallback_recomputes == counters_before.0
                        && self.stats.scalar_recomputes == counters_before.1)
            },
            "a batch over ≤-bilinear bases re-derived an operator despite the \
             linearity certificate: {:?} affected={affected:?}",
            self.linearity,
        );
        Ok(())
    }

    /// Re-derive every snapshot from scratch — the degraded path after a
    /// maintenance error, and the rebase path after [`super::runtime::ViewRuntime::load_base`].
    pub(crate) fn reinit(
        &mut self,
        db: &Database,
        limits: &Limits,
        use_indexes: bool,
        parallel: Option<Parallel>,
    ) -> Result<(), EvalError> {
        let mut ev = Evaluator::new(db, limits.clone());
        ev.set_indexing(use_indexes);
        if let Some(p) = parallel {
            ev.set_parallel_config(p);
        }
        self.root.init(db, &mut ev, limits.max_bag_elements)?;
        self.stats.full_reinits += 1;
        Ok(())
    }
}
