//! # balg-arith — bounded arithmetic and the Lemma 5.7 encoding
//!
//! Arithmetic formulas with bounded quantification (Definition 5.2), a
//! direct evaluator, and the Lemma 5.7 translation into BALG² + powerbag,
//! where integers are bags, `+` is `∪⁺`, `×` is `π₁(x × y)`, and the
//! quantification domain `D(bₙ) = P(E(bₙ))` is built with the powerbag's
//! exponential duplicate explosion (Theorem 5.5's engine).
//!
//! ```
//! use balg_arith::prelude::*;
//! use balg_core::eval::Limits;
//!
//! // "x is even" as arithmetic, compiled to the bag algebra and run on
//! // the bag b₆ of six unit tuples:
//! let (algebra, direct) =
//!     check_on_input(&even_formula(), "x", DomainKind::Linear, 6, Limits::default()).unwrap();
//! assert!(algebra && direct);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod formula;
pub mod translate;

/// Commonly used items, re-exported.
pub mod prelude {
    pub use crate::formula::{
        composite_formula, even_formula, prime_formula, square_formula, ArithVar, Formula, Term,
    };
    pub use crate::translate::{
        check_on_input, compile, decode_assignments, domain_cardinality, input_database,
        realized_bound, ArithCheckError, Compiled, DomainKind,
    };
}

pub use prelude::*;
