//! Arithmetic `(ℕ, +, ×, =, 0, 1)` with bounded quantification
//! (Definition 5.2).
//!
//! A formula `φ(x)` is *restricted by* `f` when bounding every quantifier
//! to range below `f(x)` does not change its truth value on inputs `x`.
//! Lemma 5.6 puts Turing machine acceptance in this shape; Lemma 5.7 then
//! encodes such formulas into BALG² + powerbag (see
//! [`translate`](crate::translate)). This module is the formula AST plus
//! the direct bounded evaluator the translation is checked against.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// An arithmetic variable name.
pub type ArithVar = Arc<str>;

/// An arithmetic term over `+`, `×`, constants, and variables.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Term {
    /// A variable.
    Var(ArithVar),
    /// A constant.
    Const(u64),
    /// Addition.
    Add(Box<Term>, Box<Term>),
    /// Multiplication.
    Mul(Box<Term>, Box<Term>),
}

impl Term {
    /// A variable term.
    pub fn var(name: &str) -> Term {
        Term::Var(Arc::from(name))
    }

    /// A constant term.
    pub fn constant(value: u64) -> Term {
        Term::Const(value)
    }

    /// Evaluate under an environment.
    pub fn eval(&self, env: &BTreeMap<ArithVar, u64>) -> Option<u64> {
        match self {
            Term::Var(name) => env.get(name).copied(),
            Term::Const(value) => Some(*value),
            Term::Add(a, b) => a.eval(env)?.checked_add(b.eval(env)?),
            Term::Mul(a, b) => a.eval(env)?.checked_mul(b.eval(env)?),
        }
    }

    /// Free variables, in first-occurrence order.
    pub fn vars(&self, out: &mut Vec<ArithVar>) {
        match self {
            Term::Var(name) => {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
            Term::Const(_) => {}
            Term::Add(a, b) | Term::Mul(a, b) => {
                a.vars(out);
                b.vars(out);
            }
        }
    }
}

impl std::ops::Add for Term {
    type Output = Term;

    /// `self + other`.
    fn add(self, other: Term) -> Term {
        Term::Add(Box::new(self), Box::new(other))
    }
}

impl std::ops::Mul for Term {
    type Output = Term;

    /// `self × other`.
    fn mul(self, other: Term) -> Term {
        Term::Mul(Box::new(self), Box::new(other))
    }
}

/// A first-order arithmetic formula.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Formula {
    /// `t = t′`.
    Eq(Term, Term),
    /// `t ≤ t′` — sugar for `∃z. t + z = t′` (the paper assumes `≤` is
    /// eliminated; the translation performs that rewriting).
    Le(Term, Term),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Bounded existential `∃x < f(n)`.
    Exists(ArithVar, Box<Formula>),
    /// Bounded universal `∀x < f(n)`.
    Forall(ArithVar, Box<Formula>),
}

impl Formula {
    /// `t = t′`.
    pub fn eq(a: Term, b: Term) -> Formula {
        Formula::Eq(a, b)
    }

    /// `t ≤ t′`.
    pub fn le(a: Term, b: Term) -> Formula {
        Formula::Le(a, b)
    }

    /// Conjunction.
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(other))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// `∃name < bound. self`.
    pub fn exists(name: &str, body: Formula) -> Formula {
        Formula::Exists(Arc::from(name), Box::new(body))
    }

    /// `∀name < bound. self`.
    pub fn forall(name: &str, body: Formula) -> Formula {
        Formula::Forall(Arc::from(name), Box::new(body))
    }

    /// Free variables, in first-occurrence order.
    pub fn free_vars(&self) -> Vec<ArithVar> {
        fn go(f: &Formula, bound: &mut Vec<ArithVar>, out: &mut Vec<ArithVar>) {
            match f {
                Formula::Eq(a, b) | Formula::Le(a, b) => {
                    let mut vars = Vec::new();
                    a.vars(&mut vars);
                    b.vars(&mut vars);
                    for v in vars {
                        if !bound.contains(&v) && !out.contains(&v) {
                            out.push(v);
                        }
                    }
                }
                Formula::Not(p) => go(p, bound, out),
                Formula::And(a, b) | Formula::Or(a, b) => {
                    go(a, bound, out);
                    go(b, bound, out);
                }
                Formula::Exists(x, p) | Formula::Forall(x, p) => {
                    bound.push(x.clone());
                    go(p, bound, out);
                    bound.pop();
                }
            }
        }
        let mut out = Vec::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }

    /// Evaluate with every quantifier bounded to `0 ..= bound` (inclusive;
    /// the inclusive form matches the subbag domain `P(Eⁱ(bₙ))`, which
    /// contains the integers `0 … |Eⁱ(bₙ)|`).
    pub fn eval_bounded(&self, env: &mut BTreeMap<ArithVar, u64>, bound: u64) -> Option<bool> {
        match self {
            Formula::Eq(a, b) => Some(a.eval(env)? == b.eval(env)?),
            Formula::Le(a, b) => Some(a.eval(env)? <= b.eval(env)?),
            Formula::Not(p) => Some(!p.eval_bounded(env, bound)?),
            Formula::And(a, b) => Some(a.eval_bounded(env, bound)? && b.eval_bounded(env, bound)?),
            Formula::Or(a, b) => Some(a.eval_bounded(env, bound)? || b.eval_bounded(env, bound)?),
            Formula::Exists(x, p) => {
                let saved = env.get(x).copied();
                let mut found = false;
                for value in 0..=bound {
                    env.insert(x.clone(), value);
                    if p.eval_bounded(env, bound)? {
                        found = true;
                        break;
                    }
                }
                restore(env, x, saved);
                Some(found)
            }
            Formula::Forall(x, p) => {
                let saved = env.get(x).copied();
                let mut all = true;
                for value in 0..=bound {
                    env.insert(x.clone(), value);
                    if !p.eval_bounded(env, bound)? {
                        all = false;
                        break;
                    }
                }
                restore(env, x, saved);
                Some(all)
            }
        }
    }
}

fn restore(env: &mut BTreeMap<ArithVar, u64>, var: &ArithVar, saved: Option<u64>) {
    match saved {
        Some(value) => env.insert(var.clone(), value),
        None => env.remove(var),
    };
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(name) => f.write_str(name),
            Term::Const(value) => write!(f, "{value}"),
            Term::Add(a, b) => write!(f, "({a} + {b})"),
            Term::Mul(a, b) => write!(f, "({a} · {b})"),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Eq(a, b) => write!(f, "{a} = {b}"),
            Formula::Le(a, b) => write!(f, "{a} ≤ {b}"),
            Formula::Not(p) => write!(f, "¬({p})"),
            Formula::And(a, b) => write!(f, "({a} ∧ {b})"),
            Formula::Or(a, b) => write!(f, "({a} ∨ {b})"),
            Formula::Exists(x, p) => write!(f, "∃{x}.({p})"),
            Formula::Forall(x, p) => write!(f, "∀{x}.({p})"),
        }
    }
}

/// `x` is even: `∃y. y + y = x`.
pub fn even_formula() -> Formula {
    Formula::exists(
        "y",
        Formula::eq(Term::var("y") + Term::var("y"), Term::var("x")),
    )
}

/// `x` is composite: `∃y ∃z. (y+2)·(z+2) = x`.
pub fn composite_formula() -> Formula {
    Formula::exists(
        "y",
        Formula::exists(
            "z",
            Formula::eq(
                (Term::var("y") + Term::constant(2)) * (Term::var("z") + Term::constant(2)),
                Term::var("x"),
            ),
        ),
    )
}

/// `x` is prime: `x ≥ 2 ∧ ¬composite(x)`.
pub fn prime_formula() -> Formula {
    Formula::le(Term::constant(2), Term::var("x")).and(composite_formula().not())
}

/// `x` is a perfect square: `∃y. y·y = x`.
pub fn square_formula() -> Formula {
    Formula::exists(
        "y",
        Formula::eq(Term::var("y") * Term::var("y"), Term::var("x")),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn holds(f: &Formula, x: u64, bound: u64) -> bool {
        let mut env = BTreeMap::new();
        env.insert(Arc::from("x"), x);
        f.eval_bounded(&mut env, bound).unwrap()
    }

    #[test]
    fn even_formula_decides_parity() {
        let f = even_formula();
        for x in 0..10u64 {
            assert_eq!(holds(&f, x, x), x % 2 == 0, "even({x})");
        }
    }

    #[test]
    fn prime_formula_decides_primality() {
        let f = prime_formula();
        let primes = [2u64, 3, 5, 7, 11, 13];
        for x in 0..14u64 {
            assert_eq!(holds(&f, x, x), primes.contains(&x), "prime({x})");
        }
    }

    #[test]
    fn square_formula() {
        let f = super::square_formula();
        for x in 0..17u64 {
            let is_sq = (0..=x).any(|y| y * y == x);
            assert_eq!(holds(&f, x, x), is_sq, "square({x})");
        }
    }

    #[test]
    fn forall_with_bound() {
        // ∀y. y ≤ x — true iff bound ≤ x.
        let f = Formula::forall("y", Formula::le(Term::var("y"), Term::var("x")));
        assert!(holds(&f, 5, 5));
        assert!(!holds(&f, 5, 6));
    }

    #[test]
    fn bound_restricts_witnesses() {
        // ∃y. y = 5 with bound 3: no witness.
        let f = Formula::exists("y", Formula::eq(Term::var("y"), Term::constant(5)));
        assert!(!holds(&f, 0, 3));
        assert!(holds(&f, 0, 5));
    }

    #[test]
    fn free_vars_and_shadowing() {
        let f = even_formula();
        assert_eq!(f.free_vars(), vec![Arc::<str>::from("x")]);
        // ∃x.(x = x) has no free variables.
        let closed = Formula::exists("x", Formula::eq(Term::var("x"), Term::var("x")));
        assert!(closed.free_vars().is_empty());
    }

    #[test]
    fn term_overflow_is_checked() {
        let mut env = BTreeMap::new();
        env.insert(Arc::from("x"), u64::MAX);
        assert_eq!((Term::var("x") + Term::constant(1)).eval(&env), None);
    }
}
