//! Lemma 5.7: encoding bounded arithmetic into BALG² + powerbag.
//!
//! An integer `i` is a bag of `i` occurrences of the unit tuple `[a]`;
//! addition is `∪⁺`, multiplication is `π₁(x × y)`. The bounded
//! quantification domain is the nested bag
//! `D(bₙ) = P(Eⁱ(bₙ))`, with the exponential step
//! `E(b) = count(P_b(b))` — the powerbag distinguishes occurrences, so a
//! single application multiplies cardinalities by `2ⁿ` without exceeding
//! one level of bag nesting (this is the engine of Theorem 5.5).
//!
//! A formula compiles to a BALG expression computing the bag of its
//! **satisfying assignments**: `m`-tuples of integer bags over the
//! formula's free variables, each once. Following the classical
//! calculus→algebra translation, conjunction is product + selection +
//! projection, negation is complement against the domain product, and
//! the existential is a projection.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use balg_core::bag::Bag;
use balg_core::derived::{count, decode_int, int_add, int_lit, int_mul};
use balg_core::eval::{EvalError, Evaluator, Limits};
use balg_core::expr::{Expr, Pred};
use balg_core::natural::Natural;
use balg_core::schema::Database;
use balg_core::value::Value;

use crate::formula::{ArithVar, Formula, Term};

/// Which exponential step builds the quantification domain.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DomainKind {
    /// `D = P(N(b))`: integers `0 … n`. Tower height 0.
    Linear,
    /// `D = P(E(N(b)))` with `E = count ∘ P_b`: integers `0 … 2ⁿ`
    /// (Lemma 5.7 / Theorem 5.5, one powerbag).
    ExponentialPowerbag,
}

/// A compiled formula: `expr` evaluates to the bag of satisfying
/// assignments, one `columns`-tuple of integer bags per assignment.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The BALG expression.
    pub expr: Expr,
    /// Column names (sorted), one per free variable.
    pub columns: Vec<ArithVar>,
}

struct Ctx {
    /// Name of the database bag holding the input `bₙ`.
    input_bag: &'static str,
    /// The distinguished input variable (its domain is the singleton
    /// `⟦[N(b)]⟧`, per the paper's `Dᵢ = ⟦bₙ⟧` clause).
    input_var: ArithVar,
    kind: DomainKind,
    fresh: u64,
}

impl Ctx {
    /// `N(b)` as a bag of unit tuples.
    fn n_of_input(&self) -> Expr {
        count(Expr::var(self.input_bag))
    }

    /// The quantification domain `D`, wrapped as a bag of 1-tuples so that
    /// Cartesian products apply.
    fn domain_wrapped(&self) -> Expr {
        let base = match self.kind {
            DomainKind::Linear => self.n_of_input(),
            DomainKind::ExponentialPowerbag => count(self.n_of_input().powerbag()),
        };
        base.powerset().map("d̂", Expr::tuple([Expr::var("d̂")]))
    }

    /// The singleton domain for the input variable: `⟦[N(b)]⟧`.
    fn input_domain_wrapped(&self) -> Expr {
        Expr::tuple([self.n_of_input()]).singleton()
    }

    fn domain_for(&self, var: &ArithVar) -> Expr {
        if *var == self.input_var {
            self.input_domain_wrapped()
        } else {
            self.domain_wrapped()
        }
    }

    /// The product of the domains of `columns` (the complement universe
    /// for negation); the 0-column universe is the singleton empty tuple.
    fn universe(&self, columns: &[ArithVar]) -> Expr {
        let mut acc: Option<Expr> = None;
        for column in columns {
            let d = self.domain_for(column);
            acc = Some(match acc {
                None => d,
                Some(prev) => prev.product(d),
            });
        }
        acc.unwrap_or_else(|| {
            Expr::Lit(Value::Bag(Bag::singleton(Value::Tuple(Vec::new().into()))))
        })
    }

    fn fresh_var(&mut self) -> ArithVar {
        self.fresh += 1;
        Arc::from(format!("ζ{}", self.fresh))
    }
}

/// Compile `formula` (with distinguished input variable `input_var`) into
/// a BALG expression over a database bag named `b` holding the unary
/// input `bₙ`.
pub fn compile(formula: &Formula, input_var: &str, kind: DomainKind) -> Compiled {
    let mut ctx = Ctx {
        input_bag: "b",
        input_var: Arc::from(input_var),
        kind,
        fresh: 0,
    };
    compile_rec(formula, &mut ctx)
}

fn term_expr(term: &Term, columns: &[ArithVar], row: &Expr) -> Expr {
    match term {
        Term::Var(name) => {
            let idx = columns
                .iter()
                .position(|c| c == name)
                .expect("term variable must be a column");
            row.clone().attr(idx + 1)
        }
        Term::Const(value) => int_lit(*value),
        Term::Add(a, b) => int_add(term_expr(a, columns, row), term_expr(b, columns, row)),
        Term::Mul(a, b) => int_mul(term_expr(a, columns, row), term_expr(b, columns, row)),
    }
}

fn compile_rec(formula: &Formula, ctx: &mut Ctx) -> Compiled {
    match formula {
        Formula::Eq(t1, t2) => {
            let mut vars = Vec::new();
            t1.vars(&mut vars);
            t2.vars(&mut vars);
            vars.sort();
            vars.dedup();
            let universe = ctx.universe(&vars);
            let row = Expr::var("r̂");
            let pred = Pred::eq(term_expr(t1, &vars, &row), term_expr(t2, &vars, &row));
            Compiled {
                expr: universe.select("r̂", pred).dedup(),
                columns: vars,
            }
        }
        // t ≤ t′ ⇝ ∃z. t + z = t′ (the w.l.o.g. elimination of ≤).
        Formula::Le(t1, t2) => {
            let z = ctx.fresh_var();
            let rewritten = Formula::Exists(
                z.clone(),
                Box::new(Formula::Eq(
                    Term::Add(Box::new(t1.clone()), Box::new(Term::Var(z))),
                    t2.clone(),
                )),
            );
            compile_rec(&rewritten, ctx)
        }
        Formula::Not(p) => {
            let inner = compile_rec(p, ctx);
            let universe = ctx.universe(&inner.columns).dedup();
            Compiled {
                expr: universe.subtract(inner.expr),
                columns: inner.columns,
            }
        }
        Formula::And(a, b) => {
            let ca = compile_rec(a, ctx);
            let cb = compile_rec(b, ctx);
            join(ca, cb, ctx)
        }
        Formula::Or(a, b) => {
            let ca = compile_rec(a, ctx);
            let cb = compile_rec(b, ctx);
            let mut columns: Vec<ArithVar> =
                ca.columns.iter().chain(&cb.columns).cloned().collect();
            columns.sort();
            columns.dedup();
            let left = align(ca, &columns, ctx);
            let right = align(cb, &columns, ctx);
            Compiled {
                expr: left.max_union(right).dedup(),
                columns,
            }
        }
        Formula::Exists(x, p) => {
            let inner = compile_rec(p, ctx);
            match inner.columns.iter().position(|c| c == x) {
                None => inner, // vacuous quantifier (domain is nonempty)
                Some(_) => {
                    let columns: Vec<ArithVar> =
                        inner.columns.iter().filter(|c| *c != x).cloned().collect();
                    let expr = project_columns(inner.expr, &inner.columns, &columns);
                    Compiled { expr, columns }
                }
            }
        }
        Formula::Forall(x, p) => {
            // ∀x.φ ⇝ ¬∃x.¬φ
            let rewritten = Formula::Not(Box::new(Formula::Exists(
                x.clone(),
                Box::new(Formula::Not(p.clone())),
            )));
            compile_rec(&rewritten, ctx)
        }
    }
}

/// Natural join on shared columns, then project to the sorted union.
fn join(ca: Compiled, cb: Compiled, ctx: &mut Ctx) -> Compiled {
    let mut columns: Vec<ArithVar> = ca.columns.iter().chain(&cb.columns).cloned().collect();
    columns.sort();
    columns.dedup();
    let offset = ca.columns.len();
    let row = || Expr::var("ĵ");
    // Selection: shared columns equal.
    let mut pred = Pred::True;
    for (j, col) in cb.columns.iter().enumerate() {
        if let Some(i) = ca.columns.iter().position(|c| c == col) {
            pred = pred.and(Pred::eq(row().attr(i + 1), row().attr(offset + j + 1)));
        }
    }
    let joined = ca.expr.product(cb.expr).select("ĵ", pred);
    // Project to the union columns (take from the left side when shared).
    let combined: Vec<ArithVar> = ca.columns.iter().chain(&cb.columns).cloned().collect();
    let expr = project_columns(joined, &combined, &columns);
    let _ = ctx;
    Compiled { expr, columns }
}

/// Pad with missing domains, then reorder to `target`.
fn align(c: Compiled, target: &[ArithVar], ctx: &mut Ctx) -> Expr {
    let missing: Vec<ArithVar> = target
        .iter()
        .filter(|t| !c.columns.contains(t))
        .cloned()
        .collect();
    let mut expr = c.expr;
    let mut combined = c.columns;
    for m in &missing {
        expr = expr.product(ctx.domain_for(m));
        combined.push(m.clone());
    }
    project_columns(expr, &combined, target)
}

/// `MAP` re-ordering `source`-column tuples into `target`-column tuples
/// (every target column must occur in `source`), with duplicate
/// elimination (the paper's "projection using MAP and duplicate
/// elimination").
fn project_columns(expr: Expr, source: &[ArithVar], target: &[ArithVar]) -> Expr {
    if source == target {
        return expr.dedup();
    }
    let row = Expr::var("p̂");
    let fields = target.iter().map(|t| {
        let idx = source
            .iter()
            .position(|s| s == t)
            .expect("target column must exist in source");
        row.clone().attr(idx + 1)
    });
    expr.map("p̂", Expr::tuple(fields.collect::<Vec<_>>()))
        .dedup()
}

/// Errors from [`check_on_input`].
#[derive(Debug)]
pub enum ArithCheckError {
    /// Evaluation of the compiled expression failed.
    Eval(EvalError),
    /// The direct evaluator overflowed `u64`.
    Overflow,
}

impl fmt::Display for ArithCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArithCheckError::Eval(e) => write!(f, "evaluation failed: {e}"),
            ArithCheckError::Overflow => f.write_str("direct evaluation overflowed"),
        }
    }
}

impl std::error::Error for ArithCheckError {}

/// The database binding `b` to the unary input `bₙ` (a bag of `n`
/// occurrences of one tuple).
pub fn input_database(n: u64) -> Database {
    Database::new().with("b", Bag::repeated(Value::tuple([Value::sym("u")]), n))
}

/// The quantifier bound realized by `kind` on input `n` (inclusive).
pub fn realized_bound(kind: DomainKind, n: u64) -> u64 {
    match kind {
        DomainKind::Linear => n,
        DomainKind::ExponentialPowerbag => 1u64 << n.min(62),
    }
}

/// Evaluate a compiled **sentence** (single free variable = the input) on
/// `bₙ` and compare against the direct bounded evaluator:
/// `φ′(bₙ) ≠ ∅ ⟺ φ(n)` (Lemma 5.7). Returns `(algebra, direct)`.
pub fn check_on_input(
    formula: &Formula,
    input_var: &str,
    kind: DomainKind,
    n: u64,
    limits: Limits,
) -> Result<(bool, bool), ArithCheckError> {
    let compiled = compile(formula, input_var, kind);
    let db = input_database(n);
    let mut evaluator = Evaluator::new(&db, limits);
    let out = evaluator
        .eval_bag(&compiled.expr)
        .map_err(ArithCheckError::Eval)?;
    let algebra = !out.is_empty();
    let mut env = BTreeMap::new();
    env.insert(Arc::from(input_var), n);
    let direct = formula
        .eval_bounded(&mut env, realized_bound(kind, n))
        .ok_or(ArithCheckError::Overflow)?;
    Ok((algebra, direct))
}

/// Decode the satisfying assignments of a compiled formula's result bag.
pub fn decode_assignments(bag: &Bag, columns: &[ArithVar]) -> Option<Vec<BTreeMap<ArithVar, u64>>> {
    let mut out = Vec::new();
    for (row, _) in bag.iter() {
        let fields = row.as_tuple()?;
        if fields.len() != columns.len() {
            return None;
        }
        let mut assignment = BTreeMap::new();
        for (column, field) in columns.iter().zip(fields) {
            let value = decode_int(field)?.to_u64()?;
            assignment.insert(column.clone(), value);
        }
        out.push(assignment);
    }
    Some(out)
}

/// The exact number of integers in the domain `D` on input `n` —
/// `|Eⁱ(bₙ)| + 1`.
pub fn domain_cardinality(kind: DomainKind, n: u64) -> Natural {
    match kind {
        DomainKind::Linear => Natural::from(n + 1),
        DomainKind::ExponentialPowerbag => Natural::pow2(n).succ(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{composite_formula, even_formula, prime_formula, square_formula};

    fn agree(formula: &Formula, n: u64) {
        let (algebra, direct) =
            check_on_input(formula, "x", DomainKind::Linear, n, Limits::default()).unwrap();
        assert_eq!(algebra, direct, "algebra vs direct at n={n} for {formula}");
    }

    #[test]
    fn even_translation_agrees() {
        let f = even_formula();
        for n in 0..9 {
            agree(&f, n);
        }
    }

    #[test]
    fn composite_translation_agrees() {
        let f = composite_formula();
        for n in 0..13 {
            agree(&f, n);
        }
    }

    #[test]
    fn prime_translation_agrees() {
        let f = prime_formula();
        for n in 0..12 {
            agree(&f, n);
        }
    }

    #[test]
    fn square_translation_agrees() {
        let f = square_formula();
        for n in 0..10 {
            agree(&f, n);
        }
    }

    #[test]
    fn forall_translation_agrees() {
        // ∀y. y ≤ x: with the inclusive bound this holds iff bound ≤ x,
        // i.e. always on the Linear domain (bound = n = x)... check both.
        let f = Formula::forall("y", Formula::le(Term::var("y"), Term::var("x")));
        for n in 0..6 {
            agree(&f, n);
        }
        // ∀y. ¬(y = x + 1): the domain never reaches x+1 on Linear.
        let g = Formula::forall(
            "y",
            Formula::eq(Term::var("y"), Term::var("x") + Term::constant(1)).not(),
        );
        for n in 0..5 {
            agree(&g, n);
        }
    }

    #[test]
    fn powerbag_domain_reaches_exponential_witnesses() {
        // ∃y. y = 2^... : witness 2ⁿ needs the exponential domain.
        // With n = 3: witness 8 > 3 exists only in the powerbag domain.
        let f = Formula::exists("y", Formula::eq(Term::var("y"), Term::constant(8)));
        let (alg_lin, dir_lin) =
            check_on_input(&f, "x", DomainKind::Linear, 3, Limits::default()).unwrap();
        assert!(!alg_lin && !dir_lin);
        let (alg_exp, dir_exp) = check_on_input(
            &f,
            "x",
            DomainKind::ExponentialPowerbag,
            3,
            Limits::default(),
        )
        .unwrap();
        assert!(alg_exp && dir_exp);
    }

    #[test]
    fn assignments_decode() {
        // Free y with x: y + y = x on input 6 → y = 3.
        let f = Formula::eq(Term::var("y") + Term::var("y"), Term::var("x"));
        let compiled = compile(&f, "x", DomainKind::Linear);
        assert_eq!(compiled.columns.len(), 2);
        let db = input_database(6);
        let out = balg_core::eval::eval_bag(&compiled.expr, &db).unwrap();
        let assignments = decode_assignments(&out, &compiled.columns).unwrap();
        assert_eq!(assignments.len(), 1);
        assert_eq!(assignments[0][&Arc::<str>::from("y")], 3);
        assert_eq!(assignments[0][&Arc::<str>::from("x")], 6);
    }

    #[test]
    fn compiled_formula_is_balg2() {
        use balg_core::schema::Schema;
        use balg_core::typecheck::check;
        use balg_core::types::Type;
        let compiled = compile(&even_formula(), "x", DomainKind::ExponentialPowerbag);
        let schema = Schema::new().with("b", Type::relation(1));
        let analysis = check(&compiled.expr, &schema).unwrap();
        assert!(analysis.uses_powerbag);
        assert_eq!(analysis.max_bag_nesting, 2, "Lemma 5.7 stays within BALG²");
    }

    #[test]
    fn domain_cardinalities() {
        assert_eq!(
            domain_cardinality(DomainKind::Linear, 5),
            Natural::from(6u64)
        );
        assert_eq!(
            domain_cardinality(DomainKind::ExponentialPowerbag, 5),
            Natural::from(33u64)
        );
    }
}
