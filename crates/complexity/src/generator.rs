//! Workload generators: random bag databases and a BALG¹ expression zoo.
//!
//! The zoo is the sample space for the fragment-wide experiments (E9
//! polynomiality, E10 translation equivalence, E11 LOGSPACE counters):
//! fixed representative queries plus seeded random expression generation,
//! so runs are reproducible.

use balg_core::bag::{Bag, BagBuilder};
use balg_core::expr::{Expr, Pred};
use balg_core::natural::Natural;
use balg_core::schema::Database;
use balg_core::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random multigraph: `edges` directed edges over `nodes` vertices,
/// each with multiplicity in `1..=max_mult`.
pub fn random_multigraph(seed: u64, nodes: u32, edges: u32, max_mult: u64) -> Bag {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bag = BagBuilder::with_capacity(edges as usize);
    for _ in 0..edges {
        let from = rng.gen_range(0..nodes) as i64;
        let to = rng.gen_range(0..nodes) as i64;
        let mult = rng.gen_range(1..=max_mult);
        bag.push(
            Value::tuple([Value::int(from), Value::int(to)]),
            Natural::from(mult),
        );
    }
    bag.build()
}

/// A random unary bag over `domain` values with multiplicities up to
/// `max_mult`.
pub fn random_unary_bag(seed: u64, domain: u32, max_mult: u64) -> Bag {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut bag = BagBuilder::new();
    for v in 0..domain {
        if rng.gen_bool(0.6) {
            // In-order pushes (ascending v) append directly.
            bag.push(
                Value::tuple([Value::int(v as i64)]),
                Natural::from(rng.gen_range(1..=max_mult)),
            );
        }
    }
    bag.build()
}

/// A database with a binary bag `G` and two unary bags `R`, `S`.
pub fn random_database(seed: u64, size: u32, max_mult: u64) -> Database {
    Database::new()
        .with(
            "G",
            random_multigraph(seed, size.max(2), size * 2, max_mult),
        )
        .with(
            "R",
            random_unary_bag(seed.wrapping_add(1), size.max(1), max_mult),
        )
        .with(
            "S",
            random_unary_bag(seed.wrapping_add(2), size.max(1), max_mult),
        )
}

/// The input `Bₙ` of Propositions 4.1/4.5: `n` occurrences of the single
/// unary tuple `[a]`.
pub fn b_n(n: u64) -> Database {
    Database::new().with("B", Bag::repeated(Value::tuple([Value::sym("a")]), n))
}

/// Fixed representative BALG¹ queries over the schema
/// `{G: ⟦U²⟧, R: ⟦U¹⟧, S: ⟦U¹⟧}` (all subtraction-free except where
/// noted by the name).
pub fn zoo() -> Vec<(&'static str, Expr)> {
    let g = || Expr::var("G");
    let r = || Expr::var("R");
    let s = || Expr::var("S");
    vec![
        ("identity", g()),
        ("reverse", g().project(&[2, 1])),
        (
            "two-step-paths",
            g().product(g())
                .select(
                    "x",
                    Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
                )
                .project(&[1, 4]),
        ),
        ("self-union", g().additive_union(g())),
        ("max-self-union", g().max_union(g())),
        ("self-intersect", g().intersect(g())),
        ("dedup", g().dedup()),
        ("r-times-s", r().product(s())),
        (
            "loops",
            g().select(
                "x",
                Pred::eq(Expr::var("x").attr(1), Expr::var("x").attr(2)),
            ),
        ),
        ("r-minus-s (uses −)", r().subtract(s())),
        (
            "endpoints",
            g().project(&[1]).additive_union(g().project(&[2])),
        ),
        (
            "tag-and-merge",
            r().map("x", Expr::tuple([Expr::var("x").attr(1)])),
        ),
    ]
}

/// A seeded random generator of subtraction-free BALG¹ expressions over
/// the unary input `B` (the Proposition 4.5 setting).
pub struct ExprZoo {
    rng: StdRng,
}

impl ExprZoo {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> Self {
        ExprZoo {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generate an expression of roughly the given AST depth, producing a
    /// flat bag of tuples from the unary input `B`.
    pub fn unary_expr(&mut self, depth: usize) -> Expr {
        if depth == 0 {
            return Expr::var("B");
        }
        match self.rng.gen_range(0..6u8) {
            0 => self
                .unary_expr(depth - 1)
                .additive_union(self.unary_expr(depth - 1)),
            1 => self
                .unary_expr(depth - 1)
                .max_union(self.unary_expr(depth - 1)),
            2 => self
                .unary_expr(depth - 1)
                .intersect(self.unary_expr(depth - 1)),
            3 => {
                // Product then project back to arity 1 keeps the zoo flat.
                self.unary_expr(depth - 1)
                    .product(self.unary_expr(depth - 1))
                    .project(&[1])
            }
            4 => self.unary_expr(depth - 1).dedup(),
            _ => self.unary_expr(depth - 1).select(
                "x",
                Pred::eq(Expr::var("x").attr(1), Expr::lit(Value::sym("a"))),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use balg_core::eval::eval_bag;
    use balg_core::schema::Schema;
    use balg_core::typecheck::check;
    use balg_core::types::Type;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            random_multigraph(7, 5, 10, 3),
            random_multigraph(7, 5, 10, 3)
        );
        assert_eq!(random_unary_bag(7, 5, 3), random_unary_bag(7, 5, 3));
    }

    #[test]
    fn zoo_queries_type_check_as_balg1() {
        let schema = Schema::new()
            .with("G", Type::relation(2))
            .with("R", Type::relation(1))
            .with("S", Type::relation(1));
        for (name, expr) in zoo() {
            let analysis = check(&expr, &schema).expect(name);
            assert_eq!(analysis.balg_level(), 1, "{name} is not BALG¹");
            assert!(analysis.is_core_balg(), "{name} uses extensions");
        }
    }

    #[test]
    fn zoo_queries_evaluate_on_random_databases() {
        let db = random_database(3, 6, 4);
        for (name, expr) in zoo() {
            eval_bag(&expr, &db).unwrap_or_else(|e| panic!("{name} failed: {e}"));
        }
    }

    #[test]
    fn random_exprs_type_check_and_run() {
        let schema = Schema::new().with("B", Type::relation(1));
        let mut zoo = ExprZoo::new(11);
        for i in 0..20 {
            let expr = zoo.unary_expr(3);
            let analysis = check(&expr, &schema).unwrap_or_else(|e| panic!("expr {i}: {e}"));
            assert_eq!(analysis.balg_level(), 1);
            assert!(!analysis.uses_subtract);
            eval_bag(&expr, &b_n(4)).unwrap_or_else(|e| panic!("expr {i} eval: {e}"));
        }
    }
}
