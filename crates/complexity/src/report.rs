//! Tabular experiment reports, printed in the paper's row format.

use std::fmt;

/// One experiment's regenerated table.
#[derive(Clone, Debug)]
pub struct Report {
    /// Experiment id (e.g. `"E2"`).
    pub id: &'static str,
    /// What paper item this regenerates.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Table rows.
    pub rows: Vec<Vec<String>>,
    /// Whether every checked row matched its prediction.
    pub all_match: bool,
}

impl Report {
    /// Start a report.
    pub fn new(id: &'static str, title: &str, headers: &[&str]) -> Report {
        Report {
            id,
            title: title.to_owned(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
            all_match: true,
        }
    }

    /// Append a row; `matches` flags whether it satisfied the prediction.
    pub fn push(&mut self, row: Vec<String>, matches: bool) {
        self.rows.push(row);
        self.all_match &= matches;
    }

    /// Append an informational row (always counts as matching).
    pub fn info(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r.get(i).map_or(0, String::len))
                    .chain([h.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                write!(f, " {cell:w$} |")?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(f, &rule)?;
        for row in &self.rows {
            line(f, row)?;
        }
        writeln!(
            f,
            "verdict: {}",
            if self.all_match {
                "MATCHES PAPER"
            } else {
                "MISMATCH"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_formats_as_table() {
        let mut report = Report::new("E0", "demo", &["n", "value"]);
        report.push(vec!["1".into(), "10".into()], true);
        report.push(vec!["2".into(), "100".into()], true);
        let text = report.to_string();
        assert!(text.contains("E0"));
        assert!(text.contains("| n | value |"));
        assert!(text.contains("MATCHES PAPER"));
    }

    #[test]
    fn mismatch_propagates() {
        let mut report = Report::new("E0", "demo", &["x"]);
        report.push(vec!["ok".into()], true);
        report.push(vec!["bad".into()], false);
        assert!(!report.all_match);
        assert!(report.to_string().contains("MISMATCH"));
    }
}
