//! The per-paper-item experiments E1–E18 (see DESIGN.md §2).
//!
//! Each function regenerates one table/figure/claim of the paper and
//! returns a [`Report`] whose `all_match` verdict records whether the
//! measured values equal the paper's predictions. `run_all` drives the
//! full suite; `EXPERIMENTS.md` is generated from its output.

use std::collections::BTreeMap;
use std::sync::Arc;

use balg_core::bag::Bag;
use balg_core::derived::{
    self, average, card_gt, count, decode_int, dedup_via_powerset_flat, dedup_via_powerset_nested,
    in_degree_gt_out_degree, int_value, parity_even_ordered, subtract_via_powerset,
};
use balg_core::eval::{eval_bag, eval_with_metrics, Limits};
use balg_core::expr::{Expr, Pred};
use balg_core::natural::Natural;
use balg_core::schema::Database;
use balg_core::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generator::{b_n, random_database, random_multigraph, random_unary_bag, zoo, ExprZoo};
use crate::polyfit::{detect_natural, Growth};
use crate::report::Report;

fn nat(v: u64) -> Natural {
    Natural::from(v)
}

fn sym_tuple(items: &[&str]) -> Value {
    Value::Tuple(items.iter().map(|s| Value::sym(s)).collect())
}

/// E1 — the Section 4 in-text occurrence table for
/// `Q(B) = π₁,₄(σ_{α₂=α₃}(B×B))` over `n×[a,b] + m×[b,a]`.
pub fn e1_occurrence_table() -> Report {
    let mut report = Report::new(
        "E1",
        "Section 4 counting table: Q(B) = π₁,₄(σ α₂=α₃ (B×B))",
        &[
            "n",
            "m",
            "aa in Q",
            "bb in Q",
            "ab in Q",
            "abab in B×B",
            "baab in σ",
            "match",
        ],
    );
    for (n, m) in [(1u64, 1u64), (2, 3), (5, 7), (10, 4)] {
        let mut b = Bag::new();
        b.insert_with_multiplicity(sym_tuple(&["a", "b"]), nat(n));
        b.insert_with_multiplicity(sym_tuple(&["b", "a"]), nat(m));
        let db = Database::new().with("B", b);
        let prod = eval_bag(&Expr::var("B").product(Expr::var("B")), &db).unwrap();
        let selected = eval_bag(
            &Expr::var("B").product(Expr::var("B")).select(
                "x",
                Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
            ),
            &db,
        )
        .unwrap();
        let q = eval_bag(
            &Expr::var("B")
                .product(Expr::var("B"))
                .select(
                    "x",
                    Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
                )
                .project(&[1, 4]),
            &db,
        )
        .unwrap();
        let aa = q.multiplicity(&sym_tuple(&["a", "a"]));
        let bb = q.multiplicity(&sym_tuple(&["b", "b"]));
        let ab = q.multiplicity(&sym_tuple(&["a", "b"]));
        let abab = prod.multiplicity(&sym_tuple(&["a", "b", "a", "b"]));
        let baab = selected.multiplicity(&sym_tuple(&["b", "a", "a", "b"]));
        let matches = aa == nat(n * m)
            && bb == nat(n * m)
            && ab.is_zero()
            && abab == nat(n * n)
            && baab == nat(m * n);
        report.push(
            vec![
                n.to_string(),
                m.to_string(),
                aa.to_string(),
                bb.to_string(),
                ab.to_string(),
                abab.to_string(),
                baab.to_string(),
                matches.to_string(),
            ],
            matches,
        );
    }
    report
}

/// E2 — Proposition 3.2's claim: per-constant occurrence counts of
/// `δP(B)` and `δδPP(B)` for `B` with `k` constants × `m` occurrences.
pub fn e2_duplicate_explosion() -> Report {
    let mut report = Report::new(
        "E2",
        "Prop 3.2: δP(B) = m(m+1)^k/2 and δδPP(B) = 2^((m+1)^k−2)·(m+1)^k·m per constant",
        &[
            "k",
            "m",
            "δP measured",
            "δP formula",
            "δδPP measured",
            "δδPP formula",
            "match",
        ],
    );
    for (k, m) in [(1u64, 2u64), (1, 3), (2, 2), (2, 3), (1, 5)] {
        let mut b = Bag::new();
        for i in 0..k {
            b.insert_with_multiplicity(Value::sym(&format!("c{i}")), nat(m));
        }
        let db = Database::new().with("B", b);
        let probe = Value::sym("c0");
        let dp = eval_bag(&Expr::var("B").powerset().destroy(), &db).unwrap();
        let dp_measured = dp.multiplicity(&probe);
        let dp_formula = nat(m) * nat(m + 1).pow(k) // m(m+1)^k ...
            ;
        let dp_formula = dp_formula.div_exact_u64(2);
        let ddpp = eval_bag(
            &Expr::var("B").powerset().powerset().destroy().destroy(),
            &db,
        )
        .unwrap();
        let ddpp_measured = ddpp.multiplicity(&probe);
        let exponent = nat(m + 1).pow(k).to_u64().unwrap() - 2;
        let ddpp_formula = Natural::pow2(exponent) * nat(m + 1).pow(k) * nat(m);
        let matches = dp_measured == dp_formula && ddpp_measured == ddpp_formula;
        report.push(
            vec![
                k.to_string(),
                m.to_string(),
                dp_measured.to_string(),
                dp_formula.to_string(),
                ddpp_measured.to_string(),
                ddpp_formula.to_string(),
                matches.to_string(),
            ],
            matches,
        );
    }
    report
}

/// E3 — Introduction / Definition 5.1: `|P_b(Bₙ)| = 2ⁿ` vs `|P(Bₙ)| = n+1`
/// on a bag of `n` copies of one constant.
pub fn e3_powerbag_vs_powerset() -> Report {
    let mut report = Report::new(
        "E3",
        "powerbag vs powerset cardinality on n duplicates of one constant",
        &["n", "|P(B)|", "n+1", "|P_b(B)|", "2^n", "match"],
    );
    for n in 0u64..=12 {
        let b = Bag::repeated(Value::sym("a"), n);
        let ps = b.powerset(1 << 20).unwrap().cardinality();
        let pb = b.powerbag(1 << 20).unwrap().cardinality();
        let matches = ps == nat(n + 1) && pb == Natural::pow2(n);
        report.push(
            vec![
                n.to_string(),
                ps.to_string(),
                (n + 1).to_string(),
                pb.to_string(),
                Natural::pow2(n).to_string(),
                matches.to_string(),
            ],
            matches,
        );
    }
    report
}

/// E4 — Proposition 3.1: ε is redundant in full BALG (flat and nested
/// powerset constructions), checked over random bags.
pub fn e4_dedup_redundancy() -> Report {
    let mut report = Report::new(
        "E4",
        "Prop 3.1: ε(B) = δ(P(B) ∩ MAP_β(B)) and ε(B) = P(δ(B)) ∩ B",
        &["seed", "flat identity", "nested identity", "match"],
    );
    for seed in 0..8u64 {
        let flat = random_unary_bag(seed, 4, 3);
        let db = Database::new().with("B", flat.clone());
        let via = eval_bag(&dedup_via_powerset_flat(Expr::var("B")), &db).unwrap();
        let flat_ok = via == flat.dedup();

        // Nested bag: a few inner bags with duplicates.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut nested = Bag::new();
        for _ in 0..3 {
            let inner = random_unary_bag(rng.gen(), 3, 2);
            nested.insert_with_multiplicity(Value::Bag(inner), nat(rng.gen_range(1..=3)));
        }
        let dbn = Database::new().with("B", nested.clone());
        let vian = eval_bag(&dedup_via_powerset_nested(Expr::var("B")), &dbn).unwrap();
        let nested_ok = vian == nested.dedup();

        report.push(
            vec![
                seed.to_string(),
                flat_ok.to_string(),
                nested_ok.to_string(),
                (flat_ok && nested_ok).to_string(),
            ],
            flat_ok && nested_ok,
        );
    }
    report
}

/// E5 — Section 3 operator dependencies: `−` from `P` (\[Alb91\] needs the
/// nesting increase), `∪⁺` from `∪` by tagging, `∩` and `∪` from
/// `∪⁺`/`−`.
pub fn e5_operator_identities() -> Report {
    let mut report = Report::new(
        "E5",
        "operator interdefinability: −/∪⁺/∩/∪ identities",
        &[
            "seed",
            "− via P",
            "∪⁺ via tags",
            "∩ via −",
            "∪ via −",
            "match",
        ],
    );
    for seed in 0..8u64 {
        let b1 = random_unary_bag(seed, 5, 4);
        let b2 = random_unary_bag(seed + 100, 5, 4);
        let db = Database::new()
            .with("B1", b1.clone())
            .with("B2", b2.clone());

        let sub_via_p = eval_bag(
            &subtract_via_powerset(Expr::var("B1"), Expr::var("B2")),
            &db,
        )
        .unwrap()
            == b1.subtract(&b2);
        let au_via_tags = eval_bag(
            &derived::additive_union_via_max(Expr::var("B1"), Expr::var("B2"), 1),
            &db,
        )
        .unwrap()
            == b1.additive_union(&b2);
        // \[Alb91\]: B1 ∩ B2 = B1 − (B1 − B2); B1 ∪ B2 = (B1 − B2) ∪⁺ B2.
        let int_via_sub = b1.subtract(&b1.subtract(&b2)) == b1.intersect(&b2);
        let max_via_sub = b1.subtract(&b2).additive_union(&b2) == b1.max_union(&b2);
        let matches = sub_via_p && au_via_tags && int_via_sub && max_via_sub;
        report.push(
            vec![
                seed.to_string(),
                sub_via_p.to_string(),
                au_via_tags.to_string(),
                int_via_sub.to_string(),
                max_via_sub.to_string(),
                matches.to_string(),
            ],
            matches,
        );
    }
    report
}

/// E6 — Section 3 aggregates: `count`, `sum`, `average` computed *inside
/// the algebra* vs direct arithmetic.
pub fn e6_aggregates() -> Report {
    let mut report = Report::new(
        "E6",
        "Section 3 aggregates on the integer-bag encoding",
        &["input multiset", "count", "sum", "avg", "match"],
    );
    for values in [
        vec![2u64, 4, 6],
        vec![5],
        vec![1, 1, 1, 1],
        vec![3, 7, 11, 99],
    ] {
        let b = Bag::from_values(values.iter().map(|&v| int_value(v)));
        let db = Database::new().with("B", b);
        let count_out =
            decode_int(&Value::Bag(eval_bag(&count(Expr::var("B")), &db).unwrap())).unwrap();
        let sum_out = decode_int(&Value::Bag(
            eval_bag(&derived::sum(Expr::var("B")), &db).unwrap(),
        ))
        .unwrap();
        let avg_out = decode_int(&Value::Bag(
            eval_bag(&average(Expr::var("B")), &db).unwrap(),
        ))
        .unwrap();
        // The bag collapses duplicate integers into multiplicities; the
        // distinct-value count is what `count` sees... no: count sums
        // multiplicities, so duplicates DO count. Direct expectations:
        let expected_count = values.len() as u64;
        let expected_sum: u64 = values.iter().sum();
        let expected_avg = expected_sum / expected_count;
        let exact_avg = expected_sum.is_multiple_of(expected_count);
        let matches = count_out == nat(expected_count)
            && sum_out == nat(expected_sum)
            && (!exact_avg || avg_out == nat(expected_avg));
        report.push(
            vec![
                format!("{values:?}"),
                count_out.to_string(),
                sum_out.to_string(),
                avg_out.to_string(),
                matches.to_string(),
            ],
            matches,
        );
    }
    report
}

/// E7 — Example 4.1 / Proposition 4.3: the degree query on multigraphs —
/// BALG¹ computes it with duplicate edges counted; set semantics (RALG)
/// sees a different answer; the Prop 4.2 translation rightly refuses the
/// subtraction.
pub fn e7_degree_query() -> Report {
    let mut report = Report::new(
        "E7",
        "Example 4.1: in-degree(v) > out-degree(v) with duplicate edges",
        &[
            "seed",
            "node",
            "bag answer",
            "direct",
            "set answer",
            "bag=direct",
            "bag≠set seen",
        ],
    );
    let mut disagreement_seen = false;
    for seed in 0..10u64 {
        let g = random_multigraph(seed, 4, 8, 4);
        let db = Database::new().with("G", g.clone());
        let node = Value::int(0);
        let q = in_degree_gt_out_degree(Expr::var("G"), node.clone());
        let bag_answer = !eval_bag(&q, &db).unwrap().is_empty();
        // Direct computation with multiplicities.
        let (mut indeg, mut outdeg) = (Natural::zero(), Natural::zero());
        let (mut inset, mut outset) = (0usize, 0usize);
        for (edge, mult) in g.iter() {
            let fields = edge.as_tuple().unwrap();
            if fields[1] == node {
                indeg += mult;
                inset += 1;
            }
            if fields[0] == node {
                outdeg += mult;
                outset += 1;
            }
        }
        let direct = indeg > outdeg;
        let set_answer = inset > outset;
        if bag_answer != set_answer {
            disagreement_seen = true;
        }
        report.push(
            vec![
                seed.to_string(),
                "0".into(),
                bag_answer.to_string(),
                direct.to_string(),
                set_answer.to_string(),
                (bag_answer == direct).to_string(),
                (bag_answer != set_answer).to_string(),
            ],
            bag_answer == direct,
        );
    }
    // The separation witness: some seed where duplicates flip the answer.
    report.push(
        vec![
            "summary".into(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            disagreement_seen.to_string(),
        ],
        disagreement_seen,
    );
    // Prop 4.2 boundary: the query uses −, so the translation refuses it.
    let q = in_degree_gt_out_degree(Expr::var("G"), Value::int(0));
    let refused = balg_relational::translate::balg1_to_ralg(&q).is_err();
    report.push(
        vec![
            "translate".into(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            format!("refused={refused}"),
        ],
        refused,
    );
    report
}

/// E8 — Example 4.2: the 0–1 law fails for BALG¹. Monte-Carlo estimate of
/// `μₙ(|R| > |S|)` converges to ½ while the RALG-definable "R is
/// nonempty" converges to 1.
pub fn e8_zero_one_law() -> Report {
    let mut report = Report::new(
        "E8",
        "Example 4.2: μₙ(|R|>|S|) → ½ (no 0–1 law); contrast μₙ(R≠∅) → 1",
        &["n", "trials", "μₙ(|R|>|S|)", "|μ−½|", "μₙ(R≠∅)", "match"],
    );
    let trials = 300u32;
    let mut previous_gap: Option<f64> = None;
    let mut gaps_shrink = true;
    for n in [4u32, 8, 16, 32, 64] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let mut gt = 0u32;
        let mut nonempty = 0u32;
        for trial in 0..trials {
            // Random unary *relations* (duplicate-free), each element
            // present with probability ½ — the Section 4 probability
            // space.
            let draw = |rng: &mut StdRng| -> u32 {
                let mut size = 0;
                for _ in 0..n {
                    if rng.gen_bool(0.5) {
                        size += 1;
                    }
                }
                size
            };
            let r = draw(&mut rng);
            let s = draw(&mut rng);
            if r > s {
                gt += 1;
            }
            if r > 0 {
                nonempty += 1;
            }
            // Validate the algebra agrees with the counter on a few
            // samples (cheap sizes only).
            if trial < 3 && n <= 16 {
                let make = |size: u32, offset: i64| {
                    Bag::from_values(
                        (0..size).map(|i| Value::tuple([Value::int(i as i64 + offset)])),
                    )
                };
                let db = Database::new()
                    .with("R", make(r, 0))
                    .with("S", make(s, 1000));
                let algebra = !eval_bag(&card_gt(Expr::var("R"), Expr::var("S")), &db)
                    .unwrap()
                    .is_empty();
                assert_eq!(algebra, r > s, "algebra disagrees with counter");
            }
        }
        let mu = gt as f64 / trials as f64;
        let gap = (mu - 0.5).abs();
        if let Some(prev) = previous_gap {
            // Allow sampling noise: require no large regression.
            if gap > prev + 0.08 {
                gaps_shrink = false;
            }
        }
        previous_gap = Some(gap);
        let mu_nonempty = nonempty as f64 / trials as f64;
        let ok = mu > 0.15 && mu < 0.6 && mu_nonempty > 0.9;
        report.push(
            vec![
                n.to_string(),
                trials.to_string(),
                format!("{mu:.3}"),
                format!("{gap:.3}"),
                format!("{mu_nonempty:.3}"),
                ok.to_string(),
            ],
            ok,
        );
    }
    report.push(
        vec![
            "gaps shrink".into(),
            String::new(),
            String::new(),
            gaps_shrink.to_string(),
            String::new(),
            gaps_shrink.to_string(),
        ],
        gaps_shrink,
    );
    report
}

/// E9 — Proposition 4.5 and the order result: every sampled BALG¹
/// expression has eventually-polynomial occurrence counts on `Bₙ` (so
/// none computes `bag-even`), while with order the Section 4 parity
/// expression is exactly correct.
pub fn e9_parity() -> Report {
    let mut report = Report::new(
        "E9",
        "Prop 4.5: BALG¹ counts are polynomial in n; parity needs order",
        &["probe", "result", "match"],
    );
    // (a) The parity-with-order expression is correct for all tested n.
    let mut parity_ok = true;
    for n in 0u64..=14 {
        let r = Bag::from_values((0..n as i64).map(|i| Value::tuple([Value::int(i)])));
        let db = Database::new().with("R", r);
        let nonempty = !eval_bag(&parity_even_ordered(Expr::var("R")), &db)
            .unwrap()
            .is_empty();
        parity_ok &= nonempty == (n > 0 && n % 2 == 0);
    }
    report.push(
        vec![
            "parity-with-order correct on n=0..14".into(),
            parity_ok.to_string(),
            parity_ok.to_string(),
        ],
        parity_ok,
    );
    // (b) Occurrence counts of random BALG¹ expressions over Bₙ are
    // polynomial (finite differences stabilize).
    let mut zoo = ExprZoo::new(5);
    let probe = Value::tuple([Value::sym("a")]);
    let mut all_polynomial = true;
    let mut none_computes_bag_even = true;
    for i in 0..12 {
        let expr = zoo.unary_expr(3);
        // Sample a window that (a) starts late enough to skip the small-n
        // regime switches of min/max operators — the counts are only
        // *eventually* polynomial — and (b) is long enough to certify the
        // zoo's maximal degree (three nested products ⇒ degree 8; 18
        // samples certify up to 16).
        let counts: Vec<Natural> = (8..=25u64)
            .map(|n| {
                eval_bag(&expr, &b_n(n))
                    .map(|bag| bag.multiplicity(&probe))
                    .unwrap_or_default()
            })
            .collect();
        let growth = detect_natural(&counts);
        let polynomial = matches!(growth, Growth::Polynomial { .. });
        all_polynomial &= polynomial;
        // bag-even would be nonempty exactly at even n — check the
        // emptiness pattern is NOT alternating.
        let empt: Vec<bool> = (1..=10u64)
            .map(|n| eval_bag(&expr, &b_n(n)).map_or(true, |b| b.is_empty()))
            .collect();
        let alternating = empt.windows(2).all(|w| w[0] != w[1]);
        none_computes_bag_even &= !alternating;
        report.push(
            vec![
                format!("random expr #{i} growth"),
                format!("{growth:?}"),
                polynomial.to_string(),
            ],
            polynomial,
        );
    }
    report.push(
        vec![
            "no sampled expression computes bag-even".into(),
            none_computes_bag_even.to_string(),
            none_computes_bag_even.to_string(),
        ],
        none_computes_bag_even,
    );
    report.all_match &= all_polynomial;
    report
}

/// E10 — Proposition 4.2: the BALG¹₋₋ → RALG₋₋ translation preserves
/// membership on random databases.
pub fn e10_translation() -> Report {
    let mut report = Report::new(
        "E10",
        "Prop 4.2: a ∈ Q(DB) ⟺ a ∈ Q′(DB′) for subtraction-free BALG¹",
        &["query", "databases checked", "all equivalent"],
    );
    for (name, expr) in zoo() {
        if name.contains('−') || name.contains("uses −") {
            let refused = balg_relational::translate::balg1_to_ralg(&expr).is_err();
            report.push(
                vec![name.into(), "n/a".into(), format!("refused={refused}")],
                refused,
            );
            continue;
        }
        let mut all = true;
        let mut checked = 0;
        for seed in 0..6u64 {
            let db = random_database(seed, 5, 3);
            match balg_relational::translate::check_prop_4_2(&expr, &db) {
                Ok(equivalent) => {
                    all &= equivalent;
                    checked += 1;
                }
                Err(e) => panic!("E10 {name} failed: {e}"),
            }
        }
        report.push(vec![name.into(), checked.to_string(), all.to_string()], all);
    }
    report
}

/// E11 — Theorem 4.4: BALG¹ multiplicities stay polynomial in the input
/// size, so the work-tape counters of the LOGSPACE evaluation need
/// `O(log n)` bits.
pub fn e11_logspace_counters() -> Report {
    let mut report = Report::new(
        "E11",
        "Thm 4.4: max multiplicity of BALG¹ intermediates is polynomial in n",
        &[
            "query",
            "max-mult at n=2,4,8,16,32",
            "bits at n=32",
            "poly?",
            "match",
        ],
    );
    for (name, expr) in zoo() {
        let mut mults = Vec::new();
        let mut counts_for_fit = Vec::new();
        for n in 1..=10u64 {
            let db = Database::new()
                .with("G", uniform_graph(n))
                .with("R", Bag::repeated(Value::tuple([Value::sym("r")]), n))
                .with("S", Bag::repeated(Value::tuple([Value::sym("r")]), n));
            let (result, metrics) = eval_with_metrics(&expr, &db, Limits::default());
            result.unwrap();
            counts_for_fit.push(metrics.max_multiplicity.clone());
            if [2, 4, 8].contains(&n) {
                mults.push(metrics.max_multiplicity.to_string());
            }
        }
        let growth = detect_natural(&counts_for_fit);
        let polynomial = matches!(growth, Growth::Polynomial { .. });
        let bits = counts_for_fit.last().unwrap().bits();
        report.push(
            vec![
                name.into(),
                mults.join(","),
                bits.to_string(),
                format!("{growth:?}"),
                polynomial.to_string(),
            ],
            polynomial,
        );
    }
    report
}

fn uniform_graph(n: u64) -> Bag {
    let mut bag = Bag::new();
    // A cycle graph with every edge duplicated n times: size grows in n.
    for i in 0..4i64 {
        bag.insert_with_multiplicity(
            Value::tuple([Value::int(i), Value::int((i + 1) % 4)]),
            nat(n),
        );
    }
    bag
}

/// E12 — Theorem 5.1: in BALG², distinct-tuple counts stay polynomial and
/// multiplicities at most exponential (single powerset!), so PSPACE
/// suffices.
pub fn e12_balg2_space() -> Report {
    let mut report = Report::new(
        "E12",
        "Thm 5.1: BALG² multiplicities ≤ 2^poly(n); δP(Bₙ) = n(n+1)/2 exactly",
        &[
            "n",
            "δP(Bₙ) mult",
            "n(n+1)/2",
            "|P(Bₙ)| distinct",
            "mult bits ≤ poly",
            "match",
        ],
    );
    for n in 1u64..=24 {
        let db = b_n(n);
        let out = eval_bag(&Expr::var("B").powerset().destroy(), &db).unwrap();
        let measured = out.multiplicity(&Value::tuple([Value::sym("a")]));
        let formula = nat(n * (n + 1) / 2);
        let ps = eval_bag(&Expr::var("B").powerset(), &db).unwrap();
        let distinct = ps.distinct_count() as u64;
        // bits of multiplicity should be O(log n) here (polynomial mult).
        let bits = measured.bits();
        let matches = measured == formula
            && distinct == n + 1
            && bits <= 2 * (64 - n.leading_zeros() as u64) + 2;
        report.push(
            vec![
                n.to_string(),
                measured.to_string(),
                formula.to_string(),
                distinct.to_string(),
                bits.to_string(),
                matches.to_string(),
            ],
            matches,
        );
    }
    report
}

/// E13 — Figure 1 / Lemma 5.4 / Theorem 5.2: the star graphs differ on
/// the BALG² degree query, satisfy property (1), and are
/// game-indistinguishable for `n > 2k`.
pub fn e13_pebble_game() -> Report {
    use balg_games::prelude::*;
    let mut report = Report::new(
        "E13",
        "Fig. 1 + Lemma 5.4: G vs G′ — BALG² separates, k-move games cannot",
        &["check", "value", "match"],
    );
    // Property (1) exactly, n = 4..12.
    for n in [4u32, 6, 8, 10, 12] {
        let families = half_families(n);
        let ok = families.verify_property_one() && families.all_distinct();
        report.push(
            vec![
                format!("property (1) at n={n}"),
                ok.to_string(),
                ok.to_string(),
            ],
            ok,
        );
    }
    // Φ differs: degrees of α.
    for n in [4u32, 6, 8] {
        let (g, gp) = star_graphs(n);
        let alpha = alpha_node(n);
        let (din, dout) = degrees(&g, &alpha);
        let (pin, pout) = degrees(&gp, &alpha);
        let ok = din == dout && pin > pout;
        report.push(
            vec![
                format!("Φ separates at n={n}"),
                format!("G: {din}={dout}, G′: {pin}>{pout}"),
                ok.to_string(),
            ],
            ok,
        );
    }
    // Duplicator survives k-move games for n > 2k.
    for (n, k) in [(8u32, 3usize), (10, 4), (12, 5)] {
        let (g, gp) = star_graphs(n);
        let mut wins = 0;
        let games = 5;
        for seed in 0..games {
            let mut spoiler = RandomSpoiler::new(seed, (n / 2) as usize);
            let mut duplicator = ConstraintDuplicator::new(seed + 99);
            if play(&g, &gp, k, &mut spoiler, &mut duplicator) == Outcome::DuplicatorWins {
                wins += 1;
            }
        }
        let ok = wins == games;
        report.push(
            vec![
                format!("duplicator wins n={n}, k={k} (n>2k)"),
                format!("{wins}/{games}"),
                ok.to_string(),
            ],
            ok,
        );
    }
    // The targeted spoiler also fails while n > 2k.
    {
        let n = 10;
        let (g, gp) = star_graphs(n);
        let mut spoiler = FlippedEdgeSpoiler::new(n);
        let mut duplicator = ConstraintDuplicator::new(7);
        let ok = play(&g, &gp, 4, &mut spoiler, &mut duplicator) == Outcome::DuplicatorWins;
        report.push(
            vec![
                "duplicator beats targeted spoiler n=10,k=4".into(),
                ok.to_string(),
                ok.to_string(),
            ],
            ok,
        );
    }
    // But with enough moves the spoiler wins (atom pinning).
    {
        let n = 4;
        let (g, gp) = star_graphs(n);
        let mut spoiler = AtomPinningSpoiler::new(n, &gp);
        let mut duplicator = ConstraintDuplicator::new(3);
        let outcome = play(&g, &gp, 8, &mut spoiler, &mut duplicator);
        let ok = matches!(outcome, Outcome::SpoilerWins { .. });
        report.push(
            vec![
                "spoiler wins with k=8 ≫ n/2 at n=4".into(),
                format!("{outcome:?}"),
                ok.to_string(),
            ],
            ok,
        );
    }
    // Exact solver certifies the duplicator at n=4, k=1.
    {
        let (g, gp) = star_graphs(4);
        let mut solver = GameSolver::new(&g, &gp, &[2, 4], 1 << 22);
        let verdict = solver.solve(1);
        let ok = verdict == Verdict::DuplicatorWins;
        report.push(
            vec![
                "exact solver: duplicator wins n=4, k=1".into(),
                format!("{verdict:?}"),
                ok.to_string(),
            ],
            ok,
        );
    }
    // CALC1 sentences of depth ≤ 2 agree (Theorem 5.3 consequence).
    {
        let (g, gp) = star_graphs(6);
        let mut generator = balg_calc::sentences::SentenceGenerator::new(42);
        let mut agreements = 0;
        let total = 15;
        for _ in 0..total {
            let phi = generator.sentence(2);
            if balg_calc::eval::structures_agree(&phi, &g, &gp).unwrap() {
                agreements += 1;
            }
        }
        let ok = agreements == total;
        report.push(
            vec![
                "random depth-2 CALC1 sentences agree on (G,G′), n=6".into(),
                format!("{agreements}/{total}"),
                ok.to_string(),
            ],
            ok,
        );
    }
    report
}

/// E14 — Lemma 5.7: the arithmetic → BALG²+P_b translation is truth
/// preserving.
pub fn e14_arith_encoding() -> Report {
    use balg_arith::prelude::*;
    let mut report = Report::new(
        "E14",
        "Lemma 5.7: arithmetic formulas vs their BALG² encodings",
        &["formula", "n range", "all agree"],
    );
    let cases: Vec<(&str, Formula, u64)> = vec![
        ("even(x)", even_formula(), 8),
        ("composite(x)", composite_formula(), 12),
        ("prime(x)", prime_formula(), 11),
        ("square(x)", square_formula(), 9),
    ];
    for (name, formula, max_n) in cases {
        let mut all = true;
        for n in 0..=max_n {
            let (algebra, direct) =
                check_on_input(&formula, "x", DomainKind::Linear, n, Limits::default()).unwrap();
            all &= algebra == direct;
        }
        report.push(
            vec![name.into(), format!("0..={max_n}"), all.to_string()],
            all,
        );
    }
    // The powerbag domain reaches exponential witnesses.
    {
        let f = Formula::exists("y", Formula::eq(Term::var("y"), Term::constant(8)));
        let (lin, _) = check_on_input(&f, "x", DomainKind::Linear, 3, Limits::default()).unwrap();
        let (exp, _) = check_on_input(
            &f,
            "x",
            DomainKind::ExponentialPowerbag,
            3,
            Limits::default(),
        )
        .unwrap();
        let ok = !lin && exp;
        report.push(
            vec![
                "∃y. y=8 at n=3: linear domain misses, P_b domain finds".into(),
                format!("linear={lin}, powerbag={exp}"),
                ok.to_string(),
            ],
            ok,
        );
    }
    report
}

/// E15 — Theorems 6.1/6.2: the `N`/`E`/`D` tower grows hyper-
/// exponentially; sparse inputs gain one exponentiation (the
/// sparse-vs-dense contrast of Theorem 6.2).
pub fn e15_hyperexp_tower() -> Report {
    use balg_machine::encoding::{e_powerbag, e_tower};
    let mut report = Report::new(
        "E15",
        "Thm 6.1/6.2: E-tower growth; sparse vs dense double powerset",
        &["probe", "measured", "formula", "match"],
    );
    // E-tower: |E(Bₙ)| = 2^(n+1); |E²(B₁)| = 2^(2^2+1) = 32.
    for n in [1u64, 2, 3] {
        let db = b_n(n);
        let e1 = eval_bag(&e_tower(Expr::var("B"), 1), &db)
            .unwrap()
            .cardinality();
        let formula = Natural::pow2(n + 1);
        report.push(
            vec![
                format!("|E(B_{n})|"),
                e1.to_string(),
                formula.to_string(),
                (e1 == formula).to_string(),
            ],
            e1 == formula,
        );
    }
    {
        let db = b_n(1);
        let e2 = eval_bag(&e_tower(Expr::var("B"), 2), &db)
            .unwrap()
            .cardinality();
        let ok = e2 == nat(32);
        report.push(
            vec![
                "|E²(B₁)|".into(),
                e2.to_string(),
                "32".into(),
                ok.to_string(),
            ],
            ok,
        );
    }
    // Powerbag variant: |E_pb(Bₙ)| = 2ⁿ.
    for n in [2u64, 5, 8] {
        let db = Database::new().with("B", Bag::repeated(Value::sym("u"), n));
        let out = eval_bag(&e_powerbag(Expr::var("B")), &db)
            .unwrap()
            .cardinality();
        let formula = Natural::pow2(n);
        report.push(
            vec![
                format!("|E_pb(B_{n})|"),
                out.to_string(),
                formula.to_string(),
                (out == formula).to_string(),
            ],
            out == formula,
        );
    }
    // Sparse vs dense: P(P(·)) on n=3.
    {
        let dense = Bag::repeated(Value::tuple([Value::sym("a")]), 3u64);
        let sparse = Bag::from_values(
            ["x", "y", "z"]
                .iter()
                .map(|s| Value::tuple([Value::sym(s)])),
        );
        let pp = |bag: Bag| {
            let db = Database::new().with("B", bag);
            eval_bag(&Expr::var("B").powerset().powerset(), &db)
                .unwrap()
                .cardinality()
        };
        let dense_pp = pp(dense);
        let sparse_pp = pp(sparse);
        // dense: P has 4 elements → 2^4 = 16; sparse: P has 8 → 2^8 = 256.
        let ok = dense_pp == nat(16) && sparse_pp == nat(256);
        report.push(
            vec![
                "P(P(B₃)) dense vs sparse".into(),
                format!("{dense_pp} vs {sparse_pp}"),
                "16 vs 256".into(),
                ok.to_string(),
            ],
            ok,
        );
    }
    report
}

/// E16 — Theorem 6.6: TM → BALG+IFP compilation agrees with the direct
/// simulator, machine by machine.
pub fn e16_tm_ifp() -> Report {
    use balg_machine::prelude::*;
    let mut report = Report::new(
        "E16",
        "Thm 6.6: compiled IFP programs reproduce TM runs exactly",
        &[
            "machine",
            "input",
            "accepted (tm/algebra)",
            "trace agrees",
            "rows",
            "match",
        ],
    );
    let cases: Vec<(&'static str, Tm, Vec<Sym>, usize)> = vec![
        ("flip", flip_machine(), vec!['0', '1', '0'], 2),
        ("flip", flip_machine(), vec!['1', '1'], 2),
        ("parity(even)", parity_machine(), vec!['1', '1'], 2),
        ("parity(odd)", parity_machine(), vec!['1', '1', '1'], 2),
        ("successor", unary_successor_machine(), vec!['1', '1'], 2),
        ("zigzag", zigzag_machine(), vec![], 3),
    ];
    for (name, tm, input, padding) in cases {
        let direct = tm.run(&input, padding, 500).unwrap();
        let compiled = compile(&tm, &input, padding);
        let bag_run = compiled.run(Limits::default()).unwrap();
        let agrees = compiled.agrees_with(&direct, &bag_run);
        let rows_ok =
            bag_run.rows.cardinality() == expected_row_count(direct.steps, compiled.tape_cells);
        let matches = agrees && bag_run.accepted == direct.accepted && rows_ok;
        report.push(
            vec![
                name.into(),
                input.iter().collect::<String>(),
                format!("{}/{}", direct.accepted, bag_run.accepted),
                agrees.to_string(),
                bag_run.rows.cardinality().to_string(),
                matches.to_string(),
            ],
            matches,
        );
    }
    report
}

/// E17 — the \[CV93\] remark: conjunctive-query reasoning differs under bag
/// semantics. `π₁(R×R)` equals `R` as sets but not as bags.
pub fn e17_bag_vs_set_cq() -> Report {
    let mut report = Report::new(
        "E17",
        "[CV93] remark: π₁(R×R) ≡ R under sets, ⊋ under bags",
        &[
            "R",
            "π₁(R×R) as bag",
            "equal as sets",
            "equal as bags",
            "match",
        ],
    );
    for (desc, pairs) in [
        ("⟦x⟧", vec![("x", 1u64)]),
        ("⟦x,y⟧", vec![("x", 1), ("y", 1)]),
        ("⟦x²,y⟧", vec![("x", 2), ("y", 1)]),
    ] {
        let mut r = Bag::new();
        for (name, mult) in &pairs {
            r.insert_with_multiplicity(Value::tuple([Value::sym(name)]), nat(*mult));
        }
        let db = Database::new().with("R", r.clone());
        let q1 = eval_bag(&Expr::var("R").product(Expr::var("R")).project(&[1]), &db).unwrap();
        let equal_sets = q1.dedup() == r.dedup();
        let equal_bags = q1 == r;
        // Sets must agree; bags agree iff |R| = 1.
        let expected_bag_equal = r.cardinality() == nat(1);
        let matches = equal_sets && (equal_bags == expected_bag_equal);
        report.push(
            vec![
                desc.into(),
                q1.to_string(),
                equal_sets.to_string(),
                equal_bags.to_string(),
                matches.to_string(),
            ],
            matches,
        );
    }
    report
}

/// E18 — the SQL frontend end-to-end: bag semantics visible at the SQL
/// level, aggregates via the Section 3 constructions.
pub fn e18_sql_frontend() -> Report {
    use balg_sql::prelude::*;
    let mut report = Report::new(
        "E18",
        "SQL-on-bags: duplicates, DISTINCT=ε, aggregates via the algebra",
        &["query", "result", "expected", "match"],
    );
    let catalog = Catalog::new()
        .with_table("orders", &[("customer", false), ("qty", true)])
        .with_table("vip", &[("customer", false)]);
    let s = |x: &str| SqlValue::Str(x.into());
    let db = database_from_rows(
        &catalog,
        &[
            (
                "orders",
                vec![
                    vec![s("ann"), SqlValue::Int(3)],
                    vec![s("ann"), SqlValue::Int(3)],
                    vec![s("bob"), SqlValue::Int(5)],
                    vec![s("cay"), SqlValue::Int(1)],
                ],
            ),
            ("vip", vec![vec![s("ann")], vec![s("bob")]]),
        ],
    )
    .unwrap();
    let checks: Vec<(&str, i64)> = vec![
        ("SELECT COUNT(*) FROM orders", 4),
        ("SELECT COUNT(DISTINCT customer) FROM orders", 3),
        ("SELECT SUM(qty) FROM orders", 12),
        ("SELECT AVG(qty) FROM orders", 3),
        (
            "SELECT COUNT(*) FROM orders o, vip v WHERE o.customer = v.customer",
            3,
        ),
    ];
    for (sql, expected) in checks {
        let result = run(sql, &catalog, &db).unwrap();
        let scalar = result.scalar();
        let ok = scalar == Some(expected);
        report.push(
            vec![
                sql.into(),
                format!("{scalar:?}"),
                expected.to_string(),
                ok.to_string(),
            ],
            ok,
        );
    }
    // Duplicate visibility.
    let dup = run("SELECT customer FROM orders", &catalog, &db).unwrap();
    let ok = dup.total_rows() == 4 && dup.rows.iter().any(|(_, m)| *m == 2);
    report.push(
        vec![
            "SELECT customer FROM orders".into(),
            format!("{} rows, max mult 2", dup.total_rows()),
            "4 rows with a duplicate".into(),
            ok.to_string(),
        ],
        ok,
    );
    let _ = BTreeMap::<Arc<str>, ()>::new();
    report
}

/// Run every experiment, in order.
pub fn run_all() -> Vec<Report> {
    vec![
        e1_occurrence_table(),
        e2_duplicate_explosion(),
        e3_powerbag_vs_powerset(),
        e4_dedup_redundancy(),
        e5_operator_identities(),
        e6_aggregates(),
        e7_degree_query(),
        e8_zero_one_law(),
        e9_parity(),
        e10_translation(),
        e11_logspace_counters(),
        e12_balg2_space(),
        e13_pebble_game(),
        e14_arith_encoding(),
        e15_hyperexp_tower(),
        e16_tm_ifp(),
        e17_bag_vs_set_cq(),
        e18_sql_frontend(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each experiment must (a) run and (b) match the paper's prediction.
    macro_rules! experiment_matches {
        ($name:ident, $f:ident) => {
            #[test]
            fn $name() {
                let report = $f();
                assert!(report.all_match, "{report}");
            }
        };
    }

    experiment_matches!(e1_matches, e1_occurrence_table);
    experiment_matches!(e2_matches, e2_duplicate_explosion);
    experiment_matches!(e3_matches, e3_powerbag_vs_powerset);
    experiment_matches!(e4_matches, e4_dedup_redundancy);
    experiment_matches!(e5_matches, e5_operator_identities);
    experiment_matches!(e6_matches, e6_aggregates);
    experiment_matches!(e7_matches, e7_degree_query);
    experiment_matches!(e8_matches, e8_zero_one_law);
    experiment_matches!(e9_matches, e9_parity);
    experiment_matches!(e10_matches, e10_translation);
    experiment_matches!(e11_matches, e11_logspace_counters);
    experiment_matches!(e12_matches, e12_balg2_space);
    experiment_matches!(e13_matches, e13_pebble_game);
    experiment_matches!(e14_matches, e14_arith_encoding);
    experiment_matches!(e15_matches, e15_hyperexp_tower);
    experiment_matches!(e16_matches, e16_tm_ifp);
    experiment_matches!(e17_matches, e17_bag_vs_set_cq);
    experiment_matches!(e18_matches, e18_sql_frontend);
}
