//! # balg-complexity — instrumented experiments for the paper's claims
//!
//! The measurement harness behind `EXPERIMENTS.md`: exact polynomial
//! detection by finite differences ([`polyfit`]), reproducible workload
//! generation ([`generator`]), tabular reports ([`report`]), and the
//! eighteen experiments E1–E18 ([`experiments`]) that regenerate every
//! quantitative claim, table, and figure of the paper (index in
//! DESIGN.md §2), plus the extension experiments X1–X3 ([`extensions`])
//! covering the Conclusion-section features (optimizer, nest, counters).
//!
//! ```
//! use balg_complexity::experiments::e3_powerbag_vs_powerset;
//!
//! let report = e3_powerbag_vs_powerset();
//! assert!(report.all_match); // |P_b| = 2^n vs |P| = n+1 — as published
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod extensions;
pub mod generator;
pub mod polyfit;
pub mod report;

pub use experiments::run_all;
pub use extensions::run_extensions;
pub use report::Report;
