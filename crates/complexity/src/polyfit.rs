//! Exact polynomial detection on integer sequences.
//!
//! The counting arguments of Propositions 4.1 and 4.5 hinge on occurrence
//! counts of BALG¹ expressions being **eventually polynomial** in the
//! input size. Finite differencing decides this exactly: a sequence is a
//! polynomial of degree `d` iff its `d`-th difference sequence is constant
//! (and nonzero at `d` unless the polynomial is lower degree).

use balg_core::natural::Natural;

/// The result of analyzing a sequence.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Growth {
    /// The sequence is a polynomial of this degree on the sampled window.
    Polynomial {
        /// Detected degree (0 = constant).
        degree: usize,
    },
    /// No polynomial of degree < the sample budget fits: differences never
    /// became constant (e.g. exponential growth).
    NotPolynomial,
    /// The sample was too short to decide.
    Inconclusive,
}

/// Detect the polynomial degree of `values` by finite differences.
///
/// Requires at least `degree + 2` surviving samples to certify a degree;
/// returns [`Growth::Inconclusive`] otherwise. Values are signed to allow
/// differencing; use [`detect_natural`] for [`Natural`] sequences.
pub fn detect(values: &[i128]) -> Growth {
    if values.len() < 3 {
        return Growth::Inconclusive;
    }
    let mut current = values.to_vec();
    let mut degree = 0;
    loop {
        if current.iter().all(|&v| v == current[0]) {
            return Growth::Polynomial { degree };
        }
        if current.len() < 3 {
            // Ran out of samples before the differences stabilized: either
            // genuinely non-polynomial or under-sampled. The caller gave us
            // enough samples iff the degree is small relative to len.
            return Growth::NotPolynomial;
        }
        current = current.windows(2).map(|w| w[1] - w[0]).collect();
        degree += 1;
    }
}

/// As [`detect`], converting from [`Natural`]s (fails with
/// [`Growth::Inconclusive`] if any value exceeds `i128`).
pub fn detect_natural(values: &[Natural]) -> Growth {
    let converted: Option<Vec<i128>> = values
        .iter()
        .map(|n| n.to_u128().and_then(|v| i128::try_from(v).ok()))
        .collect();
    match converted {
        Some(values) => detect(&values),
        None => Growth::NotPolynomial, // exceeds i128 ⇒ super-polynomial here
    }
}

/// `true` if the sequence grows at least geometrically with ratio ≥
/// `num/den` on every step of its tail (witnessing exponential growth).
pub fn grows_geometrically(values: &[Natural], num: u64, den: u64, tail: usize) -> bool {
    if values.len() < tail + 1 {
        return false;
    }
    values[values.len() - tail - 1..].windows(2).all(|w| {
        let mut lhs = w[1].clone();
        lhs.mul_u64(den);
        let mut rhs = w[0].clone();
        rhs.mul_u64(num);
        lhs >= rhs
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_degree_zero() {
        assert_eq!(detect(&[5, 5, 5, 5]), Growth::Polynomial { degree: 0 });
    }

    #[test]
    fn linear_and_quadratic() {
        let linear: Vec<i128> = (0..8).map(|n| 3 * n + 1).collect();
        assert_eq!(detect(&linear), Growth::Polynomial { degree: 1 });
        let quadratic: Vec<i128> = (0..8).map(|n| n * n + n).collect();
        assert_eq!(detect(&quadratic), Growth::Polynomial { degree: 2 });
        let cubic: Vec<i128> = (0..9).map(|n| n * n * n - 7).collect();
        assert_eq!(detect(&cubic), Growth::Polynomial { degree: 3 });
    }

    #[test]
    fn exponentials_are_rejected() {
        let exponential: Vec<i128> = (0..12).map(|n| 1i128 << n).collect();
        assert_eq!(detect(&exponential), Growth::NotPolynomial);
    }

    #[test]
    fn short_sequences_inconclusive() {
        assert_eq!(detect(&[1, 2]), Growth::Inconclusive);
    }

    #[test]
    fn natural_conversion() {
        let values: Vec<Natural> = (0..8u64).map(|n| Natural::from(n * n)).collect();
        assert_eq!(detect_natural(&values), Growth::Polynomial { degree: 2 });
        let huge: Vec<Natural> = (0..5u64).map(|n| Natural::pow2(130 + n)).collect();
        assert_eq!(detect_natural(&huge), Growth::NotPolynomial);
    }

    #[test]
    fn geometric_growth_detection() {
        let doubling: Vec<Natural> = (0..10u64).map(Natural::pow2).collect();
        assert!(grows_geometrically(&doubling, 2, 1, 5));
        let linear: Vec<Natural> = (1..10u64).map(Natural::from).collect();
        assert!(!grows_geometrically(&linear, 2, 1, 5));
    }
}
