//! Extension experiments X1–X3: beyond the paper's published claims, the
//! Conclusion-section features this repository additionally implements —
//! the rewrite optimizer (§3's optimization remark), the nest operator
//! ("Nest vs Powerset"), and the bags↔counters link of the Section 2
//! remark on \[GO93\]/\[GM95\].

use balg_core::bag::Bag;
use balg_core::eval::{eval_bag, eval_with_metrics, Limits};
use balg_core::expr::{Expr, Pred};
use balg_core::natural::Natural;
use balg_core::rewrite::optimize;
use balg_core::schema::{Database, Schema};
use balg_core::types::Type;
use balg_core::value::Value;

use crate::generator::random_database;
use crate::report::Report;

/// X1 — the rewrite optimizer: semantics preserved exactly (bag equality,
/// not just support) while intermediate sizes and step counts shrink on
/// selective joins.
pub fn x1_optimizer() -> Report {
    let mut report = Report::new(
        "X1",
        "rewrite optimizer: multiplicity-exact, smaller intermediates",
        &[
            "query",
            "equal results",
            "steps before",
            "steps after",
            "intermediates before/after",
            "match",
        ],
    );
    let schema = Schema::new()
        .with("G", Type::relation(2))
        .with("R", Type::relation(1))
        .with("S", Type::relation(1));
    let g = || Expr::var("G");
    let queries: Vec<(&str, Expr)> = vec![
        (
            "σ-pushdown through ×",
            g().product(Expr::var("R")).select(
                "x",
                Pred::eq(Expr::var("x").attr(1), Expr::lit(Value::int(0))),
            ),
        ),
        (
            "σσ fusion + π reorder",
            g().select(
                "x",
                Pred::eq(Expr::var("x").attr(1), Expr::lit(Value::int(0))),
            )
            .select(
                "y",
                Pred::eq(Expr::var("y").attr(2), Expr::lit(Value::int(1))),
            )
            .project(&[2, 1])
            .project(&[2, 1]),
        ),
        ("ε pushdown over ×", g().product(Expr::var("R")).dedup()),
    ];
    let mut pushdown_improved = false;
    for (name, query) in queries {
        let optimized = optimize(&query, &schema);
        let mut all_equal = true;
        let mut steps_before = 0u64;
        let mut steps_after = 0u64;
        let mut inter_before = 0u64;
        let mut inter_after = 0u64;
        for seed in 0..4u64 {
            let db = random_database(seed, 6, 3);
            let (r1, m1) = eval_with_metrics(&query, &db, Limits::default());
            let (r2, m2) = eval_with_metrics(&optimized, &db, Limits::default());
            all_equal &= r1.unwrap() == r2.unwrap();
            steps_before += m1.steps;
            steps_after += m2.steps;
            inter_before = inter_before.max(m1.max_distinct_elements);
            inter_after = inter_after.max(m2.max_distinct_elements);
        }
        if name.contains("pushdown through ×") {
            pushdown_improved = steps_after < steps_before && inter_after < inter_before;
        }
        // Semantics preservation is the hard requirement; work reduction
        // is workload-dependent (rewrites like ε(A×B) → ε(A)×ε(B) pay off
        // only when the inputs carry duplicates to strip early).
        report.push(
            vec![
                name.into(),
                all_equal.to_string(),
                steps_before.to_string(),
                steps_after.to_string(),
                format!("{inter_before}/{inter_after}"),
                all_equal.to_string(),
            ],
            all_equal,
        );
    }
    report.push(
        vec![
            "σ-pushdown shrinks the selective join".into(),
            pushdown_improved.to_string(),
            String::new(),
            String::new(),
            String::new(),
            pushdown_improved.to_string(),
        ],
        pushdown_improved,
    );
    report
}

/// X2 — the nest operator: GROUP BY aggregation computed via `nest`
/// agrees with direct per-group arithmetic, and unnest is its inverse.
pub fn x2_nest() -> Report {
    use balg_core::derived::{decode_int, int_value};
    let mut report = Report::new(
        "X2",
        "nest operator: grouped aggregation + unnest roundtrip",
        &["check", "value", "match"],
    );
    // A sales table: [region, amount(int-bag)] with duplicate rows.
    let rows: Vec<(&str, u64, u64)> = vec![
        ("north", 3, 2), // (region, amount, row multiplicity)
        ("north", 5, 1),
        ("south", 2, 3),
    ];
    let mut sales = Bag::new();
    for (region, amount, mult) in &rows {
        sales.insert_with_multiplicity(
            Value::tuple([Value::sym(region), int_value(*amount)]),
            Natural::from(*mult),
        );
    }
    let db = Database::new().with("Sales", sales.clone());
    // SUM per region via nest: MAP_{λg.[α₁(g), δ(MAP α₁ (α₂(g)))]}(nest₁).
    let per_region_sum = Expr::var("Sales").nest(&[1]).map(
        "g",
        Expr::tuple([
            Expr::var("g").attr(1),
            Expr::var("g")
                .attr(2)
                .map("r", Expr::var("r").attr(1))
                .destroy(),
        ]),
    );
    let out = eval_bag(&per_region_sum, &db).unwrap();
    let expect: Vec<(&str, u64)> = vec![("north", 3 * 2 + 5), ("south", 2 * 3)];
    for (region, total) in expect {
        let row = out
            .elements()
            .find(|v| v.as_tuple().is_some_and(|f| f[0] == Value::sym(region)));
        let measured = row
            .and_then(|v| decode_int(&v.as_tuple().unwrap()[1]))
            .and_then(|n| n.to_u64());
        let ok = measured == Some(total);
        report.push(
            vec![
                format!("SUM per {region} via nest"),
                format!("{measured:?}"),
                ok.to_string(),
            ],
            ok,
        );
    }
    // Unnest inverts nest.
    let unnest = Expr::var("Sales")
        .nest(&[1])
        .map(
            "g",
            Expr::var("g").attr(2).map(
                "r",
                Expr::tuple([Expr::var("g").attr(1), Expr::var("r").attr(1)]),
            ),
        )
        .destroy();
    let roundtrip = eval_bag(&unnest, &db).unwrap() == sales;
    report.push(
        vec![
            "unnest(nest₁(Sales)) = Sales".into(),
            roundtrip.to_string(),
            roundtrip.to_string(),
        ],
        roundtrip,
    );
    report
}

/// X3 — bags are counters (\[GM95\] remark): counter machines compiled so
/// that increment is `∪⁺ ⟦a⟧`, decrement is `− ⟦a⟧`, and zero-test is bag
/// emptiness, agree with the direct simulator.
pub fn x3_counters() -> Report {
    use balg_machine::prelude::*;
    let mut report = Report::new(
        "X3",
        "counter machines with bag registers (Section 2 remark)",
        &[
            "machine",
            "input",
            "direct result",
            "via bags",
            "steps",
            "match",
        ],
    );
    let cases: Vec<(&str, CounterMachine, Vec<u64>)> = vec![
        ("add", addition_machine(), vec![3, 4]),
        ("add", addition_machine(), vec![0, 5]),
        ("double", doubling_machine(), vec![4]),
        ("double", doubling_machine(), vec![0]),
    ];
    for (name, machine, input) in cases {
        let direct = machine.run(&input, 500).unwrap();
        let compiled = compile_counter(&machine, &input);
        let via_bags = compiled.run(Limits::default()).unwrap();
        let matches = direct.registers == via_bags.registers && direct.steps == via_bags.steps;
        report.push(
            vec![
                name.into(),
                format!("{input:?}"),
                format!("{:?}", direct.registers),
                format!("{:?}", via_bags.registers),
                via_bags.steps.to_string(),
                matches.to_string(),
            ],
            matches,
        );
    }
    report
}

/// Run the extension experiments.
pub fn run_extensions() -> Vec<Report> {
    vec![x1_optimizer(), x2_nest(), x3_counters()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x1_matches() {
        let report = x1_optimizer();
        assert!(report.all_match, "{report}");
    }

    #[test]
    fn x2_matches() {
        let report = x2_nest();
        assert!(report.all_match, "{report}");
    }

    #[test]
    fn x3_matches() {
        let report = x3_counters();
        assert!(report.all_match, "{report}");
    }
}
