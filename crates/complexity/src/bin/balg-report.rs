//! Prints every experiment report (E1–E18) — the source of
//! `EXPERIMENTS.md`'s measured columns.

fn main() {
    let mut failures = 0;
    for report in balg_complexity::run_all() {
        println!("{report}");
        if !report.all_match {
            failures += 1;
        }
    }
    println!("==== extensions (Conclusion-section features) ====\n");
    for report in balg_complexity::run_extensions() {
        println!("{report}");
        if !report.all_match {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) deviated from the paper");
        std::process::exit(1);
    }
    println!("all experiments match the paper");
}
