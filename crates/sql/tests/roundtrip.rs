//! Property test: render∘parse round-trips for generated query ASTs.

use balg_sql::ast::{
    Aggregate, ColumnRef, CompareOp, Comparison, Operand, Projection, Query, SelectCore, TableRef,
};
use balg_sql::parser::parse;
use balg_sql::render::render;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    // Short identifiers that cannot collide with keywords.
    prop_oneof![
        Just("t1".to_owned()),
        Just("t2".to_owned()),
        Just("colx".to_owned()),
        Just("coly".to_owned()),
        Just("q_z".to_owned()),
    ]
}

fn column_ref() -> impl Strategy<Value = ColumnRef> {
    (proptest::option::of(ident()), ident())
        .prop_map(|(qualifier, column)| ColumnRef { qualifier, column })
}

fn operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        column_ref().prop_map(Operand::Column),
        (0i64..1000).prop_map(Operand::Int),
        "[a-z]{0,6}".prop_map(Operand::Str),
    ]
}

fn comparison() -> impl Strategy<Value = Comparison> {
    (
        operand(),
        prop_oneof![
            Just(CompareOp::Eq),
            Just(CompareOp::Neq),
            Just(CompareOp::Lt),
            Just(CompareOp::Le),
            Just(CompareOp::Gt),
            Just(CompareOp::Ge),
        ],
        operand(),
    )
        .prop_map(|(left, op, right)| Comparison { left, op, right })
}

fn aggregate() -> impl Strategy<Value = Aggregate> {
    prop_oneof![
        Just(Aggregate::CountStar),
        column_ref().prop_map(Aggregate::CountDistinct),
        column_ref().prop_map(Aggregate::Sum),
        column_ref().prop_map(Aggregate::Avg),
    ]
}

fn table_ref() -> impl Strategy<Value = TableRef> {
    (ident(), proptest::option::of(ident())).prop_map(|(table, alias)| TableRef {
        alias: alias.unwrap_or_else(|| table.clone()),
        table,
    })
}

fn select_core() -> impl Strategy<Value = SelectCore> {
    (
        any::<bool>(),
        prop_oneof![
            Just(Projection::Star),
            proptest::collection::vec(column_ref(), 1..4).prop_map(Projection::Columns),
            aggregate().prop_map(Projection::Aggregate),
            (proptest::collection::vec(column_ref(), 1..3), aggregate())
                .prop_map(|(cols, agg)| Projection::GroupedAggregate(cols, agg)),
        ],
        proptest::collection::vec(table_ref(), 1..3),
        proptest::collection::vec(comparison(), 0..3),
        proptest::collection::vec(column_ref(), 0..3),
    )
        .prop_map(|(distinct, projection, from, predicates, mut group_by)| {
            // A grouped-aggregate projection syntactically implies a GROUP
            // BY clause; the renderer/parser pair is exercised on both.
            if matches!(projection, Projection::GroupedAggregate(_, _)) && group_by.is_empty() {
                group_by.push(ColumnRef::bare("colx"));
            }
            SelectCore {
                distinct,
                projection,
                from,
                predicates,
                group_by,
            }
        })
}

fn query() -> impl Strategy<Value = Query> {
    let leaf = select_core().prop_map(Query::Select);
    leaf.prop_recursive(3, 12, 2, |inner| {
        (inner.clone(), inner).prop_flat_map(|(a, b)| {
            let a2 = a.clone();
            let b2 = b.clone();
            prop_oneof![
                Just(Query::UnionAll(Box::new(a.clone()), Box::new(b.clone()))),
                Just(Query::Union(Box::new(a.clone()), Box::new(b.clone()))),
                Just(Query::ExceptAll(Box::new(a.clone()), Box::new(b.clone()))),
                Just(Query::Except(Box::new(a), Box::new(b))),
                Just(Query::IntersectAll(
                    Box::new(a2.clone()),
                    Box::new(b2.clone())
                )),
                Just(Query::Intersect(Box::new(a2), Box::new(b2))),
            ]
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn parse_render_roundtrip(ast in query()) {
        let rendered = render(&ast);
        let reparsed = parse(&rendered);
        prop_assert!(reparsed.is_ok(), "rendered SQL failed to parse: {rendered}");
        prop_assert_eq!(reparsed.unwrap(), ast, "roundtrip changed AST for: {}", rendered);
    }
}
