//! Error paths of the statement layer: malformed `CREATE VIEW` /
//! `INSERT` / `DELETE` syntax, arity mismatches, and unknown bases must
//! surface *specific* [`SqlError`] variants — not just `is_err()` — so a
//! refactor cannot silently reroute one failure class into another.

use balg_incremental::UpdateError;
use balg_sql::compile::{CompileError, SqlError};
use balg_sql::prelude::*;

fn runtime() -> SqlRuntime {
    let catalog = Catalog::new()
        .with_table("orders", &[("customer", false), ("qty", true)])
        .with_table("vip", &[("customer", false)]);
    let s = |x: &str| SqlValue::Str(x.into());
    let db = database_from_rows(
        &catalog,
        &[("orders", vec![vec![s("ann"), SqlValue::Int(3)]])],
    )
    .unwrap();
    SqlRuntime::new(catalog, db)
}

// ----- parse-layer failures (Statement grammar) -----

#[test]
fn malformed_statement_syntax_is_a_parse_error() {
    let cases = [
        // CREATE VIEW grammar.
        "CREATE orders AS SELECT * FROM orders", // VIEW missing
        "CREATE VIEW v SELECT * FROM orders",    // AS missing
        "CREATE VIEW AS SELECT * FROM orders",   // name missing
        // INSERT grammar.
        "INSERT orders VALUES (1)",                // INTO missing
        "INSERT INTO orders (1)",                  // VALUES missing
        "INSERT INTO orders VALUES 1",             // ( missing
        "INSERT INTO orders VALUES ()",            // empty row
        "INSERT INTO orders VALUES ('x', 1",       // ) missing
        "INSERT INTO orders VALUES ('x', 1) x",    // trailing tokens
        "INSERT INTO orders VALUES ('x', SELECT)", // keyword as literal
        // DELETE grammar (delete-by-row form only).
        "DELETE orders VALUES (1)",            // FROM missing
        "DELETE FROM orders WHERE qty = 1",    // WHERE unsupported
        "DELETE FROM orders VALUES ('x', 1),", // dangling comma
    ];
    for sql in cases {
        assert!(
            parse_statement(sql).is_err(),
            "{sql:?} must not parse as a statement"
        );
        // Through the runtime the same failure is the Parse variant.
        let err = runtime().execute(sql).unwrap_err();
        assert!(matches!(err, SqlError::Parse(_)), "{sql:?} → {err:?}");
    }
}

#[test]
fn plain_queries_and_wellformed_statements_still_parse() {
    assert!(matches!(
        parse_statement("SELECT * FROM orders"),
        Ok(Statement::Query(_))
    ));
    assert!(matches!(
        parse_statement("CREATE VIEW v AS SELECT customer FROM orders"),
        Ok(Statement::CreateView { .. })
    ));
    assert!(matches!(
        parse_statement("INSERT INTO orders VALUES ('x', 1), ('y', 2)"),
        Ok(Statement::Insert { ref rows, .. }) if rows.len() == 2
    ));
    assert!(matches!(
        parse_statement("DELETE FROM orders VALUES ('ann', 3)"),
        Ok(Statement::Delete { .. })
    ));
}

// ----- compile-layer failures -----

#[test]
fn unknown_tables_and_columns_are_compile_errors() {
    let mut rt = runtime();
    assert!(matches!(
        rt.execute("INSERT INTO missing VALUES (1)").unwrap_err(),
        SqlError::Compile(CompileError::UnknownTable(ref t)) if t == "missing"
    ));
    assert!(matches!(
        rt.execute("DELETE FROM missing VALUES (1)").unwrap_err(),
        SqlError::Compile(CompileError::UnknownTable(ref t)) if t == "missing"
    ));
    assert!(matches!(
        rt.execute("CREATE VIEW v AS SELECT nope FROM orders")
            .unwrap_err(),
        SqlError::Compile(CompileError::UnknownColumn(ref c)) if c == "nope"
    ));
    assert!(matches!(
        rt.execute("CREATE VIEW orders AS SELECT customer FROM orders")
            .unwrap_err(),
        SqlError::Compile(CompileError::ViewShadowsTable(ref n)) if n == "orders"
    ));
    // Nothing was registered along the way.
    assert_eq!(rt.view_names().count(), 0);
}

// ----- static-analysis failures (BALG view form) -----

/// Byte offset of the expression tail in `CREATE VIEW v AS BALG <expr>`.
const BALG_EXPR_AT: usize = "CREATE VIEW v AS BALG ".len();

#[test]
fn statically_doomed_balg_views_are_analysis_errors() {
    let mut rt = runtime();
    // α₀ — attribute indices are 1-based.
    let err = rt
        .execute("CREATE VIEW v AS BALG map(x, attr(x, 0), orders)")
        .unwrap_err();
    assert!(
        matches!(err, SqlError::Analysis { at, ref message }
            if at == BALG_EXPR_AT && message.contains("1-based")),
        "{err:?}"
    );
    // Out-of-bounds attribute: orders rows have arity 2, α₅ cannot exist.
    let err = rt
        .execute("CREATE VIEW v AS BALG map(x, attr(x, 5), orders)")
        .unwrap_err();
    assert!(
        matches!(err, SqlError::Analysis { at, ref message }
            if at == BALG_EXPR_AT && message.contains("attribute")),
        "{err:?}"
    );
    // Arity mismatch: a set operation over differently shaped branches.
    let err = rt
        .execute("CREATE VIEW v AS BALG union(orders, vip)")
        .unwrap_err();
    assert!(
        matches!(err, SqlError::Analysis { at, .. } if at == BALG_EXPR_AT),
        "{err:?}"
    );
    // Powerset blowup: statically classified exponential — the TooLarge
    // trip is predicted at CREATE VIEW time instead of at the first
    // unlucky INSERT.
    let err = rt
        .execute("CREATE VIEW v AS BALG powerset(vip)")
        .unwrap_err();
    assert!(
        matches!(err, SqlError::Analysis { at, ref message }
            if at == BALG_EXPR_AT && message.contains("exponential")),
        "{err:?}"
    );
    // Unbound variables are caught by the same gate.
    let err = rt
        .execute("CREATE VIEW v AS BALG dedup(missing)")
        .unwrap_err();
    assert!(
        matches!(err, SqlError::Analysis { ref message, .. } if message.contains("unbound")),
        "{err:?}"
    );
    // Nothing registered along the way, and the rendered diagnostics
    // carry the byte position.
    assert_eq!(rt.view_names().count(), 0);
    let err = rt
        .execute("CREATE VIEW v AS BALG powerset(vip)")
        .unwrap_err();
    assert!(
        err.to_string()
            .starts_with(&format!("analysis error at byte {BALG_EXPR_AT}")),
        "{err}"
    );
}

#[test]
fn non_row_shaped_balg_views_are_rejected() {
    let mut rt = runtime();
    // A bag of atoms is not a row shape the SQL layer can decode.
    let err = rt
        .execute("CREATE VIEW v AS BALG map(x, attr(x, 1), vip)")
        .unwrap_err();
    assert!(
        matches!(err, SqlError::Analysis { ref message, .. } if message.contains("row shape")),
        "{err:?}"
    );
}

// ----- parse positions (byte offsets through the statement layer) -----

#[test]
fn statement_parse_errors_carry_byte_offsets() {
    // The unterminated string starts at byte 26.
    let err = parse_statement("INSERT INTO orders VALUES ('x").unwrap_err();
    assert_eq!(err.at, 27);
    assert!(err.to_string().contains("at byte 27"), "{err}");
    // A statement-grammar error points at the offending token's byte.
    let err = parse_statement("CREATE VIEW v SELECT * FROM orders").unwrap_err();
    assert_eq!(err.at, 14, "{err:?}"); // SELECT where AS belongs
}

// ----- row-shape failures -----

#[test]
fn arity_and_type_mismatches_are_decode_errors() {
    let mut rt = runtime();
    // Too few and too many literals for the two-column table.
    for sql in [
        "INSERT INTO orders VALUES ('x')",
        "INSERT INTO orders VALUES ('x', 1, 2)",
        "DELETE FROM orders VALUES ('ann')",
    ] {
        let err = rt.execute(sql).unwrap_err();
        assert!(matches!(err, SqlError::Decode(_)), "{sql:?} → {err:?}");
    }
    // A string literal in the numeric qty column.
    let err = rt
        .execute("INSERT INTO orders VALUES ('x', 'not a number')")
        .unwrap_err();
    assert!(matches!(err, SqlError::Decode(_)), "{err:?}");
    // The failed statements committed nothing.
    let Response::Rows(rows) = rt.execute("SELECT * FROM orders").unwrap() else {
        panic!("expected rows");
    };
    assert_eq!(rows.total_rows(), 1);
}

// ----- update-layer failures -----

#[test]
fn bad_updates_surface_the_update_variant() {
    let mut rt = runtime();
    // Deleting a row that is not present is NegativeBase, atomically:
    // the valid half of the same statement must not commit.
    let err = rt
        .execute("DELETE FROM orders VALUES ('ann', 3), ('ghost', 9)")
        .unwrap_err();
    assert!(
        matches!(err, SqlError::Update(UpdateError::NegativeBase { ref base, .. }) if base == "orders"),
        "{err:?}"
    );
    let Response::Rows(rows) = rt.execute("SELECT * FROM orders").unwrap() else {
        panic!("expected rows");
    };
    assert_eq!(rows.total_rows(), 1, "partial delete must not commit");
    // Reading an unregistered view is the UnknownView update error.
    assert!(matches!(
        rt.view_rows("missing").unwrap_err(),
        SqlError::Update(UpdateError::UnknownView(ref v)) if v == "missing"
    ));
}
