//! Abstract syntax for the SQL-bag subset.

use std::fmt;

/// A full query: a tree of set operations over SELECT cores.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Query {
    /// A plain SELECT block.
    Select(SelectCore),
    /// `q UNION ALL q′` — additive union `∪⁺`.
    UnionAll(Box<Query>, Box<Query>),
    /// `q UNION q′` — additive union followed by `ε`.
    Union(Box<Query>, Box<Query>),
    /// `q EXCEPT ALL q′` — bag subtraction `−` (monus on multiplicities).
    ExceptAll(Box<Query>, Box<Query>),
    /// `q EXCEPT q′` — set difference (`ε` then `−`).
    Except(Box<Query>, Box<Query>),
    /// `q INTERSECT ALL q′` — bag intersection `∩` (min of counts).
    IntersectAll(Box<Query>, Box<Query>),
    /// `q INTERSECT q′` — set intersection.
    Intersect(Box<Query>, Box<Query>),
}

/// One SELECT block.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SelectCore {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// The projection (or a scalar aggregate).
    pub projection: Projection,
    /// FROM items (joined by Cartesian product).
    pub from: Vec<TableRef>,
    /// Conjunctive WHERE comparisons.
    pub predicates: Vec<Comparison>,
    /// GROUP BY columns (empty = no grouping).
    pub group_by: Vec<ColumnRef>,
}

/// The projected output.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Projection {
    /// `*` — all columns of the FROM product, in order.
    Star,
    /// An explicit column list.
    Columns(Vec<ColumnRef>),
    /// A single scalar aggregate.
    Aggregate(Aggregate),
    /// Grouping columns followed by one aggregate (requires GROUP BY):
    /// `SELECT c₁, …, cₖ, AGG(col) FROM … GROUP BY c₁, …, cₖ`.
    GroupedAggregate(Vec<ColumnRef>, Aggregate),
}

/// A scalar aggregate call.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Aggregate {
    /// `COUNT(*)`.
    CountStar,
    /// `COUNT(DISTINCT col)`.
    CountDistinct(ColumnRef),
    /// `SUM(col)` — requires a numeric (bag-encoded) column.
    Sum(ColumnRef),
    /// `AVG(col)` — requires a numeric column; integral result.
    Avg(ColumnRef),
}

/// A table in FROM, with an optional alias.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TableRef {
    /// The catalog table name.
    pub table: String,
    /// Alias (defaults to the table name).
    pub alias: String,
}

/// A possibly-qualified column reference.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ColumnRef {
    /// Qualifier (alias), if written.
    pub qualifier: Option<String>,
    /// Column name.
    pub column: String,
}

/// One WHERE comparison.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Comparison {
    /// Left operand.
    pub left: Operand,
    /// Comparison operator.
    pub op: CompareOp,
    /// Right operand.
    pub right: Operand,
}

/// A comparison operator.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A comparison operand.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Operand {
    /// A column.
    Column(ColumnRef),
    /// An integer literal.
    Int(i64),
    /// A string literal.
    Str(String),
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.column),
            None => f.write_str(&self.column),
        }
    }
}

impl ColumnRef {
    /// An unqualified column.
    pub fn bare(column: &str) -> ColumnRef {
        ColumnRef {
            qualifier: None,
            column: column.to_owned(),
        }
    }

    /// A qualified column.
    pub fn qualified(qualifier: &str, column: &str) -> ColumnRef {
        ColumnRef {
            qualifier: Some(qualifier.to_owned()),
            column: column.to_owned(),
        }
    }
}
