//! Table catalog and data loading for the SQL-bag frontend.
//!
//! Tables are flat bag relations. A column may be declared **numeric**,
//! in which case its values are stored in the paper's integer encoding —
//! a bag of `v` unit tuples — so that `SUM` and `AVG` compile to the
//! Section 3 aggregate constructions (`δ`, powerset-guess) instead of
//! needing native arithmetic. Non-numeric columns hold atoms.

use std::collections::BTreeMap;
use std::fmt;

use balg_core::bag::{Bag, BagBuilder};
use balg_core::derived::{decode_int, int_value};
use balg_core::value::Value;

/// A column declaration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// `true` if stored in the bag-of-units integer encoding.
    pub numeric: bool,
}

/// A table declaration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Table {
    /// Table name (also the database bag name).
    pub name: String,
    /// Columns, in tuple order.
    pub columns: Vec<Column>,
}

/// The schema catalog.
#[derive(Clone, Default, Debug)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Declare a table; `columns` pairs names with the numeric flag.
    pub fn with_table(mut self, name: &str, columns: &[(&str, bool)]) -> Catalog {
        self.declare(name, columns);
        self
    }

    /// Declare a table in place (the `&mut` twin of
    /// [`Catalog::with_table`], for catalogs that grow after
    /// construction — e.g. a served session declaring tables at runtime).
    pub fn declare(&mut self, name: &str, columns: &[(&str, bool)]) {
        self.tables.insert(
            name.to_owned(),
            Table {
                name: name.to_owned(),
                columns: columns
                    .iter()
                    .map(|(column, numeric)| Column {
                        name: (*column).to_owned(),
                        numeric: *numeric,
                    })
                    .collect(),
            },
        );
    }

    /// Look up a table.
    pub fn get(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Iterate over the declared tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// The BALG schema of the catalog: numeric columns are integer bags
    /// `⟦[U]⟧`, others are atoms.
    pub fn to_schema(&self) -> balg_core::schema::Schema {
        use balg_core::types::Type;
        let mut schema = balg_core::schema::Schema::new();
        for (name, table) in &self.tables {
            let fields: Vec<Type> = table
                .columns
                .iter()
                .map(|column| {
                    if column.numeric {
                        Type::bag(Type::atom_tuple(1))
                    } else {
                        Type::Atom
                    }
                })
                .collect();
            schema = schema.with(name, Type::bag(Type::Tuple(fields)));
        }
        schema
    }
}

/// A SQL-level value.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum SqlValue {
    /// An integer.
    Int(i64),
    /// A string.
    Str(String),
}

impl fmt::Display for SqlValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlValue::Int(v) => write!(f, "{v}"),
            SqlValue::Str(s) => f.write_str(s),
        }
    }
}

/// Errors loading rows into a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// Row arity does not match the table.
    ArityMismatch {
        /// Expected column count.
        expected: usize,
        /// Row length found.
        found: usize,
    },
    /// A numeric column received a negative or non-integer value.
    BadNumeric(String),
    /// A string column received an integer (or vice versa is allowed —
    /// ints become integer atoms).
    TypeMismatch(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::ArityMismatch { expected, found } => {
                write!(f, "row of arity {found}, table needs {expected}")
            }
            LoadError::BadNumeric(what) => write!(f, "bad numeric value {what}"),
            LoadError::TypeMismatch(what) => write!(f, "type mismatch: {what}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Encode one SQL value for a column.
pub fn encode_value(value: &SqlValue, numeric: bool) -> Result<Value, LoadError> {
    match (value, numeric) {
        (SqlValue::Int(v), true) => {
            let v = u64::try_from(*v).map_err(|_| LoadError::BadNumeric(v.to_string()))?;
            Ok(int_value(v))
        }
        (SqlValue::Int(v), false) => Ok(Value::int(*v)),
        (SqlValue::Str(s), false) => Ok(Value::sym(s)),
        (SqlValue::Str(s), true) => Err(LoadError::TypeMismatch(format!(
            "string {s:?} in a numeric column"
        ))),
    }
}

/// Decode a stored value back to SQL level.
pub fn decode_value(value: &Value, numeric: bool) -> Option<SqlValue> {
    if numeric {
        let n = decode_int(value)?;
        Some(SqlValue::Int(i64::try_from(n.to_u64()?).ok()?))
    } else {
        match value {
            Value::Atom(balg_core::value::Atom::Int(v)) => Some(SqlValue::Int(*v)),
            Value::Atom(balg_core::value::Atom::Str(s)) => Some(SqlValue::Str(s.to_string())),
            _ => None,
        }
    }
}

/// Load rows into a table's bag (duplicate rows accumulate multiplicity —
/// bag semantics).
pub fn load_table(table: &Table, rows: &[Vec<SqlValue>]) -> Result<Bag, LoadError> {
    let mut bag = BagBuilder::with_capacity(rows.len());
    for row in rows {
        if row.len() != table.columns.len() {
            return Err(LoadError::ArityMismatch {
                expected: table.columns.len(),
                found: row.len(),
            });
        }
        let fields = row
            .iter()
            .zip(&table.columns)
            .map(|(value, column)| encode_value(value, column.numeric))
            .collect::<Result<Vec<_>, _>>()?;
        bag.push_one(Value::Tuple(fields.into()));
    }
    Ok(bag.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use balg_core::natural::Natural;

    fn orders() -> Table {
        Catalog::new()
            .with_table("orders", &[("customer", false), ("qty", true)])
            .get("orders")
            .unwrap()
            .clone()
    }

    #[test]
    fn load_encodes_numeric_columns() {
        let table = orders();
        let rows = vec![
            vec![SqlValue::Str("ann".into()), SqlValue::Int(3)],
            vec![SqlValue::Str("ann".into()), SqlValue::Int(3)],
        ];
        let bag = load_table(&table, &rows).unwrap();
        // duplicate rows accumulate multiplicity 2
        assert_eq!(bag.cardinality(), Natural::from(2u64));
        assert_eq!(bag.distinct_count(), 1);
        let (row, _) = bag.iter().next().unwrap();
        let fields = row.as_tuple().unwrap();
        assert_eq!(
            decode_value(&fields[0], false),
            Some(SqlValue::Str("ann".into()))
        );
        assert_eq!(decode_value(&fields[1], true), Some(SqlValue::Int(3)));
    }

    #[test]
    fn load_rejects_bad_rows() {
        let table = orders();
        assert!(matches!(
            load_table(&table, &[vec![SqlValue::Int(1)]]),
            Err(LoadError::ArityMismatch { .. })
        ));
        assert!(matches!(
            load_table(
                &table,
                &[vec![SqlValue::Str("x".into()), SqlValue::Str("y".into())]]
            ),
            Err(LoadError::TypeMismatch(_))
        ));
        assert!(matches!(
            load_table(
                &table,
                &[vec![SqlValue::Str("x".into()), SqlValue::Int(-1)]]
            ),
            Err(LoadError::BadNumeric(_))
        ));
    }

    #[test]
    fn encode_decode_roundtrip() {
        for (value, numeric) in [
            (SqlValue::Int(7), true),
            (SqlValue::Int(-7), false),
            (SqlValue::Str("hello".into()), false),
        ] {
            let encoded = encode_value(&value, numeric).unwrap();
            assert_eq!(decode_value(&encoded, numeric), Some(value));
        }
    }
}
