//! Compiling SQL-bag queries to BALG expressions.
//!
//! The translation is the textbook SQL→algebra mapping with the paper's
//! bag semantics throughout: FROM is a Cartesian product, WHERE is a
//! selection, the projection is a MAP (duplicates **survive**, with
//! multiplicities adding on collisions — exactly SQL's `SELECT` without
//! `DISTINCT`), `DISTINCT` is `ε`, `UNION ALL`/`EXCEPT ALL`/`INTERSECT
//! ALL` are `∪⁺`/`−`/`∩`, and the scalar aggregates are the Section 3
//! constructions over the integer-bag encoding.

use std::fmt;

use balg_core::derived::{average, count, int_value};
use balg_core::eval::{EvalError, Evaluator, Limits};
use balg_core::expr::{Expr, Pred};
use balg_core::schema::Database;
use balg_core::value::Value;

use crate::ast::{
    Aggregate, ColumnRef, CompareOp, Comparison, Operand, Projection, Query, SelectCore,
};
use crate::catalog::{decode_value, Catalog, Column, SqlValue};
use crate::parser::{parse, ParseError};

/// A compile-time error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// FROM references an undeclared table.
    UnknownTable(String),
    /// A column reference resolves to nothing.
    UnknownColumn(String),
    /// An unqualified column name matches several FROM columns.
    AmbiguousColumn(String),
    /// Two FROM items share an alias.
    DuplicateAlias(String),
    /// Set-operation branches have different output shapes.
    ShapeMismatch,
    /// SUM/AVG on a non-numeric column.
    NonNumericAggregate(String),
    /// A string literal compared against a numeric column.
    NumericStringComparison(String),
    /// GROUP BY present but the projection is not `cols…, AGG(col)` with
    /// exactly the grouped columns — or a grouped aggregate without
    /// GROUP BY.
    GroupProjectionMismatch(String),
    /// SUM/AVG/COUNT(DISTINCT) over one of the grouping columns.
    AggregateOnGroupColumn(String),
    /// CREATE VIEW with the name of a declared table — the name would be
    /// ambiguous between the base rows and the view rows.
    ViewShadowsTable(String),
    /// A table declaration under a name already taken by a table or a
    /// registered view.
    TableExists(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownTable(t) => write!(f, "unknown table {t}"),
            CompileError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            CompileError::AmbiguousColumn(c) => write!(f, "ambiguous column {c}"),
            CompileError::DuplicateAlias(a) => write!(f, "duplicate alias {a}"),
            CompileError::ShapeMismatch => f.write_str("set operation branches differ in shape"),
            CompileError::NonNumericAggregate(c) => {
                write!(f, "aggregate on non-numeric column {c}")
            }
            CompileError::NumericStringComparison(s) => {
                write!(f, "string {s:?} compared with a numeric column")
            }
            CompileError::GroupProjectionMismatch(what) => {
                write!(f, "projection does not fit GROUP BY: {what}")
            }
            CompileError::AggregateOnGroupColumn(c) => {
                write!(f, "aggregate over grouping column {c}")
            }
            CompileError::ViewShadowsTable(name) => {
                write!(f, "view {name} would shadow the table of the same name")
            }
            CompileError::TableExists(name) => {
                write!(f, "name {name} is already a table or view")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// A compiled query: the BALG expression plus the output row shape.
#[derive(Clone, Debug)]
pub struct CompiledQuery {
    /// The expression (free variables are table names).
    pub expr: Expr,
    /// Output columns, in order.
    pub output: Vec<Column>,
}

/// One resolvable column of the FROM scope.
struct ScopeColumn {
    alias: String,
    column: Column,
}

struct Scope {
    columns: Vec<ScopeColumn>,
}

impl Scope {
    fn resolve(&self, reference: &ColumnRef) -> Result<usize, CompileError> {
        let matches: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, sc)| {
                sc.column.name == reference.column
                    && reference.qualifier.as_ref().is_none_or(|q| *q == sc.alias)
            })
            .map(|(i, _)| i)
            .collect();
        match matches.as_slice() {
            [] => Err(CompileError::UnknownColumn(reference.to_string())),
            [unique] => Ok(*unique),
            _ => Err(CompileError::AmbiguousColumn(reference.to_string())),
        }
    }
}

/// Compile a parsed query against a catalog.
pub fn compile_query(query: &Query, catalog: &Catalog) -> Result<CompiledQuery, CompileError> {
    match query {
        Query::Select(core) => compile_select(core, catalog),
        Query::UnionAll(a, b) => compile_setop(a, b, catalog, |x, y| x.additive_union(y)),
        Query::Union(a, b) => compile_setop(a, b, catalog, |x, y| x.additive_union(y).dedup()),
        Query::ExceptAll(a, b) => compile_setop(a, b, catalog, |x, y| x.subtract(y)),
        Query::Except(a, b) => compile_setop(a, b, catalog, |x, y| x.dedup().subtract(y.dedup())),
        Query::IntersectAll(a, b) => compile_setop(a, b, catalog, |x, y| x.intersect(y)),
        Query::Intersect(a, b) => {
            compile_setop(a, b, catalog, |x, y| x.dedup().intersect(y.dedup()))
        }
    }
}

fn compile_setop(
    a: &Query,
    b: &Query,
    catalog: &Catalog,
    combine: impl FnOnce(Expr, Expr) -> Expr,
) -> Result<CompiledQuery, CompileError> {
    let left = compile_query(a, catalog)?;
    let right = compile_query(b, catalog)?;
    let shapes_match = left.output.len() == right.output.len()
        && left
            .output
            .iter()
            .zip(&right.output)
            .all(|(x, y)| x.numeric == y.numeric);
    if !shapes_match {
        return Err(CompileError::ShapeMismatch);
    }
    Ok(CompiledQuery {
        expr: combine(left.expr, right.expr),
        // Column names follow SQL convention: the left branch's.
        output: left.output,
    })
}

fn compile_select(core: &SelectCore, catalog: &Catalog) -> Result<CompiledQuery, CompileError> {
    // Build the FROM scope and product.
    let mut scope = Scope {
        columns: Vec::new(),
    };
    let mut seen_aliases = Vec::new();
    let mut from_expr: Option<Expr> = None;
    for table_ref in &core.from {
        if seen_aliases.contains(&table_ref.alias) {
            return Err(CompileError::DuplicateAlias(table_ref.alias.clone()));
        }
        seen_aliases.push(table_ref.alias.clone());
        let table = catalog
            .get(&table_ref.table)
            .ok_or_else(|| CompileError::UnknownTable(table_ref.table.clone()))?;
        for column in &table.columns {
            scope.columns.push(ScopeColumn {
                alias: table_ref.alias.clone(),
                column: column.clone(),
            });
        }
        let var = Expr::var(&table_ref.table);
        from_expr = Some(match from_expr {
            None => var,
            Some(prev) => prev.product(var),
        });
    }
    let mut expr = from_expr.expect("parser guarantees nonempty FROM");

    // WHERE: a conjunctive selection.
    if !core.predicates.is_empty() {
        let mut pred = Pred::True;
        for comparison in &core.predicates {
            pred = pred.and(compile_comparison(comparison, &scope)?);
        }
        expr = expr.select("ŵ", pred);
    }

    // GROUP BY: compiled via the nest operator (the Conclusion's
    // alternative to the powerset) — group, then aggregate each group's
    // nested bag.
    if !core.group_by.is_empty() {
        let (expr, output) = compile_grouped(core, expr, &scope)?;
        let expr = if core.distinct { expr.dedup() } else { expr };
        return Ok(CompiledQuery { expr, output });
    }

    // Projection / aggregate.
    let (expr, output) = match &core.projection {
        Projection::Star => {
            let output = scope.columns.iter().map(|sc| sc.column.clone()).collect();
            (expr, output)
        }
        Projection::Columns(columns) => {
            let mut indices = Vec::with_capacity(columns.len());
            let mut output = Vec::with_capacity(columns.len());
            for reference in columns {
                let idx = scope.resolve(reference)?;
                indices.push(idx + 1);
                output.push(scope.columns[idx].column.clone());
            }
            (expr.project(&indices), output)
        }
        Projection::Aggregate(aggregate) => {
            let (expr, name) = compile_aggregate(aggregate, expr, &scope)?;
            (
                expr,
                vec![Column {
                    name,
                    numeric: true,
                }],
            )
        }
        Projection::GroupedAggregate(_, _) => {
            return Err(CompileError::GroupProjectionMismatch(
                "grouped aggregate requires a GROUP BY clause".into(),
            ))
        }
    };

    let expr = if core.distinct { expr.dedup() } else { expr };
    Ok(CompiledQuery { expr, output })
}

fn compile_aggregate(
    aggregate: &Aggregate,
    input: Expr,
    scope: &Scope,
) -> Result<(Expr, String), CompileError> {
    let scalar_row = |value: Expr| Expr::Tuple(vec![value]).singleton();
    match aggregate {
        Aggregate::CountStar => Ok((scalar_row(count(input)), "count".to_owned())),
        Aggregate::CountDistinct(column) => {
            let idx = scope.resolve(column)?;
            Ok((
                scalar_row(count(input.project(&[idx + 1]).dedup())),
                "count".to_owned(),
            ))
        }
        Aggregate::Sum(column) => {
            let idx = scope.resolve(column)?;
            if !scope.columns[idx].column.numeric {
                return Err(CompileError::NonNumericAggregate(column.to_string()));
            }
            // Project the integer-bag column out, then sum with δ
            // (multiplicities of equal rows scale their contribution).
            let values = input.map("ŝ", Expr::var("ŝ").attr(idx + 1));
            Ok((scalar_row(values.destroy()), "sum".to_owned()))
        }
        Aggregate::Avg(column) => {
            let idx = scope.resolve(column)?;
            if !scope.columns[idx].column.numeric {
                return Err(CompileError::NonNumericAggregate(column.to_string()));
            }
            let values = input.map("ŝ", Expr::var("ŝ").attr(idx + 1));
            Ok((scalar_row(average(values)), "avg".to_owned()))
        }
    }
}

/// Compile `SELECT g₁, …, gₖ, AGG(col) FROM … GROUP BY …` via `nest`:
/// `MAP_{λg.[keys…, agg(α_{k+1}(g))]}(nest_{G}(core))`.
fn compile_grouped(
    core: &SelectCore,
    input: Expr,
    scope: &Scope,
) -> Result<(Expr, Vec<Column>), CompileError> {
    let Projection::GroupedAggregate(selected, aggregate) = &core.projection else {
        return Err(CompileError::GroupProjectionMismatch(
            "GROUP BY requires `SELECT group-cols…, AGG(col)`".into(),
        ));
    };
    // Resolve the GROUP BY columns to 1-based scope indices (nest key
    // order = GROUP BY order).
    let mut group_indices = Vec::with_capacity(core.group_by.len());
    for reference in &core.group_by {
        let idx = scope.resolve(reference)? + 1;
        if group_indices.contains(&idx) {
            return Err(CompileError::GroupProjectionMismatch(format!(
                "duplicate GROUP BY column {reference}"
            )));
        }
        group_indices.push(idx);
    }
    // Every selected plain column must be one of the grouped columns.
    let mut key_positions = Vec::with_capacity(selected.len());
    let mut output = Vec::with_capacity(selected.len() + 1);
    for reference in selected {
        let idx = scope.resolve(reference)? + 1;
        let Some(position) = group_indices.iter().position(|&g| g == idx) else {
            return Err(CompileError::GroupProjectionMismatch(format!(
                "column {reference} is not in GROUP BY"
            )));
        };
        key_positions.push(position + 1);
        output.push(scope.columns[idx - 1].column.clone());
    }
    // The aggregated column must be a residual (non-group) column; its
    // index inside the nested tuples is its rank among residuals.
    let residual_index = |reference: &ColumnRef| -> Result<usize, CompileError> {
        let idx = scope.resolve(reference)? + 1;
        if group_indices.contains(&idx) {
            return Err(CompileError::AggregateOnGroupColumn(reference.to_string()));
        }
        let rank = (1..=scope.columns.len())
            .filter(|i| !group_indices.contains(i))
            .position(|i| i == idx)
            .expect("index is in range and non-group");
        Ok(rank + 1)
    };
    let nested = input.nest(&group_indices);
    let inner = || Expr::var("ĝ").attr(group_indices.len() + 1);
    let (agg_expr, agg_name) = match aggregate {
        Aggregate::CountStar => (count(inner()), "count"),
        Aggregate::CountDistinct(reference) => {
            let j = residual_index(reference)?;
            (count(inner().project(&[j]).dedup()), "count")
        }
        Aggregate::Sum(reference) => {
            let idx = scope.resolve(reference)?;
            if !scope.columns[idx].column.numeric {
                return Err(CompileError::NonNumericAggregate(reference.to_string()));
            }
            let j = residual_index(reference)?;
            (inner().map("ŝ", Expr::var("ŝ").attr(j)).destroy(), "sum")
        }
        Aggregate::Avg(reference) => {
            let idx = scope.resolve(reference)?;
            if !scope.columns[idx].column.numeric {
                return Err(CompileError::NonNumericAggregate(reference.to_string()));
            }
            let j = residual_index(reference)?;
            (average(inner().map("ŝ", Expr::var("ŝ").attr(j))), "avg")
        }
    };
    let mut fields: Vec<Expr> = key_positions
        .iter()
        .map(|&p| Expr::var("ĝ").attr(p))
        .collect();
    fields.push(agg_expr);
    let expr = nested.map("ĝ", Expr::Tuple(fields));
    output.push(Column {
        name: agg_name.to_owned(),
        numeric: true,
    });
    Ok((expr, output))
}

fn compile_comparison(comparison: &Comparison, scope: &Scope) -> Result<Pred, CompileError> {
    // Determine numeric context: a literal compared to a numeric column
    // must be encoded as an integer bag.
    let numeric_context =
        [&comparison.left, &comparison.right]
            .iter()
            .any(|operand| match operand {
                Operand::Column(reference) => scope
                    .resolve(reference)
                    .is_ok_and(|idx| scope.columns[idx].column.numeric),
                _ => false,
            });
    let left = compile_operand(&comparison.left, scope, numeric_context)?;
    let right = compile_operand(&comparison.right, scope, numeric_context)?;
    Ok(match comparison.op {
        CompareOp::Eq => Pred::Eq(left, right),
        CompareOp::Neq => Pred::Eq(left, right).not(),
        CompareOp::Lt => Pred::Lt(left, right),
        CompareOp::Le => Pred::Le(left, right),
        CompareOp::Gt => Pred::Lt(right, left),
        CompareOp::Ge => Pred::Le(right, left),
    })
}

fn compile_operand(
    operand: &Operand,
    scope: &Scope,
    numeric_context: bool,
) -> Result<Expr, CompileError> {
    Ok(match operand {
        Operand::Column(reference) => {
            let idx = scope.resolve(reference)?;
            Expr::var("ŵ").attr(idx + 1)
        }
        Operand::Int(value) => {
            if numeric_context {
                let v = u64::try_from(*value)
                    .map_err(|_| CompileError::NumericStringComparison(value.to_string()))?;
                Expr::Lit(int_value(v))
            } else {
                Expr::lit(Value::int(*value))
            }
        }
        Operand::Str(text) => {
            if numeric_context {
                return Err(CompileError::NumericStringComparison(text.clone()));
            }
            Expr::lit(Value::sym(text))
        }
    })
}

/// All errors from end-to-end SQL execution.
#[derive(Debug)]
pub enum SqlError {
    /// Parse failure.
    Parse(ParseError),
    /// Compile failure.
    Compile(CompileError),
    /// The static analyzer ([`mod@balg_core::analyze`]) rejected the view
    /// expression: a shape/type error, or a statically predicted blowup
    /// (non-polynomial cost class — a `TooLarge` failure waiting to
    /// happen).
    Analysis {
        /// Byte offset of the analyzed expression within the statement.
        at: usize,
        /// The analyzer's diagnostic.
        message: String,
    },
    /// Evaluation failure.
    Eval(EvalError),
    /// The result did not decode against the output shape.
    Decode(String),
    /// An update statement was rejected by the incremental view runtime.
    Update(balg_incremental::UpdateError),
    /// The durability layer failed (or a durable-only statement such as
    /// `CHECKPOINT` was issued against an in-memory session).
    Durability(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(e) => write!(f, "{e}"),
            SqlError::Compile(e) => write!(f, "{e}"),
            SqlError::Analysis { at, message } => {
                write!(f, "analysis error at byte {at}: {message}")
            }
            SqlError::Eval(e) => write!(f, "{e}"),
            SqlError::Decode(what) => write!(f, "decode failure: {what}"),
            SqlError::Update(e) => write!(f, "{e}"),
            SqlError::Durability(what) => write!(f, "durability error: {what}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// A decoded result: rows with multiplicities (bag semantics is visible).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QueryResult {
    /// Output columns.
    pub columns: Vec<Column>,
    /// `(row, multiplicity)` pairs in row order.
    pub rows: Vec<(Vec<SqlValue>, u64)>,
}

impl QueryResult {
    /// Total number of rows counting duplicates.
    pub fn total_rows(&self) -> u64 {
        self.rows.iter().map(|(_, m)| m).sum()
    }

    /// The single scalar of an aggregate result.
    pub fn scalar(&self) -> Option<i64> {
        match self.rows.as_slice() {
            [(row, 1)] => match row.as_slice() {
                [SqlValue::Int(v)] => Some(*v),
                _ => None,
            },
            _ => None,
        }
    }
}

/// Parse, compile, evaluate, and decode a query in one call.
pub fn run_query(
    sql: &str,
    catalog: &Catalog,
    db: &Database,
    limits: Limits,
) -> Result<QueryResult, SqlError> {
    let parsed = parse(sql).map_err(SqlError::Parse)?;
    let compiled = compile_query(&parsed, catalog).map_err(SqlError::Compile)?;
    let mut evaluator = Evaluator::new(db, limits);
    let bag = evaluator.eval_bag(&compiled.expr).map_err(SqlError::Eval)?;
    let mut rows = Vec::with_capacity(bag.distinct_count());
    for (row, mult) in bag.iter() {
        let fields = row
            .as_tuple()
            .ok_or_else(|| SqlError::Decode(row.to_string()))?;
        if fields.len() != compiled.output.len() {
            return Err(SqlError::Decode(format!(
                "row arity {} vs output arity {}",
                fields.len(),
                compiled.output.len()
            )));
        }
        let decoded = fields
            .iter()
            .zip(&compiled.output)
            .map(|(value, column)| {
                decode_value(value, column.numeric)
                    .ok_or_else(|| SqlError::Decode(value.to_string()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let m = mult
            .to_u64()
            .ok_or_else(|| SqlError::Decode("multiplicity over u64".into()))?;
        rows.push((decoded, m));
    }
    Ok(QueryResult {
        columns: compiled.output,
        rows,
    })
}

/// Shorthand for [`run_query`] with default limits.
pub fn run(sql: &str, catalog: &Catalog, db: &Database) -> Result<QueryResult, SqlError> {
    run_query(sql, catalog, db, Limits::default())
}

/// As [`run`], but pass the compiled expression through the
/// [`balg_core::rewrite`] optimizer first (selection pushdown, MAP
/// fusion, …). Results are identical; intermediate bags are smaller.
pub fn run_optimized(sql: &str, catalog: &Catalog, db: &Database) -> Result<QueryResult, SqlError> {
    let parsed = parse(sql).map_err(SqlError::Parse)?;
    let compiled = compile_query(&parsed, catalog).map_err(SqlError::Compile)?;
    let optimized = balg_core::rewrite::optimize(&compiled.expr, &catalog.to_schema());
    let mut evaluator = Evaluator::new(db, Limits::default());
    let bag = evaluator.eval_bag(&optimized).map_err(SqlError::Eval)?;
    decode_result(&bag, compiled.output)
}

/// Decode a result bag against an output row shape. Public so external
/// runtimes (the `balg-server` snapshot read path) can decode pinned view
/// bags exactly the way [`run_query`] decodes one-shot results.
pub fn decode_result(
    bag: &balg_core::bag::Bag,
    output: Vec<Column>,
) -> Result<QueryResult, SqlError> {
    let mut rows = Vec::with_capacity(bag.distinct_count());
    for (row, mult) in bag.iter() {
        let fields = row
            .as_tuple()
            .ok_or_else(|| SqlError::Decode(row.to_string()))?;
        if fields.len() != output.len() {
            return Err(SqlError::Decode(format!(
                "row arity {} vs output arity {}",
                fields.len(),
                output.len()
            )));
        }
        let decoded = fields
            .iter()
            .zip(&output)
            .map(|(value, column)| {
                decode_value(value, column.numeric)
                    .ok_or_else(|| SqlError::Decode(value.to_string()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let m = mult
            .to_u64()
            .ok_or_else(|| SqlError::Decode("multiplicity over u64".into()))?;
        rows.push((decoded, m));
    }
    Ok(QueryResult {
        columns: output,
        rows,
    })
}

/// Build a database by loading rows into catalog tables.
pub fn database_from_rows(
    catalog: &Catalog,
    data: &[(&str, Vec<Vec<SqlValue>>)],
) -> Result<Database, SqlError> {
    let mut db = Database::new();
    for (table_name, rows) in data {
        let table = catalog
            .get(table_name)
            .ok_or_else(|| SqlError::Compile(CompileError::UnknownTable((*table_name).into())))?;
        let bag =
            crate::catalog::load_table(table, rows).map_err(|e| SqlError::Decode(e.to_string()))?;
        db.insert(table_name, bag);
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Catalog, Database) {
        let catalog = Catalog::new()
            .with_table(
                "orders",
                &[("customer", false), ("item", false), ("qty", true)],
            )
            .with_table("vip", &[("customer", false)]);
        let s = |x: &str| SqlValue::Str(x.into());
        let i = SqlValue::Int;
        let db = database_from_rows(
            &catalog,
            &[
                (
                    "orders",
                    vec![
                        vec![s("ann"), s("apple"), i(3)],
                        vec![s("ann"), s("apple"), i(3)], // duplicate row!
                        vec![s("bob"), s("pear"), i(5)],
                        vec![s("bob"), s("apple"), i(1)],
                    ],
                ),
                ("vip", vec![vec![s("ann")]]),
            ],
        )
        .unwrap();
        (catalog, db)
    }

    #[test]
    fn select_keeps_duplicates() {
        let (catalog, db) = setup();
        let result = run("SELECT customer FROM orders", &catalog, &db).unwrap();
        assert_eq!(result.total_rows(), 4);
        // ann appears twice via the duplicate row.
        let ann = result
            .rows
            .iter()
            .find(|(row, _)| row[0] == SqlValue::Str("ann".into()))
            .unwrap();
        assert_eq!(ann.1, 2);
    }

    #[test]
    fn distinct_is_epsilon() {
        let (catalog, db) = setup();
        let result = run("SELECT DISTINCT customer FROM orders", &catalog, &db).unwrap();
        assert_eq!(result.total_rows(), 2);
        assert!(result.rows.iter().all(|(_, m)| *m == 1));
    }

    #[test]
    fn join_with_alias() {
        let (catalog, db) = setup();
        let result = run(
            "SELECT o.item FROM orders o, vip v WHERE o.customer = v.customer",
            &catalog,
            &db,
        )
        .unwrap();
        assert_eq!(result.total_rows(), 2); // ann's duplicated apple rows
    }

    #[test]
    fn where_on_numeric_column() {
        let (catalog, db) = setup();
        let result = run("SELECT customer FROM orders WHERE qty >= 3", &catalog, &db).unwrap();
        assert_eq!(result.total_rows(), 3); // ann×2 (qty 3) + bob (qty 5)
    }

    #[test]
    fn count_star_counts_duplicates() {
        let (catalog, db) = setup();
        let result = run("SELECT COUNT(*) FROM orders", &catalog, &db).unwrap();
        assert_eq!(result.scalar(), Some(4));
        let distinct = run("SELECT COUNT(DISTINCT customer) FROM orders", &catalog, &db).unwrap();
        assert_eq!(distinct.scalar(), Some(2));
    }

    #[test]
    fn sum_and_avg() {
        let (catalog, db) = setup();
        let sum = run("SELECT SUM(qty) FROM orders", &catalog, &db).unwrap();
        assert_eq!(sum.scalar(), Some(3 + 3 + 5 + 1));
        let avg = run("SELECT AVG(qty) FROM orders", &catalog, &db).unwrap();
        assert_eq!(avg.scalar(), Some(3)); // (3+3+5+1)/4
    }

    #[test]
    fn set_operations() {
        let (catalog, db) = setup();
        let union_all = run(
            "SELECT customer FROM orders UNION ALL SELECT customer FROM vip",
            &catalog,
            &db,
        )
        .unwrap();
        assert_eq!(union_all.total_rows(), 5);
        let except_all = run(
            "SELECT customer FROM orders EXCEPT ALL SELECT customer FROM vip",
            &catalog,
            &db,
        )
        .unwrap();
        // ann²−ann¹ = ann¹, bob² stays: 3 rows.
        assert_eq!(except_all.total_rows(), 3);
        let intersect = run(
            "SELECT customer FROM orders INTERSECT SELECT customer FROM vip",
            &catalog,
            &db,
        )
        .unwrap();
        assert_eq!(intersect.total_rows(), 1);
    }

    #[test]
    fn group_by_with_aggregates() {
        let (catalog, db) = setup();
        // SUM per customer: ann has the duplicated (apple,3) rows.
        let result = run(
            "SELECT customer, SUM(qty) FROM orders GROUP BY customer",
            &catalog,
            &db,
        )
        .unwrap();
        assert_eq!(result.rows.len(), 2);
        let find = |name: &str| {
            result
                .rows
                .iter()
                .find(|(row, _)| row[0] == SqlValue::Str(name.into()))
                .map(|(row, _)| row[1].clone())
        };
        assert_eq!(find("ann"), Some(SqlValue::Int(6))); // 3 + 3
        assert_eq!(find("bob"), Some(SqlValue::Int(6))); // 5 + 1

        let counts = run(
            "SELECT customer, COUNT(*) FROM orders GROUP BY customer",
            &catalog,
            &db,
        )
        .unwrap();
        let find = |name: &str| {
            counts
                .rows
                .iter()
                .find(|(row, _)| row[0] == SqlValue::Str(name.into()))
                .map(|(row, _)| row[1].clone())
        };
        assert_eq!(find("ann"), Some(SqlValue::Int(2)));
        assert_eq!(find("bob"), Some(SqlValue::Int(2)));

        let avg = run(
            "SELECT customer, AVG(qty) FROM orders GROUP BY customer",
            &catalog,
            &db,
        )
        .unwrap();
        let find = |name: &str| {
            avg.rows
                .iter()
                .find(|(row, _)| row[0] == SqlValue::Str(name.into()))
                .map(|(row, _)| row[1].clone())
        };
        assert_eq!(find("ann"), Some(SqlValue::Int(3)));
        assert_eq!(find("bob"), Some(SqlValue::Int(3)));
    }

    #[test]
    fn group_by_count_distinct_and_multi_key() {
        let (catalog, db) = setup();
        let result = run(
            "SELECT customer, COUNT(DISTINCT item) FROM orders GROUP BY customer",
            &catalog,
            &db,
        )
        .unwrap();
        let find = |name: &str| {
            result
                .rows
                .iter()
                .find(|(row, _)| row[0] == SqlValue::Str(name.into()))
                .map(|(row, _)| row[1].clone())
        };
        assert_eq!(find("ann"), Some(SqlValue::Int(1))); // apple only
        assert_eq!(find("bob"), Some(SqlValue::Int(2))); // pear + apple

        // Two grouping keys.
        let pairs = run(
            "SELECT customer, item, COUNT(*) FROM orders GROUP BY customer, item",
            &catalog,
            &db,
        )
        .unwrap();
        assert_eq!(pairs.rows.len(), 3); // (ann,apple), (bob,pear), (bob,apple)
    }

    #[test]
    fn group_by_errors() {
        let (catalog, db) = setup();
        assert!(matches!(
            run(
                "SELECT item, SUM(qty) FROM orders GROUP BY customer",
                &catalog,
                &db
            ),
            Err(SqlError::Compile(CompileError::GroupProjectionMismatch(_)))
        ));
        assert!(matches!(
            run("SELECT customer, SUM(qty) FROM orders", &catalog, &db),
            Err(SqlError::Compile(CompileError::GroupProjectionMismatch(_)))
        ));
        assert!(matches!(
            run(
                "SELECT customer, COUNT(DISTINCT customer) FROM orders GROUP BY customer",
                &catalog,
                &db
            ),
            Err(SqlError::Compile(CompileError::AggregateOnGroupColumn(_)))
        ));
        assert!(matches!(
            run(
                "SELECT customer, SUM(item) FROM orders GROUP BY customer",
                &catalog,
                &db
            ),
            Err(SqlError::Compile(CompileError::NonNumericAggregate(_)))
        ));
    }

    #[test]
    fn errors_surface() {
        let (catalog, db) = setup();
        assert!(matches!(
            run("SELECT nope FROM orders", &catalog, &db),
            Err(SqlError::Compile(CompileError::UnknownColumn(_)))
        ));
        assert!(matches!(
            run("SELECT customer FROM missing", &catalog, &db),
            Err(SqlError::Compile(CompileError::UnknownTable(_)))
        ));
        assert!(matches!(
            run("SELECT SUM(customer) FROM orders", &catalog, &db),
            Err(SqlError::Compile(CompileError::NonNumericAggregate(_)))
        ));
        assert!(matches!(
            run(
                "SELECT customer FROM orders, orders WHERE qty = 1",
                &catalog,
                &db
            ),
            Err(SqlError::Compile(CompileError::DuplicateAlias(_)))
        ));
        assert!(matches!(
            run(
                "SELECT customer FROM orders o, orders p WHERE qty = 1",
                &catalog,
                &db
            ),
            Err(SqlError::Compile(CompileError::AmbiguousColumn(_)))
        ));
        assert!(matches!(
            run(
                "SELECT customer FROM orders UNION ALL SELECT COUNT(*) FROM vip",
                &catalog,
                &db
            ),
            Err(SqlError::Compile(CompileError::ShapeMismatch))
        ));
    }

    #[test]
    fn compiled_queries_are_balg1_without_aggregates() {
        use balg_core::schema::Schema;
        use balg_core::typecheck::check;
        use balg_core::types::Type;
        let (catalog, _) = setup();
        let parsed = parse("SELECT DISTINCT customer FROM orders WHERE item = 'apple'").unwrap();
        let compiled = compile_query(&parsed, &catalog).unwrap();
        // Schema: orders has a bag-typed numeric column, so the relation
        // type is [U, U, ⟦[U]⟧] — nesting 1 within a tuple, hence level 2
        // by the strict BALG¹ typing discipline. With purely symbolic
        // columns it would be level 1; check it is at most 2 and core.
        let orders_ty = Type::bag(Type::Tuple(vec![
            Type::Atom,
            Type::Atom,
            Type::bag(Type::atom_tuple(1)),
        ]));
        let schema = Schema::new().with("orders", orders_ty);
        let analysis = check(&compiled.expr, &schema).unwrap();
        assert!(analysis.is_core_balg());
        assert!(analysis.balg_level() <= 2);
    }
}
