//! Tokenizer for the SQL-bag subset.
//!
//! SQL's data model *is* bags — the paper's opening motivation ("many
//! systems support bags in their data model, often to save the cost of
//! duplicate elimination"). The frontend accepts the fragment whose
//! semantics BALG captures directly: SELECT \[DISTINCT\] … FROM … WHERE
//! conjunctive comparisons, UNION/EXCEPT/INTERSECT \[ALL\], and scalar
//! COUNT/SUM/AVG.

use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Token {
    /// A keyword (uppercased).
    Keyword(Keyword),
    /// An identifier (table, column, alias).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A single-quoted string literal.
    Str(String),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `-` (binary minus position — see [`tokenize`] on sign handling).
    Minus,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Recognized keywords.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    Distinct,
    From,
    Where,
    And,
    As,
    Union,
    Except,
    Intersect,
    All,
    Count,
    Sum,
    Avg,
    Group,
    By,
    Create,
    View,
    Insert,
    Into,
    Values,
    Delete,
    Checkpoint,
}

impl Keyword {
    fn from_str(s: &str) -> Option<Keyword> {
        Some(match s.to_ascii_uppercase().as_str() {
            "SELECT" => Keyword::Select,
            "DISTINCT" => Keyword::Distinct,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "AND" => Keyword::And,
            "AS" => Keyword::As,
            "UNION" => Keyword::Union,
            "EXCEPT" => Keyword::Except,
            "INTERSECT" => Keyword::Intersect,
            "ALL" => Keyword::All,
            "COUNT" => Keyword::Count,
            "SUM" => Keyword::Sum,
            "AVG" => Keyword::Avg,
            "GROUP" => Keyword::Group,
            "BY" => Keyword::By,
            "CREATE" => Keyword::Create,
            "VIEW" => Keyword::View,
            "INSERT" => Keyword::Insert,
            "INTO" => Keyword::Into,
            "VALUES" => Keyword::Values,
            "DELETE" => Keyword::Delete,
            "CHECKPOINT" => Keyword::Checkpoint,
            _ => return None,
        })
    }
}

/// A lexing error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub position: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for LexError {}

/// `true` iff a `-` seen after `prev` starts a negative integer literal
/// rather than a binary minus. A sign is only a sign where a *value* is
/// expected: at the start of the input, after an operator or keyword,
/// after `,` or `(` — never directly after an identifier, a literal, a
/// closing paren, or `*`/`.` (so `qty-1` is `qty` `-` `1`, not
/// `qty` `-1`).
fn sign_position(prev: Option<&Token>) -> bool {
    match prev {
        None => true,
        Some(
            Token::Keyword(_)
            | Token::Comma
            | Token::LParen
            | Token::Minus
            | Token::Eq
            | Token::Neq
            | Token::Lt
            | Token::Le
            | Token::Gt
            | Token::Ge,
        ) => true,
        Some(
            Token::Ident(_)
            | Token::Int(_)
            | Token::Str(_)
            | Token::RParen
            | Token::Star
            | Token::Dot,
        ) => false,
    }
}

/// Tokenize a query string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    tokenize_with_positions(input).map(|(tokens, _)| tokens)
}

/// Tokenize a query string, also returning each token's starting byte
/// offset. The position vector carries one extra trailing entry — the
/// input length — so an error "at" the slot past the last token still
/// names a byte (the end of the statement).
pub fn tokenize_with_positions(input: &str) -> Result<(Vec<Token>, Vec<usize>), LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut positions = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let at = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
                continue;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::Neq);
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some(b'>') => {
                    tokens.push(Token::Neq);
                    i += 2;
                }
                Some(b'=') => {
                    tokens.push(Token::Le);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError {
                        position: i,
                        message: "unterminated string literal".into(),
                    });
                }
                tokens.push(Token::Str(input[start..j].to_owned()));
                i = j + 1;
            }
            '-' if !(sign_position(tokens.last())
                && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)) =>
            {
                tokens.push(Token::Minus);
                i += 1;
            }
            '0'..='9' | '-' => {
                let start = i;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let value = text.parse().map_err(|_| LexError {
                    position: start,
                    message: format!("bad integer literal {text}"),
                })?;
                tokens.push(Token::Int(value));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                match Keyword::from_str(word) {
                    Some(kw) => tokens.push(Token::Keyword(kw)),
                    None => tokens.push(Token::Ident(word.to_owned())),
                }
            }
            other => {
                return Err(LexError {
                    position: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
        positions.push(at);
    }
    positions.push(bytes.len());
    Ok((tokens, positions))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_case_insensitive() {
        let tokens = tokenize("select DISTINCT from").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Keyword(Keyword::Select),
                Token::Keyword(Keyword::Distinct),
                Token::Keyword(Keyword::From),
            ]
        );
    }

    #[test]
    fn punctuation_and_operators() {
        let tokens = tokenize("a.b = 3, c <> 'x' <= >=").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("a".into()),
                Token::Dot,
                Token::Ident("b".into()),
                Token::Eq,
                Token::Int(3),
                Token::Comma,
                Token::Ident("c".into()),
                Token::Neq,
                Token::Str("x".into()),
                Token::Le,
                Token::Ge,
            ]
        );
    }

    #[test]
    fn negative_integers() {
        assert_eq!(tokenize("-12").unwrap(), vec![Token::Int(-12)]);
    }

    #[test]
    fn minus_after_an_identifier_is_not_a_sign() {
        // Regression: `qty-1` used to mis-tokenize as `qty` `Int(-1)`,
        // silently swallowing the operator.
        assert_eq!(
            tokenize("qty-1").unwrap(),
            vec![Token::Ident("qty".into()), Token::Minus, Token::Int(1),]
        );
        // After a binary minus a sign is a sign again.
        assert_eq!(
            tokenize("qty - -1").unwrap(),
            vec![Token::Ident("qty".into()), Token::Minus, Token::Int(-1),]
        );
        // A parenthesized negative literal stays a literal.
        assert_eq!(
            tokenize("(-1)").unwrap(),
            vec![Token::LParen, Token::Int(-1), Token::RParen]
        );
        // Value positions keep their signs: comparisons, VALUES rows.
        assert_eq!(
            tokenize("qty = -3").unwrap(),
            vec![Token::Ident("qty".into()), Token::Eq, Token::Int(-3)]
        );
        assert_eq!(
            tokenize("(-1, -2)").unwrap(),
            vec![
                Token::LParen,
                Token::Int(-1),
                Token::Comma,
                Token::Int(-2),
                Token::RParen,
            ]
        );
        // Literal-literal adjacency no longer merges: `(1 -1)` is a
        // subtraction, not a two-element row.
        assert_eq!(
            tokenize("(1 -1)").unwrap(),
            vec![
                Token::LParen,
                Token::Int(1),
                Token::Minus,
                Token::Int(1),
                Token::RParen,
            ]
        );
        // A bare minus with no digit after it is an operator token even
        // in sign position; the parser rejects it downstream.
        assert_eq!(
            tokenize("- x").unwrap(),
            vec![Token::Minus, Token::Ident("x".into())]
        );
    }

    #[test]
    fn errors_carry_position() {
        let err = tokenize("a ; b").unwrap_err();
        assert_eq!(err.position, 2);
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn positions_name_token_starts_plus_end_sentinel() {
        let input = "SELECT a.b <> 'xy'";
        let (tokens, positions) = tokenize_with_positions(input).unwrap();
        assert_eq!(tokens.len() + 1, positions.len());
        // SELECT @0, a @7, . @8, b @9, <> @11, 'xy' @14, sentinel @18.
        assert_eq!(positions, vec![0, 7, 8, 9, 11, 14, input.len()]);
        assert_eq!(tokenize(input).unwrap(), tokens);
    }

    #[test]
    fn count_star() {
        let tokens = tokenize("SELECT COUNT(*)").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Keyword(Keyword::Select),
                Token::Keyword(Keyword::Count),
                Token::LParen,
                Token::Star,
                Token::RParen,
            ]
        );
    }
}
