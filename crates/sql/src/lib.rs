//! # balg-sql — a SQL frontend with honest bag semantics
//!
//! SQL engines implement *bag* semantics — the paper's opening motivation.
//! This crate parses a SQL subset (SELECT \[DISTINCT\] … FROM … WHERE
//! conjunctive comparisons; UNION/EXCEPT/INTERSECT with and without ALL;
//! scalar COUNT/SUM/AVG) and compiles it to BALG expressions evaluated by
//! `balg-core`. Duplicates behave exactly as in SQL because the target
//! algebra is a bag algebra; `DISTINCT` is the paper's `ε`; `SUM`/`AVG`
//! are the Section 3 aggregate constructions over the integer-bag
//! encoding.
//!
//! ```
//! use balg_sql::prelude::*;
//!
//! let catalog = Catalog::new().with_table("t", &[("name", false), ("qty", true)]);
//! let db = database_from_rows(&catalog, &[(
//!     "t",
//!     vec![
//!         vec![SqlValue::Str("x".into()), SqlValue::Int(2)],
//!         vec![SqlValue::Str("x".into()), SqlValue::Int(2)],
//!     ],
//! )]).unwrap();
//! let result = run("SELECT SUM(qty) FROM t", &catalog, &db).unwrap();
//! assert_eq!(result.scalar(), Some(4)); // the duplicate row counts!
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod catalog;
pub mod compile;
pub mod lexer;
pub mod parser;
pub mod render;
pub mod stmt;

/// Commonly used items, re-exported.
pub mod prelude {
    pub use crate::ast::{
        Aggregate, ColumnRef, CompareOp, Comparison, Operand, Projection, Query, SelectCore,
        TableRef,
    };
    pub use crate::catalog::{
        decode_value, encode_value, load_table, Catalog, Column, LoadError, SqlValue, Table,
    };
    pub use crate::compile::{
        compile_query, database_from_rows, decode_result, run, run_optimized, run_query,
        CompileError, CompiledQuery, QueryResult, SqlError,
    };
    pub use crate::lexer::{tokenize, tokenize_with_positions, Keyword, LexError, Token};
    pub use crate::parser::{parse, ParseError};
    pub use crate::render::render;
    pub use crate::stmt::{parse_statement, Response, SqlRuntime, Statement};
}

pub use prelude::*;
