//! Recursive-descent parser for the SQL-bag subset.

use std::fmt;

use crate::ast::{
    Aggregate, ColumnRef, CompareOp, Comparison, Operand, Projection, Query, SelectCore, TableRef,
};
use crate::lexer::{tokenize_with_positions, Keyword, LexError, Token};

/// A parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the statement text.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            at: e.position,
            message: e.message,
        }
    }
}

/// Parse a query string.
pub fn parse(input: &str) -> Result<Query, ParseError> {
    let (tokens, positions) = tokenize_with_positions(input)?;
    parse_query_from(tokens, positions, 0)
}

/// Parse a query from an already-lexed token stream starting at `start`
/// (the statement parser uses this after consuming a statement prefix
/// such as `CREATE VIEW name AS`). `positions` is the byte-offset table
/// from [`tokenize_with_positions`]. The query must consume every
/// remaining token.
pub(crate) fn parse_query_from(
    tokens: Vec<Token>,
    positions: Vec<usize>,
    start: usize,
) -> Result<Query, ParseError> {
    let mut parser = Parser {
        tokens,
        positions,
        pos: start,
    };
    let query = parser.query()?;
    parser.expect_end()?;
    Ok(query)
}

impl Parser {
    /// Require that every token has been consumed.
    pub(crate) fn expect_end(&self) -> Result<(), ParseError> {
        if self.pos != self.tokens.len() {
            return Err(self.error("trailing tokens"));
        }
        Ok(())
    }
}

/// The token cursor, shared with the statement parser in
/// [`crate::stmt`] (which consumes statement prefixes before handing the
/// tail to [`Parser::query`] via [`parse_query_from`]).
pub(crate) struct Parser {
    pub(crate) tokens: Vec<Token>,
    /// Byte offset of each token, plus one end-of-input sentinel (see
    /// [`tokenize_with_positions`]).
    pub(crate) positions: Vec<usize>,
    pub(crate) pos: usize,
}

impl Parser {
    pub(crate) fn error(&self, message: &str) -> ParseError {
        ParseError {
            at: self
                .positions
                .get(self.pos)
                .or_else(|| self.positions.last())
                .copied()
                .unwrap_or(0),
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let token = self.tokens.get(self.pos).cloned();
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    pub(crate) fn eat(&mut self, expected: &Token) -> bool {
        if self.peek() == Some(expected) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, expected: &Token) -> Result<(), ParseError> {
        if self.eat(expected) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {expected:?}, found {:?}", self.peek())))
        }
    }

    pub(crate) fn eat_keyword(&mut self, kw: Keyword) -> bool {
        self.eat(&Token::Keyword(kw))
    }

    pub(crate) fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Ident(name)) => Ok(name),
            other => Err(self.error(&format!("expected identifier, found {other:?}"))),
        }
    }

    // query := select_core (set_op query_core)*
    fn query(&mut self) -> Result<Query, ParseError> {
        let mut left = self.query_atom()?;
        loop {
            let make: fn(Box<Query>, Box<Query>) -> Query = if self.eat_keyword(Keyword::Union) {
                if self.eat_keyword(Keyword::All) {
                    Query::UnionAll
                } else {
                    Query::Union
                }
            } else if self.eat_keyword(Keyword::Except) {
                if self.eat_keyword(Keyword::All) {
                    Query::ExceptAll
                } else {
                    Query::Except
                }
            } else if self.eat_keyword(Keyword::Intersect) {
                if self.eat_keyword(Keyword::All) {
                    Query::IntersectAll
                } else {
                    Query::Intersect
                }
            } else {
                break;
            };
            let right = self.query_atom()?;
            left = make(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn query_atom(&mut self) -> Result<Query, ParseError> {
        if self.eat(&Token::LParen) {
            let inner = self.query()?;
            self.expect(&Token::RParen)?;
            Ok(inner)
        } else {
            Ok(Query::Select(self.select_core()?))
        }
    }

    fn select_core(&mut self) -> Result<SelectCore, ParseError> {
        if !self.eat_keyword(Keyword::Select) {
            return Err(self.error("expected SELECT"));
        }
        let distinct = self.eat_keyword(Keyword::Distinct);
        let projection = self.projection()?;
        if !self.eat_keyword(Keyword::From) {
            return Err(self.error("expected FROM"));
        }
        let mut from = vec![self.table_ref()?];
        while self.eat(&Token::Comma) {
            from.push(self.table_ref()?);
        }
        let mut predicates = Vec::new();
        if self.eat_keyword(Keyword::Where) {
            predicates.push(self.comparison()?);
            while self.eat_keyword(Keyword::And) {
                predicates.push(self.comparison()?);
            }
        }
        let mut group_by = Vec::new();
        if self.eat_keyword(Keyword::Group) {
            if !self.eat_keyword(Keyword::By) {
                return Err(self.error("expected BY after GROUP"));
            }
            group_by.push(self.column_ref()?);
            while self.eat(&Token::Comma) {
                group_by.push(self.column_ref()?);
            }
        }
        Ok(SelectCore {
            distinct,
            projection,
            from,
            predicates,
            group_by,
        })
    }

    fn projection(&mut self) -> Result<Projection, ParseError> {
        if self.eat(&Token::Star) {
            return Ok(Projection::Star);
        }
        if let Some(agg) = self.try_aggregate()? {
            return Ok(Projection::Aggregate(agg));
        }
        let mut columns = vec![self.column_ref()?];
        while self.eat(&Token::Comma) {
            // A trailing aggregate turns the projection into a grouped
            // aggregate (validated against GROUP BY at compile time).
            if let Some(agg) = self.try_aggregate()? {
                return Ok(Projection::GroupedAggregate(columns, agg));
            }
            columns.push(self.column_ref()?);
        }
        Ok(Projection::Columns(columns))
    }

    /// Parse an aggregate call if one is next.
    fn try_aggregate(&mut self) -> Result<Option<Aggregate>, ParseError> {
        if self.eat_keyword(Keyword::Count) {
            self.expect(&Token::LParen)?;
            let agg = if self.eat(&Token::Star) {
                Aggregate::CountStar
            } else {
                if !self.eat_keyword(Keyword::Distinct) {
                    return Err(self.error("COUNT supports COUNT(*) and COUNT(DISTINCT col)"));
                }
                Aggregate::CountDistinct(self.column_ref()?)
            };
            self.expect(&Token::RParen)?;
            return Ok(Some(agg));
        }
        if self.eat_keyword(Keyword::Sum) {
            self.expect(&Token::LParen)?;
            let col = self.column_ref()?;
            self.expect(&Token::RParen)?;
            return Ok(Some(Aggregate::Sum(col)));
        }
        if self.eat_keyword(Keyword::Avg) {
            self.expect(&Token::LParen)?;
            let col = self.column_ref()?;
            self.expect(&Token::RParen)?;
            return Ok(Some(Aggregate::Avg(col)));
        }
        Ok(None)
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let table = self.ident()?;
        let alias = if self.eat_keyword(Keyword::As) {
            self.ident()?
        } else if let Some(Token::Ident(_)) = self.peek() {
            self.ident()?
        } else {
            table.clone()
        };
        Ok(TableRef { table, alias })
    }

    fn column_ref(&mut self) -> Result<ColumnRef, ParseError> {
        let first = self.ident()?;
        if self.eat(&Token::Dot) {
            let column = self.ident()?;
            Ok(ColumnRef {
                qualifier: Some(first),
                column,
            })
        } else {
            Ok(ColumnRef {
                qualifier: None,
                column: first,
            })
        }
    }

    fn comparison(&mut self) -> Result<Comparison, ParseError> {
        let left = self.operand()?;
        let op = match self.bump() {
            Some(Token::Eq) => CompareOp::Eq,
            Some(Token::Neq) => CompareOp::Neq,
            Some(Token::Lt) => CompareOp::Lt,
            Some(Token::Le) => CompareOp::Le,
            Some(Token::Gt) => CompareOp::Gt,
            Some(Token::Ge) => CompareOp::Ge,
            other => return Err(self.error(&format!("expected comparison, found {other:?}"))),
        };
        let right = self.operand()?;
        Ok(Comparison { left, op, right })
    }

    fn operand(&mut self) -> Result<Operand, ParseError> {
        match self.peek() {
            Some(Token::Int(value)) => {
                let v = *value;
                self.pos += 1;
                Ok(Operand::Int(v))
            }
            Some(Token::Str(text)) => {
                let s = text.clone();
                self.pos += 1;
                Ok(Operand::Str(s))
            }
            _ => Ok(Operand::Column(self.column_ref()?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let q = parse("SELECT a, t.b FROM t WHERE a = 3 AND t.b <> 'x'").unwrap();
        let Query::Select(core) = q else {
            panic!("expected select")
        };
        assert!(!core.distinct);
        assert_eq!(core.from.len(), 1);
        assert_eq!(core.predicates.len(), 2);
        match &core.projection {
            Projection::Columns(cols) => {
                assert_eq!(cols[0], ColumnRef::bare("a"));
                assert_eq!(cols[1], ColumnRef::qualified("t", "b"));
            }
            other => panic!("unexpected projection {other:?}"),
        }
    }

    #[test]
    fn joins_and_aliases() {
        let q = parse("SELECT x.a FROM t AS x, t y WHERE x.a = y.a").unwrap();
        let Query::Select(core) = q else {
            panic!("expected select")
        };
        assert_eq!(core.from[0].alias, "x");
        assert_eq!(core.from[1].alias, "y");
    }

    #[test]
    fn distinct_and_star() {
        let q = parse("SELECT DISTINCT * FROM t").unwrap();
        let Query::Select(core) = q else {
            panic!("expected select")
        };
        assert!(core.distinct);
        assert_eq!(core.projection, Projection::Star);
    }

    #[test]
    fn set_operations_and_parens() {
        let q = parse("(SELECT * FROM r UNION ALL SELECT * FROM s) EXCEPT ALL SELECT * FROM t")
            .unwrap();
        match q {
            Query::ExceptAll(left, _) => {
                assert!(matches!(*left, Query::UnionAll(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn aggregates() {
        assert!(matches!(
            parse("SELECT COUNT(*) FROM t").unwrap(),
            Query::Select(SelectCore {
                projection: Projection::Aggregate(Aggregate::CountStar),
                ..
            })
        ));
        assert!(matches!(
            parse("SELECT COUNT(DISTINCT a) FROM t").unwrap(),
            Query::Select(SelectCore {
                projection: Projection::Aggregate(Aggregate::CountDistinct(_)),
                ..
            })
        ));
        assert!(matches!(
            parse("SELECT SUM(qty) FROM t").unwrap(),
            Query::Select(SelectCore {
                projection: Projection::Aggregate(Aggregate::Sum(_)),
                ..
            })
        ));
        assert!(matches!(
            parse("SELECT AVG(qty) FROM t").unwrap(),
            Query::Select(SelectCore {
                projection: Projection::Aggregate(Aggregate::Avg(_)),
                ..
            })
        ));
    }

    #[test]
    fn errors() {
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t )").is_err()); // trailing token
        assert!(parse("SELECT COUNT(a) FROM t").is_err()); // plain COUNT(col) unsupported
    }

    #[test]
    fn errors_carry_byte_offsets() {
        // The stray ) sits at byte 16 of the statement.
        let err = parse("SELECT * FROM t )").unwrap_err();
        assert_eq!(err.at, 16);
        // An error at end-of-input points one past the last byte.
        let err = parse("SELECT * FROM").unwrap_err();
        assert_eq!(err.at, 13);
        assert!(err.to_string().starts_with("parse error at byte 13"));
        // Lex errors keep the lexer's byte position.
        let err = parse("SELECT ; FROM t").unwrap_err();
        assert_eq!(err.at, 7);
    }
}
