//! Rendering queries back to SQL text.
//!
//! `render(parse(q))` is the identity on normalized queries, and
//! `parse(render(ast)) == ast` for every well-formed AST — the round-trip
//! property checked by `tests/` with generated ASTs. Useful for logging
//! optimized/rewritten queries and for the REPL.

use std::fmt;

use crate::ast::{
    Aggregate, CompareOp, Comparison, Operand, Projection, Query, SelectCore, TableRef,
};

/// Render a query as SQL text (parseable by [`crate::parser::parse`]).
pub fn render(query: &Query) -> String {
    query.to_string()
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Select(core) => write!(f, "{core}"),
            Query::UnionAll(a, b) => write!(f, "({a}) UNION ALL ({b})"),
            Query::Union(a, b) => write!(f, "({a}) UNION ({b})"),
            Query::ExceptAll(a, b) => write!(f, "({a}) EXCEPT ALL ({b})"),
            Query::Except(a, b) => write!(f, "({a}) EXCEPT ({b})"),
            Query::IntersectAll(a, b) => write!(f, "({a}) INTERSECT ALL ({b})"),
            Query::Intersect(a, b) => write!(f, "({a}) INTERSECT ({b})"),
        }
    }
}

impl fmt::Display for SelectCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        write!(f, "{}", self.projection)?;
        f.write_str(" FROM ")?;
        for (i, table) in self.from.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{table}")?;
        }
        if !self.predicates.is_empty() {
            f.write_str(" WHERE ")?;
            for (i, predicate) in self.predicates.iter().enumerate() {
                if i > 0 {
                    f.write_str(" AND ")?;
                }
                write!(f, "{predicate}")?;
            }
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            for (i, column) in self.group_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{column}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Projection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Projection::Star => f.write_str("*"),
            Projection::Columns(columns) => {
                for (i, column) in columns.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{column}")?;
                }
                Ok(())
            }
            Projection::Aggregate(aggregate) => write!(f, "{aggregate}"),
            Projection::GroupedAggregate(columns, aggregate) => {
                for column in columns {
                    write!(f, "{column}, ")?;
                }
                write!(f, "{aggregate}")
            }
        }
    }
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Aggregate::CountStar => f.write_str("COUNT(*)"),
            Aggregate::CountDistinct(column) => write!(f, "COUNT(DISTINCT {column})"),
            Aggregate::Sum(column) => write!(f, "SUM({column})"),
            Aggregate::Avg(column) => write!(f, "AVG({column})"),
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.alias == self.table {
            f.write_str(&self.table)
        } else {
            write!(f, "{} AS {}", self.table, self.alias)
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CompareOp::Eq => "=",
            CompareOp::Neq => "<>",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        })
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Column(column) => write!(f, "{column}"),
            Operand::Int(value) => write!(f, "{value}"),
            Operand::Str(text) => write!(f, "'{text}'"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(sql: &str) {
        let ast = parse(sql).unwrap();
        let rendered = render(&ast);
        let reparsed = parse(&rendered)
            .unwrap_or_else(|e| panic!("rendered SQL failed to parse: {rendered}: {e}"));
        assert_eq!(ast, reparsed, "roundtrip changed the AST: {rendered}");
    }

    #[test]
    fn roundtrip_basics() {
        roundtrip("SELECT * FROM t");
        roundtrip("SELECT DISTINCT a, t.b FROM t WHERE a = 3 AND b <> 'x'");
        roundtrip("SELECT x.a FROM t AS x, t AS y WHERE x.a = y.a");
        roundtrip("SELECT COUNT(*) FROM t");
        roundtrip("SELECT COUNT(DISTINCT a) FROM t");
        roundtrip("SELECT customer, SUM(qty) FROM orders GROUP BY customer");
        roundtrip("SELECT a, b, AVG(c) FROM t GROUP BY a, b");
    }

    #[test]
    fn roundtrip_set_operations() {
        roundtrip("SELECT * FROM r UNION ALL SELECT * FROM s");
        roundtrip("(SELECT * FROM r UNION SELECT * FROM s) EXCEPT ALL SELECT * FROM t");
        roundtrip("SELECT * FROM r INTERSECT SELECT * FROM s");
    }

    #[test]
    fn rendering_is_canonical_sql() {
        let ast = parse("select   a from   t  where a >= 2").unwrap();
        assert_eq!(render(&ast), "SELECT a FROM t WHERE a >= 2");
    }
}
