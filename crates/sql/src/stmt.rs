//! SQL statements over the incremental view runtime: `CREATE VIEW`,
//! `INSERT INTO … VALUES`, and `DELETE FROM … VALUES`.
//!
//! Views compile through the ordinary SQL→BALG pipeline and register on a
//! [`balg_incremental::ViewRuntime`], so every update statement is turned
//! into a ℤ-bag delta and maintained views answer in time proportional to
//! the change. `DELETE … VALUES (row), …` removes one occurrence per
//! listed row (bag semantics; deleting a row that isn't there is an
//! error, not a no-op) — the honest delta-form counterpart of
//! `INSERT … VALUES`.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use balg_core::analyze;
use balg_core::eval::{Evaluator, Limits};
use balg_core::expr::Expr;
use balg_core::types::Type;
use balg_core::value::Value;
use balg_incremental::{AnyRuntime, DurableError, DurableRuntime, UpdateBatch, ViewRuntime};

use crate::ast::Query;
use crate::catalog::{encode_value, Catalog, Column, SqlValue, Table};
use crate::compile::{compile_query, decode_result, QueryResult, SqlError};
use crate::lexer::{tokenize_with_positions, Keyword, Token};
use crate::parser::{parse_query_from, ParseError, Parser};

/// One SQL statement: a query, or a view/update statement executed
/// against a [`SqlRuntime`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Statement {
    /// A plain query (evaluated one-shot).
    Query(Query),
    /// `CREATE VIEW name AS query` — register a maintained view.
    CreateView {
        /// The view name.
        name: String,
        /// The defining query.
        query: Query,
    },
    /// `CREATE VIEW name AS BALG expr` — register a maintained view
    /// defined directly in the BALG ASCII syntax of
    /// [`balg_core::parse`]. Free variables must be declared tables; the
    /// static analyzer gates registration (shape errors and
    /// non-polynomial cost classes are rejected up front).
    CreateBalgView {
        /// The view name.
        name: String,
        /// The parsed defining expression.
        expr: Expr,
        /// Byte offset of the expression within the statement (analyzer
        /// diagnostics point here).
        at: usize,
    },
    /// `INSERT INTO table VALUES (…), …` — one occurrence per row.
    Insert {
        /// The target table.
        table: String,
        /// The literal rows.
        rows: Vec<Vec<SqlValue>>,
    },
    /// `DELETE FROM table VALUES (…), …` — remove one occurrence per row.
    Delete {
        /// The target table.
        table: String,
        /// The literal rows.
        rows: Vec<Vec<SqlValue>>,
    },
    /// `CHECKPOINT` — snapshot the durable runtime and truncate its WAL.
    Checkpoint,
}

/// `KEYWORD` or a statement-specific error message.
fn expect_keyword(p: &mut Parser, kw: Keyword, what: &str) -> Result<(), ParseError> {
    if p.eat_keyword(kw) {
        Ok(())
    } else {
        Err(p.error(what))
    }
}

/// `( literal, … ) [, ( … )]*` — the VALUES tail of INSERT/DELETE; must
/// consume every remaining token.
fn rows(p: &mut Parser) -> Result<Vec<Vec<SqlValue>>, ParseError> {
    let mut rows = Vec::new();
    loop {
        if !p.eat(&Token::LParen) {
            return Err(p.error("expected ( before a VALUES row"));
        }
        let mut row = Vec::new();
        loop {
            match p.tokens.get(p.pos) {
                Some(Token::Int(v)) => {
                    row.push(SqlValue::Int(*v));
                    p.pos += 1;
                }
                Some(Token::Str(s)) => {
                    row.push(SqlValue::Str(s.clone()));
                    p.pos += 1;
                }
                other => return Err(p.error(&format!("expected a literal, found {other:?}"))),
            }
            if !p.eat(&Token::Comma) {
                break;
            }
        }
        if !p.eat(&Token::RParen) {
            return Err(p.error("expected ) after a VALUES row"));
        }
        rows.push(row);
        if !p.eat(&Token::Comma) {
            break;
        }
    }
    p.expect_end()?;
    Ok(rows)
}

/// Scan the raw `CREATE VIEW name AS BALG ` prefix (case-insensitive,
/// whitespace-separated words) **without** SQL tokenization — the BALG
/// tail uses `{`, `[` and other characters the SQL lexer rejects.
/// Returns the view name and the byte offset of the expression tail, or
/// `None` when the input is not that statement form (in particular,
/// plain `CREATE VIEW … AS SELECT …` falls through to the SQL path).
fn balg_view_prefix(input: &str) -> Option<(&str, usize)> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let mut words: Vec<(usize, usize)> = Vec::with_capacity(5);
    for _ in 0..5 {
        while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
            pos += 1;
        }
        let start = pos;
        while pos < bytes.len() && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_') {
            pos += 1;
        }
        if start == pos {
            return None;
        }
        words.push((start, pos));
    }
    let word = |i: usize| &input[words[i].0..words[i].1];
    let is = |i: usize, kw: &str| word(i).eq_ignore_ascii_case(kw);
    if !(is(0, "CREATE") && is(1, "VIEW") && is(3, "AS") && is(4, "BALG")) {
        return None;
    }
    while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
        pos += 1;
    }
    Some((word(2), pos))
}

/// Parse one statement. Anything that does not start with `CREATE`,
/// `INSERT` or `DELETE` parses as a plain query.
pub fn parse_statement(input: &str) -> Result<Statement, ParseError> {
    // The BALG view form is recognized on the raw text, before SQL
    // tokenization (its expression syntax is not SQL-lexable).
    if let Some((name, at)) = balg_view_prefix(input) {
        let expr = balg_core::parse::parse_expr(&input[at..]).map_err(|e| ParseError {
            at: at + e.position,
            message: e.message,
        })?;
        return Ok(Statement::CreateBalgView {
            name: name.to_owned(),
            expr,
            at,
        });
    }
    let (tokens, positions) = tokenize_with_positions(input)?;
    match tokens.first() {
        Some(Token::Keyword(Keyword::Create)) => {
            let mut p = Parser {
                tokens,
                positions,
                pos: 1,
            };
            expect_keyword(&mut p, Keyword::View, "expected VIEW after CREATE")?;
            let name = p.ident()?;
            expect_keyword(&mut p, Keyword::As, "expected AS after the view name")?;
            let query = parse_query_from(p.tokens, p.positions, p.pos)?;
            Ok(Statement::CreateView { name, query })
        }
        Some(Token::Keyword(Keyword::Insert)) => {
            let mut p = Parser {
                tokens,
                positions,
                pos: 1,
            };
            expect_keyword(&mut p, Keyword::Into, "expected INTO after INSERT")?;
            let table = p.ident()?;
            expect_keyword(&mut p, Keyword::Values, "expected VALUES")?;
            let rows = rows(&mut p)?;
            Ok(Statement::Insert { table, rows })
        }
        Some(Token::Keyword(Keyword::Delete)) => {
            let mut p = Parser {
                tokens,
                positions,
                pos: 1,
            };
            expect_keyword(&mut p, Keyword::From, "expected FROM after DELETE")?;
            let table = p.ident()?;
            expect_keyword(
                &mut p,
                Keyword::Values,
                "expected VALUES (delete-by-row form)",
            )?;
            let rows = rows(&mut p)?;
            Ok(Statement::Delete { table, rows })
        }
        Some(Token::Keyword(Keyword::Checkpoint)) => {
            let p = Parser {
                tokens,
                positions,
                pos: 1,
            };
            p.expect_end()?;
            Ok(Statement::Checkpoint)
        }
        _ => Ok(Statement::Query(parse_query_from(tokens, positions, 0)?)),
    }
}

/// The outcome of one executed statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Response {
    /// Decoded rows of a one-shot query.
    Rows(QueryResult),
    /// A view was registered; its initial contents are included.
    ViewCreated {
        /// The view name.
        name: String,
        /// The initial decoded contents.
        rows: QueryResult,
    },
    /// An update was applied and all dependent views maintained.
    Applied {
        /// The updated table.
        table: String,
        /// Rows inserted (counting duplicates).
        inserted: u64,
        /// Rows deleted (counting duplicates).
        deleted: u64,
    },
    /// A `CHECKPOINT` completed: the snapshot covers everything up to
    /// `lsn` and the WAL was truncated.
    Checkpointed {
        /// The snapshot's log sequence number.
        lsn: u64,
    },
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Rows(result) => {
                for (row, mult) in &result.rows {
                    let rendered: Vec<String> = row.iter().map(SqlValue::to_string).collect();
                    writeln!(f, "{}  x{mult}", rendered.join(" | "))?;
                }
                write!(f, "({} rows)", result.total_rows())
            }
            Response::ViewCreated { name, rows } => {
                write!(f, "view {name} created ({} rows)", rows.total_rows())
            }
            Response::Applied {
                table,
                inserted,
                deleted,
            } => write!(f, "{table}: +{inserted} -{deleted}"),
            Response::Checkpointed { lsn } => {
                write!(f, "checkpoint complete (snapshot lsn {lsn})")
            }
        }
    }
}

/// Map a durability-layer failure into SQL space: logical rejections
/// keep their structure, infrastructure failures become
/// [`SqlError::Durability`].
fn durable_err(error: DurableError) -> SqlError {
    match error {
        DurableError::Update(e) => SqlError::Update(e),
        other => SqlError::Durability(other.to_string()),
    }
}

/// `name:flag,…` — the meta-record encoding of a column list (SQL
/// identifiers cannot contain `,` or `:`, so the format is unambiguous).
fn encode_columns(columns: &[Column]) -> String {
    columns
        .iter()
        .map(|c| format!("{}:{}", c.name, u8::from(c.numeric)))
        .collect::<Vec<_>>()
        .join(",")
}

fn decode_columns(text: &str) -> Result<Vec<Column>, SqlError> {
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(',')
        .map(|part| {
            let (name, flag) = part
                .rsplit_once(':')
                .ok_or_else(|| SqlError::Durability(format!("bad column meta {part:?}")))?;
            Ok(Column {
                name: name.to_owned(),
                numeric: flag == "1",
            })
        })
        .collect()
}

/// The decoded output shape of a BALG view: the inferred type must be a
/// bag of tuples whose fields are atoms (plain columns) or integer bags
/// (numeric columns, the paper's bag-of-units encoding). Columns are
/// named `c1`, `c2`, …. `None` means the type is not row-representable.
fn balg_view_columns(ty: &Type) -> Option<Vec<Column>> {
    let Type::Bag(element) = ty else { return None };
    let Type::Tuple(fields) = element.as_ref() else {
        return None;
    };
    fields
        .iter()
        .enumerate()
        .map(|(i, field)| {
            let numeric = match field {
                Type::Atom => false,
                Type::Bag(inner) if **inner == Type::atom_tuple(1) => true,
                _ => return None,
            };
            Some(Column {
                name: format!("c{}", i + 1),
                numeric,
            })
        })
        .collect()
}

/// A SQL session with maintained views: a catalog, a runtime (in-memory
/// or WAL-backed — see [`SqlRuntime::open`]), and the output shapes of
/// registered views.
pub struct SqlRuntime {
    catalog: Catalog,
    backend: AnyRuntime,
    view_columns: BTreeMap<String, Vec<Column>>,
    /// Partition-count override for this session's evaluators (ad-hoc
    /// queries and view maintenance); `None` inherits the process-wide
    /// default. Every setting computes identical results — only
    /// scheduling differs.
    parallel_chunks: Option<usize>,
}

impl SqlRuntime {
    /// A runtime over a catalog and an initial database. Declared tables
    /// without a bag get an empty one, so update statements against a
    /// fresh table work.
    pub fn new(catalog: Catalog, db: balg_core::schema::Database) -> SqlRuntime {
        Self::with_limits(catalog, db, Limits::default())
    }

    /// As [`SqlRuntime::new`] with explicit evaluation budgets.
    pub fn with_limits(
        catalog: Catalog,
        db: balg_core::schema::Database,
        limits: Limits,
    ) -> SqlRuntime {
        let mut runtime = ViewRuntime::from_database(db, limits);
        for table in catalog.tables() {
            if runtime.database().get(&table.name).is_none() {
                runtime
                    .load_base(&table.name, balg_core::bag::Bag::new())
                    .expect("loading into a runtime without views cannot fail");
            }
        }
        SqlRuntime {
            catalog,
            backend: AnyRuntime::from(runtime),
            view_columns: BTreeMap::new(),
            parallel_chunks: None,
        }
    }

    /// A durable session over `data_dir`: loads the latest snapshot,
    /// replays the WAL, restores the persisted catalog and view output
    /// shapes from meta records, and declares any table in `catalog` the
    /// directory doesn't know yet (so a fresh directory and a reopened
    /// one go through the same call).
    pub fn open(
        catalog: &Catalog,
        data_dir: impl AsRef<Path>,
        limits: Limits,
    ) -> Result<SqlRuntime, SqlError> {
        let durable = DurableRuntime::open(data_dir, limits).map_err(durable_err)?;
        let mut rt = SqlRuntime {
            catalog: Catalog::new(),
            backend: AnyRuntime::from(durable),
            view_columns: BTreeMap::new(),
            parallel_chunks: None,
        };
        // Persisted schema first: it is the authoritative record of what
        // the directory's bags and views mean.
        let mut persisted: Vec<(String, String)> = Vec::new();
        for (key, value) in rt.backend.metas() {
            persisted.push((key.to_owned(), value.to_owned()));
        }
        for (key, value) in persisted {
            if let Some(table) = key.strip_prefix("table:") {
                let columns = decode_columns(&value)?;
                let refs: Vec<(&str, bool)> = columns
                    .iter()
                    .map(|c| (c.name.as_str(), c.numeric))
                    .collect();
                rt.catalog.declare(table, &refs);
            } else if let Some(view) = key.strip_prefix("viewcols:") {
                rt.view_columns
                    .insert(view.to_owned(), decode_columns(&value)?);
            }
        }
        // A replayed runtime may have dropped views (deterministic
        // maintenance failures re-happen on replay); drop their shapes.
        rt.view_columns
            .retain(|name, _| rt.backend.runtime().view(name).is_some());
        // Then the caller's catalog: new tables are declared (and
        // persisted); already-known tables must not be silently reshaped.
        let fresh: Vec<Table> = catalog
            .tables()
            .filter(|t| rt.catalog.get(&t.name).is_none())
            .cloned()
            .collect();
        for table in fresh {
            let refs: Vec<(&str, bool)> = table
                .columns
                .iter()
                .map(|c| (c.name.as_str(), c.numeric))
                .collect();
            rt.declare_table(&table.name, &refs)?;
        }
        Ok(rt)
    }

    /// The table catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The underlying view runtime (current database, stats, checks).
    pub fn runtime(&self) -> &ViewRuntime {
        self.backend.runtime()
    }

    /// The backing runtime — memory or durable (server tuning: group
    /// commit, fsync control, durability counters).
    pub fn backend(&self) -> &AnyRuntime {
        &self.backend
    }

    /// Mutable access to the backing runtime.
    pub fn backend_mut(&mut self) -> &mut AnyRuntime {
        &mut self.backend
    }

    /// Durability counters (`None` for in-memory sessions).
    pub fn durability(&self) -> Option<balg_incremental::Durability> {
        self.backend.durability()
    }

    /// Declare a fresh table after construction (served sessions declare
    /// tables at runtime). The new table starts empty; the name must be
    /// free of both tables and views. Durable sessions persist the
    /// declaration, so a reopened directory speaks the same schema.
    pub fn declare_table(&mut self, name: &str, columns: &[(&str, bool)]) -> Result<(), SqlError> {
        if self.catalog.get(name).is_some() || self.backend.runtime().view(name).is_some() {
            return Err(SqlError::Compile(
                crate::compile::CompileError::TableExists(name.to_owned()),
            ));
        }
        self.catalog.declare(name, columns);
        let encoded = encode_columns(&self.catalog.get(name).expect("just declared").columns);
        self.backend
            .set_meta(&format!("table:{name}"), Some(&encoded))
            .map_err(durable_err)?;
        if self.backend.runtime().database().get(name).is_none() {
            self.backend
                .load_base(name, balg_core::bag::Bag::new())
                .map_err(durable_err)?;
        }
        Ok(())
    }

    /// The cached output shape of a registered view (`None` for unknown
    /// or dropped views).
    pub fn view_output(&self, name: &str) -> Option<&[Column]> {
        self.view_columns.get(name).map(Vec::as_slice)
    }

    /// Bound the runtime's per-key index cache (LRU, minimum 1) — the
    /// lever a server raises so 1k concurrent sessions don't thrash the
    /// hot join indexes.
    pub fn set_index_capacity(&mut self, capacity: usize) {
        self.backend.set_index_capacity(capacity);
    }

    /// Enable or disable partitioned parallel execution for this
    /// session's evaluators — ad-hoc queries and view maintenance alike.
    /// Enabling adopts the process-wide default chunk count
    /// ([`balg_core::pool::default_parallelism`]); disabling pins every
    /// operator to the serial paths. Both settings compute identical
    /// results, errors, and step charges.
    pub fn set_parallel(&mut self, enabled: bool) {
        let chunks = if enabled {
            balg_core::pool::default_parallelism()
        } else {
            1
        };
        self.set_parallel_threads(chunks);
    }

    /// Pin this session's partition count directly (values `<= 1`
    /// disable parallel execution).
    pub fn set_parallel_threads(&mut self, n: usize) {
        let n = n.max(1);
        self.parallel_chunks = Some(n);
        self.backend.set_parallel_threads(n);
    }

    /// This session's partition-count override (`None` means the
    /// process-wide default applies).
    pub fn parallel_threads(&self) -> Option<usize> {
        self.parallel_chunks
    }

    /// Parse and execute one statement.
    pub fn execute(&mut self, sql: &str) -> Result<Response, SqlError> {
        match parse_statement(sql).map_err(SqlError::Parse)? {
            Statement::Query(query) => Ok(Response::Rows(self.run_query(&query)?)),
            Statement::CreateView { name, query } => {
                // A view may not take a declared table's name: the name
                // would mean the base rows in FROM but the view rows in
                // view_rows(), silently.
                if self.catalog.get(&name).is_some() {
                    return Err(SqlError::Compile(
                        crate::compile::CompileError::ViewShadowsTable(name),
                    ));
                }
                let compiled = compile_query(&query, &self.catalog).map_err(SqlError::Compile)?;
                // The analyzer certifies what the compiler built: a shape
                // error here means the SQL→BALG translation itself is
                // broken, and the view must not register. No cost gate —
                // compiled aggregates legitimately use the Section 3
                // powerset-guess, bounded at runtime by the evaluator's
                // budgets.
                analyze::analyze(&compiled.expr, &self.catalog.to_schema()).map_err(|e| {
                    SqlError::Analysis {
                        at: 0,
                        message: format!("compiled view failed analysis: {e}"),
                    }
                })?;
                self.register_view(name, compiled.expr, compiled.output)
            }
            Statement::CreateBalgView { name, expr, at } => {
                if self.catalog.get(&name).is_some() {
                    return Err(SqlError::Compile(
                        crate::compile::CompileError::ViewShadowsTable(name),
                    ));
                }
                let output = self.analyze_balg_view(&expr, at)?;
                self.register_view(name, expr, output)
            }
            Statement::Insert { table, rows } => {
                let count = rows.len() as u64;
                self.apply_rows(&table, &rows, false)?;
                Ok(Response::Applied {
                    table,
                    inserted: count,
                    deleted: 0,
                })
            }
            Statement::Delete { table, rows } => {
                let count = rows.len() as u64;
                self.apply_rows(&table, &rows, true)?;
                Ok(Response::Applied {
                    table,
                    inserted: 0,
                    deleted: count,
                })
            }
            Statement::Checkpoint => match self.backend.checkpoint().map_err(durable_err)? {
                Some(durability) => Ok(Response::Checkpointed {
                    lsn: durability.snapshot_lsn,
                }),
                None => Err(SqlError::Durability(
                    "CHECKPOINT requires a durable session (--data-dir)".to_owned(),
                )),
            },
        }
    }

    /// Gate a raw BALG view through the static analyzer: reject type and
    /// shape errors, reject non-polynomial cost classes (the static form
    /// of the evaluator's `TooLarge` budget trip — a view the delta
    /// engine could never afford to maintain), and derive the output row
    /// shape from the inferred type. Diagnostics point at byte `at`, the
    /// start of the expression within the statement.
    fn analyze_balg_view(&self, expr: &Expr, at: usize) -> Result<Vec<Column>, SqlError> {
        let facts =
            analyze::analyze(expr, &self.catalog.to_schema()).map_err(|e| SqlError::Analysis {
                at,
                message: e.to_string(),
            })?;
        if facts.cost.blowup_risk() {
            return Err(SqlError::Analysis {
                at,
                message: format!(
                    "cost class is {} — the view can outgrow every polynomial bound \
                     (static TooLarge risk), refusing to maintain it",
                    facts.cost
                ),
            });
        }
        balg_view_columns(&facts.ty).ok_or_else(|| SqlError::Analysis {
            at,
            message: format!(
                "view type {} is not a flat row shape (need a bag of tuples over \
                 atoms and integer bags)",
                facts.ty
            ),
        })
    }

    /// Register an analyzed/compiled view expression under `name` and
    /// persist its output shape — shared tail of both `CREATE VIEW`
    /// forms.
    fn register_view(
        &mut self,
        name: String,
        expr: Expr,
        output: Vec<Column>,
    ) -> Result<Response, SqlError> {
        self.backend.create_view(&name, expr).map_err(durable_err)?;
        self.backend
            .set_meta(&format!("viewcols:{name}"), Some(&encode_columns(&output)))
            .map_err(durable_err)?;
        self.view_columns.insert(name.clone(), output);
        let rows = self.view_rows(&name)?;
        Ok(Response::ViewCreated { name, rows })
    }

    /// The current decoded contents of a maintained view. The runtime is
    /// the source of truth — a view it dropped (after a failed
    /// maintenance) is unknown here even if its output shape is still
    /// cached.
    pub fn view_rows(&self, name: &str) -> Result<QueryResult, SqlError> {
        let runtime = self.backend.runtime();
        let bag = runtime
            .view(name)
            .ok_or_else(|| SqlError::Update(runtime.missing_view_error(name)))?;
        let columns = self
            .view_columns
            .get(name)
            .ok_or_else(|| SqlError::Update(runtime.missing_view_error(name)))?;
        decode_result(bag, columns.clone())
    }

    /// Names of the registered views (as the runtime sees them).
    pub fn view_names(&self) -> impl Iterator<Item = &str> {
        self.backend.runtime().views().map(|(name, _)| name)
    }

    /// Re-check one view against a full re-evaluation.
    pub fn verify(&self, name: &str) -> Result<bool, SqlError> {
        self.backend
            .runtime()
            .verify(name)
            .map_err(SqlError::Update)
    }

    fn encode_row(table: &Table, row: &[SqlValue]) -> Result<Value, SqlError> {
        if row.len() != table.columns.len() {
            return Err(SqlError::Decode(format!(
                "row arity {} vs table arity {}",
                row.len(),
                table.columns.len()
            )));
        }
        let fields = row
            .iter()
            .zip(&table.columns)
            .map(|(value, column)| {
                encode_value(value, column.numeric).map_err(|e| SqlError::Decode(e.to_string()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Value::Tuple(fields.into()))
    }

    fn apply_rows(
        &mut self,
        table_name: &str,
        rows: &[Vec<SqlValue>],
        delete: bool,
    ) -> Result<(), SqlError> {
        let table = self
            .catalog
            .get(table_name)
            .ok_or_else(|| {
                SqlError::Compile(crate::compile::CompileError::UnknownTable(
                    table_name.to_owned(),
                ))
            })?
            .clone();
        // Accumulate through the builder (amortized O(log n) per row) and
        // merge once — per-row ZBag::insert would make wide INSERT
        // statements quadratic in the row count.
        let mut builder = balg_core::zbag::ZBagBuilder::new();
        let sign = if delete {
            balg_core::zbag::ZInt::neg_one()
        } else {
            balg_core::zbag::ZInt::one()
        };
        for row in rows {
            builder.push(Self::encode_row(&table, row)?, sign.clone());
        }
        let mut batch = UpdateBatch::new();
        batch.merge_delta(table_name, &builder.build());
        let result = self.backend.apply(&batch).map_err(durable_err);
        // The runtime drops views whose maintenance and re-derivation
        // both failed; keep the output-shape cache (and its persisted
        // twin) in sync.
        let dropped: Vec<String> = self
            .view_columns
            .keys()
            .filter(|name| self.backend.runtime().view(name).is_none())
            .cloned()
            .collect();
        for name in dropped {
            self.view_columns.remove(&name);
            let _ = self.backend.set_meta(&format!("viewcols:{name}"), None);
        }
        result
    }

    fn run_query(&self, query: &Query) -> Result<QueryResult, SqlError> {
        let compiled = compile_query(query, &self.catalog).map_err(SqlError::Compile)?;
        let runtime = self.backend.runtime();
        let mut evaluator = Evaluator::new(runtime.database(), runtime.limits().clone());
        if let Some(chunks) = self.parallel_chunks {
            evaluator.set_parallel_threads(chunks);
        }
        let bag = evaluator.eval_bag(&compiled.expr).map_err(SqlError::Eval)?;
        decode_result(&bag, compiled.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::database_from_rows;

    fn setup() -> SqlRuntime {
        let catalog = Catalog::new()
            .with_table("orders", &[("customer", false), ("qty", true)])
            .with_table("vip", &[("customer", false)]);
        let s = |x: &str| SqlValue::Str(x.into());
        let i = SqlValue::Int;
        let db = database_from_rows(
            &catalog,
            &[(
                "orders",
                vec![
                    vec![s("ann"), i(3)],
                    vec![s("bob"), i(5)],
                    vec![s("bob"), i(5)],
                ],
            )],
        )
        .unwrap();
        SqlRuntime::new(catalog, db)
    }

    #[test]
    fn create_view_and_maintain_under_updates() {
        let mut rt = setup();
        let response = rt
            .execute("CREATE VIEW spenders AS SELECT customer FROM orders WHERE qty >= 4")
            .unwrap();
        let Response::ViewCreated { name, rows } = response else {
            panic!("expected ViewCreated");
        };
        assert_eq!(name, "spenders");
        assert_eq!(rows.total_rows(), 2); // bob twice

        rt.execute("INSERT INTO orders VALUES ('cleo', 9), ('ann', 1)")
            .unwrap();
        let rows = rt.view_rows("spenders").unwrap();
        assert_eq!(rows.total_rows(), 3); // + cleo
        assert!(rt.verify("spenders").unwrap());

        rt.execute("DELETE FROM orders VALUES ('bob', 5)").unwrap();
        let rows = rt.view_rows("spenders").unwrap();
        assert_eq!(rows.total_rows(), 2); // one bob occurrence gone
        assert!(rt.verify("spenders").unwrap());
    }

    #[test]
    fn insert_into_fresh_table_and_query() {
        let mut rt = setup();
        rt.execute("INSERT INTO vip VALUES ('ann')").unwrap();
        let Response::Rows(rows) = rt
            .execute("SELECT o.customer FROM orders o, vip v WHERE o.customer = v.customer")
            .unwrap()
        else {
            panic!("expected rows");
        };
        assert_eq!(rows.total_rows(), 1);
    }

    #[test]
    fn aggregate_view_is_maintained_via_fallback() {
        let mut rt = setup();
        rt.execute("CREATE VIEW total AS SELECT SUM(qty) FROM orders")
            .unwrap();
        assert_eq!(rt.view_rows("total").unwrap().scalar(), Some(13));
        rt.execute("INSERT INTO orders VALUES ('dee', 7)").unwrap();
        assert_eq!(rt.view_rows("total").unwrap().scalar(), Some(20));
        assert!(rt.verify("total").unwrap());
        // SUM compiles through MAP/δ — δ is linear, so the chain maintains
        // with at most scalar/linear work plus the β re-derivation.
        assert!(rt.runtime().stats().batches > 0);
    }

    #[test]
    fn balg_view_form_registers_and_maintains() {
        let mut rt = setup();
        let response = rt
            .execute("CREATE VIEW customers AS BALG dedup(project(orders, 1))")
            .unwrap();
        let Response::ViewCreated { name, rows } = response else {
            panic!("expected ViewCreated");
        };
        assert_eq!(name, "customers");
        assert_eq!(rows.total_rows(), 2); // ann, bob (deduped)
        assert_eq!(
            rt.view_output("customers").map(<[Column]>::len),
            Some(1),
            "columns derive from the inferred type"
        );
        // The BALG view is maintained like any other.
        rt.execute("INSERT INTO orders VALUES ('cleo', 9)").unwrap();
        assert_eq!(rt.view_rows("customers").unwrap().total_rows(), 3);
        assert!(rt.verify("customers").unwrap());
        // Numeric columns survive the round trip through the inferred
        // type: projecting the integer-bag column keeps SQL decoding.
        rt.execute("CREATE VIEW quantities AS BALG project(orders, 2)")
            .unwrap();
        let rows = rt.view_rows("quantities").unwrap();
        assert!(rows.columns[0].numeric);
        assert!(rows
            .rows
            .iter()
            .all(|(row, _)| matches!(row[0], SqlValue::Int(_))));
        // Case-insensitive prefix, like every other keyword.
        assert!(matches!(
            parse_statement("create view v as balg dedup(vip)"),
            Ok(Statement::CreateBalgView { .. })
        ));
    }

    #[test]
    fn balg_view_parse_errors_point_into_the_expression() {
        let err = parse_statement("CREATE VIEW v AS BALG frob(orders)").unwrap_err();
        // "frob" is unknown; the reported byte offset lands inside the
        // expression tail, not at the statement start.
        assert!(err.at >= 22, "{err:?}");
        // A BALG view may not shadow a table either.
        let mut rt = setup();
        assert!(matches!(
            rt.execute("CREATE VIEW orders AS BALG dedup(vip)")
                .unwrap_err(),
            SqlError::Compile(crate::compile::CompileError::ViewShadowsTable(_))
        ));
    }

    #[test]
    fn deleting_missing_rows_is_an_error() {
        let mut rt = setup();
        let err = rt
            .execute("DELETE FROM orders VALUES ('nobody', 1)")
            .unwrap_err();
        assert!(matches!(
            err,
            SqlError::Update(balg_incremental::UpdateError::NegativeBase { .. })
        ));
    }

    #[test]
    fn statement_parse_errors() {
        assert!(parse_statement("CREATE orders AS SELECT * FROM orders").is_err());
        assert!(parse_statement("INSERT INTO orders ('x', 1)").is_err());
        assert!(parse_statement("INSERT INTO orders VALUES ('x', 1) garbage").is_err());
        assert!(parse_statement("DELETE FROM orders WHERE qty = 1").is_err());
        // Plain queries still parse as statements.
        assert!(matches!(
            parse_statement("SELECT * FROM orders"),
            Ok(Statement::Query(_))
        ));
    }

    #[test]
    fn view_shadowing_unknown_names() {
        let mut rt = setup();
        assert!(matches!(
            rt.execute("CREATE VIEW v AS SELECT nope FROM orders"),
            Err(SqlError::Compile(_))
        ));
        assert!(matches!(
            rt.execute("INSERT INTO missing VALUES (1)"),
            Err(SqlError::Compile(_))
        ));
        assert!(rt.view_rows("missing").is_err());
        // A view may not take a declared table's name.
        assert!(matches!(
            rt.execute("CREATE VIEW orders AS SELECT customer FROM orders"),
            Err(SqlError::Compile(
                crate::compile::CompileError::ViewShadowsTable(_)
            ))
        ));
        assert!(rt.view_names().next().is_none());
    }

    #[test]
    fn declare_table_at_runtime() {
        let mut rt = setup();
        rt.declare_table("notes", &[("body", false)]).unwrap();
        rt.execute("INSERT INTO notes VALUES ('hi'), ('ho')")
            .unwrap();
        let Response::Rows(rows) = rt.execute("SELECT * FROM notes").unwrap() else {
            panic!("expected rows");
        };
        assert_eq!(rows.total_rows(), 2);
        // Name collisions with existing tables and views are rejected.
        assert!(matches!(
            rt.declare_table("orders", &[("x", false)]),
            Err(SqlError::Compile(
                crate::compile::CompileError::TableExists(_)
            ))
        ));
        rt.execute("CREATE VIEW v AS SELECT customer FROM vip")
            .unwrap();
        assert!(rt.declare_table("v", &[("x", false)]).is_err());
        assert_eq!(rt.view_output("v").map(<[Column]>::len), Some(1));
        assert!(rt.view_output("orders").is_none());
    }

    #[test]
    fn dropped_view_errors_carry_the_cause() {
        let catalog = Catalog::new()
            .with_table("orders", &[("customer", false), ("qty", true)])
            .with_table("vip", &[("customer", false)]);
        let s = |x: &str| SqlValue::Str(x.into());
        let i = SqlValue::Int;
        let db = database_from_rows(
            &catalog,
            &[("orders", vec![vec![s("ann"), i(3)], vec![s("bob"), i(5)]])],
        )
        .unwrap();
        let limits = Limits {
            max_bag_elements: 4,
            ..Limits::default()
        };
        let mut rt = SqlRuntime::with_limits(catalog, db, limits);
        rt.execute("CREATE VIEW pairs AS SELECT o.customer, v.customer FROM orders o, vip v")
            .unwrap();
        // The cross join outgrows max_bag_elements: maintenance fails,
        // re-derivation fails, the runtime drops the view and surfaces
        // the failure — but the base update itself lands.
        let err = rt
            .execute("INSERT INTO vip VALUES ('a'), ('b'), ('c')")
            .unwrap_err();
        assert!(matches!(
            err,
            SqlError::Update(balg_incremental::UpdateError::View { .. })
        ));
        let Response::Rows(rows) = rt.execute("SELECT * FROM vip").unwrap() else {
            panic!("expected rows");
        };
        assert_eq!(rows.total_rows(), 3);
        let err = rt.view_rows("pairs").unwrap_err();
        assert!(matches!(
            err,
            SqlError::Update(balg_incremental::UpdateError::ViewDropped { .. })
        ));
        // A name that never existed still reads as plain UnknownView.
        assert!(matches!(
            rt.view_rows("nope").unwrap_err(),
            SqlError::Update(balg_incremental::UpdateError::UnknownView(_))
        ));
    }

    #[test]
    fn checkpoint_statement_parses_and_needs_durability() {
        assert_eq!(parse_statement("CHECKPOINT"), Ok(Statement::Checkpoint));
        assert_eq!(parse_statement("checkpoint"), Ok(Statement::Checkpoint));
        assert!(parse_statement("CHECKPOINT now").is_err());
        let mut rt = setup();
        assert!(matches!(
            rt.execute("CHECKPOINT"),
            Err(SqlError::Durability(_))
        ));
    }

    fn sql_scratch(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("balg-sql-{tag}-{}", std::process::id()))
    }

    #[test]
    fn durable_session_restores_catalog_views_and_data() {
        let dir = sql_scratch("roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let catalog = Catalog::new().with_table("orders", &[("customer", false), ("qty", true)]);
        {
            let mut rt = SqlRuntime::open(&catalog, &dir, Limits::default()).unwrap();
            rt.execute("INSERT INTO orders VALUES ('ann', 3), ('bob', 5)")
                .unwrap();
            rt.execute("CREATE VIEW spenders AS SELECT customer FROM orders WHERE qty >= 4")
                .unwrap();
            rt.declare_table("notes", &[("body", false)]).unwrap();
            rt.execute("INSERT INTO notes VALUES ('hi')").unwrap();
            let Response::Checkpointed { lsn } = rt.execute("CHECKPOINT").unwrap() else {
                panic!("expected Checkpointed");
            };
            assert!(lsn > 0);
            // Post-checkpoint work lands in the fresh WAL tail.
            rt.execute("INSERT INTO orders VALUES ('cleo', 9)").unwrap();
        }
        // Reopen with an *empty* caller catalog: everything must come
        // back from the directory alone.
        let mut rt = SqlRuntime::open(&Catalog::new(), &dir, Limits::default()).unwrap();
        assert!(rt.catalog().get("orders").is_some());
        assert!(rt.catalog().get("notes").is_some());
        assert_eq!(rt.view_rows("spenders").unwrap().total_rows(), 2); // bob, cleo
        assert_eq!(rt.view_output("spenders").map(<[Column]>::len), Some(1));
        assert!(rt.verify("spenders").unwrap());
        // And the restored schema still accepts updates.
        rt.execute("DELETE FROM orders VALUES ('bob', 5)").unwrap();
        assert_eq!(rt.view_rows("spenders").unwrap().total_rows(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn grouped_view_with_updates() {
        let mut rt = setup();
        rt.execute(
            "CREATE VIEW per_customer AS SELECT customer, SUM(qty) FROM orders GROUP BY customer",
        )
        .unwrap();
        rt.execute("INSERT INTO orders VALUES ('ann', 4)").unwrap();
        rt.execute("DELETE FROM orders VALUES ('bob', 5)").unwrap();
        let rows = rt.view_rows("per_customer").unwrap();
        let find = |name: &str| {
            rows.rows
                .iter()
                .find(|(row, _)| row[0] == SqlValue::Str(name.into()))
                .map(|(row, _)| row[1].clone())
        };
        assert_eq!(find("ann"), Some(SqlValue::Int(7)));
        assert_eq!(find("bob"), Some(SqlValue::Int(5)));
        assert!(rt.verify("per_customer").unwrap());
    }
}
