//! Cross-validation of the game machinery: the heuristic strategies must
//! be consistent with the exact solver on instances small enough to
//! solve, and the Figure 1 invariants must hold at every size we can
//! build.

use balg_core::bag::Bag;
use balg_core::schema::Database;
use balg_core::value::Value;
use balg_games::prelude::*;

#[test]
fn property_one_exactly_up_to_n16() {
    for n in (4..=16).step_by(2) {
        let families = half_families(n);
        assert!(families.verify_property_one(), "property (1) at n={n}");
        assert!(families.all_distinct(), "distinctness at n={n}");
        assert_eq!(families.inn.len(), 1 << (n / 2 - 1));
    }
}

#[test]
fn solver_and_duplicator_agree_on_duplicator_wins() {
    // Wherever the exact solver certifies a duplicator win, the heuristic
    // duplicator must also survive (its candidate set is a subset of the
    // solver's object pool).
    let (g, gp) = star_graphs(4);
    let mut solver = GameSolver::new(&g, &gp, &[2, 4], 1 << 22);
    assert_eq!(solver.solve(1), Verdict::DuplicatorWins);
    for seed in 0..8 {
        let mut spoiler = RandomSpoiler::new(seed, 2);
        let mut duplicator = ConstraintDuplicator::new(seed + 50);
        assert_eq!(
            play(&g, &gp, 1, &mut spoiler, &mut duplicator),
            Outcome::DuplicatorWins,
            "heuristic duplicator lost a certified-win game (seed {seed})"
        );
    }
}

#[test]
fn solver_finds_spoiler_wins_on_distinguishable_pairs() {
    // A graph vs its reverse with an asymmetric edge set: a single tuple
    // pick separates them when no automorphism matches.
    let edge = |a: i64, b: i64| Value::tuple([Value::int(a), Value::int(b)]);
    let chain = Database::new().with("E", Bag::from_values([edge(1, 2), edge(2, 3)]));
    let fork = Database::new().with("E", Bag::from_values([edge(1, 2), edge(1, 3)]));
    let mut solver = GameSolver::new(&chain, &fork, &[], 1 << 22);
    // chain has a 2-path, fork does not: 2 moves suffice for the spoiler
    // (pick both chain edges; their shared middle node cannot be matched).
    assert_eq!(solver.solve(2), Verdict::SpoilerWins);
}

#[test]
fn partial_isomorphism_is_symmetric() {
    let (g, gp) = star_graphs(6);
    let alpha = alpha_node(6);
    let node = flipped_node(6);
    let forward = vec![(alpha.clone(), alpha), (node.clone(), node)];
    let backward: Vec<(Value, Value)> = forward
        .iter()
        .map(|(a, b)| (b.clone(), a.clone()))
        .collect();
    assert_eq!(
        is_partial_isomorphism(&g, &gp, &forward),
        is_partial_isomorphism(&gp, &g, &backward)
    );
}

#[test]
fn degrees_function_matches_manual_count() {
    let (g, _) = star_graphs(8);
    let alpha = alpha_node(8);
    let (din, dout) = degrees(&g, &alpha);
    let edges = g.get("E").unwrap();
    let manual_in = edges
        .iter()
        .filter(|(e, _)| e.as_tuple().unwrap()[1] == alpha)
        .count() as u64;
    let manual_out = edges
        .iter()
        .filter(|(e, _)| e.as_tuple().unwrap()[0] == alpha)
        .count() as u64;
    assert_eq!((din, dout), (manual_in, manual_out));
}

#[test]
fn duplicator_wins_scale_with_n_over_2k() {
    // Lemma 5.4's regime across sizes: n > 2k ⇒ duplicator wins.
    for (n, k) in [(6u32, 2usize), (8, 3), (10, 4)] {
        assert!(n as usize > 2 * k);
        let (g, gp) = star_graphs(n);
        let mut spoiler = FlippedEdgeSpoiler::new(n);
        let mut duplicator = ConstraintDuplicator::new(9);
        assert_eq!(
            play(&g, &gp, k, &mut spoiler, &mut duplicator),
            Outcome::DuplicatorWins,
            "n={n}, k={k}"
        );
    }
}
