//! Concrete spoiler and duplicator strategies.
//!
//! The duplicator implements the Lemma 5.4 proof idea: maintain the atom
//! matching induced by the position and answer each pick with an object
//! whose membership/containment/edge profile is consistent — the
//! availability of such an answer for `n > 2k` is exactly what
//! property (1) of the `In_n`/`Out_n` families guarantees. Spoilers range
//! from random play to the atom-pinning strategy that *does* win once it
//! may pin the whole domain (k ≥ n + 2^{n/2−1} + 2 moves).

use std::collections::{BTreeMap, BTreeSet};

use balg_core::bag::Bag;
use balg_core::schema::Database;
use balg_core::value::{Atom, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::construction::{alpha_node, flipped_node};
use crate::game::{is_partial_isomorphism, Duplicator, Position, Side, Spoiler};

/// All atoms of a database's active domain, as values.
fn domain_atoms(db: &Database) -> Vec<Value> {
    db.active_domain().into_iter().map(Value::Atom).collect()
}

/// All set-valued nodes occurring in the database's relations (fields of
/// relation tuples that are bags), plus bag-typed relation elements.
fn structure_nodes(db: &Database) -> Vec<Value> {
    let mut nodes = BTreeSet::new();
    for (_, rel) in db.iter() {
        for (elem, _) in rel.iter() {
            match elem {
                Value::Tuple(fields) => {
                    for field in fields.iter() {
                        if matches!(field, Value::Bag(_)) {
                            nodes.insert(field.clone());
                        }
                    }
                }
                Value::Bag(_) => {
                    nodes.insert(elem.clone());
                }
                Value::Atom(_) => {}
            }
        }
    }
    nodes.into_iter().collect()
}

/// The atom matching induced by the atom-typed pairs of a position,
/// oriented `from → to`.
fn atom_matching(position: &Position, from: Side) -> BTreeMap<Atom, Atom> {
    let mut matching = BTreeMap::new();
    for (left, right) in position {
        if let (Value::Atom(a), Value::Atom(b)) = (left, right) {
            match from {
                Side::Left => matching.insert(a.clone(), b.clone()),
                Side::Right => matching.insert(b.clone(), a.clone()),
            };
        }
    }
    matching
}

/// The set-typed pairs of a position, oriented (pick side, opposite side).
fn set_pairs(position: &Position, side: Side) -> (Vec<&Bag>, Vec<&Bag>) {
    let mut own = Vec::new();
    let mut opposite = Vec::new();
    for (left, right) in position {
        if let (Value::Bag(l), Value::Bag(r)) = (left, right) {
            match side {
                Side::Left => {
                    own.push(l);
                    opposite.push(r);
                }
                Side::Right => {
                    own.push(r);
                    opposite.push(l);
                }
            }
        }
    }
    (own, opposite)
}

/// The Venn-region signature of an atom w.r.t. an ordered list of chosen
/// sets.
fn signature(atom: &Atom, sets: &[&Bag]) -> Vec<bool> {
    let value = Value::Atom(atom.clone());
    sets.iter().map(|s| s.contains(&value)).collect()
}

/// Per-region counts of a set's atoms, excluding `excluded` atoms.
fn region_counts(
    atoms: impl Iterator<Item = Atom>,
    sets: &[&Bag],
    excluded: &BTreeSet<Atom>,
) -> BTreeMap<Vec<bool>, usize> {
    let mut counts = BTreeMap::new();
    for atom in atoms {
        if !excluded.contains(&atom) {
            *counts.entry(signature(&atom, sets)).or_default() += 1;
        }
    }
    counts
}

/// The (relation, field) slots a value occupies somewhere in a database —
/// the relational profile that edge preservation around `α` depends on.
/// For the Figure 1 graphs this distinguishes In-nodes (first field of
/// `E`), Out-nodes (second field), `α` (both) and non-nodes (neither).
fn occurrence_signature(db: &Database, value: &Value) -> BTreeSet<(String, usize)> {
    let mut signature = BTreeSet::new();
    for (name, rel) in db.iter() {
        for (elem, _) in rel.iter() {
            if let Some(fields) = elem.as_tuple() {
                for (index, field) in fields.iter().enumerate() {
                    if field == value {
                        signature.insert((name.to_string(), index));
                    }
                }
            }
            if elem == value {
                signature.insert((name.to_string(), usize::MAX));
            }
        }
    }
    signature
}

/// How far a candidate answer's region profile is from the pick's: the
/// L1 distance between per-region counts of unmatched atoms. Distance 0
/// means the answer covers exactly as many atoms of each Venn region of
/// the chosen sets as the pick does — the counting invariant behind the
/// Lemma 5.4 strategy.
fn profile_distance(
    candidate: &Bag,
    needs: &BTreeMap<Vec<bool>, usize>,
    opposite_sets: &[&Bag],
    matched_images: &BTreeSet<Atom>,
) -> usize {
    let mut have = region_counts(
        candidate.elements().filter_map(|v| v.as_atom().cloned()),
        opposite_sets,
        matched_images,
    );
    let mut distance = 0;
    for (sig, need) in needs {
        distance += need.abs_diff(have.remove(sig).unwrap_or(0));
    }
    distance + have.values().sum::<usize>()
}

/// The constraint-propagating duplicator.
///
/// Candidate answers are: the opposite structure's atoms (for atom picks);
/// its structure nodes plus matching-consistent synthesized sets (for set
/// picks); synthesized tuples (for tuple picks). Every candidate is
/// validated with the full partial-isomorphism check before being played.
pub struct ConstraintDuplicator {
    rng: StdRng,
    /// How many random fillings to try for synthesized sets.
    pub fill_attempts: usize,
}

impl ConstraintDuplicator {
    /// A duplicator with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        ConstraintDuplicator {
            rng: StdRng::seed_from_u64(seed),
            fill_attempts: 64,
        }
    }

    fn candidates(
        &mut self,
        own: &Database,
        opposite: &Database,
        position: &Position,
        side: Side,
        pick: &Value,
    ) -> Vec<Value> {
        match pick {
            Value::Atom(_) => domain_atoms(opposite),
            Value::Bag(picked) => {
                // Mirror candidate first: the two structures of Lemma 5.4
                // share their domain and node set, so the pick itself is
                // often a valid answer.
                let mut out = vec![pick.clone()];
                let matching = atom_matching(position, side);
                let picked_atoms: BTreeSet<Atom> = picked
                    .elements()
                    .filter_map(|v| v.as_atom().cloned())
                    .collect();
                let required: BTreeSet<Atom> = picked_atoms
                    .iter()
                    .filter_map(|a| matching.get(a).cloned())
                    .collect();
                let forbidden: BTreeSet<Atom> = matching
                    .iter()
                    .filter(|(a, _)| !picked_atoms.contains(*a))
                    .map(|(_, b)| b.clone())
                    .collect();
                // Every matched image is either required or forbidden.
                let matched_images: BTreeSet<Atom> = required.union(&forbidden).cloned().collect();

                // The pick's per-region profile w.r.t. the chosen set
                // pairs. Answers should reproduce it exactly: covering a
                // Venn region (including the region of still-free atoms)
                // more or less than the pick does hands the spoiler an
                // atom pick the duplicator cannot answer later.
                let (own_sets, opposite_sets) = set_pairs(position, side);
                let matched_atoms: BTreeSet<Atom> = matching.keys().cloned().collect();
                let needs = region_counts(picked_atoms.iter().cloned(), &own_sets, &matched_atoms);

                // Same-cardinality structure nodes, profile-exact first:
                // answering an m-subset with a differently-sized node
                // (e.g. the full domain) passes the immediate check but
                // loses the game one move later.
                let picked_size = picked.distinct_count();
                let (same_size, other_size): (Vec<Value>, Vec<Value>) =
                    structure_nodes(opposite).into_iter().partition(|node| {
                        node.as_bag()
                            .is_some_and(|b| b.distinct_count() == picked_size)
                    });
                out.extend(same_size);

                // Profile-exact synthesis: fill each Venn region of the
                // opposite structure with exactly as many fresh atoms as
                // the pick takes from the corresponding region.
                let pools: BTreeMap<Vec<bool>, Vec<Atom>> = {
                    let mut pools: BTreeMap<Vec<bool>, Vec<Atom>> = BTreeMap::new();
                    for atom in opposite.active_domain() {
                        if !matched_images.contains(&atom) {
                            pools
                                .entry(signature(&atom, &opposite_sets))
                                .or_default()
                                .push(atom);
                        }
                    }
                    pools
                };
                let feasible = needs
                    .iter()
                    .all(|(sig, need)| pools.get(sig).is_some_and(|p| p.len() >= *need));
                if feasible {
                    for variant in 0..4 {
                        let mut fill = required.clone();
                        for (sig, need) in &needs {
                            let pool = &pools[sig];
                            if variant == 0 {
                                fill.extend(pool.iter().take(*need).cloned());
                            } else {
                                let mut shuffled = pool.clone();
                                shuffled.shuffle(&mut self.rng);
                                fill.extend(shuffled.into_iter().take(*need));
                            }
                        }
                        out.push(Value::bag(fill.into_iter().map(Value::Atom)));
                    }
                }

                // Random same-size fills that ignore region profiles, as a
                // fallback when no profile-exact answer validates.
                let pool: Vec<Atom> = opposite
                    .active_domain()
                    .into_iter()
                    .filter(|a| !matched_images.contains(a))
                    .collect();
                let need = picked_atoms.len().saturating_sub(required.len());
                for _ in 0..self.fill_attempts {
                    if pool.len() < need {
                        break;
                    }
                    let mut shuffled = pool.clone();
                    shuffled.shuffle(&mut self.rng);
                    let fill: BTreeSet<Atom> = required
                        .iter()
                        .cloned()
                        .chain(shuffled.into_iter().take(need))
                        .collect();
                    out.push(Value::bag(fill.into_iter().map(Value::Atom)));
                }
                // Differently-sized nodes only as a last resort.
                out.extend(other_size);
                // Profile-exact, relationally matching candidates first
                // (stable: mirror, nodes, synthesized, random fills within
                // each class). Even the mirror can be a trap when its
                // region profile deviates — the spoiler then picks an atom
                // from the region the answer over-covered. The relational
                // profile must match too: answering an In-node with an
                // Out-node or a non-node (or vice versa) breaks edge
                // preservation as soon as the spoiler pins α.
                let pick_signature = occurrence_signature(own, pick);
                out.sort_by_cached_key(|candidate| {
                    let distance = candidate.as_bag().map_or(usize::MAX, |b| {
                        profile_distance(b, &needs, &opposite_sets, &matched_images)
                    });
                    let relational_mismatch =
                        occurrence_signature(opposite, candidate) != pick_signature;
                    // A mismatched relational profile loses to an α pick
                    // immediately; a small region imbalance only loses if
                    // the spoiler finds a depleted region — so the former
                    // dominates the ordering.
                    (relational_mismatch, distance)
                });
                out
            }
            Value::Tuple(fields) => {
                // Synthesize a tuple componentwise via the matching, and
                // offer relation tuples of the same arity.
                let matching = atom_matching(position, side);
                let mut out: Vec<Value> = Vec::new();
                for (_, rel) in opposite.iter() {
                    for (elem, _) in rel.iter() {
                        if elem.as_tuple().is_some_and(|f| f.len() == fields.len()) {
                            out.push(elem.clone());
                        }
                    }
                }
                let synthesized: Option<Vec<Value>> = fields
                    .iter()
                    .map(|f| match f {
                        Value::Atom(a) => matching.get(a).cloned().map(Value::Atom),
                        other => Some(other.clone()),
                    })
                    .collect();
                if let Some(fields) = synthesized {
                    out.push(Value::Tuple(fields.into()));
                }
                out.push(pick.clone()); // mirror candidate
                out
            }
        }
    }
}

impl Duplicator for ConstraintDuplicator {
    fn respond(
        &mut self,
        left: &Database,
        right: &Database,
        position: &Position,
        side: Side,
        pick: &Value,
    ) -> Option<Value> {
        let (own, opposite) = match side {
            Side::Left => (left, right),
            Side::Right => (right, left),
        };
        let candidates = self.candidates(own, opposite, position, side, pick);
        for candidate in candidates {
            let mut extended = position.clone();
            let pair = match side {
                Side::Left => (pick.clone(), candidate.clone()),
                Side::Right => (candidate.clone(), pick.clone()),
            };
            extended.push(pair);
            if is_partial_isomorphism(left, right, &extended) {
                return Some(candidate);
            }
        }
        None
    }
}

/// A spoiler that plays uniformly random objects: atoms, structure nodes,
/// or random subsets of the domain of the picked size.
pub struct RandomSpoiler {
    rng: StdRng,
    /// Size of synthesized random subsets (the paper's most effective
    /// spoiler choice is `n/2`).
    pub subset_size: usize,
}

impl RandomSpoiler {
    /// A random spoiler with the given seed, synthesizing subsets of size
    /// `subset_size`.
    pub fn new(seed: u64, subset_size: usize) -> Self {
        RandomSpoiler {
            rng: StdRng::seed_from_u64(seed),
            subset_size,
        }
    }
}

impl Spoiler for RandomSpoiler {
    fn pick(&mut self, left: &Database, right: &Database, _position: &Position) -> (Side, Value) {
        let side = if self.rng.gen_bool(0.5) {
            Side::Left
        } else {
            Side::Right
        };
        let db = match side {
            Side::Left => left,
            Side::Right => right,
        };
        let choice = self.rng.gen_range(0..3u8);
        let value = match choice {
            0 => {
                let atoms = domain_atoms(db);
                atoms[self.rng.gen_range(0..atoms.len())].clone()
            }
            1 => {
                let nodes = structure_nodes(db);
                if nodes.is_empty() {
                    let atoms = domain_atoms(db);
                    atoms[self.rng.gen_range(0..atoms.len())].clone()
                } else {
                    nodes[self.rng.gen_range(0..nodes.len())].clone()
                }
            }
            _ => {
                let mut atoms = domain_atoms(db);
                atoms.shuffle(&mut self.rng);
                Value::bag(atoms.into_iter().take(self.subset_size))
            }
        };
        (side, value)
    }
}

/// A targeted spoiler that attacks the inverted edge of `G′_{k,𝒯}`:
/// picks `α`, then the flipped node, then atoms distinguishing it.
pub struct FlippedEdgeSpoiler {
    n: u32,
    move_index: usize,
}

impl FlippedEdgeSpoiler {
    /// A spoiler for the Figure 1 instance of domain size `n`.
    pub fn new(n: u32) -> Self {
        FlippedEdgeSpoiler { n, move_index: 0 }
    }
}

impl Spoiler for FlippedEdgeSpoiler {
    fn pick(&mut self, _left: &Database, right: &Database, _position: &Position) -> (Side, Value) {
        let idx = self.move_index;
        self.move_index += 1;
        match idx {
            0 => (Side::Right, alpha_node(self.n)),
            1 => (Side::Right, flipped_node(self.n)),
            _ => {
                // Walk the atoms of the flipped node one by one.
                let flipped = flipped_node(self.n);
                let atoms: Vec<Value> = flipped
                    .as_bag()
                    .expect("node is a bag")
                    .elements()
                    .cloned()
                    .collect();
                let value = atoms
                    .get((idx - 2) % atoms.len())
                    .cloned()
                    .unwrap_or_else(|| domain_atoms(right)[0].clone());
                (Side::Right, value)
            }
        }
    }
}

/// The atom-pinning spoiler: pins every atom of the domain (forcing the
/// duplicator's matching to a full bijection `π`), then picks `α` and
/// finally enumerates every node of `G′` with an edge **into** `α`.
/// `G′` has one more such node than `G`, so injectivity plus edge
/// preservation must fail — the spoiler wins whenever
/// `k ≥ n + 2^{n/2−1} + 2`, matching the proof's `n > 2k` threshold being
/// tight only up to constant factors.
pub struct AtomPinningSpoiler {
    n: u32,
    move_index: usize,
    into_alpha: Vec<Value>,
}

impl AtomPinningSpoiler {
    /// A spoiler for the Figure 1 instance of domain size `n`, attacking
    /// `right` (expected to be `G′`).
    pub fn new(n: u32, right: &Database) -> Self {
        let alpha = alpha_node(n);
        let mut into_alpha = Vec::new();
        for (edge, _) in right.get("E").expect("edge relation").iter() {
            let fields = edge.as_tuple().expect("pair");
            if fields[1] == alpha {
                into_alpha.push(fields[0].clone());
            }
        }
        AtomPinningSpoiler {
            n,
            move_index: 0,
            into_alpha,
        }
    }
}

impl Spoiler for AtomPinningSpoiler {
    fn pick(&mut self, _left: &Database, _right: &Database, _position: &Position) -> (Side, Value) {
        let idx = self.move_index;
        self.move_index += 1;
        let n = self.n as usize;
        if idx < n {
            (Side::Right, Value::int((idx + 1) as i64))
        } else if idx == n {
            (Side::Right, alpha_node(self.n))
        } else {
            let node = self.into_alpha[(idx - n - 1) % self.into_alpha.len()].clone();
            (Side::Right, node)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construction::star_graphs;
    use crate::game::{play, Outcome};

    #[test]
    fn duplicator_survives_short_games_on_fig1() {
        // n = 8 > 2k for k = 3: the duplicator must win (Lemma 5.4).
        let n = 8;
        let (g, gp) = star_graphs(n);
        for seed in 0..5 {
            let mut spoiler = RandomSpoiler::new(seed, (n / 2) as usize);
            let mut duplicator = ConstraintDuplicator::new(seed + 100);
            let outcome = play(&g, &gp, 3, &mut spoiler, &mut duplicator);
            assert_eq!(
                outcome,
                Outcome::DuplicatorWins,
                "random spoiler seed {seed} beat the duplicator at n=8, k=3"
            );
        }
    }

    #[test]
    fn duplicator_survives_targeted_attack_when_n_large() {
        let n = 10;
        let (g, gp) = star_graphs(n);
        let mut spoiler = FlippedEdgeSpoiler::new(n);
        let mut duplicator = ConstraintDuplicator::new(7);
        let outcome = play(&g, &gp, 4, &mut spoiler, &mut duplicator);
        assert_eq!(outcome, Outcome::DuplicatorWins);
    }

    #[test]
    fn atom_pinning_spoiler_wins_long_game() {
        // n = 4: after pinning all 4 atoms + α + the 3 into-α nodes of G′,
        // the duplicator cannot preserve edges (G has only 2 In-nodes).
        let n = 4;
        let (g, gp) = star_graphs(n);
        let mut spoiler = AtomPinningSpoiler::new(n, &gp);
        let mut duplicator = ConstraintDuplicator::new(3);
        let k = (n as usize) + 1 + 3; // 8 moves
        let outcome = play(&g, &gp, k, &mut spoiler, &mut duplicator);
        assert!(
            matches!(outcome, Outcome::SpoilerWins { .. }),
            "atom pinning must defeat the duplicator at n=4 with {k} moves, got {outcome:?}"
        );
    }

    #[test]
    fn identical_structures_never_lose() {
        let (g, _) = star_graphs(6);
        let mut spoiler = RandomSpoiler::new(11, 3);
        let mut duplicator = ConstraintDuplicator::new(13);
        let outcome = play(&g, &g.clone(), 4, &mut spoiler, &mut duplicator);
        assert_eq!(outcome, Outcome::DuplicatorWins);
    }
}
