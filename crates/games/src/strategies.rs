//! Concrete spoiler and duplicator strategies.
//!
//! The duplicator implements the Lemma 5.4 proof idea: maintain the atom
//! matching induced by the position and answer each pick with an object
//! whose membership/containment/edge profile is consistent — the
//! availability of such an answer for `n > 2k` is exactly what
//! property (1) of the `In_n`/`Out_n` families guarantees. Spoilers range
//! from random play to the atom-pinning strategy that *does* win once it
//! may pin the whole domain (k ≥ n + 2^{n/2−1} + 2 moves).

use std::collections::{BTreeMap, BTreeSet};

use balg_core::schema::Database;
use balg_core::value::{Atom, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::construction::{alpha_node, flipped_node};
use crate::game::{is_partial_isomorphism, Duplicator, Position, Side, Spoiler};

/// All atoms of a database's active domain, as values.
fn domain_atoms(db: &Database) -> Vec<Value> {
    db.active_domain().into_iter().map(Value::Atom).collect()
}

/// All set-valued nodes occurring in the database's relations (fields of
/// relation tuples that are bags), plus bag-typed relation elements.
fn structure_nodes(db: &Database) -> Vec<Value> {
    let mut nodes = BTreeSet::new();
    for (_, rel) in db.iter() {
        for (elem, _) in rel.iter() {
            match elem {
                Value::Tuple(fields) => {
                    for field in fields {
                        if matches!(field, Value::Bag(_)) {
                            nodes.insert(field.clone());
                        }
                    }
                }
                Value::Bag(_) => {
                    nodes.insert(elem.clone());
                }
                Value::Atom(_) => {}
            }
        }
    }
    nodes.into_iter().collect()
}

/// The atom matching induced by the atom-typed pairs of a position,
/// oriented `from → to`.
fn atom_matching(position: &Position, from: Side) -> BTreeMap<Atom, Atom> {
    let mut matching = BTreeMap::new();
    for (left, right) in position {
        if let (Value::Atom(a), Value::Atom(b)) = (left, right) {
            match from {
                Side::Left => matching.insert(a.clone(), b.clone()),
                Side::Right => matching.insert(b.clone(), a.clone()),
            };
        }
    }
    matching
}

/// The constraint-propagating duplicator.
///
/// Candidate answers are: the opposite structure's atoms (for atom picks);
/// its structure nodes plus matching-consistent synthesized sets (for set
/// picks); synthesized tuples (for tuple picks). Every candidate is
/// validated with the full partial-isomorphism check before being played.
pub struct ConstraintDuplicator {
    rng: StdRng,
    /// How many random fillings to try for synthesized sets.
    pub fill_attempts: usize,
}

impl ConstraintDuplicator {
    /// A duplicator with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        ConstraintDuplicator {
            rng: StdRng::seed_from_u64(seed),
            fill_attempts: 64,
        }
    }

    fn candidates(
        &mut self,
        opposite: &Database,
        position: &Position,
        side: Side,
        pick: &Value,
    ) -> Vec<Value> {
        match pick {
            Value::Atom(_) => domain_atoms(opposite),
            Value::Bag(picked) => {
                // Mirror candidate first: the two structures of Lemma 5.4
                // share their domain and node set, so the pick itself is
                // often a valid answer.
                let mut out = vec![pick.clone()];
                out.extend(structure_nodes(opposite));
                // Synthesize matching-consistent sets of the same size.
                let matching = atom_matching(position, side);
                let picked_atoms: BTreeSet<Atom> = picked
                    .elements()
                    .filter_map(|v| v.as_atom().cloned())
                    .collect();
                let required: BTreeSet<Atom> = picked_atoms
                    .iter()
                    .filter_map(|a| matching.get(a).cloned())
                    .collect();
                let forbidden: BTreeSet<Atom> = matching
                    .iter()
                    .filter(|(a, _)| !picked_atoms.contains(*a))
                    .map(|(_, b)| b.clone())
                    .collect();
                let pool: Vec<Atom> = opposite
                    .active_domain()
                    .into_iter()
                    .filter(|a| !required.contains(a) && !forbidden.contains(a))
                    .collect();
                let need = picked_atoms.len().saturating_sub(required.len());
                for _ in 0..self.fill_attempts {
                    if pool.len() < need {
                        break;
                    }
                    let mut shuffled = pool.clone();
                    shuffled.shuffle(&mut self.rng);
                    let fill: BTreeSet<Atom> = required
                        .iter()
                        .cloned()
                        .chain(shuffled.into_iter().take(need))
                        .collect();
                    out.push(Value::bag(fill.into_iter().map(Value::Atom)));
                }
                out
            }
            Value::Tuple(fields) => {
                // Synthesize a tuple componentwise via the matching, and
                // offer relation tuples of the same arity.
                let matching = atom_matching(position, side);
                let mut out: Vec<Value> = Vec::new();
                for (_, rel) in opposite.iter() {
                    for (elem, _) in rel.iter() {
                        if elem.as_tuple().is_some_and(|f| f.len() == fields.len()) {
                            out.push(elem.clone());
                        }
                    }
                }
                let synthesized: Option<Vec<Value>> = fields
                    .iter()
                    .map(|f| match f {
                        Value::Atom(a) => matching.get(a).cloned().map(Value::Atom),
                        other => Some(other.clone()),
                    })
                    .collect();
                if let Some(fields) = synthesized {
                    out.push(Value::Tuple(fields));
                }
                out.push(pick.clone()); // mirror candidate
                out
            }
        }
    }
}

impl Duplicator for ConstraintDuplicator {
    fn respond(
        &mut self,
        left: &Database,
        right: &Database,
        position: &Position,
        side: Side,
        pick: &Value,
    ) -> Option<Value> {
        let opposite = match side {
            Side::Left => right,
            Side::Right => left,
        };
        let candidates = self.candidates(opposite, position, side, pick);
        for candidate in candidates {
            let mut extended = position.clone();
            let pair = match side {
                Side::Left => (pick.clone(), candidate.clone()),
                Side::Right => (candidate.clone(), pick.clone()),
            };
            extended.push(pair);
            if is_partial_isomorphism(left, right, &extended) {
                return Some(candidate);
            }
        }
        None
    }
}

/// A spoiler that plays uniformly random objects: atoms, structure nodes,
/// or random subsets of the domain of the picked size.
pub struct RandomSpoiler {
    rng: StdRng,
    /// Size of synthesized random subsets (the paper's most effective
    /// spoiler choice is `n/2`).
    pub subset_size: usize,
}

impl RandomSpoiler {
    /// A random spoiler with the given seed, synthesizing subsets of size
    /// `subset_size`.
    pub fn new(seed: u64, subset_size: usize) -> Self {
        RandomSpoiler {
            rng: StdRng::seed_from_u64(seed),
            subset_size,
        }
    }
}

impl Spoiler for RandomSpoiler {
    fn pick(&mut self, left: &Database, right: &Database, _position: &Position) -> (Side, Value) {
        let side = if self.rng.gen_bool(0.5) {
            Side::Left
        } else {
            Side::Right
        };
        let db = match side {
            Side::Left => left,
            Side::Right => right,
        };
        let choice = self.rng.gen_range(0..3u8);
        let value = match choice {
            0 => {
                let atoms = domain_atoms(db);
                atoms[self.rng.gen_range(0..atoms.len())].clone()
            }
            1 => {
                let nodes = structure_nodes(db);
                if nodes.is_empty() {
                    let atoms = domain_atoms(db);
                    atoms[self.rng.gen_range(0..atoms.len())].clone()
                } else {
                    nodes[self.rng.gen_range(0..nodes.len())].clone()
                }
            }
            _ => {
                let mut atoms = domain_atoms(db);
                atoms.shuffle(&mut self.rng);
                Value::bag(atoms.into_iter().take(self.subset_size))
            }
        };
        (side, value)
    }
}

/// A targeted spoiler that attacks the inverted edge of `G′_{k,𝒯}`:
/// picks `α`, then the flipped node, then atoms distinguishing it.
pub struct FlippedEdgeSpoiler {
    n: u32,
    move_index: usize,
}

impl FlippedEdgeSpoiler {
    /// A spoiler for the Figure 1 instance of domain size `n`.
    pub fn new(n: u32) -> Self {
        FlippedEdgeSpoiler { n, move_index: 0 }
    }
}

impl Spoiler for FlippedEdgeSpoiler {
    fn pick(&mut self, _left: &Database, right: &Database, _position: &Position) -> (Side, Value) {
        let idx = self.move_index;
        self.move_index += 1;
        match idx {
            0 => (Side::Right, alpha_node(self.n)),
            1 => (Side::Right, flipped_node(self.n)),
            _ => {
                // Walk the atoms of the flipped node one by one.
                let flipped = flipped_node(self.n);
                let atoms: Vec<Value> = flipped
                    .as_bag()
                    .expect("node is a bag")
                    .elements()
                    .cloned()
                    .collect();
                let value = atoms
                    .get((idx - 2) % atoms.len())
                    .cloned()
                    .unwrap_or_else(|| domain_atoms(right)[0].clone());
                (Side::Right, value)
            }
        }
    }
}

/// The atom-pinning spoiler: pins every atom of the domain (forcing the
/// duplicator's matching to a full bijection `π`), then picks `α` and
/// finally enumerates every node of `G′` with an edge **into** `α`.
/// `G′` has one more such node than `G`, so injectivity plus edge
/// preservation must fail — the spoiler wins whenever
/// `k ≥ n + 2^{n/2−1} + 2`, matching the proof's `n > 2k` threshold being
/// tight only up to constant factors.
pub struct AtomPinningSpoiler {
    n: u32,
    move_index: usize,
    into_alpha: Vec<Value>,
}

impl AtomPinningSpoiler {
    /// A spoiler for the Figure 1 instance of domain size `n`, attacking
    /// `right` (expected to be `G′`).
    pub fn new(n: u32, right: &Database) -> Self {
        let alpha = alpha_node(n);
        let mut into_alpha = Vec::new();
        for (edge, _) in right.get("E").expect("edge relation").iter() {
            let fields = edge.as_tuple().expect("pair");
            if fields[1] == alpha {
                into_alpha.push(fields[0].clone());
            }
        }
        AtomPinningSpoiler {
            n,
            move_index: 0,
            into_alpha,
        }
    }
}

impl Spoiler for AtomPinningSpoiler {
    fn pick(&mut self, _left: &Database, _right: &Database, _position: &Position) -> (Side, Value) {
        let idx = self.move_index;
        self.move_index += 1;
        let n = self.n as usize;
        if idx < n {
            (Side::Right, Value::int((idx + 1) as i64))
        } else if idx == n {
            (Side::Right, alpha_node(self.n))
        } else {
            let node = self.into_alpha[(idx - n - 1) % self.into_alpha.len()].clone();
            (Side::Right, node)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construction::star_graphs;
    use crate::game::{play, Outcome};

    #[test]
    fn duplicator_survives_short_games_on_fig1() {
        // n = 8 > 2k for k = 3: the duplicator must win (Lemma 5.4).
        let n = 8;
        let (g, gp) = star_graphs(n);
        for seed in 0..5 {
            let mut spoiler = RandomSpoiler::new(seed, (n / 2) as usize);
            let mut duplicator = ConstraintDuplicator::new(seed + 100);
            let outcome = play(&g, &gp, 3, &mut spoiler, &mut duplicator);
            assert_eq!(
                outcome,
                Outcome::DuplicatorWins,
                "random spoiler seed {seed} beat the duplicator at n=8, k=3"
            );
        }
    }

    #[test]
    fn duplicator_survives_targeted_attack_when_n_large() {
        let n = 10;
        let (g, gp) = star_graphs(n);
        let mut spoiler = FlippedEdgeSpoiler::new(n);
        let mut duplicator = ConstraintDuplicator::new(7);
        let outcome = play(&g, &gp, 4, &mut spoiler, &mut duplicator);
        assert_eq!(outcome, Outcome::DuplicatorWins);
    }

    #[test]
    fn atom_pinning_spoiler_wins_long_game() {
        // n = 4: after pinning all 4 atoms + α + the 3 into-α nodes of G′,
        // the duplicator cannot preserve edges (G has only 2 In-nodes).
        let n = 4;
        let (g, gp) = star_graphs(n);
        let mut spoiler = AtomPinningSpoiler::new(n, &gp);
        let mut duplicator = ConstraintDuplicator::new(3);
        let k = (n as usize) + 1 + 3; // 8 moves
        let outcome = play(&g, &gp, k, &mut spoiler, &mut duplicator);
        assert!(
            matches!(outcome, Outcome::SpoilerWins { .. }),
            "atom pinning must defeat the duplicator at n=4 with {k} moves, got {outcome:?}"
        );
    }

    #[test]
    fn identical_structures_never_lose() {
        let (g, _) = star_graphs(6);
        let mut spoiler = RandomSpoiler::new(11, 3);
        let mut duplicator = ConstraintDuplicator::new(13);
        let outcome = play(&g, &g.clone(), 4, &mut spoiler, &mut duplicator);
        assert_eq!(outcome, Outcome::DuplicatorWins);
    }
}
