//! Exact game solving for small instances.
//!
//! Exhaustive minimax over finite object pools decides who wins the
//! `k`-move game — used to validate the strategy implementations against
//! ground truth on tiny structures, and to certify duplicator wins (hence
//! CALC1-indistinguishability, Theorem 5.3) without trusting a heuristic.

use std::collections::BTreeSet;

use balg_core::schema::Database;
use balg_core::value::{Atom, Value};

use crate::game::{is_partial_isomorphism, Position, Side};

/// Build the object pool for one structure: its atoms, every subset of
/// the domain of each size in `subset_sizes` (as set values), and every
/// tuple occurring in its relations.
///
/// This materializes the fragment of `Comp(A, 𝒯)` the game ranges over
/// for type sets 𝒯 of the form `{U, ⟦U⟧, [⟦U⟧, ⟦U⟧]}`.
pub fn object_pool(db: &Database, subset_sizes: &[usize]) -> Vec<Value> {
    let atoms: Vec<Atom> = db.active_domain().into_iter().collect();
    let mut pool: Vec<Value> = atoms.iter().cloned().map(Value::Atom).collect();
    for &size in subset_sizes {
        let mut chosen = Vec::new();
        combinations(&atoms, size, 0, &mut chosen, &mut pool);
    }
    let mut tuples = BTreeSet::new();
    for (_, rel) in db.iter() {
        for (elem, _) in rel.iter() {
            if matches!(elem, Value::Tuple(_)) {
                tuples.insert(elem.clone());
            }
        }
    }
    pool.extend(tuples);
    pool
}

fn combinations(
    atoms: &[Atom],
    size: usize,
    start: usize,
    chosen: &mut Vec<Atom>,
    pool: &mut Vec<Value>,
) {
    if chosen.len() == size {
        pool.push(Value::bag(chosen.iter().cloned().map(Value::Atom)));
        return;
    }
    for i in start..atoms.len() {
        chosen.push(atoms[i].clone());
        combinations(atoms, size, i + 1, chosen, pool);
        chosen.pop();
    }
}

/// Exhaustive solver for the `k`-move game over explicit object pools.
pub struct GameSolver<'a> {
    left: &'a Database,
    right: &'a Database,
    pool_left: Vec<Value>,
    pool_right: Vec<Value>,
    nodes_left: u64,
}

/// The solver's verdict.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// The spoiler has a winning strategy within the pools.
    SpoilerWins,
    /// The duplicator survives every spoiler line within the pools.
    DuplicatorWins,
    /// The node budget was exhausted before a verdict.
    BudgetExhausted,
}

impl<'a> GameSolver<'a> {
    /// Create a solver with the given object pools and search budget
    /// (number of game-tree nodes explored).
    pub fn new(
        left: &'a Database,
        right: &'a Database,
        subset_sizes: &[usize],
        budget: u64,
    ) -> Self {
        GameSolver {
            left,
            right,
            pool_left: object_pool(left, subset_sizes),
            pool_right: object_pool(right, subset_sizes),
            nodes_left: budget,
        }
    }

    /// Decide the `k`-move game.
    pub fn solve(&mut self, k: usize) -> Verdict {
        match self.spoiler_wins(&mut Vec::new(), k) {
            Some(true) => Verdict::SpoilerWins,
            Some(false) => Verdict::DuplicatorWins,
            None => Verdict::BudgetExhausted,
        }
    }

    fn spoiler_wins(&mut self, position: &mut Position, k: usize) -> Option<bool> {
        if k == 0 {
            return Some(false);
        }
        if self.nodes_left == 0 {
            return None;
        }
        self.nodes_left -= 1;
        for side in [Side::Left, Side::Right] {
            let picks = match side {
                Side::Left => self.pool_left.clone(),
                Side::Right => self.pool_right.clone(),
            };
            for pick in picks {
                let responses = match side {
                    Side::Left => self.pool_right.clone(),
                    Side::Right => self.pool_left.clone(),
                };
                // The spoiler wins with this pick if EVERY response either
                // breaks the partial isomorphism or loses downstream.
                let mut spoiler_wins_pick = true;
                for response in responses {
                    let pair = match side {
                        Side::Left => (pick.clone(), response),
                        Side::Right => (response, pick.clone()),
                    };
                    position.push(pair);
                    let survives = is_partial_isomorphism(self.left, self.right, position);
                    let downstream = if survives {
                        self.spoiler_wins(position, k - 1)
                    } else {
                        Some(true)
                    };
                    position.pop();
                    match downstream {
                        None => return None,
                        Some(true) => {}
                        Some(false) => {
                            spoiler_wins_pick = false;
                            break;
                        }
                    }
                }
                if spoiler_wins_pick {
                    return Some(true);
                }
            }
        }
        Some(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construction::star_graphs;
    use balg_core::bag::Bag;

    fn atom_graph(edges: &[(i64, i64)], extra_atoms: &[i64]) -> Database {
        let mut bag = Bag::from_values(
            edges
                .iter()
                .map(|(a, b)| Value::tuple([Value::int(*a), Value::int(*b)])),
        );
        // Keep isolated atoms in the domain via a unary helper relation.
        let _ = &mut bag;
        let mut db = Database::new().with("E", bag);
        if !extra_atoms.is_empty() {
            db.insert(
                "D",
                Bag::from_values(extra_atoms.iter().map(|a| Value::tuple([Value::int(*a)]))),
            );
        }
        db
    }

    #[test]
    fn solver_separates_edge_from_no_edge() {
        // A: one edge (1,2); B: no edges, same domain. With tuple objects
        // in Comp(A, 𝒯) the spoiler wins in ONE move: it picks the pair
        // ⟨1,2⟩ ∈ E_A, and no pair on the B side can be E-related.
        let a = atom_graph(&[(1, 2)], &[]);
        let b = atom_graph(&[], &[1, 2]);
        let mut solver = GameSolver::new(&a, &b, &[], 1 << 22);
        assert_eq!(solver.solve(1), Verdict::SpoilerWins);
    }

    #[test]
    fn solver_confirms_isomorphic_graphs_indistinguishable() {
        // A: edge (1,2); B: edge (2,1) — isomorphic via the swap, so the
        // duplicator survives short games.
        let a = atom_graph(&[(1, 2)], &[]);
        let b = atom_graph(&[(2, 1)], &[]);
        let mut solver = GameSolver::new(&a, &b, &[], 1 << 22);
        assert_eq!(solver.solve(2), Verdict::DuplicatorWins);
    }

    #[test]
    fn solver_certifies_duplicator_on_fig1_one_move() {
        // n = 4 > 2·1: Lemma 5.4 says the duplicator wins the 1-move game.
        let (g, gp) = star_graphs(4);
        let mut solver = GameSolver::new(&g, &gp, &[2, 4], 1 << 22);
        assert_eq!(solver.solve(1), Verdict::DuplicatorWins);
    }

    #[test]
    fn solver_respects_budget() {
        let (g, gp) = star_graphs(4);
        let mut solver = GameSolver::new(&g, &gp, &[2, 4], 2);
        assert_eq!(solver.solve(3), Verdict::BudgetExhausted);
    }

    #[test]
    fn pool_contains_atoms_subsets_tuples() {
        let (g, _) = star_graphs(4);
        let pool = object_pool(&g, &[2]);
        let atoms = pool.iter().filter(|v| matches!(v, Value::Atom(_))).count();
        let sets = pool.iter().filter(|v| matches!(v, Value::Bag(_))).count();
        let tuples = pool.iter().filter(|v| matches!(v, Value::Tuple(_))).count();
        assert_eq!(atoms, 4);
        assert_eq!(sets, 6); // C(4,2)
        assert_eq!(tuples, 4); // 4 edges
    }
}
