//! # balg-games — pebble games for complex objects (\[GV90\], Section 5)
//!
//! The machinery behind Theorem 5.2 (`RALG² ⊊ BALG²`): the modified
//! Ehrenfeucht–Fraïssé game characterizing CALC1 ≡ RALG² definability, the
//! Figure 1 star-graph construction whose `In_n`/`Out_n` subset families
//! satisfy the half-membership property (1), spoiler/duplicator
//! strategies, and an exact solver for small instances.
//!
//! The separation experiment (E13) plays out as:
//! * `G` and `G′` **differ** on Φ = "in-degree of α exceeds out-degree" —
//!   a BALG² query (bag subtraction counts the edges);
//! * yet for every `k` with `n > 2k` the duplicator wins the `k`-move
//!   game, so no RALG²/CALC1 expression of quantifier depth `k`
//!   distinguishes them (Theorem 5.3) — Φ is not RALG²-definable.
//!
//! ```
//! use balg_games::prelude::*;
//!
//! let families = half_families(8);
//! assert!(families.verify_property_one());
//!
//! let (g, g_prime) = star_graphs(8);
//! let mut spoiler = RandomSpoiler::new(42, 4);
//! let mut duplicator = ConstraintDuplicator::new(7);
//! assert_eq!(
//!     play(&g, &g_prime, 3, &mut spoiler, &mut duplicator),
//!     Outcome::DuplicatorWins
//! );
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod construction;
pub mod game;
pub mod solver;
pub mod strategies;

/// Commonly used items, re-exported.
pub mod prelude {
    pub use crate::construction::{
        alpha_node, degrees, flipped_node, half_families, node_value, star_graphs, HalfFamilies,
    };
    pub use crate::game::{
        is_partial_isomorphism, play, Duplicator, Outcome, Position, Side, Spoiler,
    };
    pub use crate::solver::{object_pool, GameSolver, Verdict};
    pub use crate::strategies::{
        AtomPinningSpoiler, ConstraintDuplicator, FlippedEdgeSpoiler, RandomSpoiler,
    };
}

pub use prelude::*;
