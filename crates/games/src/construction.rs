//! The Figure 1 / Lemma 5.4 graph construction.
//!
//! Two star-shaped directed graphs over nodes that are *sets* of atomic
//! constants. The central node `α = {1, …, n}` is linked to `2·2^{n/2−1}`
//! peripheral nodes, each a subset of cardinality `n/2`, split into two
//! families `In_n` and `Out_n` satisfying the probabilistic property (1):
//!
//! ```text
//! P(i ∈ S | S ∈ In_n) = P(i ∈ S | S ∈ Out_n) = 1/2   for every i ≤ n.
//! ```
//!
//! In `G_{k,𝒯}` every `In` node points at `α` and `α` points at every
//! `Out` node, so `α`'s in-degree equals its out-degree. In `G′_{k,𝒯}`
//! one outgoing edge is inverted, making the in-degree strictly bigger —
//! the property Φ that BALG² expresses (Example 4.1 lifted to set nodes)
//! but RALG²/CALC1 cannot (Lemma 5.4).

use std::collections::BTreeSet;

use balg_core::bag::{Bag, BagBuilder};
use balg_core::schema::Database;
use balg_core::value::Value;

/// The two families of `n/2`-subsets of `{1, …, n}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HalfFamilies {
    /// Domain size `n` (even, ≥ 4).
    pub n: u32,
    /// The `In_n` family.
    pub inn: Vec<BTreeSet<u32>>,
    /// The `Out_n` family.
    pub out: Vec<BTreeSet<u32>>,
}

/// Build `In_n`/`Out_n` by the paper's induction.
///
/// Base `n = 4`: `In = {{1,2},{3,4}}`, `Out = {{1,3},{2,4}}`.
/// Step `n → n+2`:
/// `In_{n+2} = {S∪{n+1} | S∈In_n} ∪ {S∪{n+2} | S∈Out_n}` and dually.
///
/// # Panics
/// If `n` is odd or below 4.
pub fn half_families(n: u32) -> HalfFamilies {
    assert!(
        n >= 4 && n.is_multiple_of(2),
        "n must be even and ≥ 4, got {n}"
    );
    let mut inn: Vec<BTreeSet<u32>> = vec![BTreeSet::from([1, 2]), BTreeSet::from([3, 4])];
    let mut out: Vec<BTreeSet<u32>> = vec![BTreeSet::from([1, 3]), BTreeSet::from([2, 4])];
    let mut m = 4;
    while m < n {
        let with = |sets: &[BTreeSet<u32>], extra: u32| -> Vec<BTreeSet<u32>> {
            sets.iter()
                .map(|s| {
                    let mut t = s.clone();
                    t.insert(extra);
                    t
                })
                .collect()
        };
        let mut new_inn = with(&inn, m + 1);
        new_inn.extend(with(&out, m + 2));
        let mut new_out = with(&out, m + 1);
        new_out.extend(with(&inn, m + 2));
        inn = new_inn;
        out = new_out;
        m += 2;
    }
    HalfFamilies { n, inn, out }
}

impl HalfFamilies {
    /// Verify property (1) **exactly**: each constant `i ∈ {1..n}` belongs
    /// to exactly half of `In_n` and exactly half of `Out_n`, and all sets
    /// have cardinality `n/2`.
    pub fn verify_property_one(&self) -> bool {
        let half_in = self.inn.len() / 2;
        let half_out = self.out.len() / 2;
        if self.inn.len() != self.out.len() || !self.inn.len().is_multiple_of(2) {
            return false;
        }
        let size_ok = self
            .inn
            .iter()
            .chain(&self.out)
            .all(|s| s.len() as u32 == self.n / 2);
        if !size_ok {
            return false;
        }
        (1..=self.n).all(|i| {
            self.inn.iter().filter(|s| s.contains(&i)).count() == half_in
                && self.out.iter().filter(|s| s.contains(&i)).count() == half_out
        })
    }

    /// All families are distinct sets (needed for the star graph's node
    /// count `2·2^{n/2−1} + 1`).
    pub fn all_distinct(&self) -> bool {
        let mut seen = BTreeSet::new();
        self.inn
            .iter()
            .chain(&self.out)
            .all(|s| seen.insert(s.clone()))
    }
}

/// A node value: the subset as a duplicate-free bag of integer atoms.
pub fn node_value(set: &BTreeSet<u32>) -> Value {
    Value::bag(set.iter().map(|&i| Value::int(i as i64)))
}

/// The central node `α = {1, …, n}`.
pub fn alpha_node(n: u32) -> Value {
    Value::bag((1..=n).map(|i| Value::int(i as i64)))
}

/// The pair of star graphs `(G, G′)` of Figure 1, as databases with a
/// single edge relation `E` whose tuples pair set-valued nodes.
///
/// In `G`, `α` has in-degree = out-degree = `2^{n/2−1}`. In `G′`, the edge
/// to the lexicographically first `Out` node is inverted, so in-degree
/// exceeds out-degree by 2.
pub fn star_graphs(n: u32) -> (Database, Database) {
    let families = half_families(n);
    let alpha = alpha_node(n);
    let mut edges = BagBuilder::with_capacity(families.inn.len() + families.out.len());
    for s in &families.inn {
        edges.push_one(Value::tuple([node_value(s), alpha.clone()]));
    }
    for s in &families.out {
        edges.push_one(Value::tuple([alpha.clone(), node_value(s)]));
    }
    let edges = edges.build();
    let g = Database::new().with("E", edges.clone());

    // Invert the edge α → out[0].
    let flipped = node_value(&families.out[0]);
    let old_edge = Value::tuple([alpha.clone(), flipped.clone()]);
    let new_edge = Value::tuple([flipped, alpha]);
    let mut edges2 = edges.subtract(&Bag::singleton(old_edge));
    edges2.insert(new_edge);
    let g_prime = Database::new().with("E", edges2);
    (g, g_prime)
}

/// The node of `G′` whose edge was inverted (useful for targeted spoiler
/// strategies).
pub fn flipped_node(n: u32) -> Value {
    node_value(&half_families(n).out[0])
}

/// In/out degree of a node in an edge relation.
pub fn degrees(db: &Database, node: &Value) -> (u64, u64) {
    let edges = db.get("E").expect("edge relation E");
    let mut indeg = 0u64;
    let mut outdeg = 0u64;
    for (edge, mult) in edges.iter() {
        let fields = edge.as_tuple().expect("edges are pairs");
        let m = mult.to_u64().unwrap_or(u64::MAX);
        if &fields[1] == node {
            indeg += m;
        }
        if &fields[0] == node {
            outdeg += m;
        }
    }
    (indeg, outdeg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_case_families() {
        let f = half_families(4);
        assert_eq!(f.inn.len(), 2);
        assert_eq!(f.out.len(), 2);
        assert!(f.verify_property_one());
        assert!(f.all_distinct());
    }

    #[test]
    fn inductive_families_satisfy_property_one() {
        for n in [4u32, 6, 8, 10, 12] {
            let f = half_families(n);
            assert_eq!(f.inn.len(), 1 << (n / 2 - 1), "family size at n={n}");
            assert!(f.verify_property_one(), "property (1) fails at n={n}");
            assert!(f.all_distinct(), "families collide at n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_n_rejected() {
        half_families(5);
    }

    #[test]
    fn star_graph_degrees() {
        for n in [4u32, 6, 8] {
            let (g, gp) = star_graphs(n);
            let alpha = alpha_node(n);
            let (din, dout) = degrees(&g, &alpha);
            assert_eq!(din, dout, "balanced α in G at n={n}");
            assert_eq!(din, 1 << (n / 2 - 1));
            let (pin, pout) = degrees(&gp, &alpha);
            assert_eq!(pin, pout + 2, "α in-degree exceeds out-degree in G′");
        }
    }

    #[test]
    fn graphs_have_same_node_count() {
        let (g, gp) = star_graphs(6);
        // Same number of edges in both.
        assert_eq!(
            g.get("E").unwrap().cardinality(),
            gp.get("E").unwrap().cardinality()
        );
        // Node set: 2·2^{n/2−1} + 1 distinct nodes on each side.
        let nodes = |db: &Database| {
            let mut set = std::collections::BTreeSet::new();
            for (edge, _) in db.get("E").unwrap().iter() {
                for field in edge.as_tuple().unwrap() {
                    set.insert(field.clone());
                }
            }
            set
        };
        assert_eq!(nodes(&g).len(), 2 * (1 << 2) + 1);
        assert_eq!(nodes(&g), nodes(&gp)); // identical node sets
    }

    #[test]
    fn flipped_node_is_an_out_family_member() {
        let n = 6;
        let f = half_families(n);
        let flipped = flipped_node(n);
        assert_eq!(flipped, node_value(&f.out[0]));
        // In G′ the flipped node now points at α.
        let (_, gp) = star_graphs(n);
        let (din, dout) = degrees(&gp, &flipped);
        assert_eq!((din, dout), (0, 1));
    }
}
