//! Byte-equality of the `:profile` report across every surface that
//! renders one: the plain CLI session, the incremental session, the
//! server's read path ([`execute_read`]), and the serial twin.
//!
//! All four call the one renderer in `balg_core::profile`, so equality
//! holds by construction — provided the report itself is deterministic,
//! which `BALG_PROFILE_TICKS` guarantees by switching the profiler to a
//! counting clock. Single test in this binary: the env var is process
//! state.

use balg_cli::{IncrementalSession, Response, Session};
use balg_core::eval::Limits;
use balg_server::prelude::{execute_read, snapshot_of, SerialTwin};
use balg_sql::prelude::{database_from_rows, Catalog, SqlRuntime};

const EXPR: &str = "project(select(x, eq(attr(x,2), attr(x,3)), product(g, g)), 1, 4)";
const INSERT: &str = "INSERT INTO g VALUES ('a', 'b'), ('b', 'c')";
const LOAD: &str = ":load g bag{ [a,b], [b,c] }";

fn text(response: Response) -> String {
    match response {
        Response::Text(t) => t,
        Response::Quit => panic!("unexpected quit"),
    }
}

#[test]
fn profile_report_is_byte_equal_across_surfaces() {
    std::env::set_var(balg_obs::profile::PROFILE_TICKS_ENV, "1000");
    let catalog = Catalog::new().with_table("g", &[("src", false), ("dst", false)]);
    let db = database_from_rows(&catalog, &[]).unwrap();

    // Surface 1 — the serial twin's statement surface.
    let mut twin = SerialTwin::new(catalog.clone(), db.clone(), Limits::default());
    assert!(twin.execute(INSERT).ok);
    let twin_reply = twin.execute(&format!(":profile {EXPR}"));
    assert!(twin_reply.ok, "{}", twin_reply.text);

    // Surface 2 — execute_read over a freshly pinned snapshot of an
    // identically mutated runtime.
    let mut rt = SqlRuntime::with_limits(catalog, db, Limits::default());
    rt.execute(INSERT).unwrap();
    let direct = execute_read(&snapshot_of(&rt, 1), &format!(":profile {EXPR}"));
    assert_eq!(twin_reply, direct);

    // Surface 3 — the plain CLI session over the same bag.
    let mut session = Session::new();
    assert_eq!(text(session.process_line(LOAD)), "loaded g");
    let cli = text(session.process_line(&format!(":profile {EXPR}")));
    assert_eq!(twin_reply.text, cli);

    // Surface 4 — the incremental session (bases plus views).
    let mut inc = IncrementalSession::new();
    assert_eq!(text(inc.process_line(LOAD)), "loaded g");
    let inc_report = text(inc.process_line(&format!(":profile {EXPR}")));
    assert_eq!(twin_reply.text, inc_report);

    // The report is a real profile: operator tree, fast-path tag, step
    // charges, deterministic tick times, and the result line.
    assert!(cli.contains("base g"), "{cli}");
    assert!(
        cli.contains("[indexed-join]") || cli.contains("[hash-join]"),
        "{cli}"
    );
    assert!(cli.contains("steps"), "{cli}");
    assert!(cli.contains("total: "), "{cli}");
    assert!(cli.contains("result: 1 distinct elements"), "{cli}");

    // Parse errors reply as errors on the statement surface and as plain
    // messages in the REPL — same text either way.
    let bad = twin.execute(":profile project(");
    assert!(!bad.ok);
    assert_eq!(bad.text, text(session.process_line(":profile project(")));
}
