//! The interactive BALG shell. Type `:help` for commands.
//!
//! `--incremental` switches to the maintained-view REPL: `:view`
//! registers standing queries, `:insert`/`:delete` stream updates through
//! the ℤ-bag delta engine.

use std::io::{BufRead, Write};

fn main() {
    let incremental = std::env::args().skip(1).any(|a| a == "--incremental");
    let mut oneshot = balg_cli::Session::new();
    let mut maintained = balg_cli::IncrementalSession::new();
    if incremental {
        println!("balg — incremental view maintenance mode. :help for commands.");
    } else {
        println!("balg — Towards Tractable Algebras for Bags (PODS 1993). :help for commands.");
    }
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("{}", if incremental { "balgΔ> " } else { "balg> " });
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let response = if incremental {
            maintained.process_line(line.trim())
        } else {
            oneshot.process_line(line.trim())
        };
        match response {
            balg_cli::Response::Quit => break,
            balg_cli::Response::Text(text) => {
                if !text.is_empty() {
                    println!("{text}");
                }
            }
        }
    }
}
