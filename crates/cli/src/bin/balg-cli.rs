//! The interactive BALG shell. Type `:help` for commands.
//!
//! - `--incremental` switches to the maintained-view REPL: `:view`
//!   registers standing queries, `:insert`/`:delete` stream updates
//!   through the ℤ-bag delta engine.
//! - `--data-dir DIR` makes the incremental REPL (or the served
//!   instance) **durable**: state is WAL-logged and snapshotted under
//!   DIR, and restarting with the same DIR resumes exactly where the
//!   last acked operation left off (`:checkpoint` / `CHECKPOINT`
//!   compacts the log).
//! - `--serve ADDR [--tables SPEC]` runs the concurrent SQL service
//!   (`balg-server`) on ADDR until killed. SPEC declares tables as
//!   `name=col[:int],col;name2=...`; `:table` can declare more at
//!   runtime. `--slow-ms N` logs any statement served in ≥ N ms to
//!   stderr.
//! - `--connect ADDR` is a line client for a served instance.
//! - `--threads N` pins the partition count for intra-query parallel
//!   execution in every mode (REPL, served instance, and its readers).
//!   `--threads 1` pins the serial paths. Every setting computes
//!   identical results — only scheduling differs. Without the flag the
//!   `BALG_THREADS` environment variable, then the detected core count,
//!   decides.

use std::io::{BufRead, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    // One process-global registry for every mode: the REPLs' `:metrics`,
    // the served instance's over-the-wire `:metrics`, and the slow-query
    // counter all read from it.
    balg_obs::install_global(balg_obs::MetricsRegistry::new());
    let args: Vec<String> = std::env::args().skip(1).collect();
    let data_dir = args
        .iter()
        .position(|a| a == "--data-dir")
        .and_then(|p| args.get(p + 1))
        .map(String::as_str);
    let threads = match args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|p| args.get(p + 1))
    {
        None => None,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => {
                eprintln!("--threads wants a positive partition count, got {raw:?}");
                return ExitCode::FAILURE;
            }
        },
    };
    if let Some(n) = threads {
        // Process-wide: every evaluator resolves its default chunk count
        // from here (REPL lines, maintenance passes, served queries).
        balg_core::pool::set_default_parallelism(n);
    }
    if let Some(pos) = args.iter().position(|a| a == "--serve") {
        let Some(addr) = args.get(pos + 1) else {
            eprintln!(
                "usage: balg-cli --serve ADDR [--tables name=col[:int],col;...] [--data-dir DIR] [--slow-ms N] [--threads N]"
            );
            return ExitCode::FAILURE;
        };
        let tables = args
            .iter()
            .position(|a| a == "--tables")
            .and_then(|p| args.get(p + 1))
            .map_or("", String::as_str);
        let slow_ms = match args
            .iter()
            .position(|a| a == "--slow-ms")
            .and_then(|p| args.get(p + 1))
        {
            None => None,
            Some(raw) => match raw.parse::<u64>() {
                Ok(ms) => Some(ms),
                Err(_) => {
                    eprintln!("--slow-ms wants a millisecond count, got {raw:?}");
                    return ExitCode::FAILURE;
                }
            },
        };
        return serve(addr, tables, data_dir, slow_ms, threads);
    }
    if let Some(pos) = args.iter().position(|a| a == "--connect") {
        let Some(addr) = args.get(pos + 1) else {
            eprintln!("usage: balg-cli --connect ADDR");
            return ExitCode::FAILURE;
        };
        return connect(addr);
    }
    repl(args.iter().any(|a| a == "--incremental"), data_dir)
}

/// Parse `name=col[:int],col;name2=...` into a catalog.
fn parse_tables(spec: &str) -> Result<balg_sql::Catalog, String> {
    let mut catalog = balg_sql::Catalog::new();
    for table in spec.split(';').filter(|t| !t.trim().is_empty()) {
        let (name, columns) = table
            .split_once('=')
            .ok_or_else(|| format!("bad table spec {table:?} (want name=col,col)"))?;
        let columns: Vec<(&str, bool)> = columns
            .split(',')
            .filter(|c| !c.trim().is_empty())
            .map(|c| match c.trim().strip_suffix(":int") {
                Some(col) => (col, true),
                None => (c.trim(), false),
            })
            .collect();
        if columns.is_empty() {
            return Err(format!("table {name:?} declares no columns"));
        }
        catalog = catalog.with_table(name.trim(), &columns);
    }
    Ok(catalog)
}

fn serve(
    addr: &str,
    tables: &str,
    data_dir: Option<&str>,
    slow_ms: Option<u64>,
    threads: Option<usize>,
) -> ExitCode {
    let catalog = match parse_tables(tables) {
        Ok(catalog) => catalog,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let db = balg_core::schema::Database::new();
    let config = balg_server::ServerConfig {
        data_dir: data_dir.map(std::path::PathBuf::from),
        slow_ms,
        threads,
        ..balg_server::ServerConfig::default()
    };
    let server = match balg_server::SqlServer::spawn(addr, catalog, db, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot serve on {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("balg-server listening on {}", server.addr());
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}

fn connect(addr: &str) -> ExitCode {
    let mut client = match balg_server::Client::connect(addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("connected to {addr} — SQL statements, :rows NAME, :check, :stats, :quit");
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("balg@{addr}> ");
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" {
            break;
        }
        match client.request(line) {
            Ok(reply) if reply.ok => println!("{}", reply.text),
            Ok(reply) => println!("error: {}", reply.text),
            Err(e) => {
                eprintln!("connection lost: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn repl(incremental: bool, data_dir: Option<&str>) -> ExitCode {
    let mut oneshot = balg_cli::Session::new();
    let mut maintained = match data_dir {
        Some(dir) if incremental => match balg_cli::IncrementalSession::open(dir) {
            Ok(session) => session,
            Err(message) => {
                eprintln!("cannot open data dir {dir}: {message}");
                return ExitCode::FAILURE;
            }
        },
        Some(_) => {
            eprintln!("--data-dir needs --incremental (or --serve)");
            return ExitCode::FAILURE;
        }
        None => balg_cli::IncrementalSession::new(),
    };
    if incremental {
        println!("balg — incremental view maintenance mode. :help for commands.");
    } else {
        println!("balg — Towards Tractable Algebras for Bags (PODS 1993). :help for commands.");
    }
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("{}", if incremental { "balgΔ> " } else { "balg> " });
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let response = if incremental {
            maintained.process_line(line.trim())
        } else {
            oneshot.process_line(line.trim())
        };
        match response {
            balg_cli::Response::Quit => break,
            balg_cli::Response::Text(text) => {
                if !text.is_empty() {
                    println!("{text}");
                }
            }
        }
    }
    ExitCode::SUCCESS
}
