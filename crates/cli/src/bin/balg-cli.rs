//! The interactive BALG shell. Type `:help` for commands.

use std::io::{BufRead, Write};

fn main() {
    let mut session = balg_cli::Session::new();
    println!("balg — Towards Tractable Algebras for Bags (PODS 1993). :help for commands.");
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("balg> ");
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        match session.process_line(line.trim()) {
            balg_cli::Response::Quit => break,
            balg_cli::Response::Text(text) => {
                if !text.is_empty() {
                    println!("{text}");
                }
            }
        }
    }
}
