//! # balg-cli — an interactive shell for the bag algebra
//!
//! A line-oriented session over a named-bag database: evaluate BALG
//! expressions (the ASCII syntax of [`balg_core::parse`]), inspect
//! fragment membership, run the optimizer, and see evaluation metrics —
//! the quantities the paper's complexity theorems bound.
//!
//! The binary's `--incremental` flag switches to an
//! [`IncrementalSession`]: register standing views over the loaded bags,
//! stream `:insert`/`:delete` updates, and watch the views stay
//! consistent — maintained by the ℤ-bag delta engine of
//! `balg-incremental` rather than re-evaluated.
//!
//! ```
//! use balg_cli::{Response, Session};
//!
//! let mut session = Session::new();
//! session.process_line(":load G bag{ [a,b]*2, [b,c] }");
//! let Response::Text(out) = session.process_line("project(G, 2, 1)") else {
//!     panic!("expected text");
//! };
//! assert!(out.contains("[b, a]^2"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use balg_core::eval::{eval_with_metrics, Limits};
use balg_core::expr::Expr;
use balg_core::parse::parse_expr;
use balg_core::rewrite::optimize;
use balg_core::schema::{Database, Schema};
use balg_core::typecheck::check;
use balg_core::value::Value;

/// The outcome of one input line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Response {
    /// Text to display (possibly empty).
    Text(String),
    /// The session should end.
    Quit,
}

/// An interactive session: a database of named bags plus budgets.
pub struct Session {
    db: Database,
    limits: Limits,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// A fresh session with default budgets.
    pub fn new() -> Session {
        Session {
            db: Database::new(),
            limits: Limits::default(),
        }
    }

    /// The current database (for embedding the session elsewhere).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The schema inferred from the stored bags.
    pub fn schema(&self) -> Schema {
        let mut schema = Schema::new();
        for (name, bag) in self.db.iter() {
            if let Some(ty) = Value::Bag(bag.clone()).infer_type() {
                schema = schema.with(name, ty);
            }
        }
        schema
    }

    /// Process one input line.
    pub fn process_line(&mut self, line: &str) -> Response {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Response::Text(String::new());
        }
        if let Some(rest) = line.strip_prefix(':') {
            return self.command(rest);
        }
        self.evaluate(line)
    }

    fn command(&mut self, rest: &str) -> Response {
        let (cmd, args) = match rest.split_once(char::is_whitespace) {
            Some((c, a)) => (c, a.trim()),
            None => (rest, ""),
        };
        match cmd {
            "quit" | "q" | "exit" => Response::Quit,
            "help" | "h" => Response::Text(HELP.trim_end().to_owned()),
            "load" => {
                let Some((name, expr_text)) = args.split_once(char::is_whitespace) else {
                    return Response::Text(":load NAME expr — e.g. :load G bag{ [a,b]*2 }".into());
                };
                match self.eval_expr_text(expr_text.trim()) {
                    Ok((Value::Bag(bag), _)) => {
                        self.db.insert(name, bag);
                        Response::Text(format!("loaded {name}"))
                    }
                    Ok((other, _)) => Response::Text(format!("not a bag: {other}")),
                    Err(message) => Response::Text(message),
                }
            }
            "drop" => {
                let mut db = Database::new();
                for (name, bag) in self.db.iter() {
                    if &**name != args {
                        db.insert(name, bag.clone());
                    }
                }
                self.db = db;
                Response::Text(format!("dropped {args}"))
            }
            "show" => {
                if self.db.is_empty() {
                    return Response::Text("no bags loaded (:load NAME expr)".into());
                }
                let mut out = String::new();
                for (name, bag) in self.db.iter() {
                    let ty = Value::Bag(bag.clone())
                        .infer_type()
                        .map_or_else(|| "?".into(), |t| t.to_string());
                    out.push_str(&format!(
                        "{name} : {ty} — {} distinct, |{name}| = {}\n",
                        bag.distinct_count(),
                        bag.cardinality()
                    ));
                }
                Response::Text(out.trim_end().to_owned())
            }
            "check" => match parse_expr(args) {
                Err(e) => Response::Text(e.to_string()),
                Ok(expr) => match check(&expr, &self.schema()) {
                    Err(e) => Response::Text(format!("type error: {e}")),
                    Ok(analysis) => Response::Text(format!(
                        "type: {}\nBALG level: {} (power nesting {})\ncore BALG: {}{}",
                        analysis.ty,
                        analysis.balg_level(),
                        analysis.power_nesting,
                        analysis.is_core_balg(),
                        extension_notes(&analysis)
                    )),
                },
            },
            "optimize" => match parse_expr(args) {
                Err(e) => Response::Text(e.to_string()),
                Ok(expr) => {
                    let optimized = optimize(&expr, &self.schema());
                    Response::Text(format!("{optimized}"))
                }
            },
            "analyze" => analyze_command(args, &self.schema()),
            "profile" => profile_command(args, &self.db, self.limits.clone()),
            "metrics" => metrics_command(),
            "threads" => threads_command(args),
            other => Response::Text(format!("unknown command :{other} (:help)")),
        }
    }

    fn evaluate(&mut self, text: &str) -> Response {
        match self.eval_expr_text(text) {
            Ok((value, summary)) => Response::Text(format!("{value}\n{summary}")),
            Err(message) => Response::Text(message),
        }
    }

    fn eval_expr_text(&self, text: &str) -> Result<(Value, String), String> {
        let expr: Expr = parse_expr(text).map_err(|e| e.to_string())?;
        let (result, metrics) = eval_with_metrics(&expr, &self.db, self.limits.clone());
        let value = result.map_err(|e| format!("evaluation failed: {e}"))?;
        let summary = format!(
            "— {} steps, max {} distinct, max multiplicity {} ({} bits)",
            metrics.steps,
            metrics.max_distinct_elements,
            metrics.max_multiplicity,
            metrics.max_multiplicity_bits()
        );
        Ok((value, summary))
    }
}

/// The `:analyze EXPR` command, shared by both session kinds: parse,
/// run the static analyzer against the given schema, and render the
/// fact report ([`balg_core::analyze::render_report`]).
fn analyze_command(args: &str, schema: &Schema) -> Response {
    match parse_expr(args) {
        Err(e) => Response::Text(e.to_string()),
        Ok(expr) => match balg_core::analyze::analyze(&expr, schema) {
            Err(e) => Response::Text(format!("analysis error: {e}")),
            Ok(facts) => Response::Text(balg_core::analyze::render_report(&expr, &facts)),
        },
    }
}

/// The `:profile EXPR` command, shared by both session kinds: parse,
/// evaluate under the span profiler, and render the per-operator report
/// ([`balg_core::profile::profile_report`]) — the same renderer the
/// server uses, so the report is byte-equal across surfaces.
fn profile_command(args: &str, db: &Database, limits: Limits) -> Response {
    match balg_core::profile::profile_report(args, db, limits) {
        Ok(report) => Response::Text(report),
        Err(message) => Response::Text(message),
    }
}

/// The `:threads [N|off]` command, shared by both session kinds: report
/// or set the process-wide partition count for intra-query parallel
/// execution. Every setting computes identical results — only
/// scheduling differs — so this is purely a performance knob.
fn threads_command(args: &str) -> Response {
    match args {
        "" => Response::Text(format!(
            "parallel partitions: {}",
            balg_core::pool::default_parallelism()
        )),
        "off" => {
            balg_core::pool::set_default_parallelism(1);
            Response::Text("parallel execution off (serial paths pinned)".into())
        }
        raw => match raw.parse::<usize>() {
            Ok(n) if n >= 1 => {
                balg_core::pool::set_default_parallelism(n);
                Response::Text(format!(
                    "parallel partitions: {}",
                    balg_core::pool::default_parallelism()
                ))
            }
            _ => Response::Text(":threads wants a positive partition count or `off`".into()),
        },
    }
}

/// The `:metrics` command, shared by both session kinds: the
/// process-global registry in Prometheus exposition format.
fn metrics_command() -> Response {
    match balg_obs::global() {
        Some(registry) => Response::Text(registry.render_prometheus()),
        None => Response::Text("no metrics registry installed".into()),
    }
}

fn extension_notes(analysis: &balg_core::typecheck::Analysis) -> String {
    let mut notes = Vec::new();
    if analysis.uses_powerbag {
        notes.push("powerbag");
    }
    if analysis.uses_ifp {
        notes.push("IFP");
    }
    if analysis.uses_nest {
        notes.push("nest");
    }
    if analysis.uses_order {
        notes.push("order predicates");
    }
    if notes.is_empty() {
        String::new()
    } else {
        format!(" (extensions: {})", notes.join(", "))
    }
}

const HELP: &str = "
commands:
  :load NAME expr     evaluate expr and store the bag as NAME
  :drop NAME          remove a bag
  :show               list bags with types and sizes
  :check expr         fragment analysis (BALG level, power nesting)
  :analyze expr       static facts: type, set-ness, cost class,
                      per-base linearity (the analyze.rs lattice)
  :profile expr       evaluate with per-operator timing: wall time, step
                      charge, cardinality, and fast-path tags per node
  :metrics            process metrics in Prometheus text format
  :threads [N|off]    set/show the parallel partition count (same
                      results at every setting — a performance knob)
  :optimize expr      print the rewritten expression
  :quit               leave
anything else is parsed as a BALG expression and evaluated, e.g.
  bag{ [a,b]*2, [b,c] }
  project(select(x, eq(attr(x,1), sym(a)), G), 2)
  count(G)    sum(...)    avg(...)    powerset(G)
";

/// An interactive session with **incrementally maintained views** — the
/// `--incremental` REPL mode of the binary. Base bags load as in
/// [`Session`]; `:view` registers a standing query on the ℤ-bag delta
/// engine, `:insert`/`:delete` stream updates through it, and plain
/// expressions may read both bases and view results.
pub struct IncrementalSession {
    backend: balg_incremental::AnyRuntime,
}

impl Default for IncrementalSession {
    fn default() -> Self {
        IncrementalSession::new()
    }
}

impl IncrementalSession {
    /// A fresh in-memory incremental session with default budgets.
    pub fn new() -> IncrementalSession {
        IncrementalSession {
            backend: balg_incremental::AnyRuntime::from(balg_incremental::ViewRuntime::new()),
        }
    }

    /// A **durable** incremental session over `data_dir` (the binary's
    /// `--data-dir` flag): loads the latest snapshot, replays the WAL,
    /// and logs every later mutation before applying it.
    pub fn open(data_dir: impl AsRef<std::path::Path>) -> Result<IncrementalSession, String> {
        let durable = balg_incremental::ViewRuntime::open(data_dir).map_err(|e| e.to_string())?;
        Ok(IncrementalSession {
            backend: balg_incremental::AnyRuntime::from(durable),
        })
    }

    /// The underlying view runtime.
    pub fn runtime(&self) -> &balg_incremental::ViewRuntime {
        self.backend.runtime()
    }

    /// The database plain expressions evaluate against: the base bags
    /// plus every view result under its view name.
    fn query_db(&self) -> Database {
        let runtime = self.backend.runtime();
        let mut db = runtime.database().clone();
        for (name, view) in runtime.views() {
            db.insert(name, view.result().clone());
        }
        db
    }

    /// The schema plain expressions see: inferred from the bases plus
    /// the view results (the same bags [`Self::query_db`] exposes).
    fn schema(&self) -> Schema {
        let mut schema = Schema::new();
        for (name, bag) in self.query_db().iter() {
            if let Some(ty) = Value::Bag(bag.clone()).infer_type() {
                schema = schema.with(name, ty);
            }
        }
        schema
    }

    fn eval_bag_text(&self, text: &str) -> Result<balg_core::bag::Bag, String> {
        let expr = parse_expr(text).map_err(|e| e.to_string())?;
        let db = self.query_db();
        let (result, _) = eval_with_metrics(&expr, &db, self.backend.runtime().limits().clone());
        match result.map_err(|e| format!("evaluation failed: {e}"))? {
            Value::Bag(bag) => Ok(bag),
            other => Err(format!("not a bag: {other}")),
        }
    }

    /// Process one input line.
    pub fn process_line(&mut self, line: &str) -> Response {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Response::Text(String::new());
        }
        if let Some(rest) = line.strip_prefix(':') {
            return self.command(rest);
        }
        match self.eval_bag_text(line) {
            Ok(bag) => Response::Text(bag.to_string()),
            Err(message) => Response::Text(message),
        }
    }

    fn command(&mut self, rest: &str) -> Response {
        let (cmd, args) = match rest.split_once(char::is_whitespace) {
            Some((c, a)) => (c, a.trim()),
            None => (rest, ""),
        };
        let name_and_expr = |args: &str| -> Result<(String, String), String> {
            args.split_once(char::is_whitespace)
                .map(|(n, e)| (n.to_owned(), e.trim().to_owned()))
                .ok_or_else(|| "usage: :<cmd> NAME expr".to_owned())
        };
        match cmd {
            "quit" | "q" | "exit" => Response::Quit,
            "help" | "h" => Response::Text(INCREMENTAL_HELP.trim_end().to_owned()),
            "load" => match name_and_expr(args).and_then(|(name, text)| {
                // A base may not shadow a view: plain expressions would
                // read one bag while :insert/:delete update the other.
                if self.backend.runtime().view(&name).is_some() {
                    return Err(format!("{name} is a view (:dropview {name} first)"));
                }
                let bag = self.eval_bag_text(&text)?;
                self.backend
                    .load_base(&name, bag)
                    .map_err(|e| e.to_string())?;
                Ok(format!("loaded {name}"))
            }) {
                Ok(message) | Err(message) => Response::Text(message),
            },
            "view" => match name_and_expr(args).and_then(|(name, text)| {
                if self.backend.runtime().database().get(&name).is_some() {
                    return Err(format!("{name} is a base bag — pick another view name"));
                }
                let expr = parse_expr(&text).map_err(|e| e.to_string())?;
                self.backend
                    .create_view(&name, expr)
                    .map_err(|e| e.to_string())?;
                let result = self
                    .backend
                    .runtime()
                    .view(&name)
                    .expect("view registered above");
                Ok(format!("view {name} = {result}"))
            }) {
                Ok(message) | Err(message) => Response::Text(message),
            },
            "insert" | "delete" => {
                let delete = cmd == "delete";
                match name_and_expr(args)
                    .and_then(|(name, text)| self.apply_update(&name, &text, delete))
                {
                    Ok(message) | Err(message) => Response::Text(message),
                }
            }
            "show" => {
                let mut out = String::new();
                for (name, bag) in self.backend.runtime().database().iter() {
                    out.push_str(&format!(
                        "base {name}: {} distinct, |{name}| = {}\n",
                        bag.distinct_count(),
                        bag.cardinality()
                    ));
                }
                for (name, view) in self.backend.runtime().views() {
                    out.push_str(&format!(
                        "view {name} = {}: {} distinct\n",
                        view.expr(),
                        view.result().distinct_count()
                    ));
                }
                if out.is_empty() {
                    out.push_str("nothing loaded (:load NAME expr, :view NAME expr)");
                }
                Response::Text(out.trim_end().to_owned())
            }
            "stats" => Response::Text(balg_incremental::render_stats(
                self.backend.runtime(),
                self.backend.durability().as_ref(),
            )),
            "check" => {
                let result = if args.is_empty() {
                    self.backend.runtime().verify_all()
                } else {
                    self.backend.runtime().verify(args)
                };
                match result {
                    Ok(true) => Response::Text("consistent".into()),
                    Ok(false) => Response::Text("INCONSISTENT".into()),
                    Err(e) => Response::Text(e.to_string()),
                }
            }
            "analyze" => analyze_command(args, &self.schema()),
            "profile" => profile_command(
                args,
                &self.query_db(),
                self.backend.runtime().limits().clone(),
            ),
            "metrics" => metrics_command(),
            "threads" => threads_command(args),
            "dropview" => match self.backend.drop_view(args) {
                Ok(true) => Response::Text(format!("dropped view {args}")),
                Ok(false) => Response::Text(format!("no view named {args}")),
                Err(e) => Response::Text(e.to_string()),
            },
            "checkpoint" => match self.backend.checkpoint() {
                Ok(Some(d)) => Response::Text(format!(
                    "checkpoint complete (snapshot lsn {})",
                    d.snapshot_lsn
                )),
                Ok(None) => {
                    Response::Text("this session is in-memory — restart with --data-dir DIR".into())
                }
                Err(e) => Response::Text(e.to_string()),
            },
            other => Response::Text(format!("unknown command :{other} (:help)")),
        }
    }

    fn apply_update(&mut self, name: &str, text: &str, delete: bool) -> Result<String, String> {
        let bag = self.eval_bag_text(text)?;
        let cardinality = bag.cardinality();
        let mut batch = balg_incremental::UpdateBatch::new();
        for (value, mult) in bag.iter() {
            batch.change(
                name,
                value.clone(),
                balg_core::zbag::ZInt::from_parts(delete, mult.clone()),
            );
        }
        self.backend
            .apply(&batch)
            .map_err(|e| format!("update rejected: {e}"))?;
        let sign = if delete { "-" } else { "+" };
        Ok(format!("{name} {sign}{cardinality}"))
    }
}

const INCREMENTAL_HELP: &str = "
incremental mode — standing views maintained by the ℤ-bag delta engine:
  :load NAME expr     evaluate expr and load the bag as base NAME
  :view NAME expr     register expr as a maintained view over the bases
  :insert NAME expr   add the elements of a bag expr to base NAME
  :delete NAME expr   remove the elements of a bag expr from base NAME
  :show               list bases and views
  :check [NAME]       compare a view (or all) against full re-evaluation
  :stats              delta-engine and join-index cache counters (plus
                      WAL position and replay counters when --data-dir
                      is set)
  :analyze expr       static facts: type, set-ness, cost class,
                      per-base linearity (what the delta engine sees)
  :profile expr       evaluate one-shot with per-operator timing (reads
                      bases plus view results, like a plain line)
  :metrics            process metrics in Prometheus text format
  :threads [N|off]    set/show the parallel partition count (same
                      results at every setting — a performance knob)
  :dropview NAME      unregister a view
  :checkpoint         snapshot a durable session and truncate its WAL
  :quit               leave
plain lines evaluate one-shot over the bases plus the view results, e.g.
  :load G bag{ [a,b]*2, [b,c] }
  :view REV project(G, 2, 1)
  :insert G bag{ [c,d] }
  REV
";

#[cfg(test)]
mod tests {
    use super::*;

    fn text(response: Response) -> String {
        match response {
            Response::Text(t) => t,
            Response::Quit => panic!("unexpected quit"),
        }
    }

    #[test]
    fn load_show_evaluate() {
        let mut session = Session::new();
        let out = text(session.process_line(":load G bag{ [a,b]*2, [b,c] }"));
        assert_eq!(out, "loaded G");
        let out = text(session.process_line(":show"));
        assert!(out.contains("G :"), "{out}");
        assert!(out.contains("|G| = 3"), "{out}");
        let out = text(session.process_line("project(G, 2, 1)"));
        assert!(out.contains("[b, a]^2"), "{out}");
        assert!(out.contains("steps"), "{out}");
    }

    #[test]
    fn check_reports_fragment() {
        let mut session = Session::new();
        session.process_line(":load G bag{ [a,b] }");
        let out = text(session.process_line(":check destroy(powerset(G))"));
        assert!(out.contains("BALG level: 2"), "{out}");
        let out = text(session.process_line(":check ifp(T, T, G)"));
        assert!(out.contains("IFP"), "{out}");
    }

    #[test]
    fn analyze_command_reports_facts() {
        let mut session = Session::new();
        session.process_line(":load G bag{ [a,b]*2, [b,c] }");
        let out = text(session.process_line(":analyze dedup(project(G, 1))"));
        assert!(out.contains("type: {{[U]}}"), "{out}");
        assert!(out.contains("duplicate-free (certified)"), "{out}");
        assert!(out.contains("cannot error"), "{out}");
        assert!(out.contains("polynomial"), "{out}");
        assert!(out.contains("G: non-linear"), "{out}");
        let out = text(session.process_line(":analyze powerset(G)"));
        assert!(out.contains("exponential"), "{out}");
        assert!(out.contains("TooLarge risk"), "{out}");
        // Analysis errors are messages, not panics.
        let out = text(session.process_line(":analyze attr(G, 0)"));
        assert!(out.contains("analysis error"), "{out}");
        assert!(out.contains("1-based"), "{out}");
        // The incremental session answers the same command over its
        // bases and views.
        let mut inc = IncrementalSession::new();
        inc.process_line(":load G bag{ [a,b]*2 }");
        inc.process_line(":view REV project(G, 2, 1)");
        let out = text(inc.process_line(":analyze unionp(G, REV)"));
        assert!(out.contains("G: linear"), "{out}");
        assert!(out.contains("REV: linear"), "{out}");
    }

    #[test]
    fn optimize_command() {
        let mut session = Session::new();
        session.process_line(":load G bag{ [a,b] }");
        let out = text(session.process_line(":optimize select(x, true, G)"));
        assert_eq!(out, "G");
    }

    #[test]
    fn errors_are_messages_not_panics() {
        let mut session = Session::new();
        let out = text(session.process_line("frob(G)"));
        assert!(out.contains("parse error"), "{out}");
        let out = text(session.process_line("count(Missing)"));
        assert!(out.contains("unbound variable"), "{out}");
        let out = text(session.process_line(":nonsense"));
        assert!(out.contains("unknown command"), "{out}");
    }

    #[test]
    fn drop_and_quit() {
        let mut session = Session::new();
        session.process_line(":load G bag{ [a,b] }");
        text(session.process_line(":drop G"));
        let out = text(session.process_line(":show"));
        assert!(out.contains("no bags"), "{out}");
        assert_eq!(session.process_line(":quit"), Response::Quit);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let mut session = Session::new();
        assert_eq!(session.process_line(""), Response::Text(String::new()));
        assert_eq!(
            session.process_line("# note"),
            Response::Text(String::new())
        );
    }

    #[test]
    fn incremental_view_lifecycle() {
        let mut session = IncrementalSession::new();
        let out = text(session.process_line(":load G bag{ [a,b]*2, [b,c] }"));
        assert_eq!(out, "loaded G");
        let out = text(session.process_line(":view REV project(G, 2, 1)"));
        assert!(out.contains("view REV"), "{out}");
        assert!(out.contains("[b, a]^2"), "{out}");

        let out = text(session.process_line(":insert G bag{ [c,d] }"));
        assert_eq!(out, "G +1");
        let out = text(session.process_line("REV"));
        assert!(out.contains("[d, c]"), "{out}");
        let out = text(session.process_line(":delete G bag{ [b,c] }"));
        assert_eq!(out, "G -1");
        let out = text(session.process_line("REV"));
        assert!(!out.contains("[c, b]"), "{out}");

        let out = text(session.process_line(":check"));
        assert_eq!(out, "consistent");
        let out = text(session.process_line(":stats"));
        assert!(out.contains("linear delta ops"), "{out}");
        let out = text(session.process_line(":show"));
        assert!(out.contains("base G"), "{out}");
        assert!(out.contains("view REV"), "{out}");
    }

    #[test]
    fn incremental_errors_are_messages() {
        let mut session = IncrementalSession::new();
        let out = text(session.process_line(":view V project(Missing, 1)"));
        assert!(out.contains("unbound variable"), "{out}");
        session.process_line(":load G bag{ [a,b] }");
        let out = text(session.process_line(":delete G bag{ [z,z] }"));
        assert!(out.contains("update rejected"), "{out}");
        let out = text(session.process_line(":dropview nope"));
        assert!(out.contains("no view"), "{out}");
        assert_eq!(session.process_line(":quit"), Response::Quit);
    }

    #[test]
    fn dropped_views_are_reported_in_stats() {
        let mut session = IncrementalSession::new();
        session.process_line(":load G bag{ [a], [b] }");
        text(session.process_line(":view P powerset(G)"));
        // Grow G past the powerset element budget: maintenance and the
        // degraded re-derivation both fail, so the runtime drops P (the
        // predicted powerset size is rejected up front — nothing huge is
        // ever materialized).
        let elems: Vec<String> = (0..21).map(|i| format!("[x{i}]")).collect();
        let line = format!(":insert G bag{{ {} }}", elems.join(", "));
        let out = text(session.process_line(&line));
        assert!(out.contains("update rejected"), "{out}");
        let out = text(session.process_line(":stats"));
        assert!(out.contains("dropped view P"), "{out}");
        let out = text(session.process_line(":check"));
        assert!(out.contains("dropped"), "{out}");
    }

    #[test]
    fn incremental_names_cannot_shadow() {
        let mut session = IncrementalSession::new();
        session.process_line(":load G bag{ [a,b]*2 }");
        // A view may not take a base's name...
        let out = text(session.process_line(":view G dedup(G)"));
        assert!(out.contains("base bag"), "{out}");
        // ...and a base may not take a view's name.
        session.process_line(":view D dedup(G)");
        let out = text(session.process_line(":load D bag{ [x,y] }"));
        assert!(out.contains("is a view"), "{out}");
    }

    #[test]
    fn counting_pipeline() {
        let mut session = Session::new();
        session.process_line(":load R bag{ [x]*5, [y]*2 }");
        let out = text(session.process_line("count(R)"));
        assert!(out.contains("[a]^7"), "{out}");
        // |R| > 6? card comparison via minus:
        let out = text(session.process_line("minus(count(R), int(6))"));
        assert!(out.contains("[a]"), "{out}");
        let out = text(session.process_line("minus(count(R), int(7))"));
        assert!(out.starts_with("{{}}"), "{out}");
    }
}
