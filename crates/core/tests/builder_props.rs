//! Adversarial property tests for `BagBuilder`'s out-of-order
//! overflow-buffer path — named as untested in ROADMAP's hot-spot notes.
//!
//! The builder keeps a sorted prefix plus an unsorted overflow of
//! out-of-order keys, bulk-merged when the overflow passes
//! `max(32, sorted/2)`. The delicate cases are interleaved duplicate keys
//! that straddle that boundary (the same key living in the sorted prefix,
//! the overflow, *and* arriving again after a compaction) and mid-build
//! budget checks taken while the overflow is non-empty. Everything here
//! is pinned against a `BTreeMap` model and against element-by-element
//! `Bag::insert`.

use std::collections::BTreeMap;

use balg_core::bag::{Bag, BagBuilder};
use balg_core::natural::Natural;
use balg_core::value::Value;
use proptest::prelude::*;

type Model = BTreeMap<Value, Natural>;

fn nat(v: u64) -> Natural {
    Natural::from(v)
}

/// An adversarial push script: interleaves ascending in-order runs (which
/// grow the sorted prefix) with bursts of descending out-of-order keys
/// (which grow the overflow), over a small key domain so the same key
/// recurs in every region. `(ascending?, start, len, mult)` per segment.
fn segments() -> impl Strategy<Value = Vec<(bool, i64, i64, u64)>> {
    proptest::collection::vec((any::<bool>(), 0i64..96, 1i64..48, 0u64..4), 1..12)
}

fn script_from_segments(segments: &[(bool, i64, i64, u64)]) -> Vec<(Value, Natural)> {
    let mut script = Vec::new();
    for &(ascending, start, len, mult) in segments {
        for offset in 0..len {
            let key = if ascending {
                start + offset
            } else {
                start + len - offset
            };
            script.push((Value::int(key), nat(mult)));
        }
    }
    script
}

fn model_from(script: &[(Value, Natural)]) -> Model {
    let mut model = Model::new();
    for (value, mult) in script {
        if !mult.is_zero() {
            *model.entry(value.clone()).or_default() += mult;
        }
    }
    model
}

fn assert_matches_model(bag: &Bag, model: &Model) {
    assert_eq!(bag.distinct_count(), model.len());
    for ((bv, bm), (mv, mm)) in bag.iter().zip(model.iter()) {
        assert_eq!(bv, mv);
        assert_eq!(bm, mm);
    }
    assert!(bag.debug_validate(), "bag invariant violated");
}

proptest! {
    /// Interleaved duplicate keys straddling the bulk-merge boundary:
    /// the built bag must match the map model and the one-at-a-time
    /// `Bag::insert` reference exactly.
    #[test]
    fn overflow_path_matches_model(raw in segments()) {
        let script = script_from_segments(&raw);
        let model = model_from(&script);
        let mut builder = BagBuilder::new();
        let mut reference = Bag::new();
        for (value, mult) in &script {
            builder.push(value.clone(), mult.clone());
            reference.insert_with_multiplicity(value.clone(), mult.clone());
        }
        let built = builder.build();
        assert_matches_model(&built, &model);
        prop_assert_eq!(built, reference);
    }

    /// Mid-build budget trips with a non-empty overflow buffer:
    /// `ensure_distinct_within` must error exactly when the true distinct
    /// count exceeds the limit, reporting the exact count — never a value
    /// inflated by overflow duplicates, never a miss.
    #[test]
    fn budget_trips_are_exact_mid_build(raw in segments(), limit in 1u64..24) {
        let script = script_from_segments(&raw);
        let mut builder = BagBuilder::new();
        let mut model = Model::new();
        let mut tripped = false;
        for (value, mult) in script {
            if !mult.is_zero() {
                *model.entry(value.clone()).or_default() += &mult;
            }
            builder.push(value, mult);
            let true_distinct = model.len() as u64;
            match builder.ensure_distinct_within(limit) {
                Ok(()) => prop_assert!(
                    true_distinct <= limit,
                    "missed a budget violation: {true_distinct} > {limit}"
                ),
                Err(observed) => {
                    prop_assert!(true_distinct > limit);
                    prop_assert_eq!(observed, true_distinct, "inexact observed count");
                    tripped = true; // the evaluator stops at the first trip
                    break;
                }
            }
            // The upper bound never undercounts.
            prop_assert!(builder.distinct_upper_bound() as u64 >= true_distinct);
        }
        if !tripped {
            let built = builder.build();
            assert_matches_model(&built, &model);
        }
    }
}

/// A deterministic straddle: the same keys placed in the sorted prefix,
/// then re-pushed as part of an overflow burst sized exactly to the
/// compaction threshold, then pushed again after the bulk merge.
#[test]
fn duplicates_across_the_compaction_boundary() {
    let mut builder = BagBuilder::new();
    let mut model = Model::new();
    let push = |builder: &mut BagBuilder, model: &mut Model, key: i64, mult: u64| {
        builder.push(Value::int(key), nat(mult));
        *model.entry(Value::int(key)).or_default() += &nat(mult);
    };
    // Sorted prefix 100..140.
    for key in 100..140 {
        push(&mut builder, &mut model, key, 1);
    }
    // 32 new out-of-order keys (descending, interleaved with duplicates
    // of sorted keys that merge in place) — the 32nd new key triggers the
    // bulk merge with the duplicates still pending.
    for i in 0..32 {
        push(&mut builder, &mut model, 99 - i, 2); // new: goes to overflow
        push(&mut builder, &mut model, 100 + i, 3); // duplicate of sorted
        if i % 4 == 0 {
            push(&mut builder, &mut model, 99 - i, 5); // duplicate inside overflow
        }
    }
    // After the merge, hit the same keys once more from a third region.
    for i in 0..32 {
        push(&mut builder, &mut model, 99 - i, 7);
    }
    let built = builder.build();
    assert_matches_model(&built, &model);
}

/// The budget must also be exact when the overflow holds duplicates of
/// one key (upper bound inflated) right at the trip point.
#[test]
fn budget_not_tripped_by_overflow_duplicates() {
    let mut builder = BagBuilder::new();
    // Sorted prefix of 6 distinct keys.
    for key in 10..16 {
        builder.push_one(Value::int(key));
    }
    // Four pushes of the SAME new out-of-order key: upper bound says 10,
    // truth says 7.
    for _ in 0..4 {
        builder.push_one(Value::int(5));
    }
    assert_eq!(builder.distinct_upper_bound(), 10);
    assert!(builder.ensure_distinct_within(7).is_ok(), "false positive");
    assert_eq!(builder.ensure_distinct_within(6), Err(7));
}
