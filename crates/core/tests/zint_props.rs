//! Property tests for the signed multiplicity group `ZInt`, cross-checked
//! against an `i128` reference model — the one `zbag` layer PR 4 shipped
//! without its own proptest.
//!
//! Magnitudes are drawn from three bands: ordinary `i64`-sized values,
//! and windows straddling `±u64::MAX` — the boundary where the underlying
//! `Natural` spills from the inline word to heap limbs, which is exactly
//! where a sign/monus bookkeeping slip would hide.

use balg_core::natural::Natural;
use balg_core::zbag::ZInt;
use proptest::prelude::*;

/// A `Natural` from a `u128` (splitting at the 64-bit limb boundary).
fn nat(v: u128) -> Natural {
    &(&Natural::from((v >> 64) as u64) * &Natural::pow2(64)) + &Natural::from(v as u64)
}

/// The reference embedding `i128 → ZInt`.
fn z(v: i128) -> ZInt {
    ZInt::from_parts(v < 0, nat(v.unsigned_abs()))
}

/// Values from the three interesting bands. Every band stays within
/// `±2^65`, so sums of two values always fit the `i128` model.
fn value() -> BoxedStrategy<i128> {
    prop_oneof![
        any::<i64>().prop_map(i128::from),
        (0u64..33).prop_map(|d| u64::MAX as i128 - 16 + d as i128),
        (0u64..33).prop_map(|d| -(u64::MAX as i128) + 16 - d as i128),
    ]
    .boxed()
}

/// Canonical form: zero is never negative.
fn assert_canonical(x: &ZInt) {
    assert!(
        !x.is_zero() || !x.is_negative(),
        "negative zero leaked: {x}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn add_matches_i128(a in value(), b in value()) {
        let sum = z(a).add(&z(b));
        assert_canonical(&sum);
        prop_assert_eq!(sum, z(a + b));
    }

    #[test]
    fn add_is_commutative_with_neg_inverse(a in value(), b in value()) {
        prop_assert_eq!(z(a).add(&z(b)), z(b).add(&z(a)));
        let cancelled = z(a).add(&z(a).neg());
        prop_assert!(cancelled.is_zero());
        assert_canonical(&cancelled);
    }

    #[test]
    fn neg_matches_i128_and_is_involutive(a in value()) {
        prop_assert_eq!(z(a).neg(), z(-a));
        prop_assert_eq!(z(a).neg().neg(), z(a));
        assert_canonical(&z(a).neg());
    }

    #[test]
    fn mul_matches_i128(a in any::<i32>(), b in value()) {
        // One factor stays 32-bit so the model product fits in i128 even
        // against the u64-boundary band.
        let prod = z(i128::from(a)).mul(&z(b));
        assert_canonical(&prod);
        prop_assert_eq!(prod, z(i128::from(a) * b));
    }

    #[test]
    fn scale_matches_i128(a in value(), n in any::<u32>()) {
        let scaled = z(a).scale(&Natural::from(u64::from(n)));
        assert_canonical(&scaled);
        prop_assert_eq!(scaled, z(a * i128::from(n)));
    }

    #[test]
    fn ord_matches_i128(a in value(), b in value()) {
        prop_assert_eq!(z(a).cmp(&z(b)), a.cmp(&b));
    }

    #[test]
    fn sign_accessors_match_i128(a in value()) {
        let x = z(a);
        prop_assert_eq!(x.is_zero(), a == 0);
        prop_assert_eq!(x.is_negative(), a < 0);
        prop_assert_eq!(x.magnitude(), &nat(a.unsigned_abs()));
        match x.to_natural() {
            Some(n) => {
                prop_assert!(a >= 0);
                prop_assert_eq!(n, nat(a.unsigned_abs()));
            }
            None => prop_assert!(a < 0),
        }
    }

    #[test]
    fn from_parts_normalizes_negative_zero(negative in any::<bool>()) {
        let zero = ZInt::from_parts(negative, Natural::zero());
        prop_assert!(zero.is_zero());
        prop_assert!(!zero.is_negative());
        prop_assert_eq!(zero, ZInt::zero());
    }
}

/// Deterministic spot checks pinned exactly at the inline/limb spill
/// boundary (`u64::MAX` ± 1), where `Natural` changes representation.
#[test]
fn arithmetic_across_the_limb_spill_boundary() {
    let max = u64::MAX as i128;
    // Crossing upward by addition…
    assert_eq!(z(max).add(&ZInt::one()), z(max + 1));
    // …and back down, through zero, and past it.
    assert_eq!(z(max + 1).add(&z(-1)), z(max));
    assert_eq!(z(max + 1).add(&z(-(max + 1))), ZInt::zero());
    assert_eq!(z(max + 1).add(&z(-(max + 2))), z(-1));
    // Subtraction that lands exactly on the boundary from both sides.
    assert_eq!(z(-(max + 1)).add(&ZInt::one()), z(-max));
    assert_eq!(z(2 * max), z(max).add(&z(max)));
    // Multiplication across the boundary.
    assert_eq!(z(max).mul(&z(2)), z(2 * max));
    assert_eq!(z(-max).mul(&z(2)), z(-2 * max));
    // Ordering around the boundary, both signs.
    assert!(z(max) < z(max + 1));
    assert!(z(-(max + 1)) < z(-max));
}
