//! Unit-level property tests of the bag algebra's laws, directly against
//! `balg_core::bag::Bag` — coverage that is independent of the big
//! workspace-level integration suites (`tests/algebra_laws.rs`), so a
//! regression in a primitive operator is caught inside the crate that
//! owns it.

use balg_core::bag::Bag;
use balg_core::natural::Natural;
use balg_core::value::Value;
use proptest::prelude::*;

/// Strategy: a flat binary bag (tuples of two small ints) with
/// multiplicities up to 7.
fn binary_bag() -> impl Strategy<Value = Bag> {
    proptest::collection::btree_map((0u8..4, 0u8..4), 1u64..8, 0..8).prop_map(|entries| {
        Bag::from_counted(entries.into_iter().map(|((a, b), mult)| {
            (
                Value::tuple([Value::int(a as i64), Value::int(b as i64)]),
                Natural::from(mult),
            )
        }))
    })
}

/// Strategy: a flat unary bag over at most 5 atoms.
fn unary_bag() -> impl Strategy<Value = Bag> {
    proptest::collection::btree_map(0u8..5, 1u64..8, 0..5).prop_map(|entries| {
        Bag::from_counted(
            entries
                .into_iter()
                .map(|(atom, mult)| (Value::tuple([Value::int(atom as i64)]), Natural::from(mult))),
        )
    })
}

proptest! {
    #[test]
    fn additive_union_is_commutative(a in unary_bag(), b in unary_bag()) {
        prop_assert_eq!(a.additive_union(&b), b.additive_union(&a));
    }

    #[test]
    fn additive_union_is_associative(a in unary_bag(), b in unary_bag(), c in unary_bag()) {
        prop_assert_eq!(
            a.additive_union(&b).additive_union(&c),
            a.additive_union(&b.additive_union(&c))
        );
    }

    #[test]
    fn empty_bag_is_the_additive_unit(a in unary_bag()) {
        prop_assert_eq!(a.additive_union(&Bag::new()), a.clone());
        prop_assert_eq!(Bag::new().additive_union(&a), a);
    }

    #[test]
    fn additive_union_adds_multiplicities_pointwise(a in unary_bag(), b in unary_bag()) {
        let union = a.additive_union(&b);
        for value in a.elements().chain(b.elements()) {
            prop_assert_eq!(
                union.multiplicity(value),
                &a.multiplicity(value) + &b.multiplicity(value)
            );
        }
    }

    #[test]
    fn dedup_is_idempotent(a in unary_bag()) {
        let once = a.dedup();
        prop_assert_eq!(once.dedup(), once);
    }

    #[test]
    fn dedup_forgets_exactly_multiplicity(a in unary_bag()) {
        let deduped = a.dedup();
        prop_assert_eq!(deduped.distinct_count(), a.distinct_count());
        prop_assert!(deduped.iter().all(|(_, m)| m.is_one()));
        prop_assert!(deduped.elements().all(|v| a.contains(v)));
    }

    #[test]
    fn projection_preserves_cardinality(a in binary_bag()) {
        // π never drops occurrences: images accumulate multiplicity.
        let projected = a.project(&[1]).unwrap();
        prop_assert_eq!(projected.cardinality(), a.cardinality());
        let swapped = a.project(&[2, 1]).unwrap();
        prop_assert_eq!(swapped.cardinality(), a.cardinality());
    }

    #[test]
    fn projection_composes(a in binary_bag()) {
        // π₁ = π₁ ∘ π₂,₁ ∘ π₂,₁ — double swap is the identity.
        let double_swap = a.project(&[2, 1]).unwrap().project(&[2, 1]).unwrap();
        prop_assert_eq!(double_swap, a.clone());
        prop_assert_eq!(
            a.project(&[2, 1]).unwrap().project(&[2]).unwrap(),
            a.project(&[1]).unwrap()
        );
    }

    #[test]
    fn scale_distributes_over_additive_union(a in unary_bag(), b in unary_bag(), k in 1u64..5) {
        let factor = Natural::from(k);
        prop_assert_eq!(
            a.additive_union(&b).scale(&factor),
            a.scale(&factor).additive_union(&b.scale(&factor))
        );
    }

    #[test]
    fn monus_then_add_back_is_max_union(a in unary_bag(), b in unary_bag()) {
        // The [Alb91] identity the optimizer relies on.
        prop_assert_eq!(a.subtract(&b).additive_union(&b), a.max_union(&b));
    }

    #[test]
    fn intersection_bounds_both_sides(a in unary_bag(), b in unary_bag()) {
        let meet = a.intersect(&b);
        prop_assert!(meet.is_subbag_of(&a));
        prop_assert!(meet.is_subbag_of(&b));
        // And it is the greatest such bag on shared elements.
        for value in meet.elements() {
            prop_assert_eq!(
                meet.multiplicity(value),
                a.multiplicity(value).min(b.multiplicity(value))
            );
        }
    }

    #[test]
    fn nest_then_destroy_round_trips_content(a in binary_bag()) {
        // Grouping by the first attribute and flattening the groups
        // preserves the total number of grouped occurrences.
        let nested = a.nest(&[1]).unwrap();
        let total: Natural = nested
            .iter()
            .map(|(group, mult)| {
                let inner = group
                    .as_tuple()
                    .and_then(|fields| fields.last())
                    .and_then(|v| v.as_bag())
                    .expect("nest produces (key, group) tuples");
                &inner.cardinality() * mult
            })
            .sum();
        prop_assert_eq!(total, a.cardinality());
    }
}
