//! Differential property tests pinning the sorted-slice `Bag`
//! representation against a retained `BTreeMap<Value, Natural>` reference
//! model — the representation the bag used before PR 3. Every operation
//! is computed twice, once by `Bag` and once by naive map arithmetic, and
//! the results must agree; each produced bag is also checked against the
//! representation invariant (strictly ascending keys, no zeros).

use std::collections::BTreeMap;

use balg_core::bag::{Bag, BagBuilder};
use balg_core::natural::Natural;
use balg_core::value::Value;
use proptest::prelude::*;

type Model = BTreeMap<Value, Natural>;

fn nat(v: u64) -> Natural {
    Natural::from(v)
}

/// A raw insertion script: keys from a tiny domain (forcing collisions)
/// with multiplicities including zero (which must be dropped).
fn script() -> impl Strategy<Value = Vec<(i64, u64)>> {
    proptest::collection::vec((0i64..10, 0u64..6), 0..24)
}

fn tuple_script() -> impl Strategy<Value = Vec<((i64, i64), u64)>> {
    proptest::collection::vec(((0i64..4, 0i64..4), 1u64..5), 0..8)
}

fn model_from(script: &[(Value, Natural)]) -> Model {
    let mut model = Model::new();
    for (value, mult) in script {
        if !mult.is_zero() {
            *model.entry(value.clone()).or_default() += mult;
        }
    }
    model
}

fn bag_matches_model(bag: &Bag, model: &Model) -> bool {
    bag.distinct_count() == model.len()
        && bag
            .iter()
            .zip(model.iter())
            .all(|((bv, bm), (mv, mm))| bv == mv && bm == mm)
}

/// The representation invariant the sorted slice must uphold — the same
/// check [`Bag::debug_validate`] runs at every builder exit.
fn assert_invariant(bag: &Bag) {
    assert!(
        bag.debug_validate(),
        "bag invariant violated (unsorted keys or stored zero): {bag}"
    );
}

fn atoms_script_to_values(script: Vec<(i64, u64)>) -> Vec<(Value, Natural)> {
    script
        .into_iter()
        .map(|(k, m)| (Value::int(k), nat(m)))
        .collect()
}

proptest! {
    #[test]
    fn construction_agrees_with_map_model(raw in script()) {
        let script = atoms_script_to_values(raw);
        let model = model_from(&script);

        // Three construction paths must coincide: COW inserts, the
        // builder, and the bulk constructor.
        let mut inserted = Bag::new();
        for (value, mult) in &script {
            inserted.insert_with_multiplicity(value.clone(), mult.clone());
        }
        let mut builder = BagBuilder::new();
        for (value, mult) in &script {
            builder.push(value.clone(), mult.clone());
        }
        let built = builder.build();
        let bulk = Bag::from_counted(script.iter().cloned());

        for bag in [&inserted, &built, &bulk] {
            assert_invariant(bag);
            prop_assert!(bag_matches_model(bag, &model));
        }
        prop_assert_eq!(&inserted, &built);
        prop_assert_eq!(&inserted, &bulk);
        prop_assert_eq!(
            inserted.cardinality(),
            model.values().fold(Natural::zero(), |mut acc, m| { acc += m; acc })
        );
    }

    #[test]
    fn merge_operations_agree_with_map_model(ra in script(), rb in script()) {
        let sa = atoms_script_to_values(ra);
        let sb = atoms_script_to_values(rb);
        let (ma, mb) = (model_from(&sa), model_from(&sb));
        let (a, b) = (Bag::from_counted(sa), Bag::from_counted(sb));

        let keys: Vec<&Value> = ma.keys().chain(mb.keys()).collect();
        let get = |m: &Model, k: &Value| m.get(k).cloned().unwrap_or_default();

        let mut add = Model::new();
        let mut sub = Model::new();
        let mut max = Model::new();
        let mut min = Model::new();
        for key in keys {
            let (x, y) = (get(&ma, key), get(&mb, key));
            let mut sum = x.clone();
            sum += &y;
            for (model, value) in [
                (&mut add, sum),
                (&mut sub, x.monus(&y)),
                (&mut max, x.clone().max(y.clone())),
                (&mut min, x.min(y)),
            ] {
                if !value.is_zero() {
                    model.insert(key.clone(), value);
                }
            }
        }

        for (bag, model) in [
            (a.additive_union(&b), add),
            (a.subtract(&b), sub),
            (a.max_union(&b), max),
            (a.intersect(&b), min),
        ] {
            assert_invariant(&bag);
            prop_assert!(bag_matches_model(&bag, &model));
        }

        // Point lookups agree with the model everywhere on the domain.
        for k in 0i64..10 {
            let key = Value::int(k);
            prop_assert_eq!(a.multiplicity(&key), get(&ma, &key));
            prop_assert_eq!(a.contains(&key), ma.contains_key(&key));
        }

        // Subbag test vs the model inequality.
        let model_subbag = ma.iter().all(|(k, m)| &get(&mb, k) >= m);
        prop_assert_eq!(a.is_subbag_of(&b), model_subbag);
    }

    #[test]
    fn dedup_and_scale_agree_with_map_model(raw in script(), factor in 0u64..5) {
        let script = atoms_script_to_values(raw);
        let model = model_from(&script);
        let bag = Bag::from_counted(script);

        let deduped = bag.dedup();
        assert_invariant(&deduped);
        prop_assert_eq!(deduped.distinct_count(), model.len());
        prop_assert!(deduped.iter().all(|(_, m)| m.is_one()));

        let scaled = bag.scale(&nat(factor));
        assert_invariant(&scaled);
        let scaled_model: Model = if factor == 0 {
            Model::new()
        } else {
            model.iter().map(|(k, m)| (k.clone(), m * &nat(factor))).collect()
        };
        prop_assert!(bag_matches_model(&scaled, &scaled_model));
    }

    #[test]
    fn product_agrees_with_map_model(ra in tuple_script(), rb in tuple_script()) {
        let to_pairs = |raw: Vec<((i64, i64), u64)>| -> Vec<(Value, Natural)> {
            raw.into_iter()
                .map(|((x, y), m)| (Value::tuple([Value::int(x), Value::int(y)]), nat(m)))
                .collect()
        };
        let (sa, sb) = (to_pairs(ra), to_pairs(rb));
        let (ma, mb) = (model_from(&sa), model_from(&sb));
        let (a, b) = (Bag::from_counted(sa), Bag::from_counted(sb));

        let mut model = Model::new();
        for (lv, lm) in &ma {
            for (rv, rm) in &mb {
                let concat = Value::concat_tuples(
                    lv.as_tuple().unwrap(),
                    rv.as_tuple().unwrap(),
                );
                *model.entry(concat).or_default() += &(lm * rm);
            }
        }
        let prod = a.product(&b, u64::MAX).unwrap();
        assert_invariant(&prod);
        prop_assert!(bag_matches_model(&prod, &model));
    }

    #[test]
    fn powerset_agrees_with_map_model(raw in proptest::collection::vec((0i64..4, 1u64..4), 0..4)) {
        let script = atoms_script_to_values(raw);
        let model = model_from(&script);
        let bag = Bag::from_counted(script);

        let predicted: u64 = model
            .values()
            .map(|m| m.to_u64().unwrap() + 1)
            .product();
        let ps = bag.powerset(1 << 16).unwrap();
        assert_invariant(&ps);
        prop_assert_eq!(ps.cardinality(), nat(predicted));
        for (sub, mult) in ps.iter() {
            prop_assert!(mult.is_one());
            let sub = sub.as_bag().unwrap();
            assert_invariant(sub);
            prop_assert!(sub.is_subbag_of(&bag));
        }

        // Powerbag: same distinct elements, total cardinality 2^|B|.
        let pb = bag.powerbag(1 << 16).unwrap();
        assert_invariant(&pb);
        prop_assert_eq!(pb.distinct_count(), ps.distinct_count());
        prop_assert_eq!(
            pb.cardinality(),
            Natural::pow2(bag.cardinality().to_u64().unwrap())
        );
    }

    #[test]
    fn destroy_agrees_with_map_model(
        raw in proptest::collection::vec((proptest::collection::vec((0i64..6, 1u64..4), 0..5), 1u64..3), 0..5)
    ) {
        let mut outer = Bag::new();
        let mut model = Model::new();
        for (inner_raw, outer_mult) in raw {
            let inner = Bag::from_counted(atoms_script_to_values(inner_raw));
            outer.insert_with_multiplicity(Value::Bag(inner), nat(outer_mult));
        }
        // Model δ over the final outer bag (equal inner bags have already
        // collapsed, accumulating their outer multiplicities).
        for (value, outer_mult) in outer.iter() {
            let inner = value.as_bag().unwrap();
            for (elem, m) in inner.iter() {
                *model.entry(elem.clone()).or_default() += &(m * outer_mult);
            }
        }
        let flat = outer.destroy().unwrap();
        assert_invariant(&flat);
        prop_assert!(bag_matches_model(&flat, &model));
    }
}
