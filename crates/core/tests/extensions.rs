//! Tests for the Conclusion-section extensions: the nest operator
//! ([PG88]/[Won93], "Nest vs Powerset") and the bounded fixpoint
//! ([Suc93]) — "transitive closure is expressible in the extension of
//! BALG¹ to bounded fixpoint".

use balg_core::prelude::*;

fn edge(a: &str, b: &str) -> Value {
    Value::tuple([Value::sym(a), Value::sym(b)])
}

#[test]
fn nest_groups_with_multiplicities() {
    // ⟦[a,1], [a,1], [a,2], [b,3]⟧ nested on attribute 1:
    // ⟦[a, ⟦[1]², [2]⟧], [b, ⟦[3]⟧]⟧.
    let mut bag = Bag::new();
    bag.insert_with_multiplicity(
        Value::tuple([Value::sym("a"), Value::int(1)]),
        Natural::from(2u64),
    );
    bag.insert(Value::tuple([Value::sym("a"), Value::int(2)]));
    bag.insert(Value::tuple([Value::sym("b"), Value::int(3)]));
    let db = Database::new().with("R", bag);
    let out = eval_bag(&Expr::var("R").nest(&[1]), &db).unwrap();
    assert_eq!(out.distinct_count(), 2);
    let mut expected_a_inner = Bag::new();
    expected_a_inner.insert_with_multiplicity(Value::tuple([Value::int(1)]), Natural::from(2u64));
    expected_a_inner.insert(Value::tuple([Value::int(2)]));
    let a_group = Value::tuple([Value::sym("a"), Value::Bag(expected_a_inner)]);
    assert_eq!(out.multiplicity(&a_group), Natural::one());
}

#[test]
fn nest_type_checks_and_is_flagged_extension() {
    let schema = Schema::new().with("R", Type::relation(2));
    let analysis = check(&Expr::var("R").nest(&[1]), &schema).unwrap();
    assert_eq!(
        analysis.ty,
        Type::bag(Type::Tuple(vec![
            Type::Atom,
            Type::bag(Type::Tuple(vec![Type::Atom]))
        ]))
    );
    assert!(analysis.uses_nest);
    assert!(!analysis.is_core_balg());
    // Nesting raises the type's bag nesting — the conservativity question
    // the Conclusion discusses.
    assert_eq!(analysis.max_bag_nesting, 2);
}

#[test]
fn nest_rejects_bad_attributes() {
    let schema = Schema::new().with("R", Type::relation(2));
    assert!(check(&Expr::var("R").nest(&[3]), &schema).is_err());
    let db = Database::new().with("R", Bag::singleton(edge("a", "b")));
    assert!(eval(&Expr::var("R").nest(&[3]), &db).is_err());
}

#[test]
fn nest_unnest_roundtrip() {
    // δ of the MAP re-tagging each group undoes the nest (up to group
    // order): unnest(nest_G(B)) = B.
    let mut bag = Bag::new();
    bag.insert_with_multiplicity(edge("a", "x"), Natural::from(3u64));
    bag.insert(edge("a", "y"));
    bag.insert(edge("b", "x"));
    let db = Database::new().with("R", bag.clone());
    // nest on attr 1 → [key, inner]; unnest: MAP each [k, inner] to
    // inner×⟦[k]⟧ re-paired... simplest algebraic unnest: δ(MAP_{λg.
    // MAP_{λr.[α₁(g), α₁(r)]}(α₂(g))}(nested)).
    let unnest = Expr::var("R")
        .nest(&[1])
        .map(
            "g",
            Expr::var("g").attr(2).map(
                "r",
                Expr::tuple([Expr::var("g").attr(1), Expr::var("r").attr(1)]),
            ),
        )
        .destroy();
    let out = eval_bag(&unnest, &db).unwrap();
    assert_eq!(out, bag);
}

#[test]
fn bounded_ifp_computes_transitive_closure() {
    // The Conclusion's claim: transitive closure via bounded fixpoint.
    // Bound = all node pairs (a BALG¹-computable bound).
    let g = Bag::from_values([edge("1", "2"), edge("2", "3"), edge("3", "4")]);
    let db = Database::new().with("G", g);
    let all_pairs = Expr::var("G")
        .project(&[1])
        .additive_union(Expr::var("G").project(&[2]))
        .dedup();
    let bound = all_pairs.clone().product(all_pairs).dedup();
    let step = Expr::var("T")
        .product(Expr::var("G"))
        .select(
            "x",
            Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
        )
        .project(&[1, 4])
        .dedup();
    let tc = Expr::var("G").bounded_ifp("T", step, bound);
    let out = eval_bag(&tc, &db).unwrap();
    assert!(out.contains(&edge("1", "4")));
    assert!(out.contains(&edge("2", "4")));
    assert!(!out.contains(&edge("4", "1")));
    assert_eq!(out.distinct_count(), 6);
}

#[test]
fn bounded_ifp_converges_where_unbounded_diverges() {
    // step(X) = X ∪⁺ X inflates forever; bounded by a fixed bag it stops.
    let b = Bag::singleton(Value::tuple([Value::sym("a")]));
    let db = Database::new().with("B", b);
    let mut bound_bag = Bag::new();
    bound_bag.insert_with_multiplicity(Value::tuple([Value::sym("a")]), Natural::from(8u64));
    let bounded = Expr::var("B").bounded_ifp(
        "X",
        Expr::var("X").additive_union(Expr::var("X")),
        Expr::Lit(Value::Bag(bound_bag.clone())),
    );
    let limits = Limits {
        max_ifp_iterations: 64,
        ..Limits::default()
    };
    let db2 = db.clone();
    let mut evaluator = Evaluator::new(&db2, limits.clone());
    let out = evaluator.eval_bag(&bounded).unwrap();
    // Fixpoint: the bound itself (multiplicity saturates at 8).
    assert_eq!(out, bound_bag);
    // The unbounded version exhausts the iteration budget.
    let unbounded = Expr::var("B").ifp("X", Expr::var("X").additive_union(Expr::var("X")));
    let mut evaluator = Evaluator::new(&db, limits);
    assert!(matches!(
        evaluator.eval(&unbounded),
        Err(EvalError::IfpLimit(_))
    ));
}

#[test]
fn nest_on_empty_and_key_only_tuples() {
    let db = Database::new().with("R", Bag::new());
    let out = eval_bag(&Expr::var("R").nest(&[1]), &db).unwrap();
    assert!(out.is_empty());
    // Grouping on ALL attributes: residual is the empty tuple.
    let db = Database::new().with("R", Bag::from_values([edge("a", "b"), edge("a", "b")]));
    let out = eval_bag(&Expr::var("R").nest(&[1, 2]), &db).unwrap();
    assert_eq!(out.distinct_count(), 1);
    let (group, _) = out.iter().next().unwrap();
    let fields = group.as_tuple().unwrap();
    // inner bag: ⟦[]²⟧ — the empty residual tuple twice.
    assert_eq!(
        fields[2]
            .as_bag()
            .unwrap()
            .multiplicity(&Value::Tuple(vec![].into())),
        Natural::from(2u64)
    );
}
