//! Differential properties for the secondary-index subsystem: every
//! index-accelerated path must compute **exactly** what its scan
//! counterpart computes — equal bags, equal errors — so future
//! index-aware rewrites can lean on this suite.
//!
//! Three layers are pinned down:
//!
//! * the evaluator's `σ_{αᵢ=αⱼ}(R × S)` hash join with indexes enabled
//!   vs force-disabled (including mixed-arity operands, where both must
//!   take the materializing fallback, and repeated evaluation through a
//!   warm cache);
//! * the memoized `SubBag` filter stage vs per-element predicate
//!   evaluation over powerset-shaped inputs;
//! * [`BagIndex::patch`] vs an index rebuilt from the patched bag, and
//!   [`SubBagTester`] vs the merge-walk `Bag::is_subbag_of`.

use balg_core::bag::Bag;
use balg_core::eval::{EvalError, Evaluator, Limits};
use balg_core::expr::{Expr, Pred};
use balg_core::index::{BagIndex, SubBagTester};
use balg_core::natural::Natural;
use balg_core::schema::Database;
use balg_core::value::Value;
use balg_core::zbag::{ZBag, ZInt};
use proptest::collection::vec;
use proptest::prelude::*;

fn tuple2(a: i64, b: i64) -> Value {
    Value::tuple([Value::int(a), Value::int(b)])
}

fn binary_bag(rows: &[(i64, i64, u64)]) -> Bag {
    Bag::from_counted(
        rows.iter()
            .map(|&(a, b, m)| (tuple2(a, b), Natural::from(m))),
    )
}

fn unary_bag(rows: &[(i64, u64)]) -> Bag {
    Bag::from_counted(
        rows.iter()
            .map(|&(a, m)| (Value::tuple([Value::int(a)]), Natural::from(m))),
    )
}

/// Evaluate once with indexes enabled and once force-disabled; the two
/// `Result`s must agree exactly (bags *and* errors), and so must the
/// step charges — the documented `set_indexing` contract, which keeps
/// budget outcomes independent of the indexing mode.
fn assert_both_paths_agree(q: &Expr, db: &Database) -> Result<Bag, EvalError> {
    let mut indexed = Evaluator::new(db, Limits::default());
    let mut scanned = Evaluator::new(db, Limits::default());
    scanned.set_indexing(false);
    let a = indexed.eval_bag(q);
    let b = scanned.eval_bag(q);
    assert_eq!(a, b, "indexed vs scan disagreement for {q}");
    assert_eq!(
        indexed.metrics().steps,
        scanned.metrics().steps,
        "indexed vs scan step charges diverged for {q}"
    );
    // A second evaluation through the same (now warm) evaluator must not
    // change the answer either.
    let again = indexed.eval_bag(q);
    assert_eq!(a, again, "warm-cache re-evaluation diverged for {q}");
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random equi-join queries over random bags of tuples: the indexed
    /// join, the transient-scan join, and the warm-cache re-run agree on
    /// every case — spanning or not, mixed-arity or not, projected or
    /// not.
    #[test]
    fn indexed_and_scan_joins_agree(
        left in vec((0i64..6, 0i64..6, 1u64..4), 0..24),
        right in vec((0i64..6, 0i64..6, 1u64..4), 0..24),
        i in 1usize..5,
        j in 1usize..5,
        mix_left_arity in any::<bool>(),
        project in any::<bool>(),
    ) {
        let mut r = binary_bag(&left);
        if mix_left_arity {
            // A lone 1-tuple breaks uniform arity: both paths must fall
            // back to the materializing product identically.
            r.insert(Value::tuple([Value::int(99)]));
        }
        let s = binary_bag(&right);
        let db = Database::new().with("R", r).with("S", s);
        let mut q = Expr::var("R").product(Expr::var("S")).select(
            "x",
            Pred::eq(Expr::var("x").attr(i), Expr::var("x").attr(j)),
        );
        if project {
            q = q.project(&[1]);
        }
        let _ = assert_both_paths_agree(&q, &db);
    }

    /// The memoized `SubBag` filter stage vs per-element evaluation, for
    /// both predicate orientations (subbag-of-base and singleton-in-base).
    #[test]
    fn memoized_subbag_filter_agrees(
        base in vec((0i64..5, 1u64..3), 0..6),
        reference in vec((0i64..5, 1u64..4), 0..6),
    ) {
        let b = unary_bag(&base);
        let c = unary_bag(&reference);
        let db = Database::new().with("B", b).with("C", c);
        // σ_{s ⊑ C}(P(B)) — the e4/e5-shaped workload.
        let q = Expr::var("B")
            .powerset()
            .select("s", Pred::SubBag(Expr::var("s"), Expr::var("C")));
        let _ = assert_both_paths_agree(&q, &db);
        // σ_{β(x) ⊑ B}(C) — a non-Var lhs through the same stage.
        let q = Expr::var("C").select(
            "x",
            Pred::SubBag(Expr::var("x").singleton(), Expr::var("B")),
        );
        let _ = assert_both_paths_agree(&q, &db);
    }

    /// `SubBagTester::admits` is exactly `Bag::is_subbag_of` against the
    /// memoized reference.
    #[test]
    fn tester_matches_merge_walk(
        candidate in vec((0i64..5, 1u64..4), 0..6),
        reference in vec((0i64..5, 1u64..4), 0..6),
    ) {
        let c = unary_bag(&candidate);
        let r = unary_bag(&reference);
        let tester = SubBagTester::new(&r);
        prop_assert_eq!(tester.admits(&c), c.is_subbag_of(&r));
    }

    /// Patching an index with a delta is equivalent to rebuilding it over
    /// the patched bag; a delta the bag itself rejects (over-deletion) is
    /// rejected by the patch too.
    #[test]
    fn index_patch_matches_rebuild(
        rows in vec((0i64..5, 0i64..5, 1u64..3), 1..16),
        changes in vec((0i64..5, 0i64..5, -2i64..3), 0..8),
        attr in 1usize..3,
    ) {
        let base = binary_bag(&rows);
        let Some(mut index) = BagIndex::build(&base, attr) else {
            panic!("binary bags are indexable on attribute {attr}");
        };
        let delta = ZBag::from_counted(
            changes
                .iter()
                .map(|&(a, b, m)| (tuple2(a, b), ZInt::from(m))),
        );
        match delta.apply_to(&base) {
            Ok(patched) => {
                index.patch(&delta).expect("legal delta must patch");
                match BagIndex::build(&patched, attr) {
                    Some(rebuilt) => {
                        prop_assert_eq!(index.rows(), rebuilt.rows());
                        for key in 0i64..5 {
                            prop_assert_eq!(
                                index.group(&Value::int(key)),
                                rebuilt.group(&Value::int(key))
                            );
                        }
                    }
                    None => prop_assert_eq!(index.rows(), 0, "only emptiness de-indexes"),
                }
            }
            Err(_) => prop_assert!(index.patch(&delta).is_err()),
        }
    }
}

/// The cache actually pays off across repeated joins against a stable
/// operand: an IFP transitive closure joins the growing accumulator
/// against the fixed edge bag every iteration, and after the first
/// iteration the edge index must be a hit, not a rebuild.
#[test]
fn ifp_join_reuses_the_cached_index() {
    let g = Bag::from_values(
        (0..12i64).map(|i| Value::tuple([Value::int(i), Value::int((i + 1) % 12)])),
    );
    let step = Expr::var("T")
        .product(Expr::var("G"))
        .select(
            "x",
            Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
        )
        .project(&[1, 4])
        .dedup();
    let q = Expr::var("G").ifp("T", step);
    let db = Database::new().with("G", g);
    let mut ev = Evaluator::new(&db, Limits::default());
    let closure = ev.eval_bag(&q).unwrap();
    assert_eq!(closure.distinct_count(), 12 * 12); // a cycle closes completely
    let (hits, builds) = ev.index_stats();
    assert!(
        hits > builds,
        "iterated joins must reuse the cached edge index: {hits} hits, {builds} builds"
    );
    // The scan path computes the same closure.
    let mut scanned = Evaluator::new(&db, Limits::default());
    scanned.set_indexing(false);
    assert_eq!(scanned.eval_bag(&q).unwrap(), closure);
    assert_eq!(scanned.index_stats(), (0, 0));
}

/// The memoized `SubBag` stage keeps lazy error behavior: when the chain
/// never reaches the stage (empty input), the reference expression is
/// never evaluated, so an erroring rhs only fails once an element flows.
#[test]
fn subbag_reference_stays_lazy_on_empty_input() {
    let db = Database::new()
        .with("EMPTY", Bag::new())
        .with("B", Bag::from_values([Value::sym("a")]));
    let bad_rhs = Expr::var("B").destroy(); // δ over atoms: a shape error
    let q = Expr::var("EMPTY").select("s", Pred::SubBag(Expr::var("s"), bad_rhs.clone()));
    assert_eq!(assert_both_paths_agree(&q, &db).unwrap(), Bag::new());
    // With a non-empty input both paths surface the same error.
    let q = Expr::var("B").select("s", Pred::SubBag(Expr::var("s").singleton(), bad_rhs));
    assert!(assert_both_paths_agree(&q, &db).is_err());
}
