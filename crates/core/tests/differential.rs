//! Differential testing: the counted `Bag` against the naive expanded
//! standard-encoding oracle, across every duplicate-sensitive operator,
//! on arbitrary inputs.

use balg_core::bag::Bag;
use balg_core::expanded::ExpandedBag;
use balg_core::natural::Natural;
use balg_core::value::Value;
use proptest::prelude::*;

fn flat_bag() -> impl Strategy<Value = Bag> {
    proptest::collection::btree_map(0u8..5, 1u64..8, 0..6).prop_map(|entries| {
        Bag::from_counted(
            entries
                .into_iter()
                .map(|(atom, mult)| (Value::tuple([Value::int(atom as i64)]), Natural::from(mult))),
        )
    })
}

proptest! {
    #[test]
    fn binary_operators_agree(a in flat_bag(), b in flat_bag()) {
        let ea = ExpandedBag::from_bag(&a).unwrap();
        let eb = ExpandedBag::from_bag(&b).unwrap();
        prop_assert_eq!(ea.additive_union(&eb).to_bag(), a.additive_union(&b));
        prop_assert_eq!(ea.subtract(&eb).to_bag(), a.subtract(&b));
        prop_assert_eq!(ea.max_union(&eb).to_bag(), a.max_union(&b));
        prop_assert_eq!(ea.intersect(&eb).to_bag(), a.intersect(&b));
    }

    #[test]
    fn product_agrees(a in flat_bag(), b in flat_bag()) {
        let ea = ExpandedBag::from_bag(&a).unwrap();
        let eb = ExpandedBag::from_bag(&b).unwrap();
        prop_assert_eq!(
            ea.product(&eb).unwrap().to_bag(),
            a.product(&b, u64::MAX).unwrap()
        );
    }

    #[test]
    fn unary_operators_agree(a in flat_bag()) {
        let ea = ExpandedBag::from_bag(&a).unwrap();
        prop_assert_eq!(ea.dedup().to_bag(), a.dedup());
        // MAP to a constant (full collision) and MAP identity.
        let collapse = |_: &Value| Value::tuple([Value::sym("k")]);
        let counted_collapsed: Bag = a
            .map(|v| Ok::<_, std::convert::Infallible>(collapse(v)))
            .unwrap();
        prop_assert_eq!(ea.map(collapse).to_bag(), counted_collapsed);
        // σ on first attribute.
        let keep = |v: &Value| {
            v.as_tuple().and_then(|f| f.first()).is_some_and(|x| *x < Value::int(2))
        };
        let counted_kept: Bag = a
            .select(|v| Ok::<_, std::convert::Infallible>(keep(v)))
            .unwrap();
        prop_assert_eq!(ea.select(keep).to_bag(), counted_kept);
    }

    #[test]
    fn destroy_agrees(inners in proptest::collection::vec((flat_bag(), 1u64..4), 0..4)) {
        let outer = Bag::from_counted(
            inners
                .into_iter()
                .map(|(inner, mult)| (Value::Bag(inner), Natural::from(mult))),
        );
        let expanded = ExpandedBag::from_bag(&outer).unwrap();
        prop_assert_eq!(
            expanded.destroy().unwrap().to_bag(),
            outer.destroy().unwrap()
        );
    }

    #[test]
    fn roundtrip_and_cardinality(a in flat_bag()) {
        let ea = ExpandedBag::from_bag(&a).unwrap();
        prop_assert_eq!(ea.to_bag(), a.clone());
        prop_assert_eq!(ea.encoded_cardinality(), a.cardinality());
    }

    #[test]
    fn powerset_and_powerbag_agree_with_mask_enumeration(a in small_bag()) {
        // Naive reference: expand to an occurrence list and enumerate all
        // 2^n occurrence subsets (Definition 5.1's renaming, concretely).
        // Each mask yields one powerbag occurrence; the distinct subbags,
        // each once, form the powerset.
        let occurrences: Vec<Value> = a
            .iter()
            .flat_map(|(v, m)| {
                std::iter::repeat_with(|| v.clone()).take(m.to_u64().unwrap() as usize)
            })
            .collect();
        let n = occurrences.len();
        let mut naive_powerbag = Bag::new();
        for mask in 0u32..(1 << n) {
            let subset = occurrences
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, v)| v.clone());
            naive_powerbag.insert(Value::Bag(Bag::from_values(subset)));
        }
        prop_assert_eq!(a.powerbag(1 << 20).unwrap(), naive_powerbag.clone());
        prop_assert_eq!(a.powerset(1 << 20).unwrap(), naive_powerbag.dedup());
    }
}

/// A bag small enough for 2^|B| mask enumeration.
fn small_bag() -> impl Strategy<Value = Bag> {
    proptest::collection::btree_map(0u8..4, 1u64..4, 0..4).prop_map(|entries| {
        Bag::from_counted(
            entries
                .into_iter()
                .map(|(atom, mult)| (Value::tuple([Value::int(atom as i64)]), Natural::from(mult))),
        )
    })
}
