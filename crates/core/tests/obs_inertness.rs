//! The observability layer's inertness gate: metrics recording and the
//! span profiler must be **provably inert** — for hundreds of random
//! expressions, evaluating with the global registry installed and
//! profiling enabled produces exactly the same results, errors, and
//! metrics (step charges included) as a vanilla evaluation.
//!
//! The off-phase necessarily runs first: [`balg_obs::install_global`] is
//! first-wins for the whole process, so this differential lives in its
//! own integration-test binary where nothing else can install a registry
//! underneath it.

use balg_core::bag::Bag;
use balg_core::eval::{Evaluator, Limits, Metrics};
use balg_core::expr::{Expr, Pred};
use balg_core::natural::Natural;
use balg_core::schema::Database;
use balg_core::value::Value;

fn limits() -> Limits {
    Limits {
        max_bag_elements: 1 << 10,
        max_multiplicity_bits: 1 << 9,
        max_steps: 1_000_000,
        max_ifp_iterations: 32,
    }
}

fn unary(v: i64) -> Value {
    Value::tuple([Value::int(v)])
}

fn pair(a: i64, b: i64) -> Value {
    Value::tuple([Value::int(a), Value::int(b)])
}

/// A fixed database with real duplicate multiplicities, so fast paths
/// (indexed joins, subbag sweeps) actually fire.
fn db() -> Database {
    Database::new()
        .with(
            "R",
            Bag::from_counted([
                (unary(0), Natural::from(2u64)),
                (unary(1), 1u64.into()),
                (unary(2), 3u64.into()),
            ]),
        )
        .with("S", Bag::from_values([unary(1), unary(2), unary(3)]))
        .with(
            "G",
            Bag::from_values([pair(0, 1), pair(1, 2), pair(0, 1), pair(2, 3), pair(3, 0)]),
        )
}

/// The same splitmix64-seeded expression generator the analyzer
/// differential uses: expression shape is a pure function of the seed,
/// spanning every operator, both arities, and doomed shapes whose
/// errors must also be identical across the two runs.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn leaf(&mut self, arity: usize) -> Expr {
        match arity {
            1 => {
                if self.below(2) == 0 {
                    Expr::var("R")
                } else {
                    Expr::var("S")
                }
            }
            _ => Expr::var("G"),
        }
    }

    fn pred(&mut self, arity: usize) -> Pred {
        let x = || Expr::var("x");
        match self.below(5) {
            0 if arity >= 2 => Pred::eq(x().attr(1), x().attr(2)),
            1 => Pred::lt(x().attr(1), Expr::lit(Value::int(self.below(4) as i64))),
            2 => Pred::Member(
                x().attr(1),
                Expr::lit(Value::Bag(Bag::from_values(
                    (0..self.below(3)).map(|v| Value::int(v as i64)),
                ))),
            ),
            3 if arity == 1 => Pred::SubBag(x().singleton(), Expr::var("R")),
            _ => Pred::eq(x().attr(1), Expr::lit(Value::int(self.below(4) as i64))).not(),
        }
    }

    fn expr(&mut self, depth: usize, arity: usize) -> Expr {
        if depth == 0 {
            return self.leaf(arity);
        }
        match self.below(16) {
            0 => self
                .expr(depth - 1, arity)
                .additive_union(self.expr(depth - 1, arity)),
            1 => self
                .expr(depth - 1, arity)
                .subtract(self.expr(depth - 1, arity)),
            2 => self
                .expr(depth - 1, arity)
                .max_union(self.expr(depth - 1, arity)),
            3 => self
                .expr(depth - 1, arity)
                .intersect(self.expr(depth - 1, arity)),
            4 => self.expr(depth - 1, arity).dedup(),
            5 => {
                let pred = self.pred(arity);
                self.expr(depth - 1, arity).select("x", pred)
            }
            6 => {
                let body = if arity == 1 {
                    Expr::tuple([Expr::var("x").attr(1), Expr::var("x").attr(1)])
                } else {
                    Expr::tuple([Expr::var("x").attr(2), Expr::var("x").attr(1)])
                };
                let input_arity = if arity == 1 { 1 } else { 2 };
                let out = self.expr(depth - 1, input_arity).map("x", body);
                if arity == 1 {
                    out.project(&[1])
                } else {
                    out
                }
            }
            7 => {
                if arity == 2 {
                    self.expr(depth - 1, 1).product(self.expr(depth - 1, 1))
                } else {
                    let ix = 1 + self.below(2) as usize;
                    self.expr(depth - 1, 2).project(&[ix])
                }
            }
            8 if arity == 1 => self.expr(depth - 1, 1).dedup().powerset().destroy(),
            9 if arity == 1 => self.expr(depth - 1, 1).dedup().powerbag().destroy(),
            10 if arity == 1 => self
                .expr(depth - 1, 2)
                .nest(&[1])
                .map("g", Expr::tuple([Expr::var("g").attr(1)])),
            11 if arity == 2 => {
                let step = Expr::var("T")
                    .product(Expr::var("G"))
                    .select(
                        "x",
                        Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
                    )
                    .project(&[1, 4])
                    .dedup();
                Expr::var("G").ifp("T", step)
            }
            12 => {
                let constant = Expr::Singleton(Box::new(Expr::Tuple(
                    (0..arity)
                        .map(|_| Expr::lit(Value::int(self.below(4) as i64)))
                        .collect(),
                )));
                self.expr(depth - 1, arity).max_union(constant)
            }
            13 => self.expr(depth - 1, arity).map("x", Expr::var("x").attr(0)),
            14 => self
                .expr(depth - 1, arity)
                .map("x", Expr::var("x").attr(9))
                .project(&[1]),
            _ => self.expr(depth - 1, arity),
        }
    }
}

/// How many statements the differential covers. The nightly
/// `PROPTEST_CASES=1024` job widens it through the same variable.
fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .map_or(300, |n: u64| n.max(300))
}

fn fingerprint(metrics: &Metrics) -> String {
    format!("{metrics:?}")
}

/// One test on purpose: the vanilla pass must complete before the
/// registry exists, and nothing else in this binary may install one.
#[test]
fn metrics_and_profiling_are_inert() {
    assert!(
        balg_obs::global().is_none(),
        "another test installed the global registry before the off-phase ran"
    );
    let db = db();
    let case = |seed: u64| {
        let depth = 1 + (seed % 4) as usize;
        let arity = 1 + (seed % 2) as usize;
        Gen::new(seed / 8).expr(depth, arity)
    };

    // Off-phase: vanilla evaluation, no registry, no profiler.
    let total = cases();
    let mut vanilla = Vec::new();
    for seed in 0..total {
        let expr = case(seed);
        let mut ev = Evaluator::new(&db, limits());
        let result = ev.eval(&expr);
        vanilla.push((expr, result, fingerprint(ev.metrics())));
    }

    // On-phase: registry installed, profiler enabled — every observable
    // outcome must be bit-identical.
    assert!(balg_obs::install_global(balg_obs::MetricsRegistry::new()));
    for (expr, expected, expected_metrics) in vanilla {
        let mut ev = Evaluator::new(&db, limits());
        ev.enable_profiling();
        let result = ev.eval(&expr);
        assert_eq!(expected, result, "result drifted under metrics for {expr}");
        assert_eq!(
            expected_metrics,
            fingerprint(ev.metrics()),
            "step charges drifted under metrics for {expr}"
        );
        let profiler = ev.take_profiler().expect("profiling was enabled");
        assert!(
            !profiler.frames().is_empty(),
            "the on-phase never actually profiled {expr}"
        );
    }

    // The on-phase really recorded: the registry saw every evaluation.
    let rendered = balg_obs::global()
        .expect("installed above")
        .render_prometheus();
    assert!(
        rendered.contains(&format!("balg_eval_total {total}")),
        "{rendered}"
    );
}
