//! Property tests for the arbitrary-precision `Natural` arithmetic that
//! all multiplicity bookkeeping rests on, cross-checked against `u128`.

use balg_core::natural::Natural;
use proptest::prelude::*;

fn small() -> impl Strategy<Value = u64> {
    0u64..=u32::MAX as u64
}

proptest! {
    #[test]
    fn add_matches_u128(a in small(), b in small()) {
        let sum = &Natural::from(a) + &Natural::from(b);
        prop_assert_eq!(sum.to_u128(), Some(a as u128 + b as u128));
    }

    #[test]
    fn mul_matches_u128(a in small(), b in small()) {
        let prod = &Natural::from(a) * &Natural::from(b);
        prop_assert_eq!(prod.to_u128(), Some(a as u128 * b as u128));
    }

    #[test]
    fn monus_matches_saturating_sub(a in small(), b in small()) {
        let diff = Natural::from(a).monus(&Natural::from(b));
        prop_assert_eq!(diff.to_u64(), Some(a.saturating_sub(b)));
    }

    #[test]
    fn ring_laws_hold_on_big_values(a in small(), b in small(), c in small()) {
        // Lift into >64-bit territory so limb carries are exercised.
        let big = |v: u64| &Natural::from(v) * &Natural::pow2(70);
        let (x, y, z) = (big(a), big(b), big(c));
        prop_assert_eq!(&x + &y, &y + &x);
        prop_assert_eq!(&x * &y, &y * &x);
        prop_assert_eq!(&(&x + &y) + &z, &x + &(&y + &z));
        prop_assert_eq!(&(&x * &y) * &z, &x * &(&y * &z));
        prop_assert_eq!(&x * &(&y + &z), &(&x * &y) + &(&x * &z));
    }

    #[test]
    fn divmod_roundtrips(a in small(), d in 1u64..10_000) {
        let big = &Natural::from(a) * &Natural::pow2(80);
        let (q, r) = big.divmod_u64(d);
        prop_assert!(r < d);
        let mut back = q;
        back.mul_u64(d);
        back += &Natural::from(r);
        prop_assert_eq!(back, &Natural::from(a) * &Natural::pow2(80));
    }

    #[test]
    fn ordering_matches_u128(a in small(), b in small()) {
        prop_assert_eq!(
            Natural::from(a).cmp(&Natural::from(b)),
            a.cmp(&b)
        );
    }

    #[test]
    fn display_parse_roundtrip(a in small(), shift in 0u64..100) {
        let x = &Natural::from(a) * &Natural::pow2(shift);
        let parsed: Natural = x.to_string().parse().unwrap();
        prop_assert_eq!(parsed, x);
    }

    #[test]
    fn monus_add_cancellation(a in small(), b in small()) {
        // (a + b) − b = a — the bag-subtraction inverse law.
        let x = Natural::from(a);
        let y = Natural::from(b);
        prop_assert_eq!((&x + &y).monus(&y), x);
    }

    #[test]
    fn binomial_symmetry(n in 0u64..40, k in 0u64..40) {
        if k <= n {
            prop_assert_eq!(
                Natural::binomial(&Natural::from(n), k),
                Natural::binomial(&Natural::from(n), n - k)
            );
        } else {
            prop_assert!(Natural::binomial(&Natural::from(n), k).is_zero());
        }
    }

    #[test]
    fn bits_brackets_the_value(a in 1u64..=u64::MAX) {
        let x = Natural::from(a);
        let bits = x.bits();
        prop_assert!(Natural::pow2(bits - 1) <= x);
        prop_assert!(x < Natural::pow2(bits));
    }
}
