//! Property tests for the arbitrary-precision `Natural` arithmetic that
//! all multiplicity bookkeeping rests on, cross-checked against `u128`.

use balg_core::natural::Natural;
use proptest::prelude::*;

fn small() -> impl Strategy<Value = u64> {
    0u64..=u32::MAX as u64
}

proptest! {
    #[test]
    fn add_matches_u128(a in small(), b in small()) {
        let sum = &Natural::from(a) + &Natural::from(b);
        prop_assert_eq!(sum.to_u128(), Some(a as u128 + b as u128));
    }

    #[test]
    fn mul_matches_u128(a in small(), b in small()) {
        let prod = &Natural::from(a) * &Natural::from(b);
        prop_assert_eq!(prod.to_u128(), Some(a as u128 * b as u128));
    }

    #[test]
    fn monus_matches_saturating_sub(a in small(), b in small()) {
        let diff = Natural::from(a).monus(&Natural::from(b));
        prop_assert_eq!(diff.to_u64(), Some(a.saturating_sub(b)));
    }

    #[test]
    fn ring_laws_hold_on_big_values(a in small(), b in small(), c in small()) {
        // Lift into >64-bit territory so limb carries are exercised.
        let big = |v: u64| &Natural::from(v) * &Natural::pow2(70);
        let (x, y, z) = (big(a), big(b), big(c));
        prop_assert_eq!(&x + &y, &y + &x);
        prop_assert_eq!(&x * &y, &y * &x);
        prop_assert_eq!(&(&x + &y) + &z, &x + &(&y + &z));
        prop_assert_eq!(&(&x * &y) * &z, &x * &(&y * &z));
        prop_assert_eq!(&x * &(&y + &z), &(&x * &y) + &(&x * &z));
    }

    #[test]
    fn divmod_roundtrips(a in small(), d in 1u64..10_000) {
        let big = &Natural::from(a) * &Natural::pow2(80);
        let (q, r) = big.divmod_u64(d);
        prop_assert!(r < d);
        let mut back = q;
        back.mul_u64(d);
        back += &Natural::from(r);
        prop_assert_eq!(back, &Natural::from(a) * &Natural::pow2(80));
    }

    #[test]
    fn ordering_matches_u128(a in small(), b in small()) {
        prop_assert_eq!(
            Natural::from(a).cmp(&Natural::from(b)),
            a.cmp(&b)
        );
    }

    #[test]
    fn display_parse_roundtrip(a in small(), shift in 0u64..100) {
        let x = &Natural::from(a) * &Natural::pow2(shift);
        let parsed: Natural = x.to_string().parse().unwrap();
        prop_assert_eq!(parsed, x);
    }

    #[test]
    fn monus_add_cancellation(a in small(), b in small()) {
        // (a + b) − b = a — the bag-subtraction inverse law.
        let x = Natural::from(a);
        let y = Natural::from(b);
        prop_assert_eq!((&x + &y).monus(&y), x);
    }

    #[test]
    fn binomial_symmetry(n in 0u64..40, k in 0u64..40) {
        if k <= n {
            prop_assert_eq!(
                Natural::binomial(&Natural::from(n), k),
                Natural::binomial(&Natural::from(n), n - k)
            );
        } else {
            prop_assert!(Natural::binomial(&Natural::from(n), k).is_zero());
        }
    }

    #[test]
    fn bits_brackets_the_value(a in 1u64..=u64::MAX) {
        let x = Natural::from(a);
        let bits = x.bits();
        prop_assert!(Natural::pow2(bits - 1) <= x);
        prop_assert!(x < Natural::pow2(bits));
    }
}

// ---------------------------------------------------------------------------
// The inline-small representation against ground truth at the spill boundary
// and against a retained naive always-heap limb reference.
// ---------------------------------------------------------------------------

/// Values straddling the `Small`→`Big` spill boundary: everything in
/// `[u64::MAX − 8, u64::MAX + 8]` plus a spread of small and two-limb
/// values, as `u128` ground truth.
fn boundary() -> impl Strategy<Value = u128> {
    prop_oneof![
        (0u64..=16).prop_map(|d| (u64::MAX - 8) as u128 + d as u128),
        (0u64..=32).prop_map(|v| v as u128),
        any::<u64>().prop_map(|v| v as u128),
        // Two-limb values with headroom so sums stay in u128.
        (any::<u64>(), any::<u64>()).prop_map(|(hi, lo)| ((hi as u128) << 64 | lo as u128) >> 1),
    ]
}

/// The seed's always-heap little-endian limb arithmetic, retained as the
/// naive reference the optimized representation must agree with.
mod reference {
    pub fn normalize(limbs: &mut Vec<u64>) {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
    }

    pub fn add(a: &[u64], b: &[u64]) -> Vec<u64> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &lhs) in long.iter().enumerate() {
            let rhs = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = lhs.overflowing_add(rhs);
            let (s2, c2) = s1.overflowing_add(carry);
            carry = (c1 || c2) as u64;
            out.push(s2);
        }
        if carry != 0 {
            out.push(carry);
        }
        out
    }

    pub fn mul(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &x) in a.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &y) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + x as u128 * y as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        normalize(&mut out);
        out
    }

    /// Monus: empty result when `b > a`.
    pub fn monus(a: &[u64], b: &[u64]) -> Vec<u64> {
        if cmp(a, b) == std::cmp::Ordering::Less {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0u64;
        for (i, &lhs) in a.iter().enumerate() {
            let rhs = b.get(i).copied().unwrap_or(0);
            let (d1, b1) = lhs.overflowing_sub(rhs);
            let (d2, b2) = d1.overflowing_sub(borrow);
            borrow = (b1 || b2) as u64;
            out.push(d2);
        }
        assert_eq!(borrow, 0);
        normalize(&mut out);
        out
    }

    pub fn cmp(a: &[u64], b: &[u64]) -> std::cmp::Ordering {
        a.len()
            .cmp(&b.len())
            .then_with(|| a.iter().rev().cmp(b.iter().rev()))
    }
}

/// Rebuild a `Natural` from reference limbs via `Σ limbᵢ · 2^{64 i}`.
fn from_ref_limbs(limbs: &[u64]) -> Natural {
    let mut acc = Natural::zero();
    for (i, &limb) in limbs.iter().enumerate() {
        acc += &(&Natural::from(limb) * &Natural::pow2(64 * i as u64));
    }
    acc
}

fn limb_vec() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        prop_oneof![Just(0u64), Just(1), Just(u64::MAX), any::<u64>()],
        0..4,
    )
    .prop_map(|mut limbs| {
        reference::normalize(&mut limbs);
        limbs
    })
}

proptest! {
    #[test]
    fn boundary_arithmetic_matches_u128(a in boundary(), b in boundary()) {
        let (x, y) = (Natural::from(a), Natural::from(b));
        prop_assert_eq!((&x + &y).to_u128(), a.checked_add(b));
        prop_assert_eq!(x.monus(&y).to_u128(), Some(a.saturating_sub(b)));
        prop_assert_eq!(x.cmp(&y), a.cmp(&b));
        prop_assert_eq!(x.succ().to_u128(), a.checked_add(1));
        if let Some(product) = a.checked_mul(b) {
            prop_assert_eq!((&x * &y).to_u128(), Some(product));
        }
        let mut doubled = x.clone();
        doubled.double();
        prop_assert_eq!(doubled.to_u128(), a.checked_mul(2));
        // Representation canonicality: values ≤ u64::MAX report as u64.
        prop_assert_eq!(x.to_u64(), u64::try_from(a).ok());
    }

    #[test]
    fn optimized_agrees_with_naive_limb_reference(a in limb_vec(), b in limb_vec()) {
        let (x, y) = (from_ref_limbs(&a), from_ref_limbs(&b));
        prop_assert_eq!(&x + &y, from_ref_limbs(&reference::add(&a, &b)));
        prop_assert_eq!(&x * &y, from_ref_limbs(&reference::mul(&a, &b)));
        prop_assert_eq!(x.monus(&y), from_ref_limbs(&reference::monus(&a, &b)));
        prop_assert_eq!(x.cmp(&y), reference::cmp(&a, &b));
        prop_assert_eq!(x.clone().max(y.clone()), from_ref_limbs(&a).max(from_ref_limbs(&b)));
        prop_assert_eq!(x.min(y), from_ref_limbs(&a).min(from_ref_limbs(&b)));
    }

    #[test]
    fn divmod_agrees_with_reference_roundtrip(a in limb_vec(), d in 1u64..=u64::MAX) {
        let x = from_ref_limbs(&a);
        let (q, r) = x.divmod_u64(d);
        prop_assert!(r < d);
        // q·d + r = x, recombined through the reference arithmetic.
        let mut qd = q;
        qd.mul_u64(d);
        prop_assert_eq!(&qd + &Natural::from(r), x);
    }
}
