//! The parallel↔serial differential: every partitioned operator kernel
//! ([`balg_core::par`], plus the evaluator's optimistic partitioned join
//! probe) must compute **exactly** what its serial counterpart computes
//! — equal bags, equal errors (payloads included), equal step charges —
//! at every partition count. Partitioning is a pure function of the
//! requested chunk count, never of hardware, so this suite proves the
//! documented determinism contract on any host, including single-core
//! CI runners.
//!
//! The threshold is pinned to 0 throughout, forcing the partitioned
//! paths onto the small random inputs proptest can afford; partition
//! counts {2, 4} are each compared against the serial twin (chunks = 1).

use balg_core::bag::Bag;
use balg_core::eval::{EvalError, Evaluator, Limits};
use balg_core::expr::{Expr, Pred};
use balg_core::natural::Natural;
use balg_core::schema::Database;
use balg_core::value::Value;
use proptest::collection::vec;
use proptest::prelude::*;

fn tuple2(a: i64, b: i64) -> Value {
    Value::tuple([Value::int(a), Value::int(b)])
}

fn binary_bag(rows: &[(i64, i64, u64)]) -> Bag {
    Bag::from_counted(
        rows.iter()
            .map(|&(a, b, m)| (tuple2(a, b), Natural::from(m))),
    )
}

fn unary_bag(rows: &[(i64, u64)]) -> Bag {
    Bag::from_counted(
        rows.iter()
            .map(|&(a, m)| (Value::tuple([Value::int(a)]), Natural::from(m))),
    )
}

/// Evaluate `q` with the given partition count, threshold pinned to 0 so
/// every partitionable operator actually partitions.
fn eval_at_chunks(
    q: &Expr,
    db: &Database,
    limits: Limits,
    chunks: usize,
) -> (Result<Bag, EvalError>, u64) {
    let mut ev = Evaluator::new(db, limits);
    ev.set_parallel_threads(chunks);
    ev.set_parallel_threshold(0);
    let result = ev.eval_bag(q);
    let steps = ev.metrics().steps;
    (result, steps)
}

/// The contract: partition counts 2 and 4 agree with the serial twin on
/// the full `Result` (bags and error payloads) *and* the step charges.
fn assert_parallel_serial_agree(q: &Expr, db: &Database, limits: &Limits) {
    let (serial, serial_steps) = eval_at_chunks(q, db, limits.clone(), 1);
    for chunks in [2usize, 4] {
        let (par, par_steps) = eval_at_chunks(q, db, limits.clone(), chunks);
        assert_eq!(serial, par, "serial vs {chunks}-chunk result for {q}");
        assert_eq!(
            serial_steps, par_steps,
            "serial vs {chunks}-chunk step charges for {q}"
        );
    }
}

/// Random expressions over the partitionable operator set: the four
/// keywise merges, the materializing product, the fused equi-join shape,
/// and structural operators layered on top.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![Just(Expr::var("R")), Just(Expr::var("S"))];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.additive_union(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.subtract(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.max_union(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.intersect(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.product(b)),
            (inner.clone(), inner.clone(), 1usize..5, 1usize..5).prop_map(|(a, b, i, j)| {
                a.product(b).select(
                    "x",
                    Pred::eq(Expr::var("x").attr(i), Expr::var("x").attr(j)),
                )
            }),
            inner.clone().prop_map(Expr::dedup),
            inner.prop_map(|a| a.project(&[1])),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random operator trees over random bags: every partition count
    /// computes the serial answer, error, and step charge.
    #[test]
    fn random_expressions_agree_across_partition_counts(
        q in expr_strategy(),
        left in vec((0i64..6, 0i64..6, 1u64..4), 0..20),
        right in vec((0i64..6, 0i64..6, 1u64..4), 0..20),
    ) {
        let db = Database::new()
            .with("R", binary_bag(&left))
            .with("S", binary_bag(&right));
        assert_parallel_serial_agree(&q, &db, &Limits::default());
    }

    /// The same trees under hostile budgets: when the serial evaluation
    /// errors (`ElementLimit`, `TooLarge`, `StepLimit`…), every partition
    /// count reproduces the **same error payload** — the optimistic
    /// kernels must discard partial work and re-derive the serial
    /// outcome, charging identically.
    #[test]
    fn tight_budgets_error_identically(
        q in expr_strategy(),
        left in vec((0i64..6, 0i64..6, 1u64..4), 0..20),
        right in vec((0i64..6, 0i64..6, 1u64..4), 0..20),
        max_elements in 1u64..40,
        max_steps in 1u64..2_000,
    ) {
        let db = Database::new()
            .with("R", binary_bag(&left))
            .with("S", binary_bag(&right));
        let limits = Limits {
            max_bag_elements: max_elements,
            max_steps,
            ..Limits::default()
        };
        assert_parallel_serial_agree(&q, &db, &limits);
    }

    /// The rank-space subbag enumeration: powerset and powerbag over
    /// random small bags (duplicated multiplicities exercise the
    /// weighted binomial path) agree at every partition count, including
    /// under a budget that trips the up-front cardinality prediction.
    #[test]
    fn power_operators_agree_across_partition_counts(
        rows in vec((0i64..6, 1u64..4), 0..7),
        weighted in any::<bool>(),
        tight in any::<bool>(),
    ) {
        let db = Database::new().with("U", unary_bag(&rows));
        let q = if weighted {
            Expr::var("U").powerbag()
        } else {
            Expr::var("U").powerset()
        };
        let limits = if tight {
            Limits { max_bag_elements: 16, ..Limits::default() }
        } else {
            Limits::default()
        };
        assert_parallel_serial_agree(&q, &db, &limits);
        // A destroyed powerset (the paper's e4 shape) flows the chunked
        // output through a downstream operator.
        let q = Expr::var("U").powerset().dedup();
        assert_parallel_serial_agree(&q, &db, &limits);
    }

    /// Non-tuple elements force the product's error path: the pre-scan's
    /// first-error rule must surface the same `NotATuple` (or budget
    /// error) the serial inner loop finds, at every partition count.
    #[test]
    fn irregular_products_error_identically(
        left in vec((0i64..4, 0i64..4, 1u64..3), 0..10),
        right in vec((0i64..4, 1u64..3), 0..10),
        poison_left in any::<bool>(),
    ) {
        let mut r = binary_bag(&left);
        let mut s = unary_bag(&right);
        if poison_left {
            r.insert(Value::sym("atom")); // not a tuple
        } else {
            s.insert(Value::sym("atom"));
        }
        let db = Database::new().with("R", r).with("S", s);
        let q = Expr::var("R").product(Expr::var("S"));
        assert_parallel_serial_agree(&q, &db, &Limits::default());
    }
}

/// The IFP body (a transitive closure over a cycle) iterates the
/// partitioned join and max-union kernels many times; the closure must be
/// identical at every partition count, and so must the step charges.
#[test]
fn ifp_closure_agrees_across_partition_counts() {
    let g = Bag::from_values(
        (0..10i64).map(|i| Value::tuple([Value::int(i), Value::int((i + 1) % 10)])),
    );
    let step = Expr::var("T")
        .product(Expr::var("G"))
        .select(
            "x",
            Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
        )
        .project(&[1, 4])
        .dedup();
    let q = Expr::var("G").ifp("T", step);
    let db = Database::new().with("G", g);
    let (serial, serial_steps) = eval_at_chunks(&q, &db, Limits::default(), 1);
    let closure = serial.as_ref().expect("closure evaluates").clone();
    assert_eq!(closure.distinct_count(), 10 * 10);
    for chunks in [2usize, 4, 7] {
        let (par, par_steps) = eval_at_chunks(&q, &db, Limits::default(), chunks);
        assert_eq!(par.as_ref().ok(), Some(&closure), "chunks = {chunks}");
        assert_eq!(serial_steps, par_steps, "chunks = {chunks}");
    }
}

/// Larger-than-threshold inputs through the *default* threshold: with
/// realistic sizes the partitioned paths engage on their own, and the
/// keywise merges and join probe still match the serial twin exactly.
#[test]
fn default_threshold_engages_and_agrees() {
    let n = 6000i64;
    let r = Bag::from_values((0..n).map(|i| Value::tuple([Value::int(i), Value::int(i % 97)])));
    let s = Bag::from_values((0..n).map(|i| Value::tuple([Value::int(i % 97), Value::int(i)])));
    let db = Database::new().with("R", r).with("S", s);
    for q in [
        Expr::var("R").additive_union(Expr::var("S")),
        Expr::var("R").subtract(Expr::var("S")),
        Expr::var("R").max_union(Expr::var("S")),
        Expr::var("R").intersect(Expr::var("S")),
        Expr::var("R").product(Expr::var("S")).select(
            "x",
            Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
        ),
    ] {
        let mut serial = Evaluator::new(&db, Limits::default());
        serial.set_parallel_threads(1);
        let mut parallel = Evaluator::new(&db, Limits::default());
        parallel.set_parallel_threads(4);
        let a = serial.eval_bag(&q);
        let b = parallel.eval_bag(&q);
        assert_eq!(a, b, "default-threshold disagreement for {q}");
        assert_eq!(serial.metrics().steps, parallel.metrics().steps, "{q}");
    }
}
