//! The static analyzer's soundness gate: for random expressions over a
//! fixed schema and random conforming databases, every certificate the
//! analyzer issues is checked against an actual evaluation.
//!
//! Per accepted expression:
//!
//! - the **inferred type** must be compatible with the evaluated output's
//!   own inferred type (equal wherever both are concrete — `Unknown` only
//!   arises from empty bags in the output);
//! - a **`cannot_error`** certificate must never be contradicted: if
//!   evaluation fails anyway, the failure must be a *resource budget*
//!   (step / element / multiplicity / fixpoint limit, or a predicted
//!   `TooLarge`), never a shape error;
//! - a **set-ness** certificate (`duplicate_free`) means every
//!   multiplicity in the output bag is exactly one.
//!
//! Analyzer *rejections* assert nothing — the analyzer is deliberately
//! conservative (a doomed λ body over a bag that happens to be empty
//! evaluates fine but is still statically rejected). Linearity
//! certificates are checked against the incremental engine's counters in
//! `balg-incremental`'s `linearity_differential` suite instead.

use balg_core::analyze::{analyze, Facts};
use balg_core::bag::{Bag, BagError};
use balg_core::eval::{EvalError, Evaluator, Limits};
use balg_core::expr::{Expr, Pred};
use balg_core::natural::Natural;
use balg_core::schema::{Database, Schema};
use balg_core::types::Type;
use balg_core::value::Value;
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

fn limits() -> Limits {
    Limits {
        max_bag_elements: 1 << 10,
        max_multiplicity_bits: 1 << 9,
        max_steps: 1_000_000,
        max_ifp_iterations: 32,
    }
}

/// The suite's schema: two unary relations and one binary one.
fn schema() -> Schema {
    Schema::new()
        .with("R", Type::relation(1))
        .with("S", Type::relation(1))
        .with("G", Type::relation(2))
}

fn unary(v: i64) -> Value {
    Value::tuple([Value::int(v)])
}

fn pair(a: i64, b: i64) -> Value {
    Value::tuple([Value::int(a), Value::int(b)])
}

/// A random database conforming to [`schema`], with real duplicate
/// multiplicities so set-ness claims are actually at stake.
fn db_strategy() -> impl Strategy<Value = Database> {
    let unary_bag = || {
        proptest::collection::btree_map(0i64..4, 1u64..4, 0..4).prop_map(|entries| {
            Bag::from_counted(
                entries
                    .into_iter()
                    .map(|(v, m)| (unary(v), Natural::from(m))),
            )
        })
    };
    let pair_bag =
        proptest::collection::btree_map((0i64..4, 0i64..4), 1u64..3, 0..5).prop_map(|entries| {
            Bag::from_counted(
                entries
                    .into_iter()
                    .map(|((a, b), m)| (pair(a, b), Natural::from(m))),
            )
        });
    (unary_bag(), unary_bag(), pair_bag)
        .prop_map(|(r, s, g)| Database::new().with("R", r).with("S", s).with("G", g))
}

/// A tiny deterministic generator (splitmix64) so expression shape is a
/// pure function of the proptest-supplied seed.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn leaf(&mut self, arity: usize) -> Expr {
        match arity {
            1 => {
                if self.below(2) == 0 {
                    Expr::var("R")
                } else {
                    Expr::var("S")
                }
            }
            _ => Expr::var("G"),
        }
    }

    fn pred(&mut self, arity: usize) -> Pred {
        let x = || Expr::var("x");
        match self.below(5) {
            0 if arity >= 2 => Pred::eq(x().attr(1), x().attr(2)),
            1 => Pred::lt(x().attr(1), Expr::lit(Value::int(self.below(4) as i64))),
            2 => Pred::Member(
                x().attr(1),
                Expr::lit(Value::Bag(Bag::from_values(
                    (0..self.below(3)).map(|v| Value::int(v as i64)),
                ))),
            ),
            3 if arity == 1 => Pred::SubBag(x().singleton(), Expr::var("R")),
            _ => Pred::eq(x().attr(1), Expr::lit(Value::int(self.below(4) as i64))).not(),
        }
    }

    fn expr(&mut self, depth: usize, arity: usize) -> Expr {
        if depth == 0 {
            return self.leaf(arity);
        }
        match self.below(16) {
            0 => self
                .expr(depth - 1, arity)
                .additive_union(self.expr(depth - 1, arity)),
            1 => self
                .expr(depth - 1, arity)
                .subtract(self.expr(depth - 1, arity)),
            2 => self
                .expr(depth - 1, arity)
                .max_union(self.expr(depth - 1, arity)),
            3 => self
                .expr(depth - 1, arity)
                .intersect(self.expr(depth - 1, arity)),
            4 => self.expr(depth - 1, arity).dedup(),
            5 => {
                let pred = self.pred(arity);
                self.expr(depth - 1, arity).select("x", pred)
            }
            6 => {
                let body = if arity == 1 {
                    Expr::tuple([Expr::var("x").attr(1), Expr::var("x").attr(1)])
                } else {
                    Expr::tuple([Expr::var("x").attr(2), Expr::var("x").attr(1)])
                };
                let input_arity = if arity == 1 { 1 } else { 2 };
                let out = self.expr(depth - 1, input_arity).map("x", body);
                if arity == 1 {
                    out.project(&[1])
                } else {
                    out
                }
            }
            7 => {
                if arity == 2 {
                    self.expr(depth - 1, 1).product(self.expr(depth - 1, 1))
                } else {
                    let ix = 1 + self.below(2) as usize;
                    self.expr(depth - 1, 2).project(&[ix])
                }
            }
            8 if arity == 1 => self.expr(depth - 1, 1).dedup().powerset().destroy(),
            9 if arity == 1 => self.expr(depth - 1, 1).dedup().powerbag().destroy(),
            10 if arity == 1 => self
                .expr(depth - 1, 2)
                .nest(&[1])
                .map("g", Expr::tuple([Expr::var("g").attr(1)])),
            11 if arity == 2 => {
                let step = Expr::var("T")
                    .product(Expr::var("G"))
                    .select(
                        "x",
                        Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
                    )
                    .project(&[1, 4])
                    .dedup();
                Expr::var("G").ifp("T", step)
            }
            12 => {
                // A constant β(τ(…)) branch — duplicate-free by
                // construction, keeps ∪⁺ honest about losing the
                // certificate.
                let constant = Expr::Singleton(Box::new(Expr::Tuple(
                    (0..arity)
                        .map(|_| Expr::lit(Value::int(self.below(4) as i64)))
                        .collect(),
                )));
                self.expr(depth - 1, arity).max_union(constant)
            }
            // Deliberately doomed shapes — the analyzer must reject these,
            // and the case then asserts nothing (conservatism is allowed).
            13 => self.expr(depth - 1, arity).map("x", Expr::var("x").attr(0)),
            14 => self
                .expr(depth - 1, arity)
                .map("x", Expr::var("x").attr(9))
                .project(&[1]),
            _ => self.expr(depth - 1, arity),
        }
    }
}

fn is_resource_limit(e: &EvalError) -> bool {
    matches!(
        e,
        EvalError::StepLimit(_)
            | EvalError::ElementLimit { .. }
            | EvalError::MultiplicityLimit { .. }
            | EvalError::IfpLimit(_)
            | EvalError::Bag(BagError::TooLarge { .. })
    )
}

/// One differential case: analyze, evaluate, cross-check every issued
/// certificate.
fn check_case(expr: &Expr, facts: &Facts, db: &Database) {
    let mut ev = Evaluator::new(db, limits());
    match ev.eval(expr) {
        Ok(value) => {
            let actual = value
                .infer_type()
                .expect("an analyzer-accepted expression evaluated to a non-object");
            assert!(
                actual.compatible(&facts.ty),
                "inferred type {} incompatible with actual output type {} for {expr}",
                facts.ty,
                actual
            );
            if facts.duplicate_free {
                if let Value::Bag(bag) = &value {
                    assert!(
                        bag.iter().all(|(_, mult)| mult.is_one()),
                        "set-ness certificate contradicted: {expr} produced {bag}"
                    );
                }
            }
        }
        Err(e) => {
            if facts.cannot_error {
                assert!(
                    is_resource_limit(&e),
                    "cannot-error certificate contradicted by a shape error: \
                     {e} for {expr}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// ≥256 random (expression, database) pairs spanning every operator,
    /// both arities, and the deliberately doomed shapes.
    #[test]
    fn certificates_survive_evaluation(
        seed in 0u64..1_000_000_000,
        depth in 1usize..5,
        arity in 1usize..3,
        db in db_strategy(),
    ) {
        let expr = Gen::new(seed).expr(depth, arity);
        if let Ok(facts) = analyze(&expr, &schema()) {
            check_case(&expr, &facts, &db);
        }
    }
}

/// The generator actually exercises both sides of each certificate:
/// accepted and rejected expressions, duplicate-free and duplicate-prone
/// outputs, polynomial and blowup-class costs.
#[test]
fn generator_reaches_both_sides_of_every_certificate() {
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut dup_free = 0usize;
    let mut dup_prone = 0usize;
    let mut blowup = 0usize;
    for seed in 0..400u64 {
        let expr = Gen::new(seed).expr(3, 1 + (seed % 2) as usize);
        match analyze(&expr, &schema()) {
            Ok(facts) => {
                accepted += 1;
                if facts.duplicate_free {
                    dup_free += 1;
                } else {
                    dup_prone += 1;
                }
                if facts.cost.blowup_risk() {
                    blowup += 1;
                }
            }
            Err(_) => rejected += 1,
        }
    }
    assert!(accepted > 0 && rejected > 0, "{accepted} / {rejected}");
    assert!(dup_free > 0 && dup_prone > 0, "{dup_free} / {dup_prone}");
    assert!(blowup > 0, "no powerset-class expression generated");
}

/// Deterministic pin of the full certificate bundle for one expression
/// of each headline class.
#[test]
fn headline_certificates_hold_on_a_concrete_database() {
    let db = Database::new()
        .with(
            "R",
            Bag::from_counted([(unary(0), Natural::from(2u64)), (unary(1), 1u64.into())]),
        )
        .with("S", Bag::from_values([unary(1), unary(2)]))
        .with("G", Bag::from_values([pair(0, 1), pair(1, 2), pair(0, 1)]));

    // ε(R) — duplicate-free, polynomial, cannot error.
    let dedup = Expr::var("R").dedup();
    let facts = analyze(&dedup, &schema()).unwrap();
    assert!(facts.duplicate_free && facts.cannot_error);
    assert!(!facts.cost.blowup_risk());
    check_case(&dedup, &facts, &db);

    // R ∪⁺ R — duplicate-prone; the evaluation confirms multiplicity 4.
    let doubled = Expr::var("R").additive_union(Expr::var("R"));
    let facts = analyze(&doubled, &schema()).unwrap();
    assert!(!facts.duplicate_free);
    check_case(&doubled, &facts, &db);
    let out = balg_core::eval::eval_bag(&doubled, &db).unwrap();
    assert_eq!(out.multiplicity(&unary(0)), Natural::from(4u64));

    // P(ε(R)) — certified a set *and* a blowup risk at once.
    let power = Expr::var("R").dedup().powerset();
    let facts = analyze(&power, &schema()).unwrap();
    assert!(facts.duplicate_free && facts.cost.blowup_risk());
    check_case(&power, &facts, &db);
}
