//! # balg-core — the nested bag algebra of Grumbach & Milo
//!
//! A from-scratch implementation of the **BALG** algebra from
//! *"Towards Tractable Algebras for Bags"* (PODS 1993; JCSS 52(3), 1996):
//! complex objects built from atoms with tuple and bag constructors, the
//! full operator set of Section 3, and the structural analyses (bag
//! nesting, power nesting) that the paper's expressiveness hierarchy is
//! phrased in.
//!
//! ## Quick tour
//!
//! ```
//! use balg_core::prelude::*;
//!
//! // A bag database: a graph with a duplicated edge.
//! let g = Bag::from_values([
//!     Value::tuple([Value::sym("a"), Value::sym("b")]),
//!     Value::tuple([Value::sym("a"), Value::sym("b")]),
//!     Value::tuple([Value::sym("b"), Value::sym("c")]),
//! ]);
//! let db = Database::new().with("G", g);
//!
//! // π₂,₁(G): reverse the edges — duplicates survive (bag semantics).
//! let q = Expr::var("G").project(&[2, 1]);
//! let out = eval_bag(&q, &db).unwrap();
//! assert_eq!(
//!     out.multiplicity(&Value::tuple([Value::sym("b"), Value::sym("a")])),
//!     2u64.into()
//! );
//!
//! // The type checker places the query in BALG¹.
//! let schema = Schema::new().with("G", Type::relation(2));
//! let analysis = check(&q, &schema).unwrap();
//! assert_eq!(analysis.balg_level(), 1);
//! ```
//!
//! ## Module map
//!
//! | module | contents |
//! |--------|----------|
//! | [`natural`] | arbitrary-precision multiplicities |
//! | [`types`]   | the type system; bag nesting |
//! | [`value`]   | atoms, tuples, bags as values; standard encoding size |
//! | [`bag`]     | the counted bag representation and all primitive operators |
//! | [`expr`]    | the BALG expression AST with first-class λ |
//! | [`typecheck`] | type inference + fragment analysis (BALGᵏᵢ) |
//! | [`mod@analyze`] | static analyzer: shape inference, set-ness & linearity certificates, tractability class |
//! | [`mod@eval`] | resource-limited evaluation with metrics |
//! | [`index`]   | per-key join indexes and memoized `SubBag` testers |
//! | [`pool`]    | vendored work-stealing thread pool (std-only) |
//! | [`par`]     | deterministic partitioned operator kernels |
//! | [`derived`] | aggregates, cardinality quantifiers, Prop 3.1 identities |
//! | [`expanded`] | the standard-encoding representation (differential oracle) |
//! | [`rewrite`] | multiplicity-exact optimization rules (σ pushdown, ε/MAP fusion) |
//! | [`schema`]  | bag databases, schemas, isomorphism (genericity) |
//! | [`zbag`]    | signed-multiplicity ℤ-bags — the delta objects of incremental view maintenance |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyze;
pub mod bag;
pub mod derived;
pub mod eval;
pub mod expanded;
pub mod expr;
pub mod index;
pub mod natural;
pub mod par;
pub mod parse;
pub mod pool;
pub mod profile;
pub mod rewrite;
pub mod schema;
pub mod typecheck;
pub mod types;
pub mod value;
pub mod wal;
pub mod zbag;

/// Commonly used items, re-exported.
pub mod prelude {
    pub use crate::analyze::{
        analyze, base_linearity, certified_duplicate_free, lambda_affected, render_report,
        AnalyzeError, CostClass, Facts, Linearity,
    };
    pub use crate::bag::{Bag, BagError};
    pub use crate::eval::{
        eval, eval_bag, eval_with_metrics, EvalError, Evaluator, Limits, Metrics,
    };
    pub use crate::expr::{Expr, Pred, Var};
    pub use crate::index::{BagIndex, IndexCache, SubBagTester};
    pub use crate::natural::Natural;
    pub use crate::parse::{parse_expr, ExprParseError};
    pub use crate::rewrite::optimize;
    pub use crate::schema::{Database, Schema};
    pub use crate::typecheck::{check, infer_type, Analysis, TypeError};
    pub use crate::types::Type;
    pub use crate::value::{Atom, Value};
    pub use crate::wal::{crc32, frame, frames, unframe, ByteReader, DecodeError, Unframed};
    pub use crate::zbag::{ZBag, ZBagBuilder, ZBagError, ZInt};
}

pub use prelude::*;
