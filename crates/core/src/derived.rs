//! Derived operations: the paper's Section 3 constructions, executable.
//!
//! Bags give the algebra *counting power*: an integer `i` is represented by
//! a bag containing `i` occurrences of a fixed constant (here the unary
//! tuple `[a]`, so that Cartesian products apply). On that representation,
//! this module builds — as BALG *expressions*, not native Rust — the
//! aggregate functions `count`, `sum`, `average`, the cardinality
//! comparisons of Examples 4.1/4.2 (Härtig/Rescher quantifiers), the
//! parity-with-order query of Section 4, and the redundancy identities of
//! Proposition 3.1 and Section 3 (ε, −, and ∪⁺ defined from the other
//! operations). Each identity is exercised by the E4–E6 experiments.

use crate::bag::Bag;
use crate::expr::{Expr, Pred};
use crate::natural::Natural;
use crate::value::Value;

/// The fixed constant used by integer encodings (the paper's `a`).
pub const UNIT_ATOM: &str = "a";

/// A second fixed constant (the paper's `b`), used by the ∪⁺-from-∪
/// tagging construction.
pub const UNIT_ATOM_B: &str = "b";

/// The unary tuple `[a]` as a value.
pub fn unit_tuple() -> Value {
    Value::tuple([Value::sym(UNIT_ATOM)])
}

/// The integer `n` as a bag value: `⟦[a]ⁿ⟧`.
pub fn int_value(n: impl Into<Natural>) -> Value {
    Value::Bag(Bag::repeated(unit_tuple(), n.into()))
}

/// The integer `n` as a literal expression.
pub fn int_lit(n: impl Into<Natural>) -> Expr {
    Expr::Lit(int_value(n))
}

/// Decode an integer bag back to a [`Natural`]: the cardinality of a bag
/// of `[a]` tuples. Returns `None` if the value is not an integer bag.
pub fn decode_int(value: &Value) -> Option<Natural> {
    let bag = value.as_bag()?;
    let unit = unit_tuple();
    if bag.iter().all(|(v, _)| *v == unit) {
        Some(bag.cardinality())
    } else {
        None
    }
}

/// `count(B) = π₁(⟦[a]⟧ × B)` — the paper's Section 3 construction for a
/// bag of tuples: the product tags every occurrence with `[a]` and the
/// projection collapses them, summing multiplicities.
pub fn count_product(b: Expr) -> Expr {
    Expr::Lit(Value::Bag(Bag::singleton(unit_tuple())))
        .product(b)
        .project(&[1])
}

/// `count(B)` for a bag of *any* element type, via
/// `MAP_{λx.[a]}(B)` — every element maps to the same unit tuple, and MAP
/// sums preimage multiplicities (Section 3's MAP semantics), yielding
/// `⟦[a]^|B|⟧`.
pub fn count(b: Expr) -> Expr {
    b.map("ċ", Expr::tuple([Expr::lit(Value::sym(UNIT_ATOM))]))
}

/// `sum(B) = δ(B)` for a bag of integer bags (Section 3).
pub fn sum(b: Expr) -> Expr {
    b.destroy()
}

/// Integer multiplication on the bag encoding:
/// `x · y = π₁(x × y)` — `⟦[a]ⁱ⟧ × ⟦[a]ʲ⟧` has `i·j` occurrences of
/// `[a, a]`, and the projection keeps that multiplicity.
pub fn int_mul(x: Expr, y: Expr) -> Expr {
    x.product(y).project(&[1])
}

/// Integer addition on the bag encoding: `x + y = x ∪⁺ y`.
pub fn int_add(x: Expr, y: Expr) -> Expr {
    x.additive_union(y)
}

/// `average(B)` for a nonempty bag `B` of integer bags, when the average
/// is integral (Section 3's `average` uses the same powerset-guess idea;
/// the journal text of the formula is corrupted, so we state the
/// construction it describes): guess a candidate integer `y ⊑ sum(B)`
/// from the powerset, and keep the one with `y · count(B) = sum(B)`.
///
/// ```text
/// average(B) = δ( σ_{λy. π₁(y × count(B)) = δ(B)} ( P(δ(B)) ) )
/// ```
///
/// The intermediate `P(δ(B))` has bag nesting 2 — this is why aggregates
/// live in BALG² (Section 5).
pub fn average(b: Expr) -> Expr {
    let total = sum(b.clone());
    let candidates = total.clone().powerset();
    candidates
        .select("ȳ", Pred::eq(int_mul(Expr::var("ȳ"), count(b)), total))
        .destroy()
}

/// Example 4.2: boolean query `|R| > |S|` for bags of tuples, as
/// `π₁(R×R) − π₁(R×S) ≠ ∅`. The result bag is nonempty iff the
/// cardinality of `R` exceeds that of `S`. This query witnesses both the
/// failure of the 0–1 law (asymptotic probability ½) and the AC⁰
/// separation from RALG (it computes MAJORITY).
pub fn card_gt(r: Expr, s: Expr) -> Expr {
    r.clone()
        .product(r.clone())
        .project(&[1])
        .subtract(r.product(s).project(&[1]))
}

/// The Härtig quantifier `|R| = |S|` (equally many), definable per
/// Section 4: neither `|R| > |S|` nor `|S| > |R|` — computed as
/// `(count(R) − count(S)) ∪⁺ (count(S) − count(R)) = ∅`, so this
/// expression is **empty iff** the cardinalities are equal.
pub fn card_diff_symmetric(r: Expr, s: Expr) -> Expr {
    let cr = count(r);
    let cs = count(s);
    cr.clone()
        .subtract(cs.clone())
        .additive_union(cs.subtract(cr))
}

/// The counting quantifier `∃≥i x` (Section 4, \[IL90\]): nonempty iff
/// `|R| ≥ i`. Computed as `count(R) − (i−1)` for `i ≥ 1`.
pub fn card_ge_const(r: Expr, i: u64) -> Expr {
    assert!(i >= 1, "∃≥i requires i ≥ 1");
    count(r).subtract(int_lit(i - 1))
}

/// Example 4.1: the in-degree of node `a` in graph `G` (a binary edge
/// relation, possibly with duplicate edges) is **bigger** than its
/// out-degree, as `π₂(σ_{α₂=a}G) − π₁(σ_{α₁=a}G) ≠ ∅`.
///
/// This BALG¹ query is not expressible in the infinitary logic `L^ω_{∞ω}`
/// (Section 4) and witnesses BALG¹ ⊋ RALG (Proposition 4.3).
pub fn in_degree_gt_out_degree(g: Expr, node: Value) -> Expr {
    let incoming = g
        .clone()
        .select(
            "x",
            Pred::eq(Expr::var("x").attr(2), Expr::lit(node.clone())),
        )
        .project(&[2]);
    let outgoing = g
        .select("x", Pred::eq(Expr::var("x").attr(1), Expr::lit(node)))
        .project(&[1]);
    incoming.subtract(outgoing)
}

/// Section 4's parity query in the presence of an order: nonempty iff the
/// cardinality of the *relation* (unary, duplicate-free) `R` is **even**.
///
/// ```text
/// σ_{λx. MAP_{[a]}(σ_{λy. y ≤ x}(R)) = MAP_{[a]}(σ_{λy. x < y}(R))}(R) ≠ ∅
/// ```
///
/// There is an `x` with as many elements `≤ x` as `> x` iff `|R|` is even.
/// Parity is **not** first-order definable even with order, and not
/// BALG¹-definable *without* order (Proposition 4.5 / \[LW94\]) — this is
/// the separation experiment E9.
pub fn parity_even_ordered(r: Expr) -> Expr {
    let le_count = count(r.clone().select(
        "ŷ",
        Pred::le(Expr::var("ŷ").attr(1), Expr::var("x̂").attr(1)),
    ));
    let gt_count = count(r.clone().select(
        "ŷ",
        Pred::lt(Expr::var("x̂").attr(1), Expr::var("ŷ").attr(1)),
    ));
    r.select("x̂", Pred::eq(le_count, gt_count))
}

/// Proposition 3.1, flat case: for `B` a bag of tuples,
/// `ε(B) = δ(P(B) ∩ MAP_β(B))`.
///
/// `MAP_β(B)` holds each singleton `⟦o⟧` with multiplicity `n_o`; `P(B)`
/// holds every subbag once; the intersection keeps each singleton exactly
/// once and `δ` unwraps. Note the intermediate types have bag nesting one
/// higher than the input — the increase the paper proves essential for
/// BALG¹.
pub fn dedup_via_powerset_flat(b: Expr) -> Expr {
    let singletons = b.clone().map("x̂", Expr::var("x̂").singleton());
    b.powerset().intersect(singletons).destroy()
}

/// Proposition 3.1, nested case: for `B` a bag of bags,
/// `ε(B) = P(δ(B)) ∩ B`.
pub fn dedup_via_powerset_nested(b: Expr) -> Expr {
    b.clone().destroy().powerset().intersect(b)
}

/// Section 3: subtraction defined in BALG₋₋ via the powerset,
/// `B₁ − B₂ = δ(σ_{λx. x ∪⁺ (B₁ ∩ B₂) = B₁}(P(B₁)))` — the unique subbag
/// of `B₁` that restores `B₁` when the common part is added back.
pub fn subtract_via_powerset(b1: Expr, b2: Expr) -> Expr {
    let common = b1.clone().intersect(b2);
    b1.clone()
        .powerset()
        .select("x̂", Pred::eq(Expr::var("x̂").additive_union(common), b1))
        .destroy()
}

/// Section 3: additive union defined from maximal union by tagging,
/// `B₁ ∪⁺ B₂ = π_{1..k}((B₁ × ⟦[a]⟧) ∪ (B₂ × ⟦[b]⟧))` for `k`-ary bags.
/// The disjoint tags make the supports disjoint, so maximal union acts as
/// a disjoint sum, and the projection's MAP re-merges with *added*
/// multiplicities.
pub fn additive_union_via_max(b1: Expr, b2: Expr, k: usize) -> Expr {
    let tag_a = Expr::Lit(Value::Bag(Bag::singleton(Value::tuple([Value::sym(
        UNIT_ATOM,
    )]))));
    let tag_b = Expr::Lit(Value::Bag(Bag::singleton(Value::tuple([Value::sym(
        UNIT_ATOM_B,
    )]))));
    let indices: Vec<usize> = (1..=k).collect();
    b1.product(tag_a)
        .max_union(b2.product(tag_b))
        .project(&indices)
}

/// Membership test as an expression: `σ_{λx. x = o}(B)` — nonempty iff
/// `o ∈ B` (Section 3: "membership and containment tests can be expressed
/// using the algebra operators and equality testing").
pub fn member(o: Value, b: Expr) -> Expr {
    b.select("x̂", Pred::eq(Expr::var("x̂"), Expr::lit(o)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_bag, EvalError};
    use crate::schema::Database;
    use crate::schema::Schema;
    use crate::typecheck::check;
    use crate::types::Type;

    fn nat(v: u64) -> Natural {
        Natural::from(v)
    }

    fn tuples(pairs: &[(&str, &str)]) -> Bag {
        Bag::from_values(
            pairs
                .iter()
                .map(|(x, y)| Value::tuple([Value::sym(x), Value::sym(y)])),
        )
    }

    fn unary(elems: &[&str]) -> Bag {
        Bag::from_values(elems.iter().map(|e| Value::tuple([Value::sym(e)])))
    }

    #[test]
    fn count_both_constructions_agree() {
        let mut b = Bag::new();
        b.insert_with_multiplicity(Value::tuple([Value::sym("x"), Value::sym("y")]), nat(3));
        b.insert(Value::tuple([Value::sym("u"), Value::sym("v")]));
        let db = Database::new().with("B", b);
        let via_map = eval_bag(&count(Expr::var("B")), &db).unwrap();
        let via_product = eval_bag(&count_product(Expr::var("B")), &db).unwrap();
        assert_eq!(via_map, via_product);
        assert_eq!(decode_int(&Value::Bag(via_map)), Some(nat(4)));
    }

    #[test]
    fn sum_is_destroy() {
        // B = ⟦int(2), int(3), int(3)⟧ → sum = 8.
        let mut b = Bag::new();
        b.insert(int_value(2u64));
        b.insert_with_multiplicity(int_value(3u64), nat(2));
        let db = Database::new().with("B", b);
        let out = eval_bag(&sum(Expr::var("B")), &db).unwrap();
        assert_eq!(decode_int(&Value::Bag(out)), Some(nat(8)));
    }

    #[test]
    fn int_arithmetic() {
        let db = Database::new();
        let prod = eval_bag(&int_mul(int_lit(6u64), int_lit(7u64)), &db).unwrap();
        assert_eq!(decode_int(&Value::Bag(prod)), Some(nat(42)));
        let total = eval_bag(&int_add(int_lit(6u64), int_lit(7u64)), &db).unwrap();
        assert_eq!(decode_int(&Value::Bag(total)), Some(nat(13)));
        let zero = eval_bag(&int_mul(int_lit(0u64), int_lit(7u64)), &db).unwrap();
        assert!(zero.is_empty());
    }

    #[test]
    fn average_of_integers() {
        // avg(⟦2, 4, 6⟧) = 4.
        let b = Bag::from_values([int_value(2u64), int_value(4u64), int_value(6u64)]);
        let db = Database::new().with("B", b);
        let out = eval_bag(&average(Expr::var("B")), &db).unwrap();
        assert_eq!(decode_int(&Value::Bag(out)), Some(nat(4)));
    }

    #[test]
    fn average_lives_in_balg2() {
        let schema = Schema::new().with("B", Type::bag(Type::relation(1)));
        let analysis = check(&average(Expr::var("B")), &schema).unwrap();
        assert!(analysis.is_core_balg());
        // Input ⟦⟦[a]⟧⟧ has nesting 2; the P(δ(B)) intermediate stays at 2:
        // aggregates are exactly BALG² queries (Section 5).
        assert_eq!(analysis.balg_level(), 2);
        assert!(analysis.uses_powerset);
    }

    #[test]
    fn example_4_2_cardinality_comparison() {
        let r = unary(&["r1", "r2", "r3"]);
        let s = unary(&["s1", "s2"]);
        let db = Database::new().with("R", r).with("S", s);
        let gt = eval_bag(&card_gt(Expr::var("R"), Expr::var("S")), &db).unwrap();
        assert!(!gt.is_empty());
        let lt = eval_bag(&card_gt(Expr::var("S"), Expr::var("R")), &db).unwrap();
        assert!(lt.is_empty());
        // equal cardinalities → both empty
        let db_eq = Database::new()
            .with("R", unary(&["r1", "r2"]))
            .with("S", unary(&["s1", "s2"]));
        assert!(eval_bag(&card_gt(Expr::var("R"), Expr::var("S")), &db_eq)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn haertig_quantifier() {
        let db = Database::new()
            .with("R", unary(&["r1", "r2"]))
            .with("S", unary(&["s1", "s2"]));
        let diff = eval_bag(&card_diff_symmetric(Expr::var("R"), Expr::var("S")), &db).unwrap();
        assert!(diff.is_empty());
        let db2 = Database::new()
            .with("R", unary(&["r1"]))
            .with("S", unary(&["s1", "s2"]));
        let diff2 = eval_bag(&card_diff_symmetric(Expr::var("R"), Expr::var("S")), &db2).unwrap();
        assert!(!diff2.is_empty());
    }

    #[test]
    fn counting_quantifier() {
        let db = Database::new().with("R", unary(&["x", "y", "z"]));
        assert!(!eval_bag(&card_ge_const(Expr::var("R"), 3), &db)
            .unwrap()
            .is_empty());
        assert!(eval_bag(&card_ge_const(Expr::var("R"), 4), &db)
            .unwrap()
            .is_empty());
        assert!(!eval_bag(&card_ge_const(Expr::var("R"), 1), &db)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn example_4_1_degree_comparison() {
        // a has in-degree 2 (b→a, c→a) and out-degree 1 (a→b).
        let g = tuples(&[("b", "a"), ("c", "a"), ("a", "b")]);
        let db = Database::new().with("G", g);
        let q = in_degree_gt_out_degree(Expr::var("G"), Value::sym("a"));
        assert!(!eval_bag(&q, &db).unwrap().is_empty());
        // Balanced node b: in 1 (a→b), out 1 (b→a).
        let q_b = in_degree_gt_out_degree(Expr::var("G"), Value::sym("b"));
        assert!(eval_bag(&q_b, &db).unwrap().is_empty());
    }

    #[test]
    fn degree_query_counts_duplicate_edges() {
        // Bags: duplicate edges count toward degrees.
        let mut g = Bag::new();
        g.insert_with_multiplicity(Value::tuple([Value::sym("b"), Value::sym("a")]), nat(3));
        g.insert_with_multiplicity(Value::tuple([Value::sym("a"), Value::sym("b")]), nat(2));
        let db = Database::new().with("G", g);
        let q = in_degree_gt_out_degree(Expr::var("G"), Value::sym("a"));
        assert!(!eval_bag(&q, &db).unwrap().is_empty()); // 3 > 2
    }

    #[test]
    fn parity_with_order() {
        for n in 0u64..9 {
            let r = Bag::from_values((0..n as i64).map(|i| Value::tuple([Value::int(i)])));
            let db = Database::new().with("R", r);
            let out = eval_bag(&parity_even_ordered(Expr::var("R")), &db).unwrap();
            assert_eq!(
                !out.is_empty(),
                n % 2 == 0 && n > 0,
                "parity query wrong at n={n}"
            );
        }
    }

    #[test]
    fn parity_query_uses_order_flag() {
        let schema = Schema::new().with("R", Type::relation(1));
        let analysis = check(&parity_even_ordered(Expr::var("R")), &schema).unwrap();
        assert!(analysis.uses_order);
        assert_eq!(analysis.balg_level(), 1);
    }

    #[test]
    fn prop_3_1_dedup_flat_identity() {
        let mut b = Bag::new();
        b.insert_with_multiplicity(Value::tuple([Value::sym("p")]), nat(4));
        b.insert_with_multiplicity(Value::tuple([Value::sym("q")]), nat(1));
        let db = Database::new().with("B", b.clone());
        let via_powerset = eval_bag(&dedup_via_powerset_flat(Expr::var("B")), &db).unwrap();
        assert_eq!(via_powerset, b.dedup());
    }

    #[test]
    fn prop_3_1_dedup_nested_identity() {
        let mut b = Bag::new();
        b.insert_with_multiplicity(Value::bag([Value::sym("p"), Value::sym("p")]), nat(3));
        b.insert(Value::bag([Value::sym("q")]));
        let db = Database::new().with("B", b.clone());
        let via_powerset = eval_bag(&dedup_via_powerset_nested(Expr::var("B")), &db).unwrap();
        assert_eq!(via_powerset, b.dedup());
    }

    #[test]
    fn subtract_via_powerset_identity() {
        let mut b1 = Bag::new();
        b1.insert_with_multiplicity(Value::tuple([Value::sym("p")]), nat(5));
        b1.insert_with_multiplicity(Value::tuple([Value::sym("q")]), nat(2));
        let mut b2 = Bag::new();
        b2.insert_with_multiplicity(Value::tuple([Value::sym("p")]), nat(3));
        b2.insert_with_multiplicity(Value::tuple([Value::sym("r")]), nat(9));
        let db = Database::new()
            .with("B1", b1.clone())
            .with("B2", b2.clone());
        let via_powerset = eval_bag(
            &subtract_via_powerset(Expr::var("B1"), Expr::var("B2")),
            &db,
        )
        .unwrap();
        assert_eq!(via_powerset, b1.subtract(&b2));
    }

    #[test]
    fn additive_union_via_max_identity() {
        let b1 = tuples(&[("x", "y"), ("x", "y"), ("u", "v")]);
        let b2 = tuples(&[("x", "y")]);
        let db = Database::new()
            .with("B1", b1.clone())
            .with("B2", b2.clone());
        let via_tagging = eval_bag(
            &additive_union_via_max(Expr::var("B1"), Expr::var("B2"), 2),
            &db,
        )
        .unwrap();
        assert_eq!(via_tagging, b1.additive_union(&b2));
    }

    #[test]
    fn member_expression() {
        let db = Database::new().with("B", unary(&["x", "y"]));
        let hit = member(Value::tuple([Value::sym("x")]), Expr::var("B"));
        assert!(!eval_bag(&hit, &db).unwrap().is_empty());
        let miss = member(Value::tuple([Value::sym("z")]), Expr::var("B"));
        assert!(eval_bag(&miss, &db).unwrap().is_empty());
    }

    #[test]
    fn decode_int_rejects_non_integers() {
        assert_eq!(decode_int(&Value::sym("a")), None);
        assert_eq!(
            decode_int(&Value::bag([Value::tuple([Value::sym("z")])])),
            None
        );
        assert_eq!(decode_int(&int_value(17u64)), Some(nat(17)));
        assert_eq!(decode_int(&Value::empty_bag()), Some(nat(0)));
    }

    #[test]
    fn derived_ops_are_resource_safe() {
        // average over a big sum must fail with a budget error, not hang.
        let b = Bag::from_values([int_value(1_000_000u64)]);
        let db = Database::new().with("B", b);
        let limits = crate::eval::Limits {
            max_bag_elements: 1024,
            ..crate::eval::Limits::default()
        };
        let mut ev = crate::eval::Evaluator::new(&db, limits);
        match ev.eval(&average(Expr::var("B"))) {
            Err(EvalError::Bag(_)) | Err(EvalError::ElementLimit { .. }) => {}
            other => panic!("expected budget error, got {other:?}"),
        }
    }
}
