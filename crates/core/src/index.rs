//! Secondary indexes over bags: per-key join indexes and memoized
//! membership structures for `SubBag` predicate tests.
//!
//! The sorted-slice [`Bag`] answers *ordered* probes in `O(log n)`, but
//! the two remaining hot paths named by the ROADMAP are keyed by an
//! **attribute of the element**, not by the element itself:
//!
//! * the equi-join `σ_{αᵢ=αⱼ}(B × B′)` wants all rows of one operand
//!   whose `i`-th field equals a probe key — [`BagIndex`] groups a bag's
//!   rows by one attribute so a join (and, in `balg-incremental`, a join
//!   *delta*) touches only the rows keyed by the values it carries,
//!   `O(matches)` instead of `O(|other side|)`;
//! * the powerset workloads test thousands of subbags against one fixed
//!   reference bag — [`SubBagTester`] memoizes the reference's
//!   per-element multiplicity caps once so each test is a handful of hash
//!   probes instead of a fresh merge walk plus a re-evaluation of the
//!   reference expression.
//!
//! [`IndexCache`] makes the join index reusable across evaluations:
//! entries are keyed by the **representation pointer** of the bag's
//! copy-on-write slice, and each entry holds a clone of the indexed bag.
//! That clone is what makes pointer keying sound: while an entry lives,
//! the slice allocation cannot be freed (no pointer reuse), and any
//! mutation of the bag goes through `Arc::make_mut`, which must copy the
//! now-shared slice — so a cached pointer can never silently refer to
//! changed data. The one caller that *wants* in-place mutation (the
//! incremental runtime's base-patch commit) first [`IndexCache::take_for_patch`]s
//! the entries out — restoring unique ownership — applies the same delta
//! to base and index, and restores the patched index under the new
//! representation.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use crate::bag::Bag;
use crate::natural::Natural;
use crate::value::Value;
use crate::zbag::ZBag;

/// A word-at-a-time multiply-xor hasher for [`Value`] keys. The default
/// SipHash costs more than the probes it guards on the small tuple keys
/// these indexes carry; the index maps are not exposed to untrusted key
/// sets (keys come from the database's own rows), so HashDoS hardening
/// buys nothing here. Integer writes mix one word each instead of
/// looping over bytes — `Value`'s derived `Hash` is almost entirely
/// discriminants and `i64`s.
pub struct ValueHasher(u64);

impl ValueHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl Default for ValueHasher {
    fn default() -> Self {
        ValueHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for ValueHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_ne_bytes(word));
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }

    fn write_u16(&mut self, v: u16) {
        self.mix(u64::from(v));
    }

    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    fn write_u128(&mut self, v: u128) {
        self.mix(v as u64);
        self.mix((v >> 64) as u64);
    }

    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// A hash map keyed by [`Value`]s through [`ValueHasher`].
pub type ValueMap<V> = HashMap<Value, V, BuildHasherDefault<ValueHasher>>;

/// The delta handed to [`BagIndex::patch`] did not match the indexed rows
/// (a deletion of a row the index never saw, or a row of the wrong
/// shape). The caller drops the index and rebuilds lazily.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexMismatch;

impl std::fmt::Display for IndexMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("delta does not match the indexed rows")
    }
}

impl std::error::Error for IndexMismatch {}

/// A per-attribute secondary index over a bag of uniform-arity tuples:
/// for one 1-based attribute, every distinct key value maps to the rows
/// (with multiplicities) carrying it, each group in ascending row order.
///
/// Built in one pass over the sorted slice (groups inherit the bag's
/// element order, so no per-group sort). [`BagIndex::patch`] keeps an
/// index consistent under a [`ZBag`] delta in `O(|δ| log(group))`, which
/// is how the incremental runtime's cached base indexes survive update
/// batches without a rebuild.
#[derive(Clone, Debug)]
pub struct BagIndex {
    attr: usize,
    arity: usize,
    groups: ValueMap<Vec<(Value, Natural)>>,
    rows: usize,
}

impl BagIndex {
    /// Index `bag` by its 1-based attribute `attr`. Returns `None` when
    /// the bag is not indexable this way: empty (no arity witness — the
    /// join paths need one), a non-tuple element, mixed arities, or
    /// `attr` out of range. Row clones are `Arc` bumps.
    pub fn build(bag: &Bag, attr: usize) -> Option<BagIndex> {
        if attr == 0 || bag.is_empty() {
            return None;
        }
        let mut arity = None;
        let mut groups: ValueMap<Vec<(Value, Natural)>> = ValueMap::default();
        for (value, mult) in bag.iter() {
            let fields = value.as_tuple()?;
            match arity {
                None => {
                    if fields.len() < attr {
                        return None;
                    }
                    arity = Some(fields.len());
                }
                Some(a) if a == fields.len() => {}
                Some(_) => return None,
            }
            groups
                .entry(fields[attr - 1].clone())
                .or_default()
                .push((value.clone(), mult.clone()));
        }
        Some(BagIndex {
            attr,
            arity: arity.expect("non-empty bag has an arity witness"),
            groups,
            rows: bag.distinct_count(),
        })
    }

    /// The indexed 1-based attribute.
    pub fn attr(&self) -> usize {
        self.attr
    }

    /// The uniform arity of the indexed rows.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of distinct rows indexed.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// All rows whose indexed attribute equals `key`, in ascending row
    /// order (empty for an absent key).
    pub fn group(&self, key: &Value) -> &[(Value, Natural)] {
        self.groups.get(key).map_or(&[], Vec::as_slice)
    }

    /// Apply a signed delta to the index, keeping it consistent with
    /// `delta.apply_to(indexed bag)`. On [`IndexMismatch`] the index may
    /// be partially patched and must be discarded.
    pub fn patch(&mut self, delta: &ZBag) -> Result<(), IndexMismatch> {
        for (row, change) in delta.iter() {
            let fields = row.as_tuple().ok_or(IndexMismatch)?;
            if fields.len() != self.arity {
                return Err(IndexMismatch);
            }
            let key = &fields[self.attr - 1];
            if change.is_negative() {
                let magnitude = change.magnitude();
                let group = self.groups.get_mut(key).ok_or(IndexMismatch)?;
                let ix = group
                    .binary_search_by(|probe| probe.0.cmp(row))
                    .map_err(|_| IndexMismatch)?;
                match group[ix].1.cmp(magnitude) {
                    std::cmp::Ordering::Less => return Err(IndexMismatch),
                    std::cmp::Ordering::Equal => {
                        group.remove(ix);
                        self.rows -= 1;
                        if group.is_empty() {
                            self.groups.remove(key);
                        }
                    }
                    std::cmp::Ordering::Greater => {
                        group[ix].1 = group[ix].1.monus(magnitude);
                    }
                }
            } else {
                let group = self.groups.entry(key.clone()).or_default();
                match group.binary_search_by(|probe| probe.0.cmp(row)) {
                    Ok(ix) => group[ix].1 += change.magnitude(),
                    Err(ix) => {
                        group.insert(ix, (row.clone(), change.magnitude().clone()));
                        self.rows += 1;
                    }
                }
            }
        }
        Ok(())
    }
}

/// One cache slot: the index (or the memoized fact that the bag is not
/// indexable on this attribute) plus a clone of the indexed bag, which
/// pins the representation pointer the entry is keyed by.
#[derive(Clone, Debug)]
struct CacheEntry {
    owner: Bag,
    attr: usize,
    index: Option<Arc<BagIndex>>,
}

/// A small cache of [`BagIndex`]es keyed by `(representation, attribute)`.
///
/// Lookup is a linear scan over at most [`IndexCache::capacity`] pointer
/// comparisons — cheaper than hashing for the handful of bases a query or
/// runtime touches. Negative results (bag not indexable) are cached too,
/// so a mixed-arity operand is not re-scanned on every probe.
///
/// Eviction is **least-recently-used**: entries live in recency order
/// (most recent at the back), every hit refreshes its entry, and an
/// insert past capacity evicts the front. A fixed-position FIFO here
/// would evict the hottest join index as soon as a workload touches
/// `capacity + 1` distinct representations — exactly what a large
/// concurrent session mix does — so recency, not insertion order, is
/// what the bound must act on. Capacity is configurable
/// ([`IndexCache::with_capacity`], [`IndexCache::set_capacity`]) and
/// defaults to [`IndexCache::DEFAULT_CAPACITY`].
#[derive(Clone, Debug)]
pub struct IndexCache {
    entries: Vec<CacheEntry>,
    capacity: usize,
    hits: u64,
    builds: u64,
    misses: u64,
    evictions: u64,
}

/// Process-global cache counters, resolved lazily from the installed
/// [`balg_obs`] registry. Plain `u64` bumps stay the source of truth for
/// `:stats` (deterministic, per-cache); these aggregate across every
/// cache in the process for `:metrics`.
struct CacheObs {
    hits: balg_obs::Counter,
    misses: balg_obs::Counter,
    builds: balg_obs::Counter,
    evictions: balg_obs::Counter,
}

static CACHE_OBS: std::sync::OnceLock<CacheObs> = std::sync::OnceLock::new();

/// The cached global handles, or `None` while no registry is installed.
/// Deliberately not memoizing the negative answer: a process that
/// installs the registry mid-life (the bench overhead pair does) starts
/// recording from that point on.
fn cache_obs() -> Option<&'static CacheObs> {
    if let Some(obs) = CACHE_OBS.get() {
        return Some(obs);
    }
    let registry = balg_obs::global()?;
    let _ = CACHE_OBS.set(CacheObs {
        hits: registry.counter(
            "balg_index_cache_hits_total",
            "Join-index cache hits across all caches",
        ),
        misses: registry.counter(
            "balg_index_cache_misses_total",
            "Join-index cache lookups that found no entry",
        ),
        builds: registry.counter(
            "balg_index_cache_builds_total",
            "Join-index builds (including negative results)",
        ),
        evictions: registry.counter(
            "balg_index_cache_evictions_total",
            "Join-index cache entries evicted by the LRU bound",
        ),
    });
    CACHE_OBS.get()
}

impl Default for IndexCache {
    fn default() -> IndexCache {
        IndexCache::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

impl IndexCache {
    /// Default cache capacity.
    pub const DEFAULT_CAPACITY: usize = 32;

    /// An empty cache with the default capacity.
    pub fn new() -> IndexCache {
        IndexCache::default()
    }

    /// An empty cache holding at most `capacity` entries (minimum 1).
    pub fn with_capacity(capacity: usize) -> IndexCache {
        IndexCache {
            entries: Vec::new(),
            capacity: capacity.max(1),
            hits: 0,
            builds: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The current capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Change the capacity (minimum 1), evicting least-recently-used
    /// entries if the cache is over the new bound.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        if self.entries.len() > self.capacity {
            let dropped = (self.entries.len() - self.capacity) as u64;
            self.entries.drain(..self.entries.len() - self.capacity);
            self.evictions += dropped;
            if let Some(obs) = cache_obs() {
                obs.evictions.add(dropped);
            }
        }
    }

    fn find(&self, bag: &Bag, attr: usize) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.attr == attr && e.owner.shares_representation(bag))
    }

    /// Move the hit entry to the most-recently-used position and return
    /// its new position.
    fn touch(&mut self, found: usize) -> usize {
        let entry = self.entries.remove(found);
        self.entries.push(entry);
        self.entries.len() - 1
    }

    fn push_evicting(&mut self, entry: CacheEntry) {
        if self.entries.len() >= self.capacity {
            self.entries.remove(0);
            self.evictions += 1;
            if let Some(obs) = cache_obs() {
                obs.evictions.inc();
            }
        }
        self.entries.push(entry);
    }

    /// A cached index for `(bag, attr)` if one exists — no build. A hit
    /// refreshes the entry's recency.
    pub fn peek(&mut self, bag: &Bag, attr: usize) -> Option<Arc<BagIndex>> {
        let Some(found) = self.find(bag, attr) else {
            self.misses += 1;
            if let Some(obs) = cache_obs() {
                obs.misses.inc();
            }
            return None;
        };
        let found = self.touch(found);
        let index = self.entries[found].index.clone()?;
        self.hits += 1;
        if let Some(obs) = cache_obs() {
            obs.hits.inc();
        }
        Some(index)
    }

    /// The index for `(bag, attr)`, building and caching it (or the
    /// negative answer) on a miss. A hit refreshes the entry's recency.
    pub fn get_or_build(&mut self, bag: &Bag, attr: usize) -> Option<Arc<BagIndex>> {
        if let Some(found) = self.find(bag, attr) {
            let found = self.touch(found);
            self.hits += 1;
            if let Some(obs) = cache_obs() {
                obs.hits.inc();
            }
            return self.entries[found].index.clone();
        }
        self.misses += 1;
        self.builds += 1;
        if let Some(obs) = cache_obs() {
            obs.misses.inc();
            obs.builds.inc();
        }
        let index = BagIndex::build(bag, attr).map(Arc::new);
        self.push_evicting(CacheEntry {
            owner: bag.clone(),
            attr,
            index: index.clone(),
        });
        index
    }

    /// Drop every entry for `bag`'s representation (wholesale base
    /// replacement).
    pub fn invalidate(&mut self, bag: &Bag) {
        self.entries.retain(|e| !e.owner.shares_representation(bag));
    }

    /// Remove and return every index built over `bag`'s representation
    /// (negative entries are dropped). Afterwards the cache holds no
    /// clone of the bag, so a uniquely-owned `bag` can be patched in
    /// place; pass the same delta to each returned index's
    /// [`BagIndex::patch`] and re-[`IndexCache::restore`] it.
    pub fn take_for_patch(&mut self, bag: &Bag) -> Vec<BagIndex> {
        let mut taken = Vec::new();
        let mut i = 0;
        while i < self.entries.len() {
            if self.entries[i].owner.shares_representation(bag) {
                let entry = self.entries.remove(i);
                if let Some(index) = entry.index {
                    taken.push(Arc::try_unwrap(index).unwrap_or_else(|shared| (*shared).clone()));
                }
            } else {
                i += 1;
            }
        }
        taken
    }

    /// Re-associate a patched index with (the possibly new representation
    /// of) `bag`. The restored entry is most-recently-used.
    pub fn restore(&mut self, bag: &Bag, index: BagIndex) {
        self.push_evicting(CacheEntry {
            owner: bag.clone(),
            attr: index.attr(),
            index: Some(Arc::new(index)),
        });
    }

    /// Cache hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Index builds (including negative results) so far.
    pub fn builds(&self) -> u64 {
        self.builds
    }

    /// Lookups (peek or get-or-build) that found no cached entry. A
    /// `get_or_build` miss is one miss plus one build; a negative entry
    /// found in place counts as neither.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries dropped by the LRU bound (inserts past capacity and
    /// capacity shrinks; explicit invalidation does not count).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// A memoized membership structure for repeated subbag tests against one
/// fixed reference bag: `candidate ⊑ reference` holds iff every element's
/// candidate multiplicity is within the reference's cap.
///
/// The evaluator builds one per `σ_{s ⊑ C}` chain, so the reference is
/// derived **once** instead of once per element — for the powerset-heavy
/// e4/e5 workloads that is tens of thousands of re-derivations saved.
/// The test itself is adaptive: against a small reference the two-sorted
/// -slice merge walk of [`Bag::is_subbag_of`] is unbeatable, so the
/// tester delegates to it; past [`SubBagTester::HASH_THRESHOLD`] distinct
/// elements it switches to a per-element hash probe of memoized caps,
/// whose `O(|candidate|)` beats the walk's `O(|candidate| + |reference|)`
/// when candidates are small relative to the reference.
#[derive(Clone, Debug)]
pub struct SubBagTester {
    reference: Bag,
    /// Per-element multiplicity caps, built only for large references.
    caps: Option<ValueMap<Natural>>,
}

impl SubBagTester {
    /// Reference size past which hash probing beats the merge walk.
    pub const HASH_THRESHOLD: usize = 64;

    /// Memoize the reference bag (`O(1)` for small references — the bag
    /// is shared; `O(|reference|)` `Arc`-bump clones past the hash
    /// threshold).
    pub fn new(reference: &Bag) -> SubBagTester {
        let caps = (reference.distinct_count() > Self::HASH_THRESHOLD).then(|| {
            let mut caps = ValueMap::default();
            caps.reserve(reference.distinct_count());
            for (value, mult) in reference.iter() {
                caps.insert(value.clone(), mult.clone());
            }
            caps
        });
        SubBagTester {
            reference: reference.clone(),
            caps,
        }
    }

    /// `candidate ⊑ reference` — exactly [`Bag::is_subbag_of`] against
    /// the memoized reference.
    pub fn admits(&self, candidate: &Bag) -> bool {
        match &self.caps {
            None => candidate.is_subbag_of(&self.reference),
            Some(caps) => {
                if candidate.distinct_count() > caps.len() {
                    return false;
                }
                candidate
                    .iter()
                    .all(|(value, mult)| caps.get(value).is_some_and(|cap| cap >= mult))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zbag::ZInt;

    fn row(a: i64, b: i64) -> Value {
        Value::tuple([Value::int(a), Value::int(b)])
    }

    fn bag(rows: &[(i64, i64, u64)]) -> Bag {
        Bag::from_counted(rows.iter().map(|&(a, b, m)| (row(a, b), Natural::from(m))))
    }

    #[test]
    fn build_groups_by_attribute() {
        let b = bag(&[(1, 10, 2), (2, 10, 1), (3, 20, 5)]);
        let by_second = BagIndex::build(&b, 2).unwrap();
        assert_eq!(by_second.arity(), 2);
        assert_eq!(by_second.rows(), 3);
        let tens = by_second.group(&Value::int(10));
        assert_eq!(tens.len(), 2);
        assert_eq!(tens[0], (row(1, 10), Natural::from(2u64)));
        assert_eq!(tens[1], (row(2, 10), Natural::from(1u64)));
        assert!(by_second.group(&Value::int(99)).is_empty());
        // Groups inherit ascending row order from the sorted slice.
        assert!(tens.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn build_rejects_unindexable_bags() {
        assert!(BagIndex::build(&Bag::new(), 1).is_none());
        assert!(BagIndex::build(&bag(&[(1, 2, 1)]), 0).is_none());
        assert!(BagIndex::build(&bag(&[(1, 2, 1)]), 3).is_none());
        let atoms = Bag::from_values([Value::sym("a")]);
        assert!(BagIndex::build(&atoms, 1).is_none());
        let mut mixed = bag(&[(1, 2, 1)]);
        mixed.insert(Value::tuple([Value::int(9)]));
        assert!(BagIndex::build(&mixed, 1).is_none());
    }

    #[test]
    fn patch_tracks_apply_to() {
        let base = bag(&[(1, 10, 2), (2, 20, 1)]);
        let mut index = BagIndex::build(&base, 2).unwrap();
        let delta = ZBag::from_counted([
            (row(1, 10), ZInt::from(-1i64)), // 2 → 1
            (row(2, 20), ZInt::from(-1i64)), // vanishes
            (row(3, 10), ZInt::from(4i64)),  // new row in the 10-group
        ]);
        index.patch(&delta).unwrap();
        let patched = delta.apply_to(&base).unwrap();
        let rebuilt = BagIndex::build(&patched, 2).unwrap();
        assert_eq!(index.rows(), rebuilt.rows());
        for key in [Value::int(10), Value::int(20)] {
            assert_eq!(index.group(&key), rebuilt.group(&key), "key {key}");
        }
    }

    #[test]
    fn patch_rejects_divergent_deltas() {
        let base = bag(&[(1, 10, 2)]);
        // Deleting a row the index never saw.
        let mut index = BagIndex::build(&base, 2).unwrap();
        assert!(index
            .patch(&ZBag::singleton(row(9, 9), ZInt::from(-1i64)))
            .is_err());
        // Over-deleting a present row.
        let mut index = BagIndex::build(&base, 2).unwrap();
        assert!(index
            .patch(&ZBag::singleton(row(1, 10), ZInt::from(-3i64)))
            .is_err());
        // A row of the wrong arity.
        let mut index = BagIndex::build(&base, 2).unwrap();
        assert!(index
            .patch(&ZBag::singleton(Value::tuple([Value::int(1)]), ZInt::one()))
            .is_err());
    }

    #[test]
    fn cache_hits_by_representation_and_survives_cow() {
        let b = bag(&[(1, 10, 1), (2, 20, 1)]);
        let mut cache = IndexCache::new();
        let first = cache.get_or_build(&b, 1).unwrap();
        let again = cache.get_or_build(&b.clone(), 1).unwrap();
        assert!(Arc::ptr_eq(&first, &again), "clone shares representation");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.builds(), 1);

        // Mutating a clone forces a copy (the cache owns a reference), so
        // the changed bag misses and rebuilds — the cached index never
        // serves stale rows.
        let mut changed = b.clone();
        changed.insert(row(3, 30));
        assert!(!changed.shares_representation(&b));
        let rebuilt = cache.get_or_build(&changed, 1).unwrap();
        assert_eq!(rebuilt.rows(), 3);
        assert_eq!(first.rows(), 2);
    }

    #[test]
    fn cache_remembers_negative_results() {
        let atoms = Bag::from_values([Value::sym("a")]);
        let mut cache = IndexCache::new();
        assert!(cache.get_or_build(&atoms, 1).is_none());
        assert!(cache.get_or_build(&atoms, 1).is_none());
        assert_eq!(
            cache.builds(),
            1,
            "second probe must hit the negative entry"
        );
        assert!(cache.peek(&atoms, 1).is_none());
    }

    #[test]
    fn take_patch_restore_roundtrip() {
        let base = bag(&[(1, 10, 1), (2, 20, 3)]);
        let mut cache = IndexCache::new();
        cache.get_or_build(&base, 2).unwrap();
        let delta =
            ZBag::from_counted([(row(2, 20), ZInt::from(-3i64)), (row(4, 10), ZInt::one())]);
        let mut taken = cache.take_for_patch(&base);
        assert_eq!(taken.len(), 1);
        assert!(
            cache.is_empty(),
            "owner clones must be dropped for the patch"
        );
        let new = delta.apply_to(&base).unwrap();
        let mut index = taken.pop().unwrap();
        index.patch(&delta).unwrap();
        cache.restore(&new, index);
        let served = cache.peek(&new, 2).unwrap();
        let rebuilt = BagIndex::build(&new, 2).unwrap();
        assert_eq!(
            served.group(&Value::int(10)),
            rebuilt.group(&Value::int(10))
        );
        assert!(served.group(&Value::int(20)).is_empty());
    }

    #[test]
    fn cache_capacity_is_bounded() {
        let mut cache = IndexCache::new();
        for i in 0..(IndexCache::DEFAULT_CAPACITY + 8) {
            let b = bag(&[(i as i64, 0, 1)]);
            cache.get_or_build(&b, 1);
        }
        assert_eq!(cache.len(), IndexCache::DEFAULT_CAPACITY);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        // Four slots; fill them, touch the oldest, then overflow: the
        // eviction victim must be the least-recently-*used* entry (b),
        // not the oldest-inserted (a). Under the former FIFO policy a hot
        // entry died as soon as capacity+1 representations were touched.
        let mut cache = IndexCache::with_capacity(4);
        let bags: Vec<Bag> = (0..5).map(|i| bag(&[(i, 0, 1)])).collect();
        for b in &bags[..4] {
            cache.get_or_build(b, 1).unwrap();
        }
        // Touch a (the oldest) — now b is least recently used.
        assert!(cache.peek(&bags[0], 1).is_some());
        cache.get_or_build(&bags[4], 1).unwrap(); // evicts...
        assert_eq!(cache.len(), 4);
        let builds = cache.builds();
        assert!(cache.peek(&bags[0], 1).is_some(), "hot entry must survive");
        assert!(cache.peek(&bags[1], 1).is_none(), "LRU entry must be gone");
        assert_eq!(cache.builds(), builds, "peek never builds");

        // get_or_build hits refresh recency exactly like peek hits.
        let mut cache = IndexCache::with_capacity(2);
        cache.get_or_build(&bags[0], 1).unwrap();
        cache.get_or_build(&bags[1], 1).unwrap();
        cache.get_or_build(&bags[0], 1).unwrap(); // refresh a
        cache.get_or_build(&bags[2], 1).unwrap(); // evicts b
        assert!(cache.peek(&bags[0], 1).is_some());
        assert!(cache.peek(&bags[1], 1).is_none());
    }

    #[test]
    fn capacity_is_configurable_and_shrinks_lru_first() {
        let mut cache = IndexCache::with_capacity(8);
        assert_eq!(cache.capacity(), 8);
        let bags: Vec<Bag> = (0..8).map(|i| bag(&[(i, 0, 1)])).collect();
        for b in &bags {
            cache.get_or_build(b, 1).unwrap();
        }
        assert!(cache.peek(&bags[0], 1).is_some()); // refresh the oldest
        cache.set_capacity(2);
        assert_eq!(cache.len(), 2);
        assert!(cache.peek(&bags[0], 1).is_some(), "refreshed entry kept");
        assert!(cache.peek(&bags[7], 1).is_some(), "most recent kept");
        assert!(cache.peek(&bags[6], 1).is_none());
        // Capacity 0 clamps to 1.
        cache.set_capacity(0);
        assert_eq!(cache.capacity(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn subbag_tester_matches_is_subbag_of() {
        let reference = bag(&[(1, 1, 3), (2, 2, 1)]);
        let tester = SubBagTester::new(&reference);
        let cases = [
            bag(&[]),
            bag(&[(1, 1, 3)]),
            bag(&[(1, 1, 4)]),
            bag(&[(1, 1, 1), (2, 2, 1)]),
            bag(&[(3, 3, 1)]),
            bag(&[(1, 1, 1), (2, 2, 1), (3, 3, 1)]),
            reference.clone(),
        ];
        for candidate in &cases {
            assert_eq!(
                tester.admits(candidate),
                candidate.is_subbag_of(&reference),
                "{candidate}"
            );
        }
    }

    #[test]
    fn subbag_tester_hash_arm_matches_too() {
        // A reference past the hash threshold exercises the caps-map arm.
        let reference = Bag::from_counted(
            (0..(SubBagTester::HASH_THRESHOLD as i64 + 32))
                .map(|i| (Value::int(i), Natural::from(i as u64 % 3 + 1))),
        );
        let tester = SubBagTester::new(&reference);
        let cases = [
            Bag::new(),
            Bag::from_counted([(Value::int(4), Natural::from(2u64))]),
            Bag::from_counted([(Value::int(4), Natural::from(3u64))]), // cap is 2
            Bag::from_counted([(Value::int(-1), Natural::from(1u64))]),
            reference.clone(),
        ];
        for candidate in &cases {
            assert_eq!(
                tester.admits(candidate),
                candidate.is_subbag_of(&reference),
                "{candidate}"
            );
        }
    }
}
