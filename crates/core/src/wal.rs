//! Binary encoding for the durability layer (write-ahead log + snapshots).
//!
//! The incremental runtime persists committed update batches and periodic
//! base snapshots so a process restart replays to exactly the acked state.
//! This module owns the byte-level vocabulary: LEB128 varints, a canonical
//! encoding for [`Natural`]/[`Value`]/[`Bag`]/[`ZInt`]/[`ZBag`] and for the
//! [`Expr`]/[`Pred`] trees that define views, and the length-prefixed,
//! CRC-32-checksummed record frame both the WAL and the snapshot file are
//! built from.
//!
//! Design constraints:
//!
//! * **Canonical** — encoding is deterministic (bags iterate in their
//!   canonical sorted order), so two runtimes holding equal state write
//!   byte-identical snapshots; recovery tests compare states structurally
//!   and byte-compare the files they produce.
//! * **Self-delimiting** — every record carries its own length up front, so
//!   the replay loop never reads past a record boundary; a torn tail shows
//!   up as an [`Unframed::Incomplete`], a flipped bit as
//!   [`Unframed::Corrupt`], and both are handled by truncating the log at
//!   the last good record rather than failing the open.
//! * **No dependencies** — CRC-32 (ISO-HDLC polynomial, the zlib/PNG one)
//!   is table-driven and computed here; the container bakes in no
//!   serialization crates.

use std::fmt;
use std::sync::OnceLock;

use crate::bag::{Bag, BagBuilder};
use crate::expr::{Expr, Pred, Var};
use crate::natural::Natural;
use crate::value::{Atom, Value};
use crate::zbag::{ZBag, ZInt};

// ---------------------------------------------------------------------------
// CRC-32 (ISO-HDLC / zlib polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

fn crc_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    })
}

/// CRC-32 (ISO-HDLC) of `bytes` — the checksum guarding every record frame.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Decode errors
// ---------------------------------------------------------------------------

/// Why a byte sequence failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value did.
    Truncated,
    /// An unknown tag byte for the named sort of value.
    Tag {
        /// What was being decoded (`"value"`, `"expr"`, …).
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A string field was not valid UTF-8.
    Utf8,
    /// A varint ran past 10 bytes (not a canonical `u64`).
    Varint,
    /// A structural invariant failed (e.g. zero multiplicity in a bag).
    Invalid(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => f.write_str("truncated input"),
            DecodeError::Tag { what, tag } => write!(f, "unknown {what} tag {tag:#04x}"),
            DecodeError::Utf8 => f.write_str("invalid UTF-8 in string"),
            DecodeError::Varint => f.write_str("overlong varint"),
            DecodeError::Invalid(what) => write!(f, "invalid encoding: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------------
// Primitive writers/readers (LEB128 varints)
// ---------------------------------------------------------------------------

/// Append a LEB128 varint.
pub fn put_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a zigzag-encoded signed varint.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    put_u64(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// A cursor over an encoded byte slice.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Start reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` once every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Read a LEB128 varint.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        for shift in 0..10 {
            let byte = self.u8()?;
            let bits = (byte & 0x7F) as u64;
            if shift == 9 && bits > 1 {
                return Err(DecodeError::Varint);
            }
            v |= bits << (shift * 7);
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(DecodeError::Varint)
    }

    /// Read a zigzag-encoded signed varint.
    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        let z = self.u64()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Read a `usize`-bounded length (rejects lengths beyond the input).
    fn len(&mut self) -> Result<usize, DecodeError> {
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return Err(DecodeError::Truncated);
        }
        Ok(n as usize)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, DecodeError> {
        let n = self.len()?;
        let bytes = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        std::str::from_utf8(bytes).map_err(|_| DecodeError::Utf8)
    }
}

// ---------------------------------------------------------------------------
// Natural / ZInt
// ---------------------------------------------------------------------------

/// Encode a [`Natural`]: varint limb count, then each little-endian limb as
/// a varint (multiplicities are overwhelmingly small; varint limbs make the
/// common one-limb case one or two bytes).
pub fn put_natural(out: &mut Vec<u8>, n: &Natural) {
    let limbs = n.limb_view();
    put_u64(out, limbs.len() as u64);
    for &limb in limbs {
        put_u64(out, limb);
    }
}

/// Decode a [`Natural`] written by [`put_natural`].
pub fn get_natural(r: &mut ByteReader<'_>) -> Result<Natural, DecodeError> {
    let count = r.u64()?;
    // A limb is ≥ 1 encoded byte; reject counts the input cannot hold.
    if count > r.remaining() as u64 {
        return Err(DecodeError::Truncated);
    }
    let mut limbs = Vec::with_capacity(count as usize);
    for _ in 0..count {
        limbs.push(r.u64()?);
    }
    Ok(Natural::from_limb_vec(limbs))
}

/// Encode a [`ZInt`] as a sign byte plus magnitude.
pub fn put_zint(out: &mut Vec<u8>, z: &ZInt) {
    out.push(z.is_negative() as u8);
    put_natural(out, z.magnitude());
}

/// Decode a [`ZInt`] written by [`put_zint`].
pub fn get_zint(r: &mut ByteReader<'_>) -> Result<ZInt, DecodeError> {
    let sign = match r.u8()? {
        0 => false,
        1 => true,
        tag => return Err(DecodeError::Tag { what: "sign", tag }),
    };
    Ok(ZInt::from_parts(sign, get_natural(r)?))
}

// ---------------------------------------------------------------------------
// Value / Bag / ZBag
// ---------------------------------------------------------------------------

const VAL_INT: u8 = 0;
const VAL_STR: u8 = 1;
const VAL_TUPLE: u8 = 2;
const VAL_BAG: u8 = 3;

/// Encode a [`Value`] (canonical: bags in sorted order).
pub fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Atom(Atom::Int(i)) => {
            out.push(VAL_INT);
            put_i64(out, *i);
        }
        Value::Atom(Atom::Str(s)) => {
            out.push(VAL_STR);
            put_str(out, s);
        }
        Value::Tuple(fields) => {
            out.push(VAL_TUPLE);
            put_u64(out, fields.len() as u64);
            for field in fields.iter() {
                put_value(out, field);
            }
        }
        Value::Bag(bag) => {
            out.push(VAL_BAG);
            put_bag(out, bag);
        }
    }
}

/// Decode a [`Value`] written by [`put_value`].
pub fn get_value(r: &mut ByteReader<'_>) -> Result<Value, DecodeError> {
    match r.u8()? {
        VAL_INT => Ok(Value::int(r.i64()?)),
        VAL_STR => Ok(Value::sym(r.str()?)),
        VAL_TUPLE => {
            let count = r.len()?;
            let mut fields = Vec::with_capacity(count);
            for _ in 0..count {
                fields.push(get_value(r)?);
            }
            Ok(Value::tuple(fields))
        }
        VAL_BAG => Ok(Value::Bag(get_bag(r)?)),
        tag => Err(DecodeError::Tag { what: "value", tag }),
    }
}

/// Encode a [`Bag`]: distinct count, then `(value, multiplicity)` pairs in
/// the bag's canonical sorted order.
pub fn put_bag(out: &mut Vec<u8>, bag: &Bag) {
    put_u64(out, bag.distinct_count() as u64);
    for (value, mult) in bag.iter() {
        put_value(out, value);
        put_natural(out, mult);
    }
}

/// Decode a [`Bag`] written by [`put_bag`]. Pairs arrive in canonical order,
/// so the builder's in-order bulk path applies.
pub fn get_bag(r: &mut ByteReader<'_>) -> Result<Bag, DecodeError> {
    let count = r.len()?;
    let mut builder = BagBuilder::with_capacity(count);
    for _ in 0..count {
        let value = get_value(r)?;
        let mult = get_natural(r)?;
        if mult.is_zero() {
            return Err(DecodeError::Invalid("zero multiplicity in bag"));
        }
        builder.push(value, mult);
    }
    Ok(builder.build())
}

/// Encode a [`ZBag`] delta: distinct count, then `(value, ℤ-multiplicity)`
/// pairs in canonical order.
pub fn put_zbag(out: &mut Vec<u8>, zbag: &ZBag) {
    put_u64(out, zbag.distinct_count() as u64);
    for (value, mult) in zbag.iter() {
        put_value(out, value);
        put_zint(out, mult);
    }
}

/// Decode a [`ZBag`] written by [`put_zbag`].
pub fn get_zbag(r: &mut ByteReader<'_>) -> Result<ZBag, DecodeError> {
    let count = r.len()?;
    let mut pairs = Vec::with_capacity(count);
    for _ in 0..count {
        let value = get_value(r)?;
        let mult = get_zint(r)?;
        if mult.is_zero() {
            return Err(DecodeError::Invalid("zero multiplicity in zbag"));
        }
        pairs.push((value, mult));
    }
    Ok(ZBag::from_counted(pairs))
}

// ---------------------------------------------------------------------------
// Expr / Pred
// ---------------------------------------------------------------------------

const EXPR_VAR: u8 = 0;
const EXPR_LIT: u8 = 1;
const EXPR_ADDITIVE_UNION: u8 = 2;
const EXPR_SUBTRACT: u8 = 3;
const EXPR_MAX_UNION: u8 = 4;
const EXPR_INTERSECT: u8 = 5;
const EXPR_TUPLE: u8 = 6;
const EXPR_SINGLETON: u8 = 7;
const EXPR_PRODUCT: u8 = 8;
const EXPR_POWERSET: u8 = 9;
const EXPR_POWERBAG: u8 = 10;
const EXPR_ATTR: u8 = 11;
const EXPR_DESTROY: u8 = 12;
const EXPR_MAP: u8 = 13;
const EXPR_SELECT: u8 = 14;
const EXPR_DEDUP: u8 = 15;
const EXPR_IFP: u8 = 16;
const EXPR_NEST: u8 = 17;

const PRED_TRUE: u8 = 0;
const PRED_EQ: u8 = 1;
const PRED_LT: u8 = 2;
const PRED_LE: u8 = 3;
const PRED_MEMBER: u8 = 4;
const PRED_SUBBAG: u8 = 5;
const PRED_NOT: u8 = 6;
const PRED_AND: u8 = 7;
const PRED_OR: u8 = 8;

fn put_pair(out: &mut Vec<u8>, tag: u8, a: &Expr, b: &Expr) {
    out.push(tag);
    put_expr(out, a);
    put_expr(out, b);
}

/// Encode an [`Expr`] tree (structural, not the `Display` syntax — decoding
/// must not depend on the surface parser).
pub fn put_expr(out: &mut Vec<u8>, expr: &Expr) {
    match expr {
        Expr::Var(name) => {
            out.push(EXPR_VAR);
            put_str(out, name);
        }
        Expr::Lit(value) => {
            out.push(EXPR_LIT);
            put_value(out, value);
        }
        Expr::AdditiveUnion(a, b) => put_pair(out, EXPR_ADDITIVE_UNION, a, b),
        Expr::Subtract(a, b) => put_pair(out, EXPR_SUBTRACT, a, b),
        Expr::MaxUnion(a, b) => put_pair(out, EXPR_MAX_UNION, a, b),
        Expr::Intersect(a, b) => put_pair(out, EXPR_INTERSECT, a, b),
        Expr::Tuple(fields) => {
            out.push(EXPR_TUPLE);
            put_u64(out, fields.len() as u64);
            for field in fields {
                put_expr(out, field);
            }
        }
        Expr::Singleton(inner) => {
            out.push(EXPR_SINGLETON);
            put_expr(out, inner);
        }
        Expr::Product(a, b) => put_pair(out, EXPR_PRODUCT, a, b),
        Expr::Powerset(inner) => {
            out.push(EXPR_POWERSET);
            put_expr(out, inner);
        }
        Expr::Powerbag(inner) => {
            out.push(EXPR_POWERBAG);
            put_expr(out, inner);
        }
        Expr::Attr(inner, index) => {
            out.push(EXPR_ATTR);
            put_u64(out, *index as u64);
            put_expr(out, inner);
        }
        Expr::Destroy(inner) => {
            out.push(EXPR_DESTROY);
            put_expr(out, inner);
        }
        Expr::Map { var, body, input } => {
            out.push(EXPR_MAP);
            put_str(out, var);
            put_expr(out, body);
            put_expr(out, input);
        }
        Expr::Select { var, pred, input } => {
            out.push(EXPR_SELECT);
            put_str(out, var);
            put_pred(out, pred);
            put_expr(out, input);
        }
        Expr::Dedup(inner) => {
            out.push(EXPR_DEDUP);
            put_expr(out, inner);
        }
        Expr::Ifp { var, body, input } => {
            out.push(EXPR_IFP);
            put_str(out, var);
            put_expr(out, body);
            put_expr(out, input);
        }
        Expr::Nest { group, input } => {
            out.push(EXPR_NEST);
            put_u64(out, group.len() as u64);
            for &ix in group {
                put_u64(out, ix as u64);
            }
            put_expr(out, input);
        }
    }
}

/// Decode an [`Expr`] written by [`put_expr`].
pub fn get_expr(r: &mut ByteReader<'_>) -> Result<Expr, DecodeError> {
    let tag = r.u8()?;
    let boxed = |r: &mut ByteReader<'_>| get_expr(r).map(Box::new);
    Ok(match tag {
        EXPR_VAR => Expr::Var(Var::from(r.str()?)),
        EXPR_LIT => Expr::Lit(get_value(r)?),
        EXPR_ADDITIVE_UNION => Expr::AdditiveUnion(boxed(r)?, boxed(r)?),
        EXPR_SUBTRACT => Expr::Subtract(boxed(r)?, boxed(r)?),
        EXPR_MAX_UNION => Expr::MaxUnion(boxed(r)?, boxed(r)?),
        EXPR_INTERSECT => Expr::Intersect(boxed(r)?, boxed(r)?),
        EXPR_TUPLE => {
            let count = r.len()?;
            let mut fields = Vec::with_capacity(count);
            for _ in 0..count {
                fields.push(get_expr(r)?);
            }
            Expr::Tuple(fields)
        }
        EXPR_SINGLETON => Expr::Singleton(boxed(r)?),
        EXPR_PRODUCT => Expr::Product(boxed(r)?, boxed(r)?),
        EXPR_POWERSET => Expr::Powerset(boxed(r)?),
        EXPR_POWERBAG => Expr::Powerbag(boxed(r)?),
        EXPR_ATTR => {
            let index = r.u64()? as usize;
            Expr::Attr(boxed(r)?, index)
        }
        EXPR_DESTROY => Expr::Destroy(boxed(r)?),
        EXPR_MAP => Expr::Map {
            var: Var::from(r.str()?),
            body: boxed(r)?,
            input: boxed(r)?,
        },
        EXPR_SELECT => Expr::Select {
            var: Var::from(r.str()?),
            pred: get_pred(r).map(Box::new)?,
            input: boxed(r)?,
        },
        EXPR_DEDUP => Expr::Dedup(boxed(r)?),
        EXPR_IFP => Expr::Ifp {
            var: Var::from(r.str()?),
            body: boxed(r)?,
            input: boxed(r)?,
        },
        EXPR_NEST => {
            let count = r.len()?;
            let mut group = Vec::with_capacity(count);
            for _ in 0..count {
                group.push(r.u64()? as usize);
            }
            Expr::Nest {
                group,
                input: boxed(r)?,
            }
        }
        tag => return Err(DecodeError::Tag { what: "expr", tag }),
    })
}

/// Encode a [`Pred`] tree.
pub fn put_pred(out: &mut Vec<u8>, pred: &Pred) {
    match pred {
        Pred::True => out.push(PRED_TRUE),
        Pred::Eq(a, b) => {
            out.push(PRED_EQ);
            put_expr(out, a);
            put_expr(out, b);
        }
        Pred::Lt(a, b) => {
            out.push(PRED_LT);
            put_expr(out, a);
            put_expr(out, b);
        }
        Pred::Le(a, b) => {
            out.push(PRED_LE);
            put_expr(out, a);
            put_expr(out, b);
        }
        Pred::Member(a, b) => {
            out.push(PRED_MEMBER);
            put_expr(out, a);
            put_expr(out, b);
        }
        Pred::SubBag(a, b) => {
            out.push(PRED_SUBBAG);
            put_expr(out, a);
            put_expr(out, b);
        }
        Pred::Not(inner) => {
            out.push(PRED_NOT);
            put_pred(out, inner);
        }
        Pred::And(a, b) => {
            out.push(PRED_AND);
            put_pred(out, a);
            put_pred(out, b);
        }
        Pred::Or(a, b) => {
            out.push(PRED_OR);
            put_pred(out, a);
            put_pred(out, b);
        }
    }
}

/// Decode a [`Pred`] written by [`put_pred`].
pub fn get_pred(r: &mut ByteReader<'_>) -> Result<Pred, DecodeError> {
    let tag = r.u8()?;
    Ok(match tag {
        PRED_TRUE => Pred::True,
        PRED_EQ => Pred::Eq(get_expr(r)?, get_expr(r)?),
        PRED_LT => Pred::Lt(get_expr(r)?, get_expr(r)?),
        PRED_LE => Pred::Le(get_expr(r)?, get_expr(r)?),
        PRED_MEMBER => Pred::Member(get_expr(r)?, get_expr(r)?),
        PRED_SUBBAG => Pred::SubBag(get_expr(r)?, get_expr(r)?),
        PRED_NOT => Pred::Not(Box::new(get_pred(r)?)),
        PRED_AND => Pred::And(Box::new(get_pred(r)?), Box::new(get_pred(r)?)),
        PRED_OR => Pred::Or(Box::new(get_pred(r)?), Box::new(get_pred(r)?)),
        tag => return Err(DecodeError::Tag { what: "pred", tag }),
    })
}

// ---------------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------------

/// Bytes of frame header preceding every record payload:
/// `[payload len: u32 LE][CRC-32 of payload: u32 LE]`.
pub const FRAME_HEADER_LEN: usize = 8;

/// Wrap `payload` in a record frame: length, checksum, payload.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Result of attempting to read one frame off the front of a buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Unframed<'a> {
    /// A checksum-verified payload; the frame occupied `consumed` bytes.
    Record {
        /// The verified payload bytes.
        payload: &'a [u8],
        /// Total frame size (header + payload).
        consumed: usize,
    },
    /// The buffer ends mid-frame (torn tail) — fewer bytes than the header,
    /// or fewer than the header's declared payload length.
    Incomplete,
    /// A complete frame whose checksum does not match (bit rot / overwrite).
    Corrupt,
}

/// Read one frame off the front of `buf`. Never panics: any tail state maps
/// to [`Unframed::Incomplete`] or [`Unframed::Corrupt`], which the replay
/// loop treats as "truncate here".
pub fn unframe(buf: &[u8]) -> Unframed<'_> {
    if buf.len() < FRAME_HEADER_LEN {
        return Unframed::Incomplete;
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    let expect = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    let Some(end) = FRAME_HEADER_LEN.checked_add(len) else {
        return Unframed::Corrupt;
    };
    if buf.len() < end {
        return Unframed::Incomplete;
    }
    let payload = &buf[FRAME_HEADER_LEN..end];
    if crc32(payload) != expect {
        return Unframed::Corrupt;
    }
    Unframed::Record {
        payload,
        consumed: end,
    }
}

/// Iterate verified frames from the front of `buf`, stopping at the first
/// incomplete or corrupt frame. Yields `(offset, payload)` pairs where
/// `offset` is the byte position the frame starts at — the truncation point
/// if the *next* frame is bad.
pub fn frames(buf: &[u8]) -> FrameIter<'_> {
    FrameIter { buf, pos: 0 }
}

/// Iterator over verified frames; see [`frames`].
pub struct FrameIter<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> FrameIter<'a> {
    /// Byte offset of the next (unread) frame — after exhaustion, the
    /// position the log should be truncated to.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Whether iteration stopped because the remaining tail is damaged
    /// (corrupt or torn), as opposed to cleanly consumed.
    pub fn damaged_tail(&self) -> bool {
        self.pos < self.buf.len()
    }
}

impl<'a> Iterator for FrameIter<'a> {
    type Item = (usize, &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        match unframe(&self.buf[self.pos..]) {
            Unframed::Record { payload, consumed } => {
                let offset = self.pos;
                self.pos += consumed;
                Some((offset, payload))
            }
            Unframed::Incomplete | Unframed::Corrupt => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_value(v: &Value) {
        let mut buf = Vec::new();
        put_value(&mut buf, v);
        let mut r = ByteReader::new(&buf);
        assert_eq!(&get_value(&mut r).unwrap(), v);
        assert!(r.is_empty());
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_u64(&mut buf, v);
            let mut r = ByteReader::new(&buf);
            assert_eq!(r.u64().unwrap(), v);
            assert!(r.is_empty());
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            put_i64(&mut buf, v);
            let mut r = ByteReader::new(&buf);
            assert_eq!(r.i64().unwrap(), v);
        }
    }

    #[test]
    fn overlong_varint_rejected() {
        let buf = [0xFFu8; 11];
        assert_eq!(ByteReader::new(&buf).u64(), Err(DecodeError::Varint));
    }

    #[test]
    fn natural_roundtrip_including_big() {
        for n in [
            Natural::zero(),
            Natural::one(),
            Natural::from(u64::MAX),
            Natural::pow2(64),
            Natural::pow2(200),
        ] {
            let mut buf = Vec::new();
            put_natural(&mut buf, &n);
            let mut r = ByteReader::new(&buf);
            assert_eq!(get_natural(&mut r).unwrap(), n);
        }
    }

    #[test]
    fn value_roundtrip_nested() {
        roundtrip_value(&Value::int(-42));
        roundtrip_value(&Value::sym("héllo"));
        roundtrip_value(&Value::tuple([Value::int(1), Value::sym("x")]));
        roundtrip_value(&Value::bag([
            Value::int(1),
            Value::int(1),
            Value::tuple([Value::bag([Value::sym("inner")])]),
        ]));
        roundtrip_value(&Value::empty_bag());
    }

    #[test]
    fn bag_with_huge_multiplicity_roundtrips() {
        let bag = Bag::repeated(Value::int(7), Natural::pow2(130));
        let mut buf = Vec::new();
        put_bag(&mut buf, &bag);
        let mut r = ByteReader::new(&buf);
        assert_eq!(get_bag(&mut r).unwrap(), bag);
    }

    #[test]
    fn zbag_roundtrip_mixed_signs() {
        let zbag = ZBag::from_counted([
            (Value::int(1), ZInt::from_parts(true, Natural::from(3u64))),
            (Value::sym("a"), ZInt::one()),
        ]);
        let mut buf = Vec::new();
        put_zbag(&mut buf, &zbag);
        let mut r = ByteReader::new(&buf);
        let back = get_zbag(&mut r).unwrap();
        assert!(back.multiplicity(&Value::int(1)).is_negative());
        assert_eq!(back.multiplicity(&Value::sym("a")), ZInt::one());
    }

    #[test]
    fn expr_roundtrip_all_variants() {
        let expr = Expr::Ifp {
            var: Var::from("acc"),
            body: Box::new(Expr::Select {
                var: Var::from("x"),
                pred: Box::new(Pred::And(
                    Box::new(Pred::Not(Box::new(Pred::Member(
                        Expr::var("x"),
                        Expr::var("seen"),
                    )))),
                    Box::new(Pred::Or(
                        Box::new(Pred::Lt(Expr::var("x"), Expr::lit(Value::int(9)))),
                        Box::new(Pred::SubBag(
                            Expr::Singleton(Box::new(Expr::var("x"))),
                            Expr::var("acc"),
                        )),
                    )),
                )),
                input: Box::new(Expr::Map {
                    var: Var::from("y"),
                    body: Box::new(Expr::Tuple(vec![
                        Expr::Attr(Box::new(Expr::var("y")), 1),
                        Expr::Lit(Value::sym("tag")),
                    ])),
                    input: Box::new(Expr::Nest {
                        group: vec![2, 1],
                        input: Box::new(Expr::Product(
                            Box::new(Expr::Dedup(Box::new(Expr::var("r")))),
                            Box::new(Expr::Powerset(Box::new(Expr::Destroy(Box::new(
                                Expr::Powerbag(Box::new(Expr::Intersect(
                                    Box::new(Expr::MaxUnion(
                                        Box::new(Expr::Subtract(
                                            Box::new(Expr::var("s")),
                                            Box::new(Expr::empty_bag()),
                                        )),
                                        Box::new(Expr::var("t")),
                                    )),
                                    Box::new(Expr::AdditiveUnion(
                                        Box::new(Expr::var("u")),
                                        Box::new(Expr::var("v")),
                                    )),
                                ))),
                            ))))),
                        )),
                    }),
                }),
            }),
            input: Box::new(Expr::var("base")),
        };
        let mut buf = Vec::new();
        put_expr(&mut buf, &expr);
        let mut r = ByteReader::new(&buf);
        assert_eq!(get_expr(&mut r).unwrap(), expr);
        assert!(r.is_empty());

        let with_pred_variants = Expr::Select {
            var: Var::from("x"),
            pred: Box::new(Pred::And(
                Box::new(Pred::Le(Expr::var("x"), Expr::lit(Value::int(3)))),
                Box::new(Pred::Eq(Expr::var("x"), Expr::var("x"))),
            )),
            input: Box::new(Expr::var("base")),
        };
        let mut buf = Vec::new();
        put_expr(&mut buf, &with_pred_variants);
        assert_eq!(
            get_expr(&mut ByteReader::new(&buf)).unwrap(),
            with_pred_variants
        );
    }

    #[test]
    fn frame_roundtrip_and_iteration() {
        let mut log = Vec::new();
        log.extend_from_slice(&frame(b"first"));
        log.extend_from_slice(&frame(b"second"));
        let collected: Vec<_> = frames(&log).collect();
        assert_eq!(collected.len(), 2);
        assert_eq!(collected[0].1, b"first");
        assert_eq!(collected[1].1, b"second");
        let mut iter = frames(&log);
        for _ in iter.by_ref() {}
        assert_eq!(iter.offset(), log.len());
        assert!(!iter.damaged_tail());
    }

    #[test]
    fn torn_tail_is_incomplete_not_fatal() {
        let mut log = Vec::new();
        log.extend_from_slice(&frame(b"keep me"));
        let good_len = log.len();
        let torn = frame(b"torn away");
        log.extend_from_slice(&torn[..torn.len() - 3]);
        let mut iter = frames(&log);
        assert_eq!(iter.next().map(|(_, p)| p), Some(&b"keep me"[..]));
        assert!(iter.next().is_none());
        assert_eq!(iter.offset(), good_len);
        assert!(iter.damaged_tail());
    }

    #[test]
    fn any_flipped_byte_is_detected() {
        let record = frame(b"checksummed payload");
        for ix in 0..record.len() {
            let mut bad = record.clone();
            bad[ix] ^= 0x40;
            match unframe(&bad) {
                Unframed::Record { payload, .. } => {
                    panic!("flip at {ix} went undetected: {payload:?}")
                }
                Unframed::Incomplete | Unframed::Corrupt => {}
            }
        }
    }

    #[test]
    fn zero_filled_tail_is_rejected() {
        let mut log = frame(b"ok");
        log.extend_from_slice(&[0u8; 64]);
        let mut iter = frames(&log);
        assert!(iter.next().is_some());
        // A zero length-field with zero CRC over an empty payload would be
        // "valid"; crc32(b"") == 0, so an all-zero header reads as an empty
        // record. Guard: empty payloads are never written by the runtime,
        // and the replay loop rejects empty payloads explicitly.
        match unframe(&log[iter.offset()..]) {
            Unframed::Record { payload, .. } => assert!(payload.is_empty()),
            Unframed::Incomplete | Unframed::Corrupt => {}
        }
    }
}
