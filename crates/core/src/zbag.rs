//! ℤ-bags: bags with **signed** multiplicities, the delta objects of
//! incremental view maintenance.
//!
//! The paper's whole point is that bags carry multiplicities; extending
//! the multiplicity monoid ℕ to the group ℤ makes every database update a
//! first-class algebraic object — a [`ZBag`] — that flows through the BALG
//! operators. An insertion of `o` is `+1·o`, a deletion is `−1·o`, and
//! for every *linear* operator `F` the maintained identity
//! `F(B ⊕ δ) = F(B) ⊕ F(δ)` answers a standing query in time proportional
//! to the delta (this is the classic Z-set / Z-relation construction of
//! the IVM literature, grounded here in the Section 3 operator set).
//!
//! The representation mirrors [`Bag`]: one sorted pair slice with no zero
//! entries, built through the same overflow-buffer machinery as
//! [`crate::bag::BagBuilder`] and merged with the same two-pointer
//! passes. Unlike [`Bag`] there is no
//! copy-on-write `Arc` — deltas are transient values that are consumed by
//! [`ZBag::apply_to`].
//!
//! `Bag ⟶ ZBag` is the evident embedding ([`ZBag::from_bag`]); the reverse
//! direction is partial and **checked** ([`ZBag::try_into_bag`] /
//! [`ZBag::apply_to`] report [`ZBagError::NegativeMultiplicity`] instead
//! of silently truncating, which would confuse a bad delta with monus).

use std::cmp::Ordering;
use std::fmt;

use crate::bag::{merge_sorted_pairs, Bag, BagError, Multiplicity, PairBuffer};
use crate::natural::Natural;
use crate::value::Value;

/// A signed arbitrary-precision integer: the multiplicity group ℤ.
///
/// Canonical form: zero is never negative, so derived equality and
/// hashing agree with numeric equality.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct ZInt {
    negative: bool,
    magnitude: Natural,
}

impl ZInt {
    /// The integer zero.
    pub fn zero() -> ZInt {
        ZInt::default()
    }

    /// The integer one.
    pub fn one() -> ZInt {
        ZInt::from_natural(Natural::one())
    }

    /// The integer minus one.
    pub fn neg_one() -> ZInt {
        ZInt::one().neg()
    }

    /// Embed a natural number.
    pub fn from_natural(magnitude: Natural) -> ZInt {
        ZInt {
            negative: false,
            magnitude,
        }
    }

    /// Build from a sign and a magnitude (canonicalizing `−0` to `0`).
    pub fn from_parts(negative: bool, magnitude: Natural) -> ZInt {
        ZInt {
            negative: negative && !magnitude.is_zero(),
            magnitude,
        }
    }

    /// `true` iff this is zero.
    pub fn is_zero(&self) -> bool {
        self.magnitude.is_zero()
    }

    /// `true` iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.negative
    }

    /// The absolute value.
    pub fn magnitude(&self) -> &Natural {
        &self.magnitude
    }

    /// Negation.
    pub fn neg(&self) -> ZInt {
        ZInt::from_parts(!self.negative, self.magnitude.clone())
    }

    /// The value as a [`Natural`] if it is non-negative.
    pub fn to_natural(&self) -> Option<Natural> {
        if self.negative {
            None
        } else {
            Some(self.magnitude.clone())
        }
    }

    /// `self + other` in ℤ (signed magnitudes combine via comparison and
    /// monus — [`Natural`] has no subtraction that can go below zero).
    pub fn add(&self, other: &ZInt) -> ZInt {
        if self.negative == other.negative {
            return ZInt::from_parts(self.negative, &self.magnitude + &other.magnitude);
        }
        match self.magnitude.cmp(&other.magnitude) {
            Ordering::Equal => ZInt::zero(),
            Ordering::Greater => {
                ZInt::from_parts(self.negative, self.magnitude.monus(&other.magnitude))
            }
            Ordering::Less => {
                ZInt::from_parts(other.negative, other.magnitude.monus(&self.magnitude))
            }
        }
    }

    /// `self · other` in ℤ.
    pub fn mul(&self, other: &ZInt) -> ZInt {
        ZInt::from_parts(
            self.negative != other.negative,
            &self.magnitude * &other.magnitude,
        )
    }

    /// `self · n` for a natural scale factor.
    pub fn scale(&self, factor: &Natural) -> ZInt {
        ZInt::from_parts(self.negative, &self.magnitude * factor)
    }
}

impl Multiplicity for ZInt {
    const CAN_CANCEL: bool = true;

    fn is_zero(&self) -> bool {
        ZInt::is_zero(self)
    }

    fn accumulate(&mut self, other: &ZInt) {
        *self = self.add(other);
    }
}

impl From<Natural> for ZInt {
    fn from(magnitude: Natural) -> ZInt {
        ZInt::from_natural(magnitude)
    }
}

impl From<u64> for ZInt {
    fn from(v: u64) -> ZInt {
        ZInt::from_natural(Natural::from(v))
    }
}

impl From<i64> for ZInt {
    fn from(v: i64) -> ZInt {
        ZInt::from_parts(v < 0, Natural::from(v.unsigned_abs()))
    }
}

impl PartialOrd for ZInt {
    fn partial_cmp(&self, other: &ZInt) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ZInt {
    fn cmp(&self, other: &ZInt) -> Ordering {
        match (self.negative, other.negative) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => self.magnitude.cmp(&other.magnitude),
            (true, true) => other.magnitude.cmp(&self.magnitude),
        }
    }
}

impl fmt::Display for ZInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negative {
            write!(f, "-{}", self.magnitude)
        } else {
            write!(f, "{}", self.magnitude)
        }
    }
}

/// An error from the checked `ZBag ⟶ Bag` direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZBagError {
    /// Extraction (or delta application) would produce a negative
    /// multiplicity for the given element — the delta deletes occurrences
    /// that are not there.
    NegativeMultiplicity {
        /// The element whose resulting multiplicity went below zero.
        value: Value,
    },
}

impl fmt::Display for ZBagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZBagError::NegativeMultiplicity { value } => {
                write!(f, "negative multiplicity for {value}")
            }
        }
    }
}

impl std::error::Error for ZBagError {}

/// A bag with signed multiplicities: the free ℤ-module over [`Value`]s.
///
/// Invariant (same as [`Bag`]): strictly ascending keys, no zero entries.
/// The additive structure is a *group* — [`ZBag::negate`] inverts and
/// [`ZBag::add`] cancels — which is what makes deletion symmetric with
/// insertion.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ZBag {
    pairs: Vec<(Value, ZInt)>,
}

impl ZBag {
    /// The zero delta.
    pub fn new() -> ZBag {
        ZBag::default()
    }

    /// Wrap a pair vector already in canonical form.
    fn from_sorted_vec(pairs: Vec<(Value, ZInt)>) -> ZBag {
        debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));
        debug_assert!(pairs.iter().all(|(_, m)| !m.is_zero()));
        ZBag { pairs }
    }

    /// A single-element delta: `mult` (possibly negative) copies of
    /// `value`.
    pub fn singleton(value: Value, mult: ZInt) -> ZBag {
        if mult.is_zero() {
            return ZBag::new();
        }
        ZBag::from_sorted_vec(vec![(value, mult)])
    }

    /// Accumulate from arbitrary `(value, mult)` pairs (duplicates
    /// combine, zeros vanish).
    pub fn from_counted(pairs: impl IntoIterator<Item = (Value, ZInt)>) -> ZBag {
        let mut builder = ZBagBuilder::new();
        for (value, mult) in pairs {
            builder.push(value, mult);
        }
        builder.build()
    }

    /// The embedding `Bag ⟶ ZBag`: every multiplicity reinterpreted as a
    /// non-negative integer.
    pub fn from_bag(bag: &Bag) -> ZBag {
        ZBag::from_sorted_vec(
            bag.iter()
                .map(|(v, m)| (v.clone(), ZInt::from_natural(m.clone())))
                .collect(),
        )
    }

    /// `true` iff this is the zero delta.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Check the representation invariant: strictly ascending keys, no
    /// zero multiplicities — the ℤ counterpart of
    /// [`Bag::debug_validate`]. `O(n)`; for `debug_assert!` and tests.
    pub fn debug_validate(&self) -> bool {
        self.pairs.windows(2).all(|w| w[0].0 < w[1].0)
            && self.pairs.iter().all(|(_, mult)| !mult.is_zero())
    }

    /// Number of distinct elements carried.
    pub fn distinct_count(&self) -> usize {
        self.pairs.len()
    }

    /// Read-only view of the sorted `(element, signed multiplicity)` pair
    /// slice. Construction stays private, so exposing the slice cannot
    /// break the representation invariant; partitioned kernels use it to
    /// range-chunk delta rows.
    pub fn pairs(&self) -> &[(Value, ZInt)] {
        &self.pairs
    }

    /// Iterate over `(element, signed multiplicity)` in element order.
    pub fn iter(&self) -> impl Iterator<Item = (&Value, &ZInt)> {
        self.pairs.iter().map(|(v, m)| (v, m))
    }

    /// The signed multiplicity of `value` (zero when absent).
    pub fn multiplicity(&self, value: &Value) -> ZInt {
        match self.pairs.binary_search_by(|probe| probe.0.cmp(value)) {
            Ok(ix) => self.pairs[ix].1.clone(),
            Err(_) => ZInt::zero(),
        }
    }

    /// Add `mult` copies of `value` in place (binary search; intended for
    /// small deltas — bulk construction goes through [`ZBagBuilder`]).
    pub fn insert(&mut self, value: Value, mult: ZInt) {
        if mult.is_zero() {
            return;
        }
        match self.pairs.binary_search_by(|probe| probe.0.cmp(&value)) {
            Ok(ix) => {
                self.pairs[ix].1.accumulate(&mult);
                if self.pairs[ix].1.is_zero() {
                    self.pairs.remove(ix);
                }
            }
            Err(ix) => self.pairs.insert(ix, (value, mult)),
        }
    }

    /// Group negation: flips every sign.
    pub fn negate(&self) -> ZBag {
        ZBag::from_sorted_vec(
            self.pairs
                .iter()
                .map(|(v, m)| (v.clone(), m.neg()))
                .collect(),
        )
    }

    /// Group addition (the two-pointer merge; cancellations vanish).
    pub fn add(&self, other: &ZBag) -> ZBag {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        ZBag::from_sorted_vec(merge_sorted_pairs(
            self.pairs.iter().cloned(),
            other.pairs.iter().cloned(),
            |a, b| a.add(&b),
        ))
    }

    /// Scale every multiplicity by a signed factor.
    pub fn scale(&self, factor: &ZInt) -> ZBag {
        if factor.is_zero() {
            return ZBag::new();
        }
        ZBag::from_sorted_vec(
            self.pairs
                .iter()
                .map(|(v, m)| (v.clone(), m.mul(factor)))
                .collect(),
        )
    }

    /// The pointwise difference `new − old` of two bags — the delta that
    /// [`ZBag::apply_to`] turns `old` back into `new`. This is how the
    /// non-linear fallback of the incremental engine re-expresses a
    /// re-derived node as a delta for its parents.
    pub fn diff(new: &Bag, old: &Bag) -> ZBag {
        ZBag::from_sorted_vec(merge_sorted_pairs(
            new.iter()
                .map(|(v, m)| (v.clone(), ZInt::from_natural(m.clone()))),
            old.iter()
                .map(|(v, m)| (v.clone(), ZInt::from_parts(true, m.clone()))),
            |a, b| a.add(&b),
        ))
    }

    /// The checked extraction `ZBag ⟶ Bag`: succeeds iff every
    /// multiplicity is non-negative.
    pub fn try_into_bag(&self) -> Result<Bag, ZBagError> {
        let mut out = Vec::with_capacity(self.pairs.len());
        for (value, mult) in &self.pairs {
            match mult.to_natural() {
                Some(m) => out.push((value.clone(), m)),
                None => {
                    return Err(ZBagError::NegativeMultiplicity {
                        value: value.clone(),
                    })
                }
            }
        }
        Ok(Bag::from_sorted_vec(out))
    }

    /// Apply the delta to a base bag: `base ⊕ self`, checked to stay in ℕ
    /// everywhere.
    pub fn apply_to(&self, base: &Bag) -> Result<Bag, ZBagError> {
        self.apply_into(base.clone())
    }

    /// As [`ZBag::apply_to`], consuming the base. A small delta against a
    /// uniquely-owned base patches the pair slice **in place** (binary
    /// search plus a memmove per new key) — the commit path of the
    /// incremental runtime, which takes bags out of the database so a
    /// single-tuple update never rebuilds the whole slice. On error the
    /// base may be partially patched and is dropped; callers that need
    /// atomicity validate first (see `ViewRuntime::apply`).
    pub fn apply_into(&self, mut base: Bag) -> Result<Bag, ZBagError> {
        if self.is_empty() {
            return Ok(base);
        }
        if self.pairs.len() * 8 <= base.distinct_count() {
            let elems = base.elems_mut();
            for (value, mult) in &self.pairs {
                match elems.binary_search_by(|probe| probe.0.cmp(value)) {
                    Ok(ix) => {
                        if mult.is_negative() {
                            let magnitude = mult.magnitude();
                            match elems[ix].1.cmp(magnitude) {
                                Ordering::Less => {
                                    return Err(ZBagError::NegativeMultiplicity {
                                        value: value.clone(),
                                    })
                                }
                                Ordering::Equal => {
                                    elems.remove(ix);
                                }
                                Ordering::Greater => {
                                    let rest = elems[ix].1.monus(magnitude);
                                    elems[ix].1 = rest;
                                }
                            }
                        } else {
                            elems[ix].1 += mult.magnitude();
                        }
                    }
                    Err(ix) => match mult.to_natural() {
                        Some(m) => elems.insert(ix, (value.clone(), m)),
                        None => {
                            return Err(ZBagError::NegativeMultiplicity {
                                value: value.clone(),
                            })
                        }
                    },
                }
            }
            return Ok(base);
        }
        let merged = merge_sorted_pairs(
            base.iter()
                .map(|(v, m)| (v.clone(), ZInt::from_natural(m.clone()))),
            self.pairs.iter().cloned(),
            |a, b| a.add(&b),
        );
        let mut out = Vec::with_capacity(merged.len());
        for (value, mult) in merged {
            match mult.to_natural() {
                Some(m) => out.push((value, m)),
                None => return Err(ZBagError::NegativeMultiplicity { value }),
            }
        }
        Ok(Bag::from_sorted_vec(out))
    }

    // ----- linear BALG operators, lifted to ℤ -----

    /// `MAP_φ` on a delta: images accumulate their signed preimage
    /// multiplicities. Linear because MAP distributes over `∪⁺`.
    pub fn map<E>(&self, mut f: impl FnMut(&Value) -> Result<Value, E>) -> Result<ZBag, E> {
        let mut out = ZBagBuilder::new();
        for (value, mult) in &self.pairs {
            out.push(f(value)?, mult.clone());
        }
        Ok(out.build())
    }

    /// `σ` on a delta: keeps elements satisfying the predicate with their
    /// signed multiplicities.
    pub fn select<E>(&self, mut pred: impl FnMut(&Value) -> Result<bool, E>) -> Result<ZBag, E> {
        let mut out = Vec::new();
        for (value, mult) in &self.pairs {
            if pred(value)? {
                out.push((value.clone(), mult.clone()));
            }
        }
        Ok(ZBag::from_sorted_vec(out))
    }

    /// `×` of two deltas (the building block of the bilinear product rule
    /// `δ(A×B) = δA×B ⊕ A×δB ⊕ δA×δB`): tuples concatenate, signed
    /// multiplicities multiply. `max_elements` bounds the distinct output
    /// count exactly like [`Bag::product`].
    pub fn product(&self, other: &ZBag, max_elements: u64) -> Result<ZBag, BagError> {
        let mut out = ZBagBuilder::new();
        for (left, lm) in &self.pairs {
            let left_fields = left
                .as_tuple()
                .ok_or_else(|| BagError::NotATuple(left.clone()))?;
            for (right, rm) in &other.pairs {
                let right_fields = right
                    .as_tuple()
                    .ok_or_else(|| BagError::NotATuple(right.clone()))?;
                out.push(Value::concat_tuples(left_fields, right_fields), lm.mul(rm));
                if out.ensure_distinct_within(max_elements).is_err() {
                    return Err(BagError::TooLarge {
                        predicted: &Natural::from(self.pairs.len() as u64)
                            * &Natural::from(other.pairs.len() as u64),
                        limit: max_elements,
                    });
                }
            }
        }
        Ok(out.build())
    }

    /// `δ` (bag-destroy) on a delta of bags: inner elements accumulate
    /// scaled by the signed outer multiplicity. Linear because destroy is
    /// a multiplicity-weighted sum.
    pub fn destroy(&self) -> Result<ZBag, BagError> {
        let mut out = ZBagBuilder::new();
        for (value, mult) in &self.pairs {
            let inner = value
                .as_bag()
                .ok_or_else(|| BagError::NotABag(value.clone()))?;
            for (elem, inner_mult) in inner.iter() {
                out.push(elem.clone(), mult.scale(inner_mult));
            }
        }
        Ok(out.build())
    }
}

impl fmt::Display for ZBag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{{")?;
        for (i, (value, mult)) in self.pairs.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{value}^{mult}")?;
        }
        f.write_str("}}")
    }
}

/// An accumulator for building a [`ZBag`] by repeated signed insertion —
/// the ℤ instantiation of the [`BagBuilder`](crate::bag::BagBuilder)
/// overflow-buffer machinery.
#[derive(Default)]
pub struct ZBagBuilder {
    buffer: PairBuffer<ZInt>,
}

impl ZBagBuilder {
    /// An empty builder.
    pub fn new() -> ZBagBuilder {
        ZBagBuilder::default()
    }

    /// `true` iff nothing (or only cancelling pairs) has been pushed.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Add `mult` signed copies of `value`.
    pub fn push(&mut self, value: Value, mult: ZInt) {
        self.buffer.push(value, mult);
    }

    /// Enforce a distinct-element budget mid-build: `Err(observed)` with
    /// the exact distinct count as soon as it exceeds `limit` — the ℤ
    /// counterpart of [`BagBuilder::ensure_distinct_within`](crate::bag::BagBuilder::ensure_distinct_within).
    pub fn ensure_distinct_within(&mut self, limit: u64) -> Result<(), u64> {
        self.buffer.ensure_distinct_within(limit)
    }

    /// Finish into a [`ZBag`].
    pub fn build(self) -> ZBag {
        let zbag = ZBag::from_sorted_vec(self.buffer.into_sorted());
        debug_assert!(zbag.debug_validate(), "builder broke the ℤ-bag invariant");
        zbag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Value {
        Value::sym(s)
    }

    fn z(v: i64) -> ZInt {
        ZInt::from(v)
    }

    #[test]
    fn zint_arithmetic() {
        assert_eq!(z(3).add(&z(-5)), z(-2));
        assert_eq!(z(-3).add(&z(5)), z(2));
        assert_eq!(z(3).add(&z(-3)), ZInt::zero());
        assert!(!z(3).add(&z(-3)).is_negative()); // canonical zero
        assert_eq!(z(-3).mul(&z(-4)), z(12));
        assert_eq!(z(-3).mul(&z(4)), z(-12));
        assert_eq!(z(7).neg(), z(-7));
        assert!(z(-1) < ZInt::zero());
        assert!(z(-5) < z(-2));
        assert!(z(2) < z(5));
        assert_eq!(z(-2).to_string(), "-2");
        assert_eq!(z(-4).to_natural(), None);
        assert_eq!(z(4).to_natural(), Some(Natural::from(4u64)));
    }

    #[test]
    fn embedding_roundtrip() {
        let bag = Bag::from_counted([
            (sym("a"), Natural::from(2u64)),
            (sym("b"), Natural::from(1u64)),
        ]);
        let zbag = ZBag::from_bag(&bag);
        assert_eq!(zbag.try_into_bag().unwrap(), bag);
    }

    #[test]
    fn group_laws_and_cancellation() {
        let delta = ZBag::from_counted([(sym("a"), z(2)), (sym("b"), z(-1))]);
        assert!(delta.add(&delta.negate()).is_empty());
        let twice = delta.add(&delta);
        assert_eq!(twice.multiplicity(&sym("a")), z(4));
        assert_eq!(twice.multiplicity(&sym("b")), z(-2));
        assert_eq!(delta.scale(&z(-3)).multiplicity(&sym("a")), z(-6));
    }

    #[test]
    fn diff_then_apply_roundtrips() {
        let old = Bag::from_counted([
            (sym("a"), Natural::from(3u64)),
            (sym("b"), Natural::from(1u64)),
        ]);
        let new = Bag::from_counted([
            (sym("a"), Natural::from(1u64)),
            (sym("c"), Natural::from(2u64)),
        ]);
        let delta = ZBag::diff(&new, &old);
        assert_eq!(delta.multiplicity(&sym("a")), z(-2));
        assert_eq!(delta.multiplicity(&sym("b")), z(-1));
        assert_eq!(delta.multiplicity(&sym("c")), z(2));
        assert_eq!(delta.apply_to(&old).unwrap(), new);
        assert_eq!(delta.negate().apply_to(&new).unwrap(), old);
    }

    #[test]
    fn checked_extraction_rejects_negative() {
        let delta = ZBag::singleton(sym("a"), z(-1));
        assert!(matches!(
            delta.try_into_bag(),
            Err(ZBagError::NegativeMultiplicity { .. })
        ));
        // Deleting from an element that isn't there is an error, not monus.
        let base = Bag::singleton(sym("b"));
        assert!(matches!(
            delta.apply_to(&base),
            Err(ZBagError::NegativeMultiplicity { .. })
        ));
        // Deleting exactly what is there is fine.
        let base = Bag::singleton(sym("a"));
        assert!(delta.apply_to(&base).unwrap().is_empty());
    }

    #[test]
    fn patch_and_merge_application_paths_agree() {
        let base =
            Bag::from_counted((0..64i64).map(|i| (Value::int(i), Natural::from(i as u64 % 3 + 1))));
        // Small vs base → in-place patch path; the group-theoretic spec
        // (embed, add, extract) is the oracle for both.
        let small = ZBag::from_counted([
            (Value::int(3), z(-1)),
            (Value::int(5), z(-3)), // multiplicity of 5 is exactly 3: entry vanishes
            (Value::int(100), z(2)),
        ]);
        // Large vs base → the merge path.
        let large = ZBag::from_counted((0..64i64).map(|i| (Value::int(i), z(1))));
        for delta in [&small, &large] {
            let expected = ZBag::from_bag(&base).add(delta).try_into_bag().unwrap();
            assert_eq!(delta.apply_to(&base).unwrap(), expected);
            assert_eq!(delta.apply_into(base.clone()).unwrap(), expected);
        }
        assert!(!small.apply_to(&base).unwrap().contains(&Value::int(5)));
        // Over-deletion errs on both paths.
        let over_small = ZBag::singleton(Value::int(2), z(-100));
        let over_large = ZBag::from_counted((0..64i64).map(|i| (Value::int(i), z(-100)))); // merge path
        assert!(over_small.apply_to(&base).is_err());
        assert!(over_large.apply_to(&base).is_err());
        // A negative delta on an absent key errs on the patch path too.
        assert!(ZBag::singleton(Value::int(999), z(-1))
            .apply_to(&base)
            .is_err());
    }

    #[test]
    fn product_is_bilinear() {
        // δ(A×B) = δA×B ⊕ A×δB ⊕ δA×δB, checked on a concrete update.
        let t = |a: &str, b: &str| Value::tuple([sym(a), sym(b)]);
        let a_old = Bag::from_values([t("a", "1"), t("a", "2")]);
        let b_old = Bag::from_values([t("x", "p")]);
        let da = ZBag::from_counted([(t("a", "3"), z(1)), (t("a", "1"), z(-1))]);
        let db = ZBag::from_counted([(t("y", "q"), z(2))]);
        let a_new = da.apply_to(&a_old).unwrap();
        let b_new = db.apply_to(&b_old).unwrap();

        let full_old = a_old.product(&b_old, u64::MAX).unwrap();
        let full_new = a_new.product(&b_new, u64::MAX).unwrap();
        let expected = ZBag::diff(&full_new, &full_old);

        let rule = da
            .product(&ZBag::from_bag(&b_old), u64::MAX)
            .unwrap()
            .add(&ZBag::from_bag(&a_old).product(&db, u64::MAX).unwrap())
            .add(&da.product(&db, u64::MAX).unwrap());
        assert_eq!(rule, expected);
    }

    #[test]
    fn map_select_destroy_are_linear() {
        let delta = ZBag::from_counted([
            (Value::tuple([sym("a"), sym("b")]), z(2)),
            (Value::tuple([sym("c"), sym("d")]), z(-1)),
        ]);
        let mapped = delta
            .map(|v| {
                Ok::<_, std::convert::Infallible>(Value::tuple([v.as_tuple().unwrap()[1].clone()]))
            })
            .unwrap();
        assert_eq!(mapped.multiplicity(&Value::tuple([sym("b")])), z(2));
        assert_eq!(mapped.multiplicity(&Value::tuple([sym("d")])), z(-1));

        let selected = delta
            .select(|v| Ok::<_, std::convert::Infallible>(v.as_tuple().unwrap()[0] == sym("a")))
            .unwrap();
        assert_eq!(selected.distinct_count(), 1);

        let nested = ZBag::from_counted([
            (Value::bag([sym("p"), sym("p")]), z(-1)),
            (Value::bag([sym("q")]), z(3)),
        ]);
        let flat = nested.destroy().unwrap();
        assert_eq!(flat.multiplicity(&sym("p")), z(-2));
        assert_eq!(flat.multiplicity(&sym("q")), z(3));
    }

    #[test]
    fn product_budget_enforced() {
        let mk = |n: i64| {
            ZBag::from_counted((0..n).map(|i| (Value::tuple([Value::int(i)]), ZInt::one())))
        };
        let a = mk(100);
        assert!(matches!(
            a.product(&a, 50),
            Err(BagError::TooLarge { limit: 50, .. })
        ));
        assert_eq!(a.product(&a, 20_000).unwrap().distinct_count(), 10_000);
    }

    #[test]
    fn builder_is_empty_sees_in_place_cancellation() {
        let mut builder = ZBagBuilder::new();
        assert!(builder.is_empty());
        builder.push(sym("a"), ZInt::one());
        assert!(!builder.is_empty());
        builder.push(sym("a"), ZInt::neg_one());
        assert!(builder.is_empty(), "cancelled pair must read as empty");
        assert!(builder.build().is_empty());
    }

    #[test]
    fn builder_cancels_across_overflow() {
        // Signed pushes that cancel inside the pending buffer and across
        // the sorted prefix must vanish from the built delta.
        let mut builder = ZBagBuilder::new();
        for i in (0..100i64).rev() {
            builder.push(Value::int(i), z(1));
        }
        for i in 0..100i64 {
            if i % 2 == 0 {
                builder.push(Value::int(i), z(-1));
            }
        }
        let built = builder.build();
        assert_eq!(built.distinct_count(), 50);
        assert!(built.iter().all(|(v, m)| {
            let Value::Atom(crate::value::Atom::Int(i)) = v else {
                return false;
            };
            i % 2 == 1 && *m == ZInt::one()
        }));
    }
}
