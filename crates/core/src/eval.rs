//! Resource-limited evaluation of BALG expressions.
//!
//! Every evaluation runs under [`Limits`]: the powerset operator predicts
//! its exact output cardinality (`Π(mᵢ+1)`) *before* allocating, and every
//! intermediate bag is checked against element and multiplicity-width
//! budgets. This mirrors the paper's complexity analyses — Theorem 4.4
//! bounds multiplicity *bit-widths* logarithmically for BALG¹, Theorem 5.1
//! bounds them polynomially for BALG², and the [`Metrics`] collected here
//! are exactly those quantities, consumed by the `balg-complexity` crate's
//! experiments.
//!
//! Two fusions keep the hot paths from materializing intermediates:
//!
//! * adjacent `MAP`/`σ` (and hence `π`) stages stream each input element
//!   through the whole chain in one pass, so only the chain's final bag is
//!   ever built;
//! * `σ_{αᵢ=αⱼ}(e × e′)` with the equality crossing the product boundary
//!   evaluates as a hash join — matching pairs are produced directly
//!   instead of building the full Cartesian product and filtering it.
//!
//! Both fusions compute the same bag (the λ bodies are pure); what changes
//! is that skipped intermediates are no longer *observed*, so they don't
//! count against [`Limits::max_bag_elements`] and don't appear in
//! [`Metrics`]. That is the point: the budgets meter what the evaluator
//! actually materializes.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use balg_obs::profile::{Profiler, SpanId};

use crate::bag::{attr_field, Bag, BagBuilder, BagError};
use crate::expr::{Expr, Pred, Var};
use crate::index::{BagIndex, IndexCache, SubBagTester};
use crate::natural::Natural;
use crate::par;
use crate::pool;
use crate::schema::Database;
use crate::value::Value;

/// Resource budgets for one evaluation.
#[derive(Clone, Debug)]
pub struct Limits {
    /// Maximal number of *distinct* elements in any intermediate bag
    /// (powerset output is predicted exactly and rejected up front).
    pub max_bag_elements: u64,
    /// Maximal bit-width of any multiplicity in any intermediate bag.
    pub max_multiplicity_bits: u64,
    /// Maximal number of evaluation steps (AST nodes visited, counting one
    /// per element for MAP/σ bodies).
    pub max_steps: u64,
    /// Maximal number of inflationary-fixpoint iterations.
    pub max_ifp_iterations: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_bag_elements: 1 << 20,
            max_multiplicity_bits: 1 << 16,
            max_steps: 50_000_000,
            max_ifp_iterations: 100_000,
        }
    }
}

impl Limits {
    /// A small budget for exploratory evaluation of explosive expressions.
    pub fn small() -> Limits {
        Limits {
            max_bag_elements: 1 << 12,
            max_multiplicity_bits: 1 << 12,
            max_steps: 1_000_000,
            max_ifp_iterations: 1_000,
        }
    }
}

/// An evaluation error. The algebra is total on well-typed inputs within
/// budget; everything else surfaces here, never as a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable is neither λ-bound nor a database bag.
    UnboundVariable(Var),
    /// A primitive bag operation failed (wrong element shape, powerset
    /// budget).
    Bag(BagError),
    /// An operator was applied to a value of the wrong shape.
    Shape {
        /// What the operator required.
        expected: &'static str,
        /// Rendering of what it got (truncated).
        found: String,
    },
    /// The step budget was exhausted.
    StepLimit(u64),
    /// An intermediate bag exceeded the distinct-element budget.
    ElementLimit {
        /// Observed distinct-element count.
        observed: u64,
        /// The budget.
        limit: u64,
    },
    /// A multiplicity exceeded the bit-width budget.
    MultiplicityLimit {
        /// Observed bit-width.
        observed_bits: u64,
        /// The budget in bits.
        limit_bits: u64,
    },
    /// The inflationary fixpoint did not converge within budget.
    IfpLimit(u64),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(name) => write!(f, "unbound variable {name}"),
            EvalError::Bag(e) => write!(f, "{e}"),
            EvalError::Shape { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            EvalError::StepLimit(n) => write!(f, "step budget of {n} exhausted"),
            EvalError::ElementLimit { observed, limit } => {
                write!(
                    f,
                    "bag with {observed} distinct elements exceeds limit {limit}"
                )
            }
            EvalError::MultiplicityLimit {
                observed_bits,
                limit_bits,
            } => write!(
                f,
                "multiplicity of {observed_bits} bits exceeds limit of {limit_bits} bits"
            ),
            EvalError::IfpLimit(n) => write!(f, "IFP did not converge within {n} iterations"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<BagError> for EvalError {
    fn from(e: BagError) -> Self {
        EvalError::Bag(e)
    }
}

/// Quantities observed during one evaluation — the measurables of the
/// paper's complexity theorems.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// AST-node evaluation steps.
    pub steps: u64,
    /// Maximal distinct-element count over all intermediate bags.
    pub max_distinct_elements: u64,
    /// Maximal multiplicity over all intermediate bags.
    pub max_multiplicity: Natural,
    /// Maximal total cardinality (Σ multiplicities) over intermediates.
    pub max_cardinality: Natural,
    /// Number of powerset/powerbag applications actually evaluated.
    pub powerset_calls: u64,
    /// Total inflationary-fixpoint iterations.
    pub ifp_iterations: u64,
}

impl Metrics {
    /// Bit-width of the largest multiplicity seen — the work-tape counter
    /// width of Theorem 4.4's LOGSPACE argument.
    pub fn max_multiplicity_bits(&self) -> u64 {
        self.max_multiplicity.bits()
    }
}

/// Hashes AST node addresses directly: the keys are already
/// well-distributed pointers, and the default SipHash costs more than the
/// probe it guards on the per-element memo lookups.
#[derive(Default)]
struct PtrHasher(u64);

impl std::hash::Hasher for PtrHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 << 8) ^ u64::from(b);
        }
    }

    fn write_usize(&mut self, n: usize) {
        // Fibonacci multiply spreads the (aligned, clustered) addresses
        // across the whole hash range.
        self.0 = (n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type PtrMap<V> = HashMap<*const Expr, V, std::hash::BuildHasherDefault<PtrHasher>>;

/// A reusable evaluator bound to one database.
pub struct Evaluator<'a> {
    db: &'a Database,
    limits: Limits,
    metrics: Metrics,
    env: Vec<(Var, Value)>,
    steps_left: u64,
    /// Loop-invariant subexpressions registered by active stage chains,
    /// keyed by AST node identity. `None` until first use (lazy, so error
    /// behavior matches unmemoized evaluation), then the cached value.
    memo: PtrMap<Option<Value>>,
    /// Cached invariance analysis per chain head: which body
    /// subexpressions are loop-invariant. Node pointers are only valid for
    /// the expression tree of the current `eval` call, so [`Evaluator::eval`]
    /// clears this on entry.
    invariant_roots: PtrMap<Vec<*const Expr>>,
    /// Cached [`projection_spec`] results per `Map` node (same pointer
    /// lifetime caveat as `invariant_roots`). `Arc` so a hit is one clone,
    /// not a re-scan and re-allocation per loop iteration.
    projection_specs: PtrMap<Option<Arc<[usize]>>>,
    /// Per-key join indexes over operand bags, keyed by representation
    /// pointer. Valid across `eval` calls: the database is borrowed
    /// immutably for the evaluator's lifetime and each entry pins the
    /// slice allocation it describes, so repeated joins against the same
    /// operand (IFP bodies, repeated queries) probe instead of rebuilding.
    indexes: IndexCache,
    /// Whether the secondary-index fast paths (indexed joins, memoized
    /// `SubBag` testers) may run. The differential suites flip this to
    /// prove the indexed and scan paths equivalent.
    use_indexes: bool,
    /// Partitioned-execution settings ([`crate::par`]). Partition counts
    /// are a pure function of `par.chunks`, never of hardware, so every
    /// setting computes the same bags, errors, and step charges; the
    /// parallel↔serial differential suites flip this to prove it.
    par: par::Parallel,
    /// Per-operator span recording for `:profile`; `None` (the default)
    /// costs one branch per closed node. Frames are only opened for
    /// env-empty (top-level plan) nodes, so λ-body and IFP-body
    /// per-element evaluations collapse into their parent frame.
    profiler: Option<Profiler>,
    /// The fast-path tag of the most recent fused/indexed operator, read
    /// (and cleared) by the enclosing profiled frame. Only written while
    /// profiling — evaluation results never depend on it.
    fast_path: Option<&'static str>,
}

/// Always-on per-evaluation counters, resolved lazily from the installed
/// [`balg_obs`] registry. Recording happens once per [`Evaluator::eval`]
/// call — query granularity, not operator granularity — so the overhead
/// stays in the noise of any real workload.
struct EvalObs {
    total: balg_obs::Counter,
    errors: balg_obs::Counter,
    steps: balg_obs::Counter,
    duration: balg_obs::Histogram,
}

static EVAL_OBS: std::sync::OnceLock<EvalObs> = std::sync::OnceLock::new();

fn eval_obs() -> Option<&'static EvalObs> {
    if let Some(obs) = EVAL_OBS.get() {
        return Some(obs);
    }
    let registry = balg_obs::global()?;
    let _ = EVAL_OBS.set(EvalObs {
        total: registry.counter("balg_eval_total", "Top-level BALG evaluations"),
        errors: registry.counter(
            "balg_eval_errors_total",
            "Top-level BALG evaluations that returned an error",
        ),
        steps: registry.counter(
            "balg_eval_steps_total",
            "Evaluation steps charged across all BALG evaluations",
        ),
        duration: registry.histogram(
            "balg_eval_duration_ns",
            "Wall time per top-level BALG evaluation",
        ),
    });
    EVAL_OBS.get()
}

impl<'a> Evaluator<'a> {
    /// Create an evaluator over `db` with the given budgets.
    pub fn new(db: &'a Database, limits: Limits) -> Self {
        let steps_left = limits.max_steps;
        Evaluator {
            db,
            limits,
            metrics: Metrics::default(),
            env: Vec::new(),
            steps_left,
            memo: PtrMap::default(),
            invariant_roots: PtrMap::default(),
            projection_specs: PtrMap::default(),
            indexes: IndexCache::new(),
            use_indexes: true,
            par: par::Parallel::from_global(),
            profiler: None,
            fast_path: None,
        }
    }

    /// Start recording per-operator spans for `:profile`. The profiler
    /// observes — it never changes what is computed, how many steps are
    /// charged, or which errors surface.
    pub fn enable_profiling(&mut self) {
        self.profiler = Some(Profiler::new());
    }

    /// Take the recorded profile (if profiling was enabled).
    pub fn take_profiler(&mut self) -> Option<Profiler> {
        self.profiler.take()
    }

    /// Enable or disable the secondary-index fast paths (per-key join
    /// indexes and memoized `SubBag` testers). Both settings compute the
    /// same bags with the same step charges; the differential test suites
    /// run every query both ways and require strict equality. Disabling
    /// drops any cached indexes.
    pub fn set_indexing(&mut self, enabled: bool) {
        self.use_indexes = enabled;
        if !enabled {
            self.indexes.clear();
        }
    }

    /// The join-index cache statistics `(hits, builds)` — exposed so
    /// tests can assert that repeated joins actually reuse an index.
    pub fn index_stats(&self) -> (u64, u64) {
        (self.indexes.hits(), self.indexes.builds())
    }

    /// Enable or disable partitioned parallel execution. Enabling adopts
    /// the process-wide default chunk count
    /// ([`crate::pool::default_parallelism`]); disabling pins every
    /// operator to its serial path. Both settings compute the same bags,
    /// errors, and step charges — only scheduling differs.
    pub fn set_parallel(&mut self, enabled: bool) {
        self.par.chunks = if enabled {
            crate::pool::default_parallelism()
        } else {
            1
        };
    }

    /// Pin the partition count directly (values `<= 1` disable parallel
    /// execution). Partitioning is a pure function of this count — never
    /// of worker count or load — so differential tests can compare any
    /// two settings on any host.
    pub fn set_parallel_threads(&mut self, n: usize) {
        self.par.chunks = n.max(1);
    }

    /// Override the minimum work size before operators partition
    /// (distinct elements / probe rows / predicted outputs). Tests drop
    /// this to `0` to force the partitioned paths onto small inputs.
    pub fn set_parallel_threshold(&mut self, n: usize) {
        self.par.threshold = n;
    }

    /// The current partition count (`1` means serial).
    pub fn parallel_chunks(&self) -> usize {
        self.par.chunks
    }

    /// The full partitioned-execution settings, for engines (e.g. the
    /// incremental view maintainer) that drive their own partitioned
    /// kernels off this evaluator's configuration.
    pub fn parallel(&self) -> par::Parallel {
        self.par
    }

    /// Install a full partitioned-execution configuration in one call —
    /// the counterpart of [`Evaluator::parallel`] for hosts that carry a
    /// [`par::Parallel`] of their own (e.g. the incremental runtime).
    pub fn set_parallel_config(&mut self, par: par::Parallel) {
        self.par = par;
    }

    /// Evaluate a closed expression (free variables resolve to database
    /// bags).
    pub fn eval(&mut self, expr: &Expr) -> Result<Value, EvalError> {
        debug_assert!(self.env.is_empty());
        // A prior `eval` call may have analyzed a different (since
        // dropped) tree whose node addresses could recur.
        self.invariant_roots.clear();
        self.projection_specs.clear();
        let Some(obs) = eval_obs() else {
            return self.eval_inner(expr);
        };
        let start = std::time::Instant::now();
        let steps_before = self.metrics.steps;
        let result = self.eval_inner(expr);
        obs.total.inc();
        if result.is_err() {
            obs.errors.inc();
        }
        obs.steps.add(self.metrics.steps - steps_before);
        obs.duration
            .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        result
    }

    /// Evaluate and require a bag result.
    pub fn eval_bag(&mut self, expr: &Expr) -> Result<Bag, EvalError> {
        expect_bag(self.eval(expr)?)
    }

    /// Evaluate an expression under additional λ-style bindings pushed on
    /// top of the environment — the entry point the incremental view
    /// engine uses to apply a `MAP` body to a single delta element, or to
    /// re-derive one operator over a memoized child snapshot (bound to a
    /// fresh variable).
    ///
    /// The expression tree may differ from the one a previous call
    /// analyzed, so the pointer-keyed caches are cleared on entry, exactly
    /// as [`Evaluator::eval`] does.
    pub fn eval_open(
        &mut self,
        expr: &Expr,
        bindings: &[(Var, Value)],
    ) -> Result<Value, EvalError> {
        self.invariant_roots.clear();
        self.projection_specs.clear();
        self.eval_open_cached(expr, bindings)
    }

    /// As [`Evaluator::eval_open`], but keeping the pointer-keyed analysis
    /// caches from the previous `eval_open*` call. Sound **only** when the
    /// caller evaluates within the same expression tree as that previous
    /// call (pointer identity of AST nodes) — e.g. applying one λ body to
    /// every element of a delta, which is exactly the incremental
    /// engine's per-element hot loop. When in doubt use
    /// [`Evaluator::eval_open`], which clears first.
    pub fn eval_open_cached(
        &mut self,
        expr: &Expr,
        bindings: &[(Var, Value)],
    ) -> Result<Value, EvalError> {
        let depth = self.env.len();
        self.env.extend(bindings.iter().cloned());
        let result = self.eval_inner(expr);
        self.env.truncate(depth);
        result
    }

    /// Evaluate a selection predicate under additional bindings — the σ
    /// counterpart of [`Evaluator::eval_open`], used to filter single
    /// delta elements without materializing a singleton bag per element.
    pub fn eval_pred_open(
        &mut self,
        pred: &Pred,
        bindings: &[(Var, Value)],
    ) -> Result<bool, EvalError> {
        self.invariant_roots.clear();
        self.projection_specs.clear();
        self.eval_pred_open_cached(pred, bindings)
    }

    /// As [`Evaluator::eval_pred_open`] with the same same-tree cache
    /// contract as [`Evaluator::eval_open_cached`].
    pub fn eval_pred_open_cached(
        &mut self,
        pred: &Pred,
        bindings: &[(Var, Value)],
    ) -> Result<bool, EvalError> {
        let depth = self.env.len();
        self.env.extend(bindings.iter().cloned());
        let result = self.eval_pred(pred);
        self.env.truncate(depth);
        result
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn step(&mut self) -> Result<(), EvalError> {
        self.charge_steps(1)
    }

    /// Charge `n` evaluation steps at once (bulk fast paths charge one
    /// per produced element without a call per element).
    fn charge_steps(&mut self, n: u64) -> Result<(), EvalError> {
        self.metrics.steps += n;
        match self.steps_left.checked_sub(n) {
            Some(rest) => {
                self.steps_left = rest;
                Ok(())
            }
            None => Err(EvalError::StepLimit(self.limits.max_steps)),
        }
    }

    /// Incremental distinct-element guard for loops that build an output
    /// bag pair by pair through a [`BagBuilder`]: errors as soon as the
    /// builder's distinct count crosses the budget, so a fused product
    /// path cannot materialize far past the cap before the final
    /// [`Evaluator::observe`] would reject it.
    fn check_builder_limit(&self, builder: &mut BagBuilder) -> Result<(), EvalError> {
        builder
            .ensure_distinct_within(self.limits.max_bag_elements)
            .map_err(|observed| EvalError::ElementLimit {
                observed,
                limit: self.limits.max_bag_elements,
            })
    }

    /// Record a produced bag in the metrics and enforce limits. One scan
    /// collects the maximal multiplicity and the total cardinality
    /// together — observation runs after every operator, so it must not
    /// dominate the operators themselves.
    fn observe(&mut self, bag: &Bag) -> Result<(), EvalError> {
        let distinct = bag.distinct_count() as u64;
        if distinct > self.limits.max_bag_elements {
            return Err(EvalError::ElementLimit {
                observed: distinct,
                limit: self.limits.max_bag_elements,
            });
        }
        self.metrics.max_distinct_elements = self.metrics.max_distinct_elements.max(distinct);
        let mut card = Natural::zero();
        let mut max_mult: Option<&Natural> = None;
        for (_, mult) in bag.iter() {
            card += mult;
            if max_mult.is_none_or(|m| mult > m) {
                max_mult = Some(mult);
            }
        }
        let max_mult = max_mult.cloned().unwrap_or_default();
        if max_mult.bits() > self.limits.max_multiplicity_bits {
            return Err(EvalError::MultiplicityLimit {
                observed_bits: max_mult.bits(),
                limit_bits: self.limits.max_multiplicity_bits,
            });
        }
        if max_mult > self.metrics.max_multiplicity {
            self.metrics.max_multiplicity = max_mult;
        }
        if card > self.metrics.max_cardinality {
            self.metrics.max_cardinality = card;
        }
        Ok(())
    }

    fn lookup(&self, name: &Var) -> Result<Value, EvalError> {
        for (bound, value) in self.env.iter().rev() {
            if bound == name {
                return Ok(value.clone());
            }
        }
        self.db
            .get(name)
            .map(|bag| Value::Bag(bag.clone()))
            .ok_or_else(|| EvalError::UnboundVariable(name.clone()))
    }

    fn eval_inner(&mut self, expr: &Expr) -> Result<Value, EvalError> {
        if self.profiler.is_some() && self.env.is_empty() {
            return self.eval_inner_profiled(expr);
        }
        self.eval_inner_plain(expr)
    }

    fn eval_inner_plain(&mut self, expr: &Expr) -> Result<Value, EvalError> {
        self.step()?;
        // Only computing nodes are ever registered (see `worth_memoizing`),
        // so `Var`/`Lit` skip the probe entirely.
        if !self.memo.is_empty() && !matches!(expr, Expr::Var(_) | Expr::Lit(_)) {
            let key = expr as *const Expr;
            match self.memo.get(&key) {
                Some(Some(cached)) => return Ok(cached.clone()),
                Some(None) => {
                    let value = self.eval_node(expr)?;
                    self.memo.insert(key, Some(value.clone()));
                    return Ok(value);
                }
                None => {}
            }
        }
        self.eval_node(expr)
    }

    /// [`Evaluator::eval_inner_plain`] bracketed by a profiler frame:
    /// identical evaluation, plus the node's label, elapsed time, step
    /// delta, output cardinality, and any fast-path tag its operator set.
    fn eval_inner_profiled(&mut self, expr: &Expr) -> Result<Value, EvalError> {
        let span = self.open_span(expr);
        let steps_before = self.metrics.steps;
        let result = self.eval_inner_plain(expr);
        let steps = self.metrics.steps - steps_before;
        let rows = match &result {
            Ok(Value::Bag(bag)) => Some(bag.distinct_count() as u64),
            _ => None,
        };
        let tag = self.fast_path.take();
        if let Some(profiler) = self.profiler.as_mut() {
            profiler.finish(span, steps, rows, tag, result.is_err());
        }
        result
    }

    fn open_span(&mut self, expr: &Expr) -> SpanId {
        let label = node_label(expr);
        self.profiler
            .as_mut()
            .expect("checked by eval_inner")
            .start(label)
    }

    /// Record the fast path an operator took, for the enclosing profiled
    /// frame. A field store behind an is-profiling branch — inert when
    /// profiling is off, and invisible to evaluation either way.
    fn note_fast_path(&mut self, tag: &'static str) {
        if self.profiler.is_some() {
            self.fast_path = Some(tag);
        }
    }

    /// Whether a powerset/powerbag enumeration over `bag` should use the
    /// rank-chunked parallel kernel: parallelism on, more than one distinct
    /// element (the single-element fast path beats any partitioning), and
    /// a predicted enumeration at least the threshold. Oversized
    /// predictions (`> u64`) go to the parallel kernel too — it reproduces
    /// the serial `TooLarge` pre-check before enumerating anything.
    fn subbags_want_partitioning(&self, bag: &Bag) -> bool {
        self.par.enabled()
            && bag.distinct_count() > 1
            && bag
                .powerset_cardinality()
                .to_u64()
                .is_none_or(|n| n >= self.par.threshold as u64)
    }

    fn eval_node(&mut self, expr: &Expr) -> Result<Value, EvalError> {
        match expr {
            Expr::Var(name) => self.lookup(name),
            Expr::Lit(value) => Ok(value.clone()),
            Expr::AdditiveUnion(a, b) => self.eval_binary(a, b, MergeKind::AdditiveUnion),
            Expr::Subtract(a, b) => self.eval_binary(a, b, MergeKind::Subtract),
            Expr::MaxUnion(a, b) => self.eval_binary(a, b, MergeKind::MaxUnion),
            Expr::Intersect(a, b) => self.eval_binary(a, b, MergeKind::Intersect),
            Expr::Tuple(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for field in fields {
                    out.push(self.eval_inner(field)?);
                }
                Ok(Value::Tuple(out.into()))
            }
            Expr::Singleton(e) => {
                let value = self.eval_inner(e)?;
                let bag = Bag::singleton(value);
                self.observe(&bag)?;
                Ok(Value::Bag(bag))
            }
            Expr::Product(a, b) => match self.eval_product(a, b, None)? {
                ProductOutcome::Materialized(out) | ProductOutcome::Joined(out) => {
                    Ok(Value::Bag(out))
                }
            },
            Expr::Powerset(e) => {
                let bag = expect_bag(self.eval_inner(e)?)?;
                self.metrics.powerset_calls += 1;
                let out = if self.subbags_want_partitioning(&bag) {
                    par::powerset(&bag, self.limits.max_bag_elements, self.par.chunks)?
                } else {
                    bag.powerset(self.limits.max_bag_elements)?
                };
                self.observe(&out)?;
                Ok(Value::Bag(out))
            }
            Expr::Powerbag(e) => {
                let bag = expect_bag(self.eval_inner(e)?)?;
                self.metrics.powerset_calls += 1;
                let out = if self.subbags_want_partitioning(&bag) {
                    par::powerbag(&bag, self.limits.max_bag_elements, self.par.chunks)?
                } else {
                    bag.powerbag(self.limits.max_bag_elements)?
                };
                self.observe(&out)?;
                Ok(Value::Bag(out))
            }
            Expr::Attr(e, index) => {
                // Fast path for the ubiquitous `αᵢ(x)`: project the field
                // straight out of the λ-bound tuple instead of cloning the
                // whole tuple first.
                if let Expr::Var(name) = e.as_ref() {
                    let bound = self.env.iter().rposition(|(bound, _)| bound == name);
                    if let Some(ix) = bound {
                        self.step()?; // the Var node, as the generic path charges it
                        let value = &self.env[ix].1;
                        let fields = value.as_tuple().ok_or_else(|| shape("a tuple", value))?;
                        return attr_field(fields, *index).cloned().map_err(EvalError::Bag);
                    }
                    // Not λ-bound (a database bag or an unbound name): the
                    // generic path below reports it.
                }
                let value = self.eval_inner(e)?;
                let fields = value.as_tuple().ok_or_else(|| shape("a tuple", &value))?;
                attr_field(fields, *index).cloned().map_err(EvalError::Bag)
            }
            Expr::Destroy(e) => {
                let bag = expect_bag(self.eval_inner(e)?)?;
                let out = bag.destroy()?;
                self.observe(&out)?;
                Ok(Value::Bag(out))
            }
            Expr::Map { .. } | Expr::Select { .. } => self.eval_stage_chain(expr),
            Expr::Dedup(e) => {
                let bag = expect_bag(self.eval_inner(e)?)?;
                let out = bag.dedup();
                self.observe(&out)?;
                Ok(Value::Bag(out))
            }
            Expr::Ifp { var, body, input } => {
                // Least fixpoint of T(B) = body(B) ∪ B (maximal union keeps
                // the operator inflationary on bags: multiplicities never
                // shrink, so convergence is detected by equality).
                let mut current = expect_bag(self.eval_inner(input)?)?;
                for _ in 0..self.limits.max_ifp_iterations {
                    self.metrics.ifp_iterations += 1;
                    self.env.push((var.clone(), Value::Bag(current.clone())));
                    let stepped = self.eval_inner(body);
                    self.env.pop();
                    let next =
                        self.merge_bags(&current, &expect_bag(stepped?)?, MergeKind::MaxUnion);
                    self.observe(&next)?;
                    if next == current {
                        return Ok(Value::Bag(current));
                    }
                    current = next;
                }
                Err(EvalError::IfpLimit(self.limits.max_ifp_iterations))
            }
            Expr::Nest { group, input } => {
                let bag = expect_bag(self.eval_inner(input)?)?;
                let out = bag.nest(group)?;
                self.observe(&out)?;
                Ok(Value::Bag(out))
            }
        }
    }

    /// Fused evaluation of a `MAP`/`σ` spine: each element of the base bag
    /// streams through every stage in one pass, so only the chain's final
    /// bag is materialized. When the innermost stage is an equi-join
    /// selection directly over a product (`σ_{αᵢ=αⱼ}(e × e′)` with `i` on
    /// the left side and `j` on the right), the base is produced by a hash
    /// join instead of product-then-filter.
    ///
    /// Entered from [`Evaluator::eval_inner`], which has already charged
    /// the step for the outermost spine node.
    /// Classify one spine node as a [`Stage`], consulting the cached
    /// projection analysis for `MAP` bodies.
    fn make_stage<'e>(&mut self, node: &'e Expr) -> Stage<'e> {
        match node {
            Expr::Map { var, body, .. } => {
                let spec = self
                    .projection_specs
                    .entry(node as *const Expr)
                    .or_insert_with(|| projection_spec(body, var).map(Arc::from))
                    .clone();
                match spec {
                    Some(indices) => Stage::Project { indices },
                    None => Stage::Map { var, body },
                }
            }
            Expr::Select { var, pred, .. } => {
                // `σ_{lhs ⊑ rhs}` with a loop-invariant rhs: the rhs
                // evaluates once per chain run into a memoized membership
                // tester ([`SubBagTester`]) probed per element, instead of
                // re-deriving the reference bag and merge-walking it for
                // every element of a large (typically powerset) input.
                if self.use_indexes {
                    if let Pred::SubBag(lhs, rhs) = pred.as_ref() {
                        if !mentions_free(rhs, var) {
                            return Stage::SubBag { var, lhs, rhs };
                        }
                    }
                }
                Stage::Filter { var, pred }
            }
            _ => unreachable!("spine nodes are Map or Select"),
        }
    }

    fn eval_stage_chain(&mut self, expr: &Expr) -> Result<Value, EvalError> {
        // Measure the spine first (no allocation), then collect it in
        // evaluation order — single-stage chains, the overwhelmingly
        // common case, live in a stack slot instead of a `Vec`.
        let mut depth = 0usize;
        let mut probe = expr;
        loop {
            probe = match probe {
                Expr::Map { input, .. } | Expr::Select { input, .. } => {
                    depth += 1;
                    input
                }
                _ => break,
            };
        }
        let cur = probe;
        let single_storage;
        let vec_storage;
        let stages: &[Stage<'_>] = if depth == 1 {
            single_storage = [self.make_stage(expr)];
            &single_storage
        } else {
            let mut collected = Vec::with_capacity(depth);
            let mut node = expr;
            while let Expr::Map { input, .. } | Expr::Select { input, .. } = node {
                collected.push(self.make_stage(node));
                node = input;
            }
            collected.reverse();
            vec_storage = collected;
            &vec_storage
        };
        for _ in 1..stages.len() {
            self.step()?; // the inner spine nodes the fusion skips
        }

        let mut first_stage = 0;
        let base = match (cur, stages.first()) {
            (Expr::Product(a, b), Some(Stage::Filter { var, pred }))
                if equi_join_attrs(pred, var).is_some() =>
            {
                let (i, j) = equi_join_attrs(pred, var).expect("just matched");
                self.step()?; // the Product node, as eval_inner would charge it
                match self.eval_product(a, b, Some((i, j)))? {
                    ProductOutcome::Joined(bag) => {
                        first_stage = 1; // the filter became the join
                        ChainBase::Bag(bag)
                    }
                    ProductOutcome::Materialized(bag) => ChainBase::Bag(bag),
                }
            }
            // `π`/`MAP` directly over a product: stream the pairs through
            // the chain without materializing the product. (A non-join σ
            // over a product still materializes, keeping the rewrite
            // optimizer's σ-pushdown measurably useful.)
            (Expr::Product(a, b), Some(Stage::Map { .. } | Stage::Project { .. })) => {
                self.step()?; // the Product node
                let left = expect_bag(self.eval_inner(a)?)?;
                let right = expect_bag(self.eval_inner(b)?)?;
                match stages.first() {
                    // π over × with every index on one side: the other
                    // side contributes only a cardinality factor, so the
                    // pair loop collapses to project-and-scale (O(|L|+|R|)
                    // instead of O(|L|·|R|)).
                    // Only when the pair loop is actually bigger than the
                    // project-and-scale pass (tiny products are cheaper to
                    // stream directly).
                    Some(Stage::Project { indices })
                        if left.distinct_count() * right.distinct_count()
                            > 2 * (left.distinct_count() + right.distinct_count()) =>
                    {
                        match one_sided_projection(&left, &right, indices)? {
                            Some(bag) => {
                                // One step per produced element, in bulk.
                                self.charge_steps(bag.distinct_count() as u64)?;
                                first_stage = 1; // the projection is done
                                self.note_fast_path("project-scale");
                                ChainBase::Bag(bag)
                            }
                            None => ChainBase::Pairs(left, right),
                        }
                    }
                    _ => ChainBase::Pairs(left, right),
                }
            }
            _ => ChainBase::Bag(expect_bag(self.eval_inner(cur)?)?),
        };

        // Register loop-invariant subexpressions of the stage bodies for
        // lazy once-only evaluation. Only worthwhile when the loop runs
        // more than once. The analysis itself is cached per chain head
        // (the AST is immutable for the duration of one `eval`), so a
        // chain inside an IFP body or an outer λ pays for it once, not
        // once per iteration. Roots are collected over the full spine —
        // independent of whether the hash join consumed the first filter —
        // so the cached set is deterministic per node; entries for a
        // consumed filter simply go unused.
        let loop_len = match &base {
            ChainBase::Bag(bag) => bag.distinct_count(),
            ChainBase::Pairs(left, right) => left.distinct_count() * right.distinct_count(),
        };
        let mut registered: Vec<*const Expr> = Vec::new();
        if loop_len > 1 {
            let chain_key = expr as *const Expr;
            let keys = match self.invariant_roots.get(&chain_key) {
                Some(cached) => cached.clone(),
                None => {
                    let mut roots = Vec::new();
                    for stage in stages {
                        let mut blocked = Vec::new();
                        match stage {
                            Stage::Map { var, body } => {
                                blocked.push((*var).clone());
                                collect_invariant_roots(body, &mut blocked, &mut roots);
                            }
                            Stage::Filter { var, pred } => {
                                blocked.push((*var).clone());
                                collect_invariant_pred_roots(pred, &mut blocked, &mut roots);
                            }
                            // The rhs is memoized by the tester itself;
                            // only the lhs can hold hoistable subtrees.
                            Stage::SubBag { var, lhs, .. } => {
                                blocked.push((*var).clone());
                                collect_invariant_roots(lhs, &mut blocked, &mut roots);
                            }
                            // A projection has no subexpressions to hoist.
                            Stage::Project { .. } => {}
                        }
                    }
                    let keys: Vec<*const Expr> =
                        roots.into_iter().map(|root| root as *const Expr).collect();
                    self.invariant_roots.insert(chain_key, keys.clone());
                    keys
                }
            };
            for key in keys {
                if let std::collections::hash_map::Entry::Vacant(slot) = self.memo.entry(key) {
                    slot.insert(None);
                    registered.push(key);
                }
            }
        }
        let stages = &stages[first_stage..];

        // A hash join or one-sided projection may have consumed the only
        // stage: its bag already is the chain's result — don't re-stream
        // it through an empty pipeline (the observe below still runs).
        let result = match (&base, stages) {
            (ChainBase::Bag(bag), []) => Ok(bag.clone()),
            // The whole chain is `σ_{x ⊑ rhs}` over the λ variable itself
            // — the powerset-sweep shape: elements are tested in place
            // (no per-element environment binding or value clone) against
            // the memoized reference, and the output is a subsequence of
            // the sorted input.
            (
                ChainBase::Bag(bag),
                [Stage::SubBag {
                    var,
                    lhs: Expr::Var(name),
                    rhs,
                }],
            ) if name == *var => {
                self.note_fast_path("subbag-sweep");
                self.run_subbag_select(bag, rhs)
            }
            _ => self.run_chain_loop(&base, stages),
        };
        for key in registered {
            self.memo.remove(&key);
        }
        let out = result?;
        self.observe(&out)?;
        Ok(Value::Bag(out))
    }

    /// The streaming loop of [`Evaluator::eval_stage_chain`], separated so
    /// the caller can unregister its memo entries on both the success and
    /// the error path.
    fn run_chain_loop(&mut self, base: &ChainBase, stages: &[Stage<'_>]) -> Result<Bag, EvalError> {
        let mut out = BagBuilder::new();
        // One memoized-tester slot per stage, filled lazily by the first
        // element that reaches a `SubBag` stage (so a chain that filters
        // everything out earlier never evaluates the rhs — matching the
        // unmemoized per-element evaluation order).
        let mut testers: Vec<Option<SubBagTester>> = Vec::new();
        testers.resize_with(stages.len(), || None);
        match base {
            ChainBase::Bag(bag) => {
                for (value, mult) in bag.iter() {
                    self.run_stages(value.clone(), mult.clone(), stages, &mut testers, &mut out)?;
                }
            }
            ChainBase::Pairs(left, right) => {
                // A leading projection picks its fields straight off the
                // two sides, skipping the concatenated-tuple allocation.
                let (project, rest) = match stages.first() {
                    Some(Stage::Project { indices }) => (Some(&indices[..]), &stages[1..]),
                    _ => (None, stages),
                };
                if project.is_some() {
                    testers.remove(0); // keep slots aligned with `rest`
                }
                for (lv, lm) in left.iter() {
                    let left_fields = lv
                        .as_tuple()
                        .ok_or_else(|| BagError::NotATuple(lv.clone()))?;
                    for (rv, rm) in right.iter() {
                        let right_fields = rv
                            .as_tuple()
                            .ok_or_else(|| BagError::NotATuple(rv.clone()))?;
                        let first = match project {
                            Some(indices) => {
                                self.step()?; // the projection application
                                project_pair(left_fields, right_fields, indices)?
                            }
                            None => Value::concat_tuples(left_fields, right_fields),
                        };
                        self.run_stages(first, lm * rm, rest, &mut testers, &mut out)?;
                    }
                }
            }
        }
        Ok(out.build())
    }

    /// The specialized loop for a one-stage `σ_{x ⊑ rhs}(bag)` chain:
    /// every element is a candidate bag tested in place. Matches the
    /// per-element path exactly — error precedence (a non-bag first
    /// element outranks an rhs failure; later shape errors follow the
    /// reference derivation), the resulting bag, and the step totals:
    /// the per-element path charges pred + λ-var lookup per element and
    /// evaluates the rhs once in full (loop-invariant hoisting memoizes
    /// it) plus one root-lookup step per later element, so this charges
    /// `3n − 1` in bulk around the single full rhs evaluation.
    fn run_subbag_select(&mut self, bag: &Bag, rhs: &Expr) -> Result<Bag, EvalError> {
        if bag.is_empty() {
            return Ok(Bag::new()); // the reference is never derived
        }
        let first = bag.elements().next().expect("non-empty");
        if first.as_bag().is_none() {
            return Err(shape("a bag", first));
        }
        let reference = expect_bag(self.eval_inner(rhs)?)?;
        let tester = SubBagTester::new(&reference);
        self.charge_steps(3 * bag.distinct_count() as u64 - 1)?;
        bag.select(|value| match value.as_bag() {
            Some(candidate) => Ok(tester.admits(candidate)),
            None => Err(shape("a bag", value)),
        })
    }

    /// Push one element through every stage; survivors land in `out`.
    /// `testers` holds one lazily-filled [`SubBagTester`] slot per stage.
    fn run_stages(
        &mut self,
        value: Value,
        mult: Natural,
        stages: &[Stage<'_>],
        testers: &mut [Option<SubBagTester>],
        out: &mut BagBuilder,
    ) -> Result<(), EvalError> {
        let mut current = value;
        for (stage_ix, stage) in stages.iter().enumerate() {
            match stage {
                Stage::Map { var, body } => {
                    self.env.push(((*var).clone(), current));
                    let image = self.eval_inner(body);
                    self.env.pop();
                    current = image?;
                }
                Stage::Filter { var, pred } => {
                    self.env.push(((*var).clone(), current));
                    let keep = self.eval_pred(pred);
                    let (_, value_back) = self.env.pop().expect("balanced λ environment");
                    if !keep? {
                        return Ok(());
                    }
                    current = value_back;
                }
                Stage::SubBag { var, lhs, rhs } => {
                    self.step()?; // the predicate node, as eval_pred charges it
                    self.env.push(((*var).clone(), current));
                    let left = self.eval_inner(lhs);
                    let (_, value_back) = self.env.pop().expect("balanced λ environment");
                    let left = expect_bag(left?)?;
                    if testers[stage_ix].is_none() {
                        // First element to reach this stage: derive the
                        // reference once (errors surface exactly where
                        // the per-element evaluation would have raised
                        // them first) and memoize its caps.
                        let reference = expect_bag(self.eval_inner(rhs)?)?;
                        testers[stage_ix] = Some(SubBagTester::new(&reference));
                    } else {
                        // The per-element path re-reads the (hoisted,
                        // memoized) reference: one root-lookup step.
                        self.step()?;
                    }
                    let tester = testers[stage_ix].as_ref().expect("just ensured");
                    if !tester.admits(&left) {
                        return Ok(());
                    }
                    current = value_back;
                }
                Stage::Project { indices } => {
                    self.step()?; // one per element, like a body application
                    let fields = current
                        .as_tuple()
                        .ok_or_else(|| shape("a tuple", &current))?;
                    current = match indices[..] {
                        [ix] => {
                            let field = attr_field(fields, ix).map_err(EvalError::Bag)?;
                            Value::Tuple(Arc::from([field.clone()]))
                        }
                        _ => {
                            let mut out = Vec::with_capacity(indices.len());
                            for &ix in indices.iter() {
                                out.push(attr_field(fields, ix).map_err(EvalError::Bag)?.clone());
                            }
                            Value::Tuple(out.into())
                        }
                    };
                }
            }
        }
        out.push(current, mult);
        self.check_builder_limit(out)
    }

    /// Evaluate `a × b`, optionally under an equi-join filter
    /// `αᵢ = αⱼ` (with `i < j` referring to the concatenated tuple).
    ///
    /// With `join_attrs` set and the shape guards satisfied — all elements
    /// tuples, uniform arity per side, the equality spanning the product
    /// boundary — matching pairs are produced directly from a hash index
    /// on the left side and the full product is never built. Otherwise
    /// this is exactly the materializing `Expr::Product` evaluation
    /// (element-count prediction, then [`Bag::product`]), and the caller
    /// must still apply the filter.
    fn eval_product(
        &mut self,
        a: &Expr,
        b: &Expr,
        join_attrs: Option<(usize, usize)>,
    ) -> Result<ProductOutcome, EvalError> {
        let left = expect_bag(self.eval_inner(a)?)?;
        let right = expect_bag(self.eval_inner(b)?)?;

        if let Some((i, j)) = join_attrs {
            if let (Some(left_arity), Some(right_arity)) =
                (uniform_arity(&left), uniform_arity(&right))
            {
                let spans_boundary =
                    i >= 1 && i <= left_arity && j > left_arity && j <= left_arity + right_arity;
                if spans_boundary {
                    let jr = j - left_arity;
                    if self.use_indexes {
                        if let Some(out) = self.indexed_join(&left, i, &right, jr)? {
                            self.observe(&out)?;
                            self.note_fast_path("indexed-join");
                            return Ok(ProductOutcome::Joined(out));
                        }
                    }
                    // Scan path (indexes disabled, or neither side
                    // indexable): a transient per-query hash table, the
                    // pre-index behavior with identical output and step
                    // charges.
                    let mut index: HashMap<&Value, Vec<(&Value, &Natural)>> = HashMap::new();
                    for (lv, lm) in left.iter() {
                        let fields = lv.as_tuple().expect("checked by uniform_arity");
                        index.entry(&fields[i - 1]).or_default().push((lv, lm));
                    }
                    let mut out = BagBuilder::new();
                    for (rv, rm) in right.iter() {
                        let right_fields = rv.as_tuple().expect("checked by uniform_arity");
                        let Some(matches) = index.get(&right_fields[jr - 1]) else {
                            continue;
                        };
                        for (lv, lm) in matches {
                            self.step()?; // one per surviving pair, like the filter
                            let left_fields = lv.as_tuple().expect("checked by uniform_arity");
                            out.push(Value::concat_tuples(left_fields, right_fields), *lm * rm);
                            self.check_builder_limit(&mut out)?;
                        }
                    }
                    let out = out.build();
                    self.observe(&out)?;
                    self.note_fast_path("hash-join");
                    return Ok(ProductOutcome::Joined(out));
                }
            }
        }

        // Materializing path. Predict output size: distinct counts multiply.
        // `Bag::product` enforces the same budget again inside its loop,
        // so even without this pre-check no unbounded intermediate could
        // be materialized; predicting here keeps the error an
        // `ElementLimit` with the exact prediction.
        let predicted = left.distinct_count() as u128 * right.distinct_count() as u128;
        if predicted > self.limits.max_bag_elements as u128 {
            return Err(EvalError::ElementLimit {
                observed: predicted.min(u64::MAX as u128) as u64,
                limit: self.limits.max_bag_elements,
            });
        }
        let out = if self.par.enabled() && predicted >= self.par.threshold as u128 {
            par::product(&left, &right, self.limits.max_bag_elements, self.par.chunks)?
        } else {
            left.product(&right, self.limits.max_bag_elements)?
        };
        self.observe(&out)?;
        Ok(ProductOutcome::Materialized(out))
    }

    /// The cached-index hash join: probe a [`BagIndex`] on one operand
    /// for every row of the other. `li`/`ri` are the join attributes in
    /// each side's own 1-based numbering; both sides are known to be
    /// uniform-arity tuple bags. Prefers an index that is already cached
    /// (either side); on a double miss it indexes the smaller side — the
    /// cheaper build, and the choice that lets a loop-stable operand
    /// (e.g. the edge bag of an IFP transitive closure) stay cached while
    /// the growing side is probed. Returns `Ok(None)` only when no side
    /// can be indexed, which the guards above make unreachable in
    /// practice; the caller then falls back to the transient scan.
    fn indexed_join(
        &mut self,
        left: &Bag,
        li: usize,
        right: &Bag,
        ri: usize,
    ) -> Result<Option<Bag>, EvalError> {
        enum Pick {
            Left(Arc<BagIndex>),
            Right(Arc<BagIndex>),
        }
        let pick = if let Some(index) = self.indexes.peek(left, li) {
            Some(Pick::Left(index))
        } else if let Some(index) = self.indexes.peek(right, ri) {
            Some(Pick::Right(index))
        } else if left.distinct_count() <= right.distinct_count() {
            self.indexes.get_or_build(left, li).map(Pick::Left)
        } else {
            self.indexes.get_or_build(right, ri).map(Pick::Right)
        };
        let Some(pick) = pick else {
            return Ok(None);
        };
        // Optimistic partitioned probe: chunk the probe side's rows, run
        // each chunk infallibly with a local builder, and commit only when
        // the total surviving-pair count fits both remaining budgets
        // (steps *and* distinct elements). On overflow nothing has been
        // charged, so the serial loop below re-runs and reproduces the
        // exact serial error payload and partial metric charges.
        if self.par.enabled() {
            let (index, probe_is_right) = match &pick {
                Pick::Left(index) => (index, true),
                Pick::Right(index) => (index, false),
            };
            let probe = if probe_is_right { right } else { left };
            if probe.distinct_count() >= self.par.threshold {
                let budget = self.steps_left.min(self.limits.max_bag_elements);
                if let Some((out, pairs)) = par_probe_join(
                    index,
                    probe,
                    probe_is_right,
                    li,
                    ri,
                    self.par.chunks,
                    budget,
                ) {
                    self.charge_steps(pairs)
                        .expect("pair count bounded by remaining steps");
                    return Ok(Some(out));
                }
            }
        }
        let mut out = BagBuilder::new();
        match pick {
            Pick::Left(index) => {
                for (rv, rm) in right.iter() {
                    let right_fields = rv.as_tuple().expect("checked by uniform_arity");
                    for (lv, lm) in index.group(&right_fields[ri - 1]) {
                        self.step()?; // one per surviving pair, like the filter
                        let left_fields = lv.as_tuple().expect("indexed rows are tuples");
                        out.push(Value::concat_tuples(left_fields, right_fields), lm * rm);
                        self.check_builder_limit(&mut out)?;
                    }
                }
            }
            Pick::Right(index) => {
                for (lv, lm) in left.iter() {
                    let left_fields = lv.as_tuple().expect("checked by uniform_arity");
                    for (rv, rm) in index.group(&left_fields[li - 1]) {
                        self.step()?; // one per surviving pair, like the filter
                        let right_fields = rv.as_tuple().expect("indexed rows are tuples");
                        out.push(Value::concat_tuples(left_fields, right_fields), lm * rm);
                        self.check_builder_limit(&mut out)?;
                    }
                }
            }
        }
        Ok(Some(out.build()))
    }

    fn eval_binary(&mut self, a: &Expr, b: &Expr, op: MergeKind) -> Result<Value, EvalError> {
        let left = expect_bag(self.eval_inner(a)?)?;
        let right = expect_bag(self.eval_inner(b)?)?;
        let out = self.merge_bags(&left, &right, op);
        self.observe(&out)?;
        Ok(Value::Bag(out))
    }

    /// Run one of the four keywise merges, partitioned when the combined
    /// input is large enough. The merges charge no per-element steps, so
    /// the partitioned path is identical to the serial one in every
    /// observable (bag, error, metrics) — the cheapest parallelism in the
    /// system.
    fn merge_bags(&self, left: &Bag, right: &Bag, op: MergeKind) -> Bag {
        if self
            .par
            .wants(left.distinct_count() + right.distinct_count())
        {
            match op {
                MergeKind::AdditiveUnion => par::additive_union(left, right, self.par.chunks),
                MergeKind::Subtract => par::subtract(left, right, self.par.chunks),
                MergeKind::MaxUnion => par::max_union(left, right, self.par.chunks),
                MergeKind::Intersect => par::intersect(left, right, self.par.chunks),
            }
        } else {
            match op {
                MergeKind::AdditiveUnion => left.additive_union(right),
                MergeKind::Subtract => left.subtract(right),
                MergeKind::MaxUnion => left.max_union(right),
                MergeKind::Intersect => left.intersect(right),
            }
        }
    }

    fn eval_pred(&mut self, pred: &Pred) -> Result<bool, EvalError> {
        self.step()?;
        match pred {
            Pred::True => Ok(true),
            Pred::Eq(a, b) => Ok(self.eval_inner(a)? == self.eval_inner(b)?),
            Pred::Lt(a, b) => Ok(self.eval_inner(a)? < self.eval_inner(b)?),
            Pred::Le(a, b) => Ok(self.eval_inner(a)? <= self.eval_inner(b)?),
            Pred::Member(a, b) => {
                let elem = self.eval_inner(a)?;
                let bag = expect_bag(self.eval_inner(b)?)?;
                Ok(bag.contains(&elem))
            }
            Pred::SubBag(a, b) => {
                let left = expect_bag(self.eval_inner(a)?)?;
                let right = expect_bag(self.eval_inner(b)?)?;
                Ok(left.is_subbag_of(&right))
            }
            Pred::Not(p) => Ok(!self.eval_pred(p)?),
            Pred::And(a, b) => Ok(self.eval_pred(a)? && self.eval_pred(b)?),
            Pred::Or(a, b) => Ok(self.eval_pred(a)? || self.eval_pred(b)?),
        }
    }
}

/// The four keywise merge operators of `eval_binary`, reified so the
/// evaluator can dispatch each to its serial [`Bag`] method or its
/// partitioned [`crate::par`] kernel.
#[derive(Clone, Copy)]
enum MergeKind {
    AdditiveUnion,
    Subtract,
    MaxUnion,
    Intersect,
}

/// A probe-join chunk job: `Some((chunk output, pairs emitted))`, or
/// `None` when the shared budget counter tripped.
type ProbeJoinJob = Box<dyn FnOnce() -> Option<(Bag, u64)> + Send>;

/// Optimistic chunk-parallel probe of a cached join index.
///
/// The probe side's rows are split into `chunks` contiguous ranges; each
/// range runs infallibly with a local [`BagBuilder`], tracking the global
/// surviving-pair count through a shared atomic. If the count ever exceeds
/// `budget` (the minimum of the evaluator's remaining step and element
/// budgets) the attempt returns `None` with nothing charged — the caller's
/// serial loop then reproduces the exact serial error payload and partial
/// metric charges. On success the total pair count is returned for one
/// bulk [`Evaluator::charge_steps`], identical to the serial loop's
/// per-pair charges.
///
/// Chunk outputs merge exactly: both operand bags hold distinct rows and
/// the left side has uniform arity, so every surviving `(probe row, match
/// row)` pair concatenates to a distinct output tuple — chunk bags are
/// disjoint and their additive union equals the serial builder's output.
fn par_probe_join(
    index: &Arc<BagIndex>,
    probe: &Bag,
    probe_is_right: bool,
    li: usize,
    ri: usize,
    chunks: usize,
    budget: u64,
) -> Option<(Bag, u64)> {
    use std::sync::atomic::{AtomicU64, Ordering};
    let n = probe.distinct_count();
    let counter = Arc::new(AtomicU64::new(0));
    let key_ix = if probe_is_right { ri } else { li };
    let mut jobs: Vec<ProbeJoinJob> = Vec::with_capacity(chunks);
    let mut row = 0usize;
    for k in 1..=chunks {
        let end = n * k / chunks;
        if end <= row {
            continue;
        }
        let probe = probe.clone();
        let index = Arc::clone(index);
        let counter = Arc::clone(&counter);
        let (lo, hi) = (row, end);
        jobs.push(Box::new(move || {
            let mut out = BagBuilder::new();
            let mut pairs = 0u64;
            for (pv, pm) in &probe.pairs()[lo..hi] {
                let pf = pv.as_tuple().expect("checked by uniform_arity");
                let group = index.group(&pf[key_ix - 1]);
                if group.is_empty() {
                    continue;
                }
                let g = group.len() as u64;
                let before = counter.fetch_add(g, Ordering::Relaxed);
                if before.saturating_add(g) > budget {
                    return None;
                }
                pairs += g;
                for (mv, mm) in group {
                    let mf = mv.as_tuple().expect("indexed rows are tuples");
                    if probe_is_right {
                        out.push(Value::concat_tuples(mf, pf), mm * pm);
                    } else {
                        out.push(Value::concat_tuples(pf, mf), pm * mm);
                    }
                }
            }
            Some((out.build(), pairs))
        }));
        row = end;
    }
    if jobs.len() <= 1 {
        // Degenerate partition — let the caller's serial loop run instead.
        return None;
    }
    par::note_partitioned(jobs.len());
    let parts = pool::global().run(jobs);
    let mut total = 0u64;
    let mut merged = Bag::new();
    for part in parts {
        let Some((bag, pairs)) = part else {
            par::note_serial_fallback();
            return None;
        };
        total += pairs;
        merged = merged.additive_union(&bag);
    }
    Some((merged, total))
}

/// One node of a `MAP`/`σ` spine, borrowed from the expression tree.
enum Stage<'e> {
    Map {
        var: &'e Var,
        body: &'e Expr,
    },
    Filter {
        var: &'e Var,
        pred: &'e Pred,
    },
    /// A `MAP` whose body is `[α_{i₁}(x), …]` over its own λ variable —
    /// the paper's `π` abbreviation — precompiled to its 1-based indices.
    Project {
        indices: Arc<[usize]>,
    },
    /// A `σ` whose predicate is a single `SubBag(lhs, rhs)` with `rhs`
    /// not reading the λ variable: the rhs is evaluated once per chain
    /// run and memoized as a [`SubBagTester`].
    SubBag {
        var: &'e Var,
        lhs: &'e Expr,
        rhs: &'e Expr,
    },
}

/// Recognize a projection-shaped `MAP` body: a tuple of attribute
/// projections applied directly to the λ-bound variable.
fn projection_spec(body: &Expr, var: &Var) -> Option<Vec<usize>> {
    let Expr::Tuple(fields) = body else {
        return None;
    };
    if fields.is_empty() {
        // `λx.[]` never inspects `x`, so it maps non-tuple elements too;
        // the projection fast path (which demands tuples) must not claim it.
        return None;
    }
    let mut indices = Vec::with_capacity(fields.len());
    for field in fields {
        match field {
            Expr::Attr(inner, ix) => match inner.as_ref() {
                Expr::Var(name) if name == var => indices.push(*ix),
                _ => return None,
            },
            _ => return None,
        }
    }
    Some(indices)
}

/// What a stage chain streams over: an evaluated bag, or the unmaterialized
/// pairs of a product feeding a `MAP` stage.
enum ChainBase {
    Bag(Bag),
    Pairs(Bag, Bag),
}

/// `true` for subexpressions whose once-only evaluation is worth a memo
/// entry: anything that actually computes (not a variable or constant).
fn worth_memoizing(expr: &Expr) -> bool {
    !matches!(expr, Expr::Var(_) | Expr::Lit(_))
}

/// Does `name` occur free in `expr`? (Occurrences under a λ that rebinds
/// the same name are bound, not free.)
fn mentions_free(expr: &Expr, name: &Var) -> bool {
    match expr {
        Expr::Var(v) => v == name,
        Expr::Lit(_) => false,
        Expr::AdditiveUnion(a, b)
        | Expr::Subtract(a, b)
        | Expr::MaxUnion(a, b)
        | Expr::Intersect(a, b)
        | Expr::Product(a, b) => mentions_free(a, name) || mentions_free(b, name),
        Expr::Tuple(fields) => fields.iter().any(|f| mentions_free(f, name)),
        Expr::Singleton(e)
        | Expr::Powerset(e)
        | Expr::Powerbag(e)
        | Expr::Attr(e, _)
        | Expr::Destroy(e)
        | Expr::Dedup(e) => mentions_free(e, name),
        Expr::Map { var, body, input } | Expr::Ifp { var, body, input } => {
            mentions_free(input, name) || (var != name && mentions_free(body, name))
        }
        Expr::Select { var, pred, input } => {
            mentions_free(input, name) || (var != name && mentions_free_pred(pred, name))
        }
        Expr::Nest { input, .. } => mentions_free(input, name),
    }
}

fn mentions_free_pred(pred: &Pred, name: &Var) -> bool {
    let mut found = false;
    pred.visit_exprs(&mut |e| found |= mentions_free(e, name));
    found
}

/// Collect the maximal subexpressions of `expr` that mention none of the
/// `blocked` variables — the λ-bound names between the stage body root and
/// the candidate, starting with the stage's own variable. Those subtrees
/// evaluate to the same value for every element of the stage's loop, so
/// the evaluator memoizes them (lazily, preserving error behavior: a
/// subtree that is never reached is never evaluated).
fn collect_invariant_roots<'e>(expr: &'e Expr, blocked: &mut Vec<Var>, out: &mut Vec<&'e Expr>) {
    if !blocked.iter().any(|name| mentions_free(expr, name)) {
        if worth_memoizing(expr) {
            out.push(expr);
        }
        return;
    }
    match expr {
        Expr::Var(_) | Expr::Lit(_) => {}
        Expr::AdditiveUnion(a, b)
        | Expr::Subtract(a, b)
        | Expr::MaxUnion(a, b)
        | Expr::Intersect(a, b)
        | Expr::Product(a, b) => {
            collect_invariant_roots(a, blocked, out);
            collect_invariant_roots(b, blocked, out);
        }
        Expr::Tuple(fields) => {
            for field in fields {
                collect_invariant_roots(field, blocked, out);
            }
        }
        Expr::Singleton(e)
        | Expr::Powerset(e)
        | Expr::Powerbag(e)
        | Expr::Attr(e, _)
        | Expr::Destroy(e)
        | Expr::Dedup(e) => collect_invariant_roots(e, blocked, out),
        Expr::Map { var, body, input } | Expr::Ifp { var, body, input } => {
            collect_invariant_roots(input, blocked, out);
            blocked.push(var.clone());
            collect_invariant_roots(body, blocked, out);
            blocked.pop();
        }
        Expr::Select { var, pred, input } => {
            collect_invariant_roots(input, blocked, out);
            blocked.push(var.clone());
            collect_invariant_pred_roots(pred, blocked, out);
            blocked.pop();
        }
        Expr::Nest { input, .. } => collect_invariant_roots(input, blocked, out),
    }
}

fn collect_invariant_pred_roots<'e>(
    pred: &'e Pred,
    blocked: &mut Vec<Var>,
    out: &mut Vec<&'e Expr>,
) {
    match pred {
        Pred::True => {}
        Pred::Eq(a, b)
        | Pred::Lt(a, b)
        | Pred::Le(a, b)
        | Pred::Member(a, b)
        | Pred::SubBag(a, b) => {
            collect_invariant_roots(a, blocked, out);
            collect_invariant_roots(b, blocked, out);
        }
        Pred::Not(p) => collect_invariant_pred_roots(p, blocked, out),
        Pred::And(a, b) | Pred::Or(a, b) => {
            collect_invariant_pred_roots(a, blocked, out);
            collect_invariant_pred_roots(b, blocked, out);
        }
    }
}

/// How [`Evaluator::eval_product`] produced its bag.
enum ProductOutcome {
    /// Hash join: the equi-join filter is already applied.
    Joined(Bag),
    /// Full Cartesian product: any filter still needs to run.
    Materialized(Bag),
}

/// Recognize `αᵢ(x) = αⱼ(x)` over the σ-bound variable `x` with `i ≠ j`,
/// normalized to `i < j`. Anything else is not a join predicate the
/// evaluator fuses.
fn equi_join_attrs(pred: &Pred, var: &Var) -> Option<(usize, usize)> {
    let attr_of = |e: &Expr| match e {
        Expr::Attr(inner, ix) => match inner.as_ref() {
            Expr::Var(name) if name == var => Some(*ix),
            _ => None,
        },
        _ => None,
    };
    match pred {
        Pred::Eq(a, b) => {
            let (i, j) = (attr_of(a)?, attr_of(b)?);
            if i == j {
                None // trivially true on every tuple — not a join
            } else {
                Some((i.min(j), i.max(j)))
            }
        }
        _ => None,
    }
}

/// `Some(arity)` iff every element is a tuple of the same arity (the empty
/// bag has no witness, so it reports `None` and the caller falls back).
fn uniform_arity(bag: &Bag) -> Option<usize> {
    let mut arity = None;
    for (value, _) in bag.iter() {
        let len = value.as_tuple()?.len();
        match arity {
            None => arity = Some(len),
            Some(a) if a == len => {}
            Some(_) => return None,
        }
    }
    arity
}

/// `π_I(L × R)` when every index of `I` falls on one side: the other side
/// only multiplies occurrences, so the product never needs enumerating —
/// `π_I(L × R) = scale(π_I(L), |R|)` (symmetrically for right-only
/// indices). Requires both sides to be uniform-arity tuple bags so the
/// split point is well-defined and the original's error behavior (a
/// non-tuple on either side fails the product) is preserved; returns
/// `None` to fall back to the streaming pair loop otherwise.
fn one_sided_projection(
    left: &Bag,
    right: &Bag,
    indices: &[usize],
) -> Result<Option<Bag>, EvalError> {
    let (Some(left_arity), Some(right_arity)) = (uniform_arity(left), uniform_arity(right)) else {
        return Ok(None);
    };
    if indices.iter().all(|&ix| ix >= 1 && ix <= left_arity) {
        let projected = left.project(indices)?;
        return Ok(Some(projected.scale(&right.cardinality())));
    }
    if indices
        .iter()
        .all(|&ix| ix > left_arity && ix <= left_arity + right_arity)
    {
        let shifted: Vec<usize> = indices.iter().map(|&ix| ix - left_arity).collect();
        let projected = right.project(&shifted)?;
        return Ok(Some(projected.scale(&left.cardinality())));
    }
    Ok(None)
}

/// Apply a projection over the (virtual) concatenation of two tuple field
/// slices without allocating the concatenation.
fn project_pair(left: &[Value], right: &[Value], indices: &[usize]) -> Result<Value, EvalError> {
    let pick = |ix: usize| -> Result<&Value, EvalError> {
        let i = ix
            .checked_sub(1)
            .ok_or(EvalError::Bag(BagError::AttrIndexZero))?;
        if i < left.len() {
            Some(&left[i])
        } else {
            right.get(i - left.len())
        }
        .ok_or(EvalError::Bag(BagError::BadArity {
            index: ix,
            arity: left.len() + right.len(),
        }))
    };
    match indices[..] {
        [ix] => Ok(Value::Tuple(Arc::from([pick(ix)?.clone()]))),
        [i, j] => Ok(Value::Tuple(Arc::from([
            pick(i)?.clone(),
            pick(j)?.clone(),
        ]))),
        _ => {
            let mut out = Vec::with_capacity(indices.len());
            for &ix in indices {
                out.push(pick(ix)?.clone());
            }
            Ok(Value::Tuple(out.into()))
        }
    }
}

/// The short operator label a profile frame carries, matching the
/// algebra's rendered syntax ([`Expr`]'s `Display`).
fn node_label(expr: &Expr) -> String {
    match expr {
        Expr::Var(name) => format!("base {name}"),
        Expr::Lit(_) => "lit".to_owned(),
        Expr::AdditiveUnion(..) => "\u{222a}\u{207a}".to_owned(),
        Expr::Subtract(..) => "\u{2212}".to_owned(),
        Expr::MaxUnion(..) => "\u{222a}".to_owned(),
        Expr::Intersect(..) => "\u{2229}".to_owned(),
        Expr::Tuple(..) => "\u{3c4}".to_owned(),
        Expr::Singleton(..) => "\u{3b2}".to_owned(),
        Expr::Product(..) => "\u{d7}".to_owned(),
        Expr::Powerset(..) => "P".to_owned(),
        Expr::Powerbag(..) => "Pb".to_owned(),
        Expr::Attr(_, i) => format!("\u{3b1}{i}"),
        Expr::Destroy(..) => "\u{3b4}".to_owned(),
        Expr::Map { var, .. } => format!("MAP \u{3bb}{var}"),
        Expr::Select { var, .. } => format!("\u{3c3} \u{3bb}{var}"),
        Expr::Dedup(..) => "\u{3b5}".to_owned(),
        Expr::Ifp { var, .. } => format!("IFP \u{3bb}{var}"),
        Expr::Nest { group, .. } => format!(
            "nest[{}]",
            group
                .iter()
                .map(|g| g.to_string())
                .collect::<Vec<_>>()
                .join(",")
        ),
    }
}

fn shape(expected: &'static str, found: &Value) -> EvalError {
    let mut rendered = found.to_string();
    if rendered.len() > 80 {
        rendered.truncate(77);
        rendered.push_str("...");
    }
    EvalError::Shape {
        expected,
        found: rendered,
    }
}

fn expect_bag(value: Value) -> Result<Bag, EvalError> {
    match value {
        Value::Bag(bag) => Ok(bag),
        other => Err(shape("a bag", &other)),
    }
}

/// Evaluate `expr` against `db` with default limits.
pub fn eval(expr: &Expr, db: &Database) -> Result<Value, EvalError> {
    Evaluator::new(db, Limits::default()).eval(expr)
}

/// Evaluate `expr` against `db` with default limits, requiring a bag.
pub fn eval_bag(expr: &Expr, db: &Database) -> Result<Bag, EvalError> {
    Evaluator::new(db, Limits::default()).eval_bag(expr)
}

/// Evaluate and return the metrics alongside the result.
pub fn eval_with_metrics(
    expr: &Expr,
    db: &Database,
    limits: Limits,
) -> (Result<Value, EvalError>, Metrics) {
    let mut evaluator = Evaluator::new(db, limits);
    let result = evaluator.eval(expr);
    (result, evaluator.metrics().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Expr, Pred};
    use crate::types::Type;
    use crate::value::Value;

    fn db_with(name: &str, bag: Bag) -> Database {
        Database::new().with(name, bag)
    }

    fn nat(v: u64) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn var_resolves_to_database_bag() {
        let db = db_with("B", Bag::singleton(Value::sym("a")));
        let out = eval_bag(&Expr::var("B"), &db).unwrap();
        assert_eq!(out.cardinality(), nat(1));
        assert!(matches!(
            eval(&Expr::var("missing"), &db),
            Err(EvalError::UnboundVariable(_))
        ));
    }

    #[test]
    fn section4_counting_query() {
        // Q(B) = π₁,₄(σ_{α₂=α₃}(B×B)) over n×[a,b] + m×[b,a]:
        // aa and bb each get n·m occurrences (paper's in-text table).
        let (n, m) = (5u64, 7u64);
        let mut b = Bag::new();
        b.insert_with_multiplicity(Value::tuple([Value::sym("a"), Value::sym("b")]), nat(n));
        b.insert_with_multiplicity(Value::tuple([Value::sym("b"), Value::sym("a")]), nat(m));
        let q = Expr::var("B")
            .product(Expr::var("B"))
            .select(
                "x",
                Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
            )
            .project(&[1, 4]);
        let out = eval_bag(&q, &db_with("B", b)).unwrap();
        let aa = Value::tuple([Value::sym("a"), Value::sym("a")]);
        let bb = Value::tuple([Value::sym("b"), Value::sym("b")]);
        let ab = Value::tuple([Value::sym("a"), Value::sym("b")]);
        assert_eq!(out.multiplicity(&aa), nat(n * m));
        assert_eq!(out.multiplicity(&bb), nat(n * m));
        assert_eq!(out.multiplicity(&ab), nat(0));
    }

    #[test]
    fn map_evaluates_body_per_element() {
        let b = Bag::from_values([Value::int(1), Value::int(2)]);
        let q = Expr::var("B").map("x", Expr::var("x").singleton());
        let out = eval_bag(&q, &db_with("B", b)).unwrap();
        assert!(out.contains(&Value::bag([Value::int(1)])));
        assert_eq!(out.cardinality(), nat(2));
    }

    #[test]
    fn select_with_outer_reference() {
        // Elements of B equal to the whole of bag S — λ body reads both the
        // bound variable and another database bag.
        let b = Bag::from_values([Value::bag([Value::sym("a")]), Value::bag([Value::sym("b")])]);
        let s = Bag::from_values([Value::sym("a")]);
        let db = Database::new().with("B", b).with("S", s);
        let q = Expr::var("B").select("x", Pred::eq(Expr::var("x"), Expr::var("S")));
        let out = eval_bag(&q, &db).unwrap();
        assert_eq!(out.cardinality(), nat(1));
        assert!(out.contains(&Value::bag([Value::sym("a")])));
    }

    #[test]
    fn powerset_has_one_of_each_subbag() {
        let b = Bag::repeated(Value::sym("a"), 3u64);
        let out = eval_bag(&Expr::var("B").powerset(), &db_with("B", b)).unwrap();
        assert_eq!(out.cardinality(), nat(4));
        assert!(out.iter().all(|(_, m)| m.is_one()));
    }

    #[test]
    fn powerset_budget_enforced() {
        let limits = Limits {
            max_bag_elements: 8,
            ..Limits::default()
        };
        let b = Bag::from_values((0..5).map(Value::int)); // powerset = 32 > 8
        let db = db_with("B", b);
        let mut ev = Evaluator::new(&db, limits);
        assert!(matches!(
            ev.eval(&Expr::var("B").powerset()),
            Err(EvalError::Bag(BagError::TooLarge { .. }))
        ));
    }

    #[test]
    fn fused_join_enforces_element_limit_incrementally() {
        // Every tuple shares the join key, so the hash join would emit
        // |B|² = 25 result tuples; with a budget of 8 it must stop at the
        // cap, not materialize everything and fail only at observe time.
        let b = Bag::from_values((0..5).map(|i| Value::tuple([Value::sym("k"), Value::int(i)])));
        let q = Expr::var("B").product(Expr::var("B")).select(
            "x",
            Pred::eq(Expr::var("x").attr(1), Expr::var("x").attr(3)),
        );
        let limits = Limits {
            max_bag_elements: 8,
            ..Limits::default()
        };
        let db = db_with("B", b);
        let mut ev = Evaluator::new(&db, limits);
        assert!(matches!(
            ev.eval(&q),
            Err(EvalError::ElementLimit { limit: 8, .. })
        ));
        // The π-over-× streaming path hits the same guard.
        let wide = Bag::from_values((0..5).map(|i| Value::tuple([Value::int(i)])));
        let q2 = Expr::var("B").product(Expr::var("B")).project(&[1, 2]);
        let limits = Limits {
            max_bag_elements: 8,
            ..Limits::default()
        };
        let db = db_with("B", wide);
        let mut ev = Evaluator::new(&db, limits);
        assert!(matches!(
            ev.eval(&q2),
            Err(EvalError::ElementLimit { limit: 8, .. })
        ));
    }

    #[test]
    fn empty_tuple_map_body_is_not_a_projection() {
        // Regression: `λx.[]` never inspects `x`, so it must map atoms
        // (and any other non-tuple elements) to the empty tuple instead
        // of being misclassified as a projection that demands tuples.
        let b = Bag::from_counted([(Value::sym("a"), nat(2)), (Value::sym("b"), nat(1))]);
        let db = db_with("B", b);
        let q = Expr::var("B").map("x", Expr::Tuple(vec![]));
        let out = eval_bag(&q, &db).unwrap();
        assert_eq!(out.multiplicity(&Value::tuple([])), nat(3));
    }

    #[test]
    fn attr_index_zero_is_rejected_explicitly() {
        // Regression: `α₀` must fail as a 1-based-indexing error on both
        // the λ-bound fast path and the generic path, not as a misleading
        // BadArity produced by a wrapping subtraction.
        let b = Bag::from_values([Value::tuple([Value::sym("a"), Value::sym("b")])]);
        let db = db_with("B", b);
        let fast = Expr::var("B").map("x", Expr::var("x").attr(0));
        assert!(matches!(
            eval(&fast, &db),
            Err(EvalError::Bag(BagError::AttrIndexZero))
        ));
        // A tuple literal exercises the generic path directly.
        let lit = Expr::Attr(Box::new(Expr::lit(Value::tuple([Value::sym("a")]))), 0);
        assert!(matches!(
            eval(&lit, &db),
            Err(EvalError::Bag(BagError::AttrIndexZero))
        ));
    }

    #[test]
    fn step_budget_enforced() {
        let limits = Limits {
            max_steps: 3,
            ..Limits::default()
        };
        let db = db_with("B", Bag::from_values((0..100).map(Value::int)));
        let q = Expr::var("B").map("x", Expr::var("x").singleton());
        let mut ev = Evaluator::new(&db, limits);
        assert!(matches!(ev.eval(&q), Err(EvalError::StepLimit(3))));
    }

    #[test]
    fn shape_errors_are_reported() {
        let db = db_with("B", Bag::singleton(Value::sym("a")));
        // δ over a bag of atoms.
        assert!(matches!(
            eval(&Expr::var("B").destroy(), &db),
            Err(EvalError::Bag(BagError::NotABag(_)))
        ));
        // α on a bag value.
        assert!(matches!(
            eval(&Expr::var("B").attr(1), &db),
            Err(EvalError::Shape { .. })
        ));
    }

    #[test]
    fn ifp_transitive_closure() {
        // Transitive closure of a path graph via IFP:
        // step(B) = π_{1,4}(σ_{α₂=α₃}(B × G)) joined into B.
        let g = Bag::from_values(
            [("a", "b"), ("b", "c"), ("c", "d")]
                .iter()
                .map(|(x, y)| Value::tuple([Value::sym(x), Value::sym(y)])),
        );
        let step = Expr::var("T")
            .product(Expr::var("G"))
            .select(
                "x",
                Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
            )
            .project(&[1, 4])
            .dedup();
        let q = Expr::var("G").ifp("T", step);
        let out = eval_bag(&q, &db_with("G", g)).unwrap();
        assert!(out.contains(&Value::tuple([Value::sym("a"), Value::sym("d")])));
        assert_eq!(out.distinct_count(), 6); // 3 edges + ac, bd, ad
    }

    #[test]
    fn ifp_divergence_hits_budget() {
        // A step that keeps inflating multiplicities... max-union with a
        // growing product never stabilizes within a tiny budget.
        let limits = Limits {
            max_ifp_iterations: 4,
            ..Limits::default()
        };
        let b = Bag::singleton(Value::tuple([Value::sym("a")]));
        let db = db_with("B", b);
        // step(X) = X ∪⁺ X has strictly growing multiplicities, and
        // max-union with X keeps the larger — never converges.
        let q = Expr::var("B").ifp("X", Expr::var("X").additive_union(Expr::var("X")));
        let mut ev = Evaluator::new(&db, limits);
        assert!(matches!(ev.eval(&q), Err(EvalError::IfpLimit(4))));
    }

    #[test]
    fn metrics_track_multiplicity_growth() {
        let mut b = Bag::new();
        b.insert_with_multiplicity(Value::tuple([Value::sym("a")]), nat(10));
        let db = db_with("B", b);
        let q = Expr::var("B").product(Expr::var("B")); // multiplicities 100
        let (result, metrics) = eval_with_metrics(&q, &db, Limits::default());
        result.unwrap();
        assert_eq!(metrics.max_multiplicity, nat(100));
        assert!(metrics.steps >= 3);
    }

    #[test]
    fn dedup_and_lit() {
        let db = Database::new();
        let q = Expr::bag_lit([Value::sym("a"), Value::sym("a"), Value::sym("b")]).dedup();
        let out = eval_bag(&q, &db).unwrap();
        assert_eq!(out.cardinality(), nat(2));
    }

    #[test]
    fn order_predicates_compare_values() {
        let b = Bag::from_values((0..5).map(|i| Value::tuple([Value::int(i)])));
        let db = db_with("B", b);
        let q = Expr::var("B").select(
            "x",
            Pred::lt(Expr::var("x").attr(1), Expr::lit(Value::int(2))),
        );
        let out = eval_bag(&q, &db).unwrap();
        assert_eq!(out.cardinality(), nat(2));
    }

    #[test]
    fn type_checked_example_roundtrip() {
        // An end-to-end sanity check that evaluation respects declared types.
        let b = Bag::from_values([Value::tuple([Value::sym("a"), Value::sym("b")])]);
        let db = db_with("B", b);
        let q = Expr::var("B").project(&[2, 1]);
        let out = eval_bag(&q, &db).unwrap();
        let ty = Value::Bag(out).infer_type().unwrap();
        assert_eq!(ty, Type::relation(2));
    }
}
