//! Resource-limited evaluation of BALG expressions.
//!
//! Every evaluation runs under [`Limits`]: the powerset operator predicts
//! its exact output cardinality (`Π(mᵢ+1)`) *before* allocating, and every
//! intermediate bag is checked against element and multiplicity-width
//! budgets. This mirrors the paper's complexity analyses — Theorem 4.4
//! bounds multiplicity *bit-widths* logarithmically for BALG¹, Theorem 5.1
//! bounds them polynomially for BALG², and the [`Metrics`] collected here
//! are exactly those quantities, consumed by the `balg-complexity` crate's
//! experiments.

use std::fmt;

use crate::bag::{Bag, BagError};
use crate::expr::{Expr, Pred, Var};
use crate::natural::Natural;
use crate::schema::Database;
use crate::value::Value;

/// Resource budgets for one evaluation.
#[derive(Clone, Debug)]
pub struct Limits {
    /// Maximal number of *distinct* elements in any intermediate bag
    /// (powerset output is predicted exactly and rejected up front).
    pub max_bag_elements: u64,
    /// Maximal bit-width of any multiplicity in any intermediate bag.
    pub max_multiplicity_bits: u64,
    /// Maximal number of evaluation steps (AST nodes visited, counting one
    /// per element for MAP/σ bodies).
    pub max_steps: u64,
    /// Maximal number of inflationary-fixpoint iterations.
    pub max_ifp_iterations: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_bag_elements: 1 << 20,
            max_multiplicity_bits: 1 << 16,
            max_steps: 50_000_000,
            max_ifp_iterations: 100_000,
        }
    }
}

impl Limits {
    /// A small budget for exploratory evaluation of explosive expressions.
    pub fn small() -> Limits {
        Limits {
            max_bag_elements: 1 << 12,
            max_multiplicity_bits: 1 << 12,
            max_steps: 1_000_000,
            max_ifp_iterations: 1_000,
        }
    }
}

/// An evaluation error. The algebra is total on well-typed inputs within
/// budget; everything else surfaces here, never as a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable is neither λ-bound nor a database bag.
    UnboundVariable(Var),
    /// A primitive bag operation failed (wrong element shape, powerset
    /// budget).
    Bag(BagError),
    /// An operator was applied to a value of the wrong shape.
    Shape {
        /// What the operator required.
        expected: &'static str,
        /// Rendering of what it got (truncated).
        found: String,
    },
    /// The step budget was exhausted.
    StepLimit(u64),
    /// An intermediate bag exceeded the distinct-element budget.
    ElementLimit {
        /// Observed distinct-element count.
        observed: u64,
        /// The budget.
        limit: u64,
    },
    /// A multiplicity exceeded the bit-width budget.
    MultiplicityLimit {
        /// Observed bit-width.
        observed_bits: u64,
        /// The budget in bits.
        limit_bits: u64,
    },
    /// The inflationary fixpoint did not converge within budget.
    IfpLimit(u64),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(name) => write!(f, "unbound variable {name}"),
            EvalError::Bag(e) => write!(f, "{e}"),
            EvalError::Shape { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            EvalError::StepLimit(n) => write!(f, "step budget of {n} exhausted"),
            EvalError::ElementLimit { observed, limit } => {
                write!(
                    f,
                    "bag with {observed} distinct elements exceeds limit {limit}"
                )
            }
            EvalError::MultiplicityLimit {
                observed_bits,
                limit_bits,
            } => write!(
                f,
                "multiplicity of {observed_bits} bits exceeds limit of {limit_bits} bits"
            ),
            EvalError::IfpLimit(n) => write!(f, "IFP did not converge within {n} iterations"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<BagError> for EvalError {
    fn from(e: BagError) -> Self {
        EvalError::Bag(e)
    }
}

/// Quantities observed during one evaluation — the measurables of the
/// paper's complexity theorems.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// AST-node evaluation steps.
    pub steps: u64,
    /// Maximal distinct-element count over all intermediate bags.
    pub max_distinct_elements: u64,
    /// Maximal multiplicity over all intermediate bags.
    pub max_multiplicity: Natural,
    /// Maximal total cardinality (Σ multiplicities) over intermediates.
    pub max_cardinality: Natural,
    /// Number of powerset/powerbag applications actually evaluated.
    pub powerset_calls: u64,
    /// Total inflationary-fixpoint iterations.
    pub ifp_iterations: u64,
}

impl Metrics {
    /// Bit-width of the largest multiplicity seen — the work-tape counter
    /// width of Theorem 4.4's LOGSPACE argument.
    pub fn max_multiplicity_bits(&self) -> u64 {
        self.max_multiplicity.bits()
    }
}

/// A reusable evaluator bound to one database.
pub struct Evaluator<'a> {
    db: &'a Database,
    limits: Limits,
    metrics: Metrics,
    env: Vec<(Var, Value)>,
    steps_left: u64,
}

impl<'a> Evaluator<'a> {
    /// Create an evaluator over `db` with the given budgets.
    pub fn new(db: &'a Database, limits: Limits) -> Self {
        let steps_left = limits.max_steps;
        Evaluator {
            db,
            limits,
            metrics: Metrics::default(),
            env: Vec::new(),
            steps_left,
        }
    }

    /// Evaluate a closed expression (free variables resolve to database
    /// bags).
    pub fn eval(&mut self, expr: &Expr) -> Result<Value, EvalError> {
        debug_assert!(self.env.is_empty());
        self.eval_inner(expr)
    }

    /// Evaluate and require a bag result.
    pub fn eval_bag(&mut self, expr: &Expr) -> Result<Bag, EvalError> {
        expect_bag(self.eval(expr)?)
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn step(&mut self) -> Result<(), EvalError> {
        self.metrics.steps += 1;
        match self.steps_left.checked_sub(1) {
            Some(rest) => {
                self.steps_left = rest;
                Ok(())
            }
            None => Err(EvalError::StepLimit(self.limits.max_steps)),
        }
    }

    /// Record a produced bag in the metrics and enforce limits.
    fn observe(&mut self, bag: &Bag) -> Result<(), EvalError> {
        let distinct = bag.distinct_count() as u64;
        if distinct > self.limits.max_bag_elements {
            return Err(EvalError::ElementLimit {
                observed: distinct,
                limit: self.limits.max_bag_elements,
            });
        }
        self.metrics.max_distinct_elements = self.metrics.max_distinct_elements.max(distinct);
        let max_mult = bag.max_multiplicity();
        if max_mult.bits() > self.limits.max_multiplicity_bits {
            return Err(EvalError::MultiplicityLimit {
                observed_bits: max_mult.bits(),
                limit_bits: self.limits.max_multiplicity_bits,
            });
        }
        if max_mult > self.metrics.max_multiplicity {
            self.metrics.max_multiplicity = max_mult;
        }
        let card = bag.cardinality();
        if card > self.metrics.max_cardinality {
            self.metrics.max_cardinality = card;
        }
        Ok(())
    }

    fn lookup(&self, name: &Var) -> Result<Value, EvalError> {
        for (bound, value) in self.env.iter().rev() {
            if bound == name {
                return Ok(value.clone());
            }
        }
        self.db
            .get(name)
            .map(|bag| Value::Bag(bag.clone()))
            .ok_or_else(|| EvalError::UnboundVariable(name.clone()))
    }

    fn eval_inner(&mut self, expr: &Expr) -> Result<Value, EvalError> {
        self.step()?;
        match expr {
            Expr::Var(name) => self.lookup(name),
            Expr::Lit(value) => Ok(value.clone()),
            Expr::AdditiveUnion(a, b) => self.eval_binary(a, b, Bag::additive_union),
            Expr::Subtract(a, b) => self.eval_binary(a, b, Bag::subtract),
            Expr::MaxUnion(a, b) => self.eval_binary(a, b, Bag::max_union),
            Expr::Intersect(a, b) => self.eval_binary(a, b, Bag::intersect),
            Expr::Tuple(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for field in fields {
                    out.push(self.eval_inner(field)?);
                }
                Ok(Value::Tuple(out))
            }
            Expr::Singleton(e) => {
                let value = self.eval_inner(e)?;
                let bag = Bag::singleton(value);
                self.observe(&bag)?;
                Ok(Value::Bag(bag))
            }
            Expr::Product(a, b) => {
                let left = expect_bag(self.eval_inner(a)?)?;
                let right = expect_bag(self.eval_inner(b)?)?;
                // Predict output size: distinct counts multiply.
                let predicted = left.distinct_count() as u128 * right.distinct_count() as u128;
                if predicted > self.limits.max_bag_elements as u128 {
                    return Err(EvalError::ElementLimit {
                        observed: predicted.min(u64::MAX as u128) as u64,
                        limit: self.limits.max_bag_elements,
                    });
                }
                let out = left.product(&right)?;
                self.observe(&out)?;
                Ok(Value::Bag(out))
            }
            Expr::Powerset(e) => {
                let bag = expect_bag(self.eval_inner(e)?)?;
                self.metrics.powerset_calls += 1;
                let out = bag.powerset(self.limits.max_bag_elements)?;
                self.observe(&out)?;
                Ok(Value::Bag(out))
            }
            Expr::Powerbag(e) => {
                let bag = expect_bag(self.eval_inner(e)?)?;
                self.metrics.powerset_calls += 1;
                let out = bag.powerbag(self.limits.max_bag_elements)?;
                self.observe(&out)?;
                Ok(Value::Bag(out))
            }
            Expr::Attr(e, index) => {
                let value = self.eval_inner(e)?;
                let fields = value.as_tuple().ok_or_else(|| shape("a tuple", &value))?;
                fields
                    .get(index.wrapping_sub(1))
                    .cloned()
                    .ok_or(EvalError::Bag(BagError::BadArity {
                        index: *index,
                        arity: fields.len(),
                    }))
            }
            Expr::Destroy(e) => {
                let bag = expect_bag(self.eval_inner(e)?)?;
                let out = bag.destroy()?;
                self.observe(&out)?;
                Ok(Value::Bag(out))
            }
            Expr::Map { var, body, input } => {
                let bag = expect_bag(self.eval_inner(input)?)?;
                let mut out = Bag::new();
                for (value, mult) in bag.iter() {
                    self.env.push((var.clone(), value.clone()));
                    let image = self.eval_inner(body);
                    self.env.pop();
                    out.insert_with_multiplicity(image?, mult.clone());
                }
                self.observe(&out)?;
                Ok(Value::Bag(out))
            }
            Expr::Select { var, pred, input } => {
                let bag = expect_bag(self.eval_inner(input)?)?;
                let mut out = Bag::new();
                for (value, mult) in bag.iter() {
                    self.env.push((var.clone(), value.clone()));
                    let keep = self.eval_pred(pred);
                    self.env.pop();
                    if keep? {
                        out.insert_with_multiplicity(value.clone(), mult.clone());
                    }
                }
                self.observe(&out)?;
                Ok(Value::Bag(out))
            }
            Expr::Dedup(e) => {
                let bag = expect_bag(self.eval_inner(e)?)?;
                let out = bag.dedup();
                self.observe(&out)?;
                Ok(Value::Bag(out))
            }
            Expr::Ifp { var, body, input } => {
                // Least fixpoint of T(B) = body(B) ∪ B (maximal union keeps
                // the operator inflationary on bags: multiplicities never
                // shrink, so convergence is detected by equality).
                let mut current = expect_bag(self.eval_inner(input)?)?;
                for _ in 0..self.limits.max_ifp_iterations {
                    self.metrics.ifp_iterations += 1;
                    self.env.push((var.clone(), Value::Bag(current.clone())));
                    let stepped = self.eval_inner(body);
                    self.env.pop();
                    let next = current.max_union(&expect_bag(stepped?)?);
                    self.observe(&next)?;
                    if next == current {
                        return Ok(Value::Bag(current));
                    }
                    current = next;
                }
                Err(EvalError::IfpLimit(self.limits.max_ifp_iterations))
            }
            Expr::Nest { group, input } => {
                let bag = expect_bag(self.eval_inner(input)?)?;
                let out = bag.nest(group)?;
                self.observe(&out)?;
                Ok(Value::Bag(out))
            }
        }
    }

    fn eval_binary(
        &mut self,
        a: &Expr,
        b: &Expr,
        op: impl FnOnce(&Bag, &Bag) -> Bag,
    ) -> Result<Value, EvalError> {
        let left = expect_bag(self.eval_inner(a)?)?;
        let right = expect_bag(self.eval_inner(b)?)?;
        let out = op(&left, &right);
        self.observe(&out)?;
        Ok(Value::Bag(out))
    }

    fn eval_pred(&mut self, pred: &Pred) -> Result<bool, EvalError> {
        self.step()?;
        match pred {
            Pred::True => Ok(true),
            Pred::Eq(a, b) => Ok(self.eval_inner(a)? == self.eval_inner(b)?),
            Pred::Lt(a, b) => Ok(self.eval_inner(a)? < self.eval_inner(b)?),
            Pred::Le(a, b) => Ok(self.eval_inner(a)? <= self.eval_inner(b)?),
            Pred::Member(a, b) => {
                let elem = self.eval_inner(a)?;
                let bag = expect_bag(self.eval_inner(b)?)?;
                Ok(bag.contains(&elem))
            }
            Pred::SubBag(a, b) => {
                let left = expect_bag(self.eval_inner(a)?)?;
                let right = expect_bag(self.eval_inner(b)?)?;
                Ok(left.is_subbag_of(&right))
            }
            Pred::Not(p) => Ok(!self.eval_pred(p)?),
            Pred::And(a, b) => Ok(self.eval_pred(a)? && self.eval_pred(b)?),
            Pred::Or(a, b) => Ok(self.eval_pred(a)? || self.eval_pred(b)?),
        }
    }
}

fn shape(expected: &'static str, found: &Value) -> EvalError {
    let mut rendered = found.to_string();
    if rendered.len() > 80 {
        rendered.truncate(77);
        rendered.push_str("...");
    }
    EvalError::Shape {
        expected,
        found: rendered,
    }
}

fn expect_bag(value: Value) -> Result<Bag, EvalError> {
    match value {
        Value::Bag(bag) => Ok(bag),
        other => Err(shape("a bag", &other)),
    }
}

/// Evaluate `expr` against `db` with default limits.
pub fn eval(expr: &Expr, db: &Database) -> Result<Value, EvalError> {
    Evaluator::new(db, Limits::default()).eval(expr)
}

/// Evaluate `expr` against `db` with default limits, requiring a bag.
pub fn eval_bag(expr: &Expr, db: &Database) -> Result<Bag, EvalError> {
    Evaluator::new(db, Limits::default()).eval_bag(expr)
}

/// Evaluate and return the metrics alongside the result.
pub fn eval_with_metrics(
    expr: &Expr,
    db: &Database,
    limits: Limits,
) -> (Result<Value, EvalError>, Metrics) {
    let mut evaluator = Evaluator::new(db, limits);
    let result = evaluator.eval(expr);
    (result, evaluator.metrics().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Expr, Pred};
    use crate::types::Type;
    use crate::value::Value;

    fn db_with(name: &str, bag: Bag) -> Database {
        Database::new().with(name, bag)
    }

    fn nat(v: u64) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn var_resolves_to_database_bag() {
        let db = db_with("B", Bag::singleton(Value::sym("a")));
        let out = eval_bag(&Expr::var("B"), &db).unwrap();
        assert_eq!(out.cardinality(), nat(1));
        assert!(matches!(
            eval(&Expr::var("missing"), &db),
            Err(EvalError::UnboundVariable(_))
        ));
    }

    #[test]
    fn section4_counting_query() {
        // Q(B) = π₁,₄(σ_{α₂=α₃}(B×B)) over n×[a,b] + m×[b,a]:
        // aa and bb each get n·m occurrences (paper's in-text table).
        let (n, m) = (5u64, 7u64);
        let mut b = Bag::new();
        b.insert_with_multiplicity(Value::tuple([Value::sym("a"), Value::sym("b")]), nat(n));
        b.insert_with_multiplicity(Value::tuple([Value::sym("b"), Value::sym("a")]), nat(m));
        let q = Expr::var("B")
            .product(Expr::var("B"))
            .select(
                "x",
                Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
            )
            .project(&[1, 4]);
        let out = eval_bag(&q, &db_with("B", b)).unwrap();
        let aa = Value::tuple([Value::sym("a"), Value::sym("a")]);
        let bb = Value::tuple([Value::sym("b"), Value::sym("b")]);
        let ab = Value::tuple([Value::sym("a"), Value::sym("b")]);
        assert_eq!(out.multiplicity(&aa), nat(n * m));
        assert_eq!(out.multiplicity(&bb), nat(n * m));
        assert_eq!(out.multiplicity(&ab), nat(0));
    }

    #[test]
    fn map_evaluates_body_per_element() {
        let b = Bag::from_values([Value::int(1), Value::int(2)]);
        let q = Expr::var("B").map("x", Expr::var("x").singleton());
        let out = eval_bag(&q, &db_with("B", b)).unwrap();
        assert!(out.contains(&Value::bag([Value::int(1)])));
        assert_eq!(out.cardinality(), nat(2));
    }

    #[test]
    fn select_with_outer_reference() {
        // Elements of B equal to the whole of bag S — λ body reads both the
        // bound variable and another database bag.
        let b = Bag::from_values([Value::bag([Value::sym("a")]), Value::bag([Value::sym("b")])]);
        let s = Bag::from_values([Value::sym("a")]);
        let db = Database::new().with("B", b).with("S", s);
        let q = Expr::var("B").select("x", Pred::eq(Expr::var("x"), Expr::var("S")));
        let out = eval_bag(&q, &db).unwrap();
        assert_eq!(out.cardinality(), nat(1));
        assert!(out.contains(&Value::bag([Value::sym("a")])));
    }

    #[test]
    fn powerset_has_one_of_each_subbag() {
        let b = Bag::repeated(Value::sym("a"), 3u64);
        let out = eval_bag(&Expr::var("B").powerset(), &db_with("B", b)).unwrap();
        assert_eq!(out.cardinality(), nat(4));
        assert!(out.iter().all(|(_, m)| m.is_one()));
    }

    #[test]
    fn powerset_budget_enforced() {
        let limits = Limits {
            max_bag_elements: 8,
            ..Limits::default()
        };
        let b = Bag::from_values((0..5).map(Value::int)); // powerset = 32 > 8
        let db = db_with("B", b);
        let mut ev = Evaluator::new(&db, limits);
        assert!(matches!(
            ev.eval(&Expr::var("B").powerset()),
            Err(EvalError::Bag(BagError::TooLarge { .. }))
        ));
    }

    #[test]
    fn step_budget_enforced() {
        let limits = Limits {
            max_steps: 3,
            ..Limits::default()
        };
        let db = db_with("B", Bag::from_values((0..100).map(Value::int)));
        let q = Expr::var("B").map("x", Expr::var("x").singleton());
        let mut ev = Evaluator::new(&db, limits);
        assert!(matches!(ev.eval(&q), Err(EvalError::StepLimit(3))));
    }

    #[test]
    fn shape_errors_are_reported() {
        let db = db_with("B", Bag::singleton(Value::sym("a")));
        // δ over a bag of atoms.
        assert!(matches!(
            eval(&Expr::var("B").destroy(), &db),
            Err(EvalError::Bag(BagError::NotABag(_)))
        ));
        // α on a bag value.
        assert!(matches!(
            eval(&Expr::var("B").attr(1), &db),
            Err(EvalError::Shape { .. })
        ));
    }

    #[test]
    fn ifp_transitive_closure() {
        // Transitive closure of a path graph via IFP:
        // step(B) = π_{1,4}(σ_{α₂=α₃}(B × G)) joined into B.
        let g = Bag::from_values(
            [("a", "b"), ("b", "c"), ("c", "d")]
                .iter()
                .map(|(x, y)| Value::tuple([Value::sym(x), Value::sym(y)])),
        );
        let step = Expr::var("T")
            .product(Expr::var("G"))
            .select(
                "x",
                Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
            )
            .project(&[1, 4])
            .dedup();
        let q = Expr::var("G").ifp("T", step);
        let out = eval_bag(&q, &db_with("G", g)).unwrap();
        assert!(out.contains(&Value::tuple([Value::sym("a"), Value::sym("d")])));
        assert_eq!(out.distinct_count(), 6); // 3 edges + ac, bd, ad
    }

    #[test]
    fn ifp_divergence_hits_budget() {
        // A step that keeps inflating multiplicities... max-union with a
        // growing product never stabilizes within a tiny budget.
        let limits = Limits {
            max_ifp_iterations: 4,
            ..Limits::default()
        };
        let b = Bag::singleton(Value::tuple([Value::sym("a")]));
        let db = db_with("B", b);
        // step(X) = X ∪⁺ X has strictly growing multiplicities, and
        // max-union with X keeps the larger — never converges.
        let q = Expr::var("B").ifp("X", Expr::var("X").additive_union(Expr::var("X")));
        let mut ev = Evaluator::new(&db, limits);
        assert!(matches!(ev.eval(&q), Err(EvalError::IfpLimit(4))));
    }

    #[test]
    fn metrics_track_multiplicity_growth() {
        let mut b = Bag::new();
        b.insert_with_multiplicity(Value::tuple([Value::sym("a")]), nat(10));
        let db = db_with("B", b);
        let q = Expr::var("B").product(Expr::var("B")); // multiplicities 100
        let (result, metrics) = eval_with_metrics(&q, &db, Limits::default());
        result.unwrap();
        assert_eq!(metrics.max_multiplicity, nat(100));
        assert!(metrics.steps >= 3);
    }

    #[test]
    fn dedup_and_lit() {
        let db = Database::new();
        let q = Expr::bag_lit([Value::sym("a"), Value::sym("a"), Value::sym("b")]).dedup();
        let out = eval_bag(&q, &db).unwrap();
        assert_eq!(out.cardinality(), nat(2));
    }

    #[test]
    fn order_predicates_compare_values() {
        let b = Bag::from_values((0..5).map(|i| Value::tuple([Value::int(i)])));
        let db = db_with("B", b);
        let q = Expr::var("B").select(
            "x",
            Pred::lt(Expr::var("x").attr(1), Expr::lit(Value::int(2))),
        );
        let out = eval_bag(&q, &db).unwrap();
        assert_eq!(out.cardinality(), nat(2));
    }

    #[test]
    fn type_checked_example_roundtrip() {
        // An end-to-end sanity check that evaluation respects declared types.
        let b = Bag::from_values([Value::tuple([Value::sym("a"), Value::sym("b")])]);
        let db = db_with("B", b);
        let q = Expr::var("B").project(&[2, 1]);
        let out = eval_bag(&q, &db).unwrap();
        let ty = Value::Bag(out).infer_type().unwrap();
        assert_eq!(ty, Type::relation(2));
    }
}
