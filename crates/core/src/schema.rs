//! Bag databases: schemas, instances, and isomorphism (Section 2).
//!
//! A bag database is a set of named bags; a schema assigns each name a bag
//! type. Queries must be *generic* — insensitive to isomorphisms of the
//! database, where an isomorphism is a bijection on atomic constants
//! extended componentwise that preserves every `k-belongs` fact. The
//! [`Database::isomorphic`] search is used by tests to certify genericity
//! of the algebra's operators on small instances.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use crate::bag::Bag;
use crate::types::Type;
use crate::value::{Atom, Value};

/// A database schema: bag names with their bag types.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Schema {
    types: BTreeMap<Arc<str>, Type>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Add a bag schema `name : ty`. `ty` must be a bag type.
    pub fn with(mut self, name: &str, ty: Type) -> Schema {
        assert!(
            matches!(ty, Type::Bag(_)),
            "schema entry {name} must have a bag type, got {ty}"
        );
        self.types.insert(Arc::from(name), ty);
        self
    }

    /// Look up a bag type by name.
    pub fn get(&self, name: &str) -> Option<&Type> {
        self.types.get(name)
    }

    /// Iterate over `(name, type)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&Arc<str>, &Type)> {
        self.types.iter()
    }

    /// The maximal bag nesting over all bag types in the schema.
    pub fn max_nesting(&self) -> usize {
        self.types
            .values()
            .map(Type::bag_nesting)
            .max()
            .unwrap_or(0)
    }
}

/// A bag database instance: named bags.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Database {
    bags: BTreeMap<Arc<str>, Bag>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Add (or replace) a named bag.
    pub fn with(mut self, name: &str, bag: Bag) -> Database {
        self.bags.insert(Arc::from(name), bag);
        self
    }

    /// Insert a named bag.
    pub fn insert(&mut self, name: &str, bag: Bag) {
        self.bags.insert(Arc::from(name), bag);
    }

    /// Look up a bag by name.
    pub fn get(&self, name: &str) -> Option<&Bag> {
        self.bags.get(name)
    }

    /// Remove and return a named bag — gives the caller unique ownership
    /// so an update can mutate in place instead of copy-on-write cloning
    /// (the incremental runtime's commit path).
    pub fn take(&mut self, name: &str) -> Option<Bag> {
        self.bags.remove(name)
    }

    /// Iterate over `(name, bag)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&Arc<str>, &Bag)> {
        self.bags.iter()
    }

    /// Number of named bags.
    pub fn len(&self) -> usize {
        self.bags.len()
    }

    /// `true` if there are no named bags.
    pub fn is_empty(&self) -> bool {
        self.bags.is_empty()
    }

    /// Check the instance against a schema: same names, each bag of the
    /// declared type.
    pub fn conforms_to(&self, schema: &Schema) -> bool {
        self.bags.len() == schema.types.len()
            && self.bags.iter().all(|(name, bag)| {
                schema
                    .get(name)
                    .is_some_and(|ty| Value::Bag(bag.clone()).has_type(ty))
            })
    }

    /// All distinct atomic constants occurring in the instance — the active
    /// domain `D`.
    pub fn active_domain(&self) -> BTreeSet<Atom> {
        let mut out = BTreeSet::new();
        for bag in self.bags.values() {
            Value::Bag(bag.clone()).collect_atoms(&mut out);
        }
        out
    }

    /// Total size of the standard encoding of the instance (Section 2's
    /// complexity measure).
    pub fn encoded_size(&self) -> crate::natural::Natural {
        self.bags
            .values()
            .map(|bag| Value::Bag(bag.clone()).encoded_size())
            .sum()
    }

    /// Apply an atom renaming to every bag.
    pub fn rename_atoms(&self, h: &impl Fn(&Atom) -> Atom) -> Database {
        Database {
            bags: self
                .bags
                .iter()
                .map(|(name, bag)| {
                    let renamed = Value::Bag(bag.clone())
                        .rename_atoms(h)
                        .into_bag()
                        .expect("renaming preserves shape");
                    (name.clone(), renamed)
                })
                .collect(),
        }
    }

    /// Decide isomorphism of two bag databases (Section 2): a bijection
    /// `h : D → D′` on atoms extending componentwise such that `t`
    /// k-belongs to each `Bᵢ` iff `h(t)` k-belongs to `B′ᵢ`.
    ///
    /// Backtracking over atom matchings; exponential in `|D|` in the worst
    /// case, intended for the small instances used in genericity tests.
    pub fn isomorphic(&self, other: &Database) -> bool {
        self.find_isomorphism(other).is_some()
    }

    /// As [`Database::isomorphic`], returning a witness bijection.
    pub fn find_isomorphism(&self, other: &Database) -> Option<BTreeMap<Atom, Atom>> {
        if self.bags.keys().ne(other.bags.keys()) {
            return None;
        }
        let dom: Vec<Atom> = self.active_domain().into_iter().collect();
        let codom: Vec<Atom> = other.active_domain().into_iter().collect();
        if dom.len() != codom.len() {
            return None;
        }
        let mut assignment: BTreeMap<Atom, Atom> = BTreeMap::new();
        let mut used = vec![false; codom.len()];
        if self.search(other, &dom, &codom, 0, &mut used, &mut assignment) {
            Some(assignment)
        } else {
            None
        }
    }

    fn search(
        &self,
        other: &Database,
        dom: &[Atom],
        codom: &[Atom],
        index: usize,
        used: &mut [bool],
        assignment: &mut BTreeMap<Atom, Atom>,
    ) -> bool {
        if index == dom.len() {
            let mapping = assignment.clone();
            let renamed =
                self.rename_atoms(&|a| mapping.get(a).cloned().unwrap_or_else(|| a.clone()));
            return &renamed == other;
        }
        for j in 0..codom.len() {
            if used[j] {
                continue;
            }
            used[j] = true;
            assignment.insert(dom[index].clone(), codom[j].clone());
            if self.search(other, dom, codom, index + 1, used, assignment) {
                return true;
            }
            assignment.remove(&dom[index]);
            used[j] = false;
        }
        false
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, bag) in &self.bags {
            writeln!(f, "{name} = {bag}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::natural::Natural;

    fn graph(edges: &[(&str, &str)]) -> Bag {
        Bag::from_values(
            edges
                .iter()
                .map(|(a, b)| Value::tuple([Value::sym(a), Value::sym(b)])),
        )
    }

    #[test]
    fn schema_conformance() {
        let schema = Schema::new().with("G", Type::relation(2));
        let db = Database::new().with("G", graph(&[("a", "b")]));
        assert!(db.conforms_to(&schema));
        let bad = Database::new().with("G", Bag::singleton(Value::sym("a")));
        assert!(!bad.conforms_to(&schema));
        let missing = Database::new();
        assert!(!missing.conforms_to(&schema));
    }

    #[test]
    fn isomorphic_graphs_found() {
        // a→b,b→c  ≅  x→y,y→z
        let g1 = Database::new().with("G", graph(&[("a", "b"), ("b", "c")]));
        let g2 = Database::new().with("G", graph(&[("x", "y"), ("y", "z")]));
        let h = g1.find_isomorphism(&g2).expect("isomorphic");
        assert_eq!(h[&Atom::sym("a")], Atom::sym("x"));
        assert_eq!(h[&Atom::sym("b")], Atom::sym("y"));
    }

    #[test]
    fn non_isomorphic_multiplicities_detected() {
        // Same support, different duplicate counts: NOT isomorphic as bags.
        let mut b1 = Bag::new();
        b1.insert_with_multiplicity(Value::tuple([Value::sym("a")]), Natural::from(2u64));
        let mut b2 = Bag::new();
        b2.insert_with_multiplicity(Value::tuple([Value::sym("x")]), Natural::from(3u64));
        let d1 = Database::new().with("B", b1);
        let d2 = Database::new().with("B", b2);
        assert!(!d1.isomorphic(&d2));
    }

    #[test]
    fn path_not_isomorphic_to_fork() {
        let g1 = Database::new().with("G", graph(&[("a", "b"), ("b", "c")]));
        let g2 = Database::new().with("G", graph(&[("x", "y"), ("x", "z")]));
        assert!(!g1.isomorphic(&g2));
    }

    #[test]
    fn active_domain_and_size() {
        let db = Database::new().with("G", graph(&[("a", "b"), ("b", "c")]));
        assert_eq!(db.active_domain().len(), 3);
        // each edge tuple: 1 + 2 atoms = 3; bag adds 1 → 1 + 3 + 3 = 7
        assert_eq!(db.encoded_size(), Natural::from(7u64));
    }

    #[test]
    fn isomorphism_is_reflexive_on_nested_bags() {
        let nested = Bag::singleton(Value::bag([Value::sym("a"), Value::sym("b")]));
        let db = Database::new().with("N", nested);
        assert!(db.isomorphic(&db.clone()));
    }
}
