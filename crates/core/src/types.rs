//! The type system of the paper's Section 2.
//!
//! Types are built from the atomic type `U` with the tuple constructor
//! `[T₁, …, Tₖ]` and the bag constructor `⟦T⟧`. A complex type is a tree
//! whose internal nodes are the two constructors; the **bag nesting** of a
//! type is the maximal number of bag nodes on a root-to-leaf path, which is
//! the parameter defining the fragments BALG¹ / BALG² / BALG³ studied in
//! Sections 4–6.

use std::fmt;

/// A BALG type: the atomic type `U`, tuple types, and bag types.
///
/// [`Type::Unknown`] is not part of the paper's type system; it is the type
/// of a literal empty bag's element, and unifies with everything. The static
/// type checker only produces `Unknown` under a `Bag` node of an empty bag
/// literal.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Type {
    /// The atomic type `U` (an infinite domain of constants).
    Atom,
    /// A tuple type `[T₁, …, Tₖ]`.
    Tuple(Vec<Type>),
    /// A bag type `⟦T⟧`.
    Bag(Box<Type>),
    /// The element type of a literal empty bag; unifies with any type.
    Unknown,
}

impl Type {
    /// Convenience constructor for `⟦T⟧`.
    pub fn bag(inner: Type) -> Type {
        Type::Bag(Box::new(inner))
    }

    /// Convenience constructor for a tuple of `k` atoms, `U^k`.
    pub fn atom_tuple(k: usize) -> Type {
        Type::Tuple(vec![Type::Atom; k])
    }

    /// A flat relation type `⟦U^k⟧` — the unnested bag types of BALG¹.
    pub fn relation(k: usize) -> Type {
        Type::bag(Type::atom_tuple(k))
    }

    /// The bag nesting of the type: the maximal number of bag constructors
    /// on a path from the root to a leaf (Section 2). `U` and pure tuple
    /// types have nesting 0; `⟦U^k⟧` has nesting 1; `⟦⟦U⟧⟧` has nesting 2.
    pub fn bag_nesting(&self) -> usize {
        match self {
            Type::Atom | Type::Unknown => 0,
            Type::Tuple(fields) => fields.iter().map(Type::bag_nesting).max().unwrap_or(0),
            Type::Bag(inner) => 1 + inner.bag_nesting(),
        }
    }

    /// `true` if this type contains no `Unknown` leaves.
    pub fn is_concrete(&self) -> bool {
        match self {
            Type::Atom => true,
            Type::Unknown => false,
            Type::Tuple(fields) => fields.iter().all(Type::is_concrete),
            Type::Bag(inner) => inner.is_concrete(),
        }
    }

    /// Structural compatibility, treating `Unknown` as a wildcard on either
    /// side. Two compatible concrete types are equal.
    pub fn compatible(&self, other: &Type) -> bool {
        match (self, other) {
            (Type::Unknown, _) | (_, Type::Unknown) => true,
            (Type::Atom, Type::Atom) => true,
            (Type::Tuple(a), Type::Tuple(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.compatible(y))
            }
            (Type::Bag(a), Type::Bag(b)) => a.compatible(b),
            _ => false,
        }
    }

    /// Least upper bound of two compatible types, replacing `Unknown` by
    /// concrete information where available. Returns `None` if incompatible.
    pub fn unify(&self, other: &Type) -> Option<Type> {
        match (self, other) {
            (Type::Unknown, t) | (t, Type::Unknown) => Some(t.clone()),
            (Type::Atom, Type::Atom) => Some(Type::Atom),
            (Type::Tuple(a), Type::Tuple(b)) if a.len() == b.len() => {
                let fields = a
                    .iter()
                    .zip(b)
                    .map(|(x, y)| x.unify(y))
                    .collect::<Option<Vec<_>>>()?;
                Some(Type::Tuple(fields))
            }
            (Type::Bag(a), Type::Bag(b)) => Some(Type::bag(a.unify(b)?)),
            _ => None,
        }
    }

    /// The element type if this is a bag type.
    pub fn element(&self) -> Option<&Type> {
        match self {
            Type::Bag(inner) => Some(inner),
            _ => None,
        }
    }

    /// The field types if this is a tuple type.
    pub fn fields(&self) -> Option<&[Type]> {
        match self {
            Type::Tuple(fields) => Some(fields),
            _ => None,
        }
    }

    /// `true` for the unnested types of BALG¹: `U^k` or `⟦U^k⟧`
    /// (Section 4), including bare `U`.
    pub fn is_unnested(&self) -> bool {
        fn flat_tuple(t: &Type) -> bool {
            match t {
                Type::Atom | Type::Unknown => true,
                Type::Tuple(fields) => fields
                    .iter()
                    .all(|f| matches!(f, Type::Atom | Type::Unknown)),
                _ => false,
            }
        }
        match self {
            Type::Bag(inner) => flat_tuple(inner),
            other => flat_tuple(other),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Atom => f.write_str("U"),
            Type::Unknown => f.write_str("?"),
            Type::Tuple(fields) => {
                f.write_str("[")?;
                for (i, field) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{field}")?;
                }
                f.write_str("]")
            }
            Type::Bag(inner) => write!(f, "{{{{{inner}}}}}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bag_nesting_counts_bag_nodes_on_deepest_path() {
        assert_eq!(Type::Atom.bag_nesting(), 0);
        assert_eq!(Type::atom_tuple(3).bag_nesting(), 0);
        assert_eq!(Type::relation(2).bag_nesting(), 1);
        assert_eq!(Type::bag(Type::relation(2)).bag_nesting(), 2);
        // Mixed tuple: [U, ⟦⟦U⟧⟧] has nesting 2.
        let t = Type::Tuple(vec![Type::Atom, Type::bag(Type::bag(Type::Atom))]);
        assert_eq!(t.bag_nesting(), 2);
    }

    #[test]
    fn unnested_types_are_exactly_balg1_types() {
        assert!(Type::Atom.is_unnested());
        assert!(Type::atom_tuple(4).is_unnested());
        assert!(Type::relation(4).is_unnested());
        assert!(!Type::bag(Type::relation(1)).is_unnested());
        assert!(!Type::Tuple(vec![Type::Atom, Type::bag(Type::Atom)]).is_unnested());
    }

    #[test]
    fn unify_fills_unknowns() {
        let partial = Type::bag(Type::Unknown);
        let full = Type::relation(2);
        assert_eq!(partial.unify(&full), Some(full.clone()));
        assert!(partial.compatible(&full));
        assert_eq!(Type::Atom.unify(&Type::relation(1)), None);
        assert!(!Type::Atom.compatible(&Type::relation(1)));
    }

    #[test]
    fn unify_rejects_arity_mismatch() {
        assert_eq!(Type::atom_tuple(2).unify(&Type::atom_tuple(3)), None);
    }

    #[test]
    fn display_round_trips_shape() {
        let t = Type::bag(Type::Tuple(vec![Type::Atom, Type::bag(Type::Atom)]));
        assert_eq!(t.to_string(), "{{[U, {{U}}]}}");
    }

    #[test]
    fn concrete_detection() {
        assert!(Type::relation(2).is_concrete());
        assert!(!Type::bag(Type::Unknown).is_concrete());
    }
}
