//! Deterministic partitioned operator kernels over the sorted pair slice.
//!
//! The PR-3 representation — strictly ascending `(Value, Natural)` slices —
//! was chosen because the hot operator shapes partition cleanly at key
//! boundaries. This module exploits that: every kernel here splits its
//! input into `chunks` contiguous ranges **as a pure function of the
//! requested chunk count** (never of worker count, load, or timing), runs
//! the ranges on the global [`crate::pool`], and concatenates the
//! pre-sorted chunk outputs. The result is *provably identical* to the
//! serial operator — same bag, same error, same budget accounting — which
//! is what the parallel↔serial twin differential pins down.
//!
//! Three determinism arguments cover everything here:
//!
//! * **Keywise merges** (`∪⁺`, `−`, `∪`, `∩`): the output multiplicity at a
//!   key depends only on the two input multiplicities at that key. Both
//!   sides are split at *shared* pivot keys (`partition_point`), so no key
//!   spans two chunks and concatenation is exactly the serial merge.
//! * **Row-major emission** (uniform-arity `product`): chunking the left
//!   rows slices the serial output vector into contiguous pieces;
//!   concatenation rebuilds it verbatim. Error cases (`NotATuple`,
//!   `TooLarge`) are decided up front by a pre-scan that reproduces the
//!   serial walk's first-error rule exactly.
//! * **Rank-space chunking** (powerset/powerbag): the odometer enumeration
//!   is a bijection between ranks `0..Π(mᵢ+1)` and subbag choices (mixed
//!   radix, digit 0 least significant). Chunks enumerate disjoint rank
//!   ranges; the serial path ends with one `sort_unstable` over distinct
//!   keys, so sorting the concatenation produces the identical vector.

use crate::bag::{build_subbag, subbag_capacity, Bag, BagError};
use crate::natural::Natural;
use crate::pool;
use crate::value::Value;

/// Default distinct-element threshold below which operators stay serial:
/// partitioning and task hand-off cost more than a small merge.
pub const DEFAULT_THRESHOLD: usize = 4096;

/// Per-evaluator parallel execution settings.
///
/// `chunks` is the number of partitions operators split work into — a pure
/// function of this value, so results (bags, errors, step charges) are
/// identical for every setting; only scheduling changes. `threshold` is the
/// minimum input size (distinct elements / probe rows / predicted outputs)
/// before an operator bothers partitioning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Parallel {
    /// Partition count; `<= 1` disables parallel execution.
    pub chunks: usize,
    /// Minimum work size before partitioning kicks in.
    pub threshold: usize,
}

impl Parallel {
    /// Parallelism off: everything runs the serial paths.
    pub fn disabled() -> Parallel {
        Parallel {
            chunks: 1,
            threshold: DEFAULT_THRESHOLD,
        }
    }

    /// Capture the process-wide default ([`pool::default_parallelism`]).
    pub fn from_global() -> Parallel {
        Parallel {
            chunks: pool::default_parallelism(),
            threshold: DEFAULT_THRESHOLD,
        }
    }

    /// Whether any kernel may partition at all.
    pub fn enabled(&self) -> bool {
        self.chunks > 1
    }

    /// Whether a piece of work of size `n` is worth partitioning.
    pub fn wants(&self, n: usize) -> bool {
        self.chunks > 1 && n >= self.threshold
    }
}

impl Default for Parallel {
    fn default() -> Parallel {
        Parallel::disabled()
    }
}

// ----- shared partitioning -----

/// Split two sorted slices at shared key boundaries into at most `chunks`
/// aligned ranges. Returns the *end* index pair of each chunk (the last is
/// always `(a.len(), b.len())`). Pivot keys are drawn from the longer
/// slice at even intervals; `partition_point` places every key strictly
/// below a pivot in the earlier chunk on **both** sides, so no key spans a
/// boundary.
fn aligned_cuts(
    a: &[(Value, Natural)],
    b: &[(Value, Natural)],
    chunks: usize,
) -> Vec<(usize, usize)> {
    let big = if a.len() >= b.len() { a } else { b };
    let mut cuts = Vec::with_capacity(chunks);
    let mut prev = (0usize, 0usize);
    for k in 1..chunks {
        let pos = big.len() * k / chunks;
        if pos == 0 || pos >= big.len() {
            continue;
        }
        let key = &big[pos].0;
        let cut = (
            a.partition_point(|p| p.0 < *key),
            b.partition_point(|p| p.0 < *key),
        );
        if cut != prev {
            cuts.push(cut);
            prev = cut;
        }
    }
    if prev != (a.len(), b.len()) || cuts.is_empty() {
        cuts.push((a.len(), b.len()));
    }
    cuts
}

/// The four keywise merge shapes, each a closed function of the per-key
/// multiplicity pair — the property that makes boundary-aligned chunking
/// exact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MergeOp {
    /// `∪⁺`: multiplicities add.
    Add,
    /// `−`: monus (`sup(0, p − q)`).
    Monus,
    /// `∪`: `sup(p, q)`.
    Max,
    /// `∩`: `inf(p, q)`, absent keys drop.
    Min,
}

/// Serial keywise merge of two sorted ranges. Output semantics match the
/// corresponding [`Bag`] operator restricted to these ranges.
fn merge_ranges(
    a: &[(Value, Natural)],
    b: &[(Value, Natural)],
    op: MergeOp,
) -> Vec<(Value, Natural)> {
    let cap = match op {
        MergeOp::Add | MergeOp::Max => a.len() + b.len(),
        MergeOp::Monus => a.len(),
        MergeOp::Min => a.len().min(b.len()),
    };
    let mut out = Vec::with_capacity(cap);
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (av, am) = &a[i];
        let (bv, bm) = &b[j];
        match av.cmp(bv) {
            std::cmp::Ordering::Less => {
                if matches!(op, MergeOp::Add | MergeOp::Monus | MergeOp::Max) {
                    out.push((av.clone(), am.clone()));
                }
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                if matches!(op, MergeOp::Add | MergeOp::Max) {
                    out.push((bv.clone(), bm.clone()));
                }
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let m = match op {
                    MergeOp::Add => {
                        let mut x = am.clone();
                        x += bm;
                        x
                    }
                    MergeOp::Monus => am.monus(bm),
                    MergeOp::Max => am.max(bm).clone(),
                    MergeOp::Min => am.min(bm).clone(),
                };
                if !m.is_zero() {
                    out.push((av.clone(), m));
                }
                i += 1;
                j += 1;
            }
        }
    }
    if matches!(op, MergeOp::Add | MergeOp::Monus | MergeOp::Max) {
        out.extend(a[i..].iter().cloned());
    }
    if matches!(op, MergeOp::Add | MergeOp::Max) {
        out.extend(b[j..].iter().cloned());
    }
    out
}

/// Partitioned keywise merge: identical output to the serial operator.
fn par_merge(a: &Bag, b: &Bag, op: MergeOp, chunks: usize) -> Bag {
    let cuts = aligned_cuts(a.pairs(), b.pairs(), chunks);
    if cuts.len() <= 1 {
        return Bag::from_sorted_vec(merge_ranges(a.pairs(), b.pairs(), op));
    }
    note_partitioned(cuts.len());
    let mut jobs: Vec<PairRunJob> = Vec::with_capacity(cuts.len());
    let mut start = (0usize, 0usize);
    for &(ae, be) in &cuts {
        let (a, b) = (a.clone(), b.clone());
        let (as_, bs) = start;
        jobs.push(Box::new(move || {
            merge_ranges(&a.pairs()[as_..ae], &b.pairs()[bs..be], op)
        }));
        start = (ae, be);
    }
    let parts = pool::global().run(jobs);
    let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for part in parts {
        out.extend(part);
    }
    Bag::from_sorted_vec(out)
}

/// Partitioned additive union `∪⁺`. Equal to [`Bag::additive_union`].
pub fn additive_union(a: &Bag, b: &Bag, chunks: usize) -> Bag {
    if a.is_empty() || b.is_empty() || a.shares_representation(b) {
        return a.additive_union(b);
    }
    par_merge(a, b, MergeOp::Add, chunks)
}

/// Partitioned subtraction `−` (monus). Equal to [`Bag::subtract`].
pub fn subtract(a: &Bag, b: &Bag, chunks: usize) -> Bag {
    if a.is_empty() || b.is_empty() || a.shares_representation(b) {
        return a.subtract(b);
    }
    par_merge(a, b, MergeOp::Monus, chunks)
}

/// Partitioned maximal union `∪`. Equal to [`Bag::max_union`].
pub fn max_union(a: &Bag, b: &Bag, chunks: usize) -> Bag {
    if a.is_empty() || b.is_empty() || a.shares_representation(b) {
        return a.max_union(b);
    }
    par_merge(a, b, MergeOp::Max, chunks)
}

/// Partitioned intersection `∩`. Equal to [`Bag::intersect`].
pub fn intersect(a: &Bag, b: &Bag, chunks: usize) -> Bag {
    if a.is_empty() || b.is_empty() || a.shares_representation(b) {
        return a.intersect(b);
    }
    par_merge(a, b, MergeOp::Min, chunks)
}

// ----- Cartesian product -----

/// Partitioned Cartesian product, identical to [`Bag::product`] in output
/// *and* error: the serial walk's first-error rule (a non-tuple right
/// element at pair index `j` beats the budget trip at pair index
/// `max_elements` iff `j ≤ max_elements`) is reproduced by pre-scanning.
///
/// Only the uniform-left-arity path (row-major, born-sorted emission)
/// partitions; mixed arities fall back to the serial builder path, whose
/// in-builder merging does not chunk safely.
pub fn product(a: &Bag, b: &Bag, max_elements: u64, chunks: usize) -> Result<Bag, BagError> {
    if a.is_empty() {
        return Ok(Bag::new());
    }
    let mut left_arity: Option<usize> = None;
    let mut uniform = true;
    for (value, _) in a.iter() {
        let fields = value
            .as_tuple()
            .ok_or_else(|| BagError::NotATuple(value.clone()))?;
        match left_arity {
            None => left_arity = Some(fields.len()),
            Some(ar) if ar == fields.len() => {}
            Some(_) => uniform = false,
        }
    }
    if !uniform || chunks <= 1 {
        return a.product(b, max_elements);
    }
    let predicted =
        || &Natural::from(a.distinct_count() as u64) * &Natural::from(b.distinct_count() as u64);
    // First-error pre-scan: the serial inner loop extracts the right tuple
    // *before* the budget check, and the first left row visits every right
    // element, so a bad right element at index `j` errors at pair index
    // `j` while the budget trips at pair index `max_elements`.
    let j_bad = b.iter().position(|(value, _)| value.as_tuple().is_none());
    if let Some(j) = j_bad {
        if j as u64 <= max_elements {
            let (value, _) = b.iter().nth(j).expect("scanned above");
            return Err(BagError::NotATuple(value.clone()));
        }
        return Err(BagError::TooLarge {
            predicted: predicted(),
            limit: max_elements,
        });
    }
    let (l, r) = (a.distinct_count(), b.distinct_count());
    let total = l as u128 * r as u128;
    if total > max_elements as u128 {
        return Err(BagError::TooLarge {
            predicted: predicted(),
            limit: max_elements,
        });
    }
    note_partitioned(chunks.min(l));
    let mut jobs: Vec<PairRunJob> = Vec::with_capacity(chunks);
    let mut row = 0usize;
    for k in 1..=chunks {
        let end = l * k / chunks;
        if end <= row {
            continue;
        }
        let (a, b) = (a.clone(), b.clone());
        let (lo, hi) = (row, end);
        jobs.push(Box::new(move || {
            let mut out = Vec::with_capacity((hi - lo) * b.distinct_count());
            for (left, lm) in &a.pairs()[lo..hi] {
                let left_fields = left.as_tuple().expect("scanned above");
                for (right, rm) in b.pairs() {
                    let right_fields = right.as_tuple().expect("pre-scanned");
                    out.push((Value::concat_tuples(left_fields, right_fields), lm * rm));
                }
            }
            out
        }));
        row = end;
    }
    let parts = pool::global().run(jobs);
    let mut out = Vec::with_capacity(total as usize);
    for part in parts {
        out.extend(part);
    }
    Ok(Bag::from_sorted_vec(out))
}

// ----- powerset / powerbag -----

/// Decode a rank into odometer digits (mixed radix, digit 0 least
/// significant — exactly the serial odometer's increment order).
fn decode_rank(mut rank: u64, bounds: &[u64], digits: &mut [u64]) {
    for (d, &b) in digits.iter_mut().zip(bounds) {
        let base = b + 1;
        *d = rank % base;
        rank /= base;
    }
}

/// Enumerate subbag choices for ranks `lo..hi`, pushing one pair per rank.
fn enumerate_ranks(bag: &Bag, lo: u64, hi: u64, weighted: bool, out: &mut Vec<(Value, Natural)>) {
    let entries: Vec<(&Value, &Natural)> = bag.iter().collect();
    let bounds: Vec<u64> = entries
        .iter()
        .map(|(_, m)| m.to_u64().expect("bounded by predicted cardinality"))
        .collect();
    let mut current = vec![0u64; bounds.len()];
    decode_rank(lo, &bounds, &mut current);
    for _ in lo..hi {
        if weighted {
            let mut weight = Natural::one();
            for ((_, mult), &count) in entries.iter().zip(&current) {
                weight *= &Natural::binomial(mult, count);
            }
            out.push((Value::Bag(build_subbag(&entries, &current)), weight));
        } else {
            out.push((Value::Bag(build_subbag(&entries, &current)), Natural::one()));
        }
        // Odometer increment over 0..=bounds[i].
        let mut pos = 0;
        while pos < bounds.len() {
            if current[pos] < bounds[pos] {
                current[pos] += 1;
                break;
            }
            current[pos] = 0;
            pos += 1;
        }
    }
}

/// Shared partitioned subbag enumeration for `P` and `P_b`.
fn par_subbags(
    bag: &Bag,
    max_elements: u64,
    chunks: usize,
    weighted: bool,
) -> Result<Bag, BagError> {
    let predicted = bag.powerset_cardinality();
    if predicted > Natural::from(max_elements) {
        return Err(BagError::TooLarge {
            predicted,
            limit: max_elements,
        });
    }
    let total = predicted.to_u64().expect("bounded by the element budget");
    note_partitioned(chunks);
    let mut jobs: Vec<PairRunJob> = Vec::with_capacity(chunks);
    let mut lo = 0u64;
    for k in 1..=chunks as u64 {
        let hi = total * k / chunks as u64;
        if hi <= lo {
            continue;
        }
        let bag = bag.clone();
        let (lo_, hi_) = (lo, hi);
        jobs.push(Box::new(move || {
            let mut out = Vec::with_capacity((hi_ - lo_) as usize);
            enumerate_ranks(&bag, lo_, hi_, weighted, &mut out);
            out
        }));
        lo = hi;
    }
    let parts = pool::global().run(jobs);
    let mut pairs = Vec::with_capacity(subbag_capacity(&Natural::from(total), max_elements));
    for part in parts {
        pairs.extend(part);
    }
    pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    Ok(Bag::from_sorted_vec(pairs))
}

/// Partitioned powerset `P(B)`. Equal to [`Bag::powerset`] in output and
/// error. The single-distinct-element fast path and trivially small
/// inputs delegate to the serial implementation.
pub fn powerset(bag: &Bag, max_elements: u64, chunks: usize) -> Result<Bag, BagError> {
    if chunks <= 1 || bag.distinct_count() <= 1 {
        return bag.powerset(max_elements);
    }
    par_subbags(bag, max_elements, chunks, false)
}

/// Partitioned powerbag `P_b(B)`. Equal to [`Bag::powerbag`] in output and
/// error.
pub fn powerbag(bag: &Bag, max_elements: u64, chunks: usize) -> Result<Bag, BagError> {
    if chunks <= 1 || bag.distinct_count() == 0 {
        return bag.powerbag(max_elements);
    }
    par_subbags(bag, max_elements, chunks, true)
}

// ----- observability -----

/// Process-global parallel-execution counters, resolved lazily from the
/// installed [`balg_obs`] registry (inert until one is installed, same
/// idiom as the index-cache counters). Counters never influence results.
struct ParObs {
    partitions: balg_obs::Counter,
    fallbacks: balg_obs::Counter,
}

static PAR_OBS: std::sync::OnceLock<ParObs> = std::sync::OnceLock::new();

fn par_obs() -> Option<&'static ParObs> {
    if let Some(obs) = PAR_OBS.get() {
        return Some(obs);
    }
    let registry = balg_obs::global()?;
    let _ = PAR_OBS.set(ParObs {
        partitions: registry.counter(
            "balg_par_partitions_total",
            "Operator executions that ran partitioned on the work-stealing pool",
        ),
        fallbacks: registry.counter(
            "balg_par_serial_fallbacks_total",
            "Optimistic parallel attempts that re-ran serially (budget overflow)",
        ),
    });
    PAR_OBS.get()
}

/// A chunk job producing one partition's sorted pair run.
type PairRunJob = Box<dyn FnOnce() -> Vec<(Value, Natural)> + Send>;

/// Count one operator execution that actually partitioned (≥ 2 chunks).
/// Public so the downstream evaluators' chunked probe loops record into
/// the same counters; never influences results.
pub fn note_partitioned(chunks: usize) {
    if chunks > 1 {
        if let Some(obs) = par_obs() {
            obs.partitions.inc();
        }
    }
}

/// Count one optimistic parallel attempt that fell back to the serial path
/// to reproduce exact budget-error payloads.
pub fn note_serial_fallback() {
    if let Some(obs) = par_obs() {
        obs.fallbacks.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bag_of(rows: &[(i64, u64)]) -> Bag {
        Bag::from_counted(rows.iter().map(|&(v, m)| (Value::int(v), Natural::from(m))))
    }

    fn tuples(rows: &[(i64, i64, u64)]) -> Bag {
        Bag::from_counted(rows.iter().map(|&(a, b, m)| {
            (
                Value::tuple([Value::int(a), Value::int(b)]),
                Natural::from(m),
            )
        }))
    }

    #[test]
    fn merges_agree_with_serial_at_every_chunk_count() {
        let a = bag_of(
            &(0..200)
                .map(|i| (i, (i % 5 + 1) as u64))
                .collect::<Vec<_>>(),
        );
        let b = bag_of(
            &(100..300)
                .map(|i| (i, (i % 3 + 1) as u64))
                .collect::<Vec<_>>(),
        );
        for chunks in [1, 2, 3, 4, 7, 64] {
            assert_eq!(additive_union(&a, &b, chunks), a.additive_union(&b));
            assert_eq!(subtract(&a, &b, chunks), a.subtract(&b));
            assert_eq!(subtract(&b, &a, chunks), b.subtract(&a));
            assert_eq!(max_union(&a, &b, chunks), a.max_union(&b));
            assert_eq!(intersect(&a, &b, chunks), a.intersect(&b));
        }
    }

    #[test]
    fn product_agrees_with_serial_including_errors() {
        let a = tuples(&(0..40).map(|i| (i, i + 1, 2u64)).collect::<Vec<_>>());
        let b = tuples(&(0..30).map(|i| (i * 2, i, 1u64)).collect::<Vec<_>>());
        for chunks in [1, 2, 4, 9] {
            assert_eq!(product(&a, &b, 1 << 20, chunks), a.product(&b, 1 << 20));
            // Budget trip.
            assert_eq!(product(&a, &b, 100, chunks), a.product(&b, 100));
        }
        // Non-tuple on the right: same first-error as serial.
        let bad = bag_of(&[(1, 1), (2, 1)]);
        for chunks in [2, 4] {
            assert_eq!(product(&a, &bad, 1 << 20, chunks), a.product(&bad, 1 << 20));
            assert_eq!(product(&a, &bad, 0, chunks), a.product(&bad, 0));
        }
    }

    #[test]
    fn powersets_agree_with_serial() {
        let b = bag_of(&[(1, 3), (2, 2), (3, 1), (4, 4)]);
        for chunks in [1, 2, 4, 5] {
            assert_eq!(powerset(&b, 1 << 20, chunks), b.powerset(1 << 20));
            assert_eq!(powerbag(&b, 1 << 20, chunks), b.powerbag(1 << 20));
            // Budget trip reproduces the serial error.
            assert_eq!(powerset(&b, 10, chunks), b.powerset(10));
            assert_eq!(powerbag(&b, 10, chunks), b.powerbag(10));
        }
    }

    #[test]
    fn aligned_cuts_share_boundaries() {
        let a = bag_of(&(0..100).map(|i| (i, 1u64)).collect::<Vec<_>>());
        let b = bag_of(&(50..150).map(|i| (i, 1u64)).collect::<Vec<_>>());
        let cuts = aligned_cuts(a.pairs(), b.pairs(), 4);
        assert_eq!(*cuts.last().unwrap(), (100, 100));
        // Ends are non-decreasing on both sides.
        let mut prev = (0, 0);
        for &c in &cuts {
            assert!(c.0 >= prev.0 && c.1 >= prev.1);
            prev = c;
        }
    }
}
